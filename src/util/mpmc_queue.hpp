#pragma once
// MpmcQueue: bounded multi-producer/multi-consumer queue with batched pops —
// the arrival side of the serving runtime (DESIGN.md §9).
//
// Producers (request threads) push single items and block when the queue is
// full: the bound IS the backpressure policy, converting overload into
// producer-side latency instead of unbounded memory growth. Consumers
// (batching workers) pop *batches*: pop_batch blocks for the first item,
// then keeps collecting until either `max_batch` items are in hand or
// `max_delay` has elapsed since the first item of the batch was taken. Those
// two knobs are the micro-batching scheduler's entire policy surface:
// max_batch bounds per-batch latency under load, max_delay bounds latency
// when traffic is sparse.
//
// The queue is a fixed ring over pre-sized storage: steady-state operation
// allocates nothing. Synchronization is a mutex plus two condition
// variables — at serving batch sizes the lock is taken once per *batch* on
// the consumer side, so lock-free fanciness would optimize the cheap part.
// The lock discipline is machine-checked: every ring field is
// SMORE_GUARDED_BY(mutex_) and the wait predicates are explicit loops, so
// the clang thread-safety build proves no field is ever touched unlocked
// (DESIGN.md §15).
//
// close() wakes everyone: pushes fail from then on, pops drain what is left
// and then report exhaustion. This gives the server's graceful shutdown —
// every in-flight request is still handed to a worker.

#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace smore {

/// Outcome of a non-blocking push — the queue's own atomic decision, taken
/// under its lock. Callers that map a refusal to a shed reason must use this
/// rather than re-reading closed() afterwards: a close racing in between the
/// failed push and the re-check would mislabel a capacity refusal as a
/// shutdown refusal.
enum class QueuePush { kAccepted, kFull, kClosed };

/// Bounded MPMC ring with blocking push and batched pop. T must be
/// default-constructible and move-assignable.
template <typename T>
class MpmcQueue {
 public:
  /// Throws std::invalid_argument when capacity is 0.
  explicit MpmcQueue(std::size_t capacity)
      : buffer_(capacity), capacity_(capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("MpmcQueue: capacity must be positive");
    }
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    const MutexLock lock(mutex_);
    return count_;
  }

  [[nodiscard]] bool closed() const {
    const MutexLock lock(mutex_);
    return closed_;
  }

  /// Blocking push: waits while the queue is full (backpressure). Returns
  /// false iff the queue was closed (the item is dropped then).
  bool push(T item) {
    MutexLock lock(mutex_);
    while (count_ >= capacity_ && !closed_) not_full_.wait(mutex_);
    if (closed_) return false;
    place(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: refuses (kFull / kClosed, item dropped) instead of
  /// waiting. Callers implement load-shedding on top of this; the returned
  /// outcome is the authoritative refusal reason.
  QueuePush try_push(T item) {
    {
      const MutexLock lock(mutex_);
      if (closed_) return QueuePush::kClosed;
      if (count_ == capacity_) return QueuePush::kFull;
      place(std::move(item));
    }
    not_empty_.notify_one();
    return QueuePush::kAccepted;
  }

  /// Batched pop: blocks until at least one item is available (or the queue
  /// is closed and drained), then collects up to `max_batch` items, waiting
  /// at most `max_delay` after the first item for stragglers. Appends to
  /// `out` and returns the number of items taken; 0 means closed-and-empty
  /// (the consumer should exit).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_batch,
                        std::chrono::microseconds max_delay) {
    if (max_batch == 0) max_batch = 1;
    const MutexLock lock(mutex_);
    while (count_ == 0 && !closed_) not_empty_.wait(mutex_);
    if (count_ == 0) return 0;  // closed and drained
    // Producers are signaled after EVERY take, not once on return: when the
    // ring is smaller than max_batch, the straggler wait below must let
    // blocked producers refill the freed capacity mid-wait, or the batch
    // could never grow past the ring size per delay window.
    std::size_t taken = take(out, max_batch);
    not_full_.notify_all();
    if (taken < max_batch && max_delay.count() > 0) {
      const auto deadline = std::chrono::steady_clock::now() + max_delay;
      while (taken < max_batch) {
        // Timed wait for the (count_ > 0 || closed_) predicate, written as
        // an explicit loop: a timeout with the predicate still false ends
        // the straggler window.
        bool ready = true;
        while (count_ == 0 && !closed_) {
          if (not_empty_.wait_until(mutex_, deadline) ==
              std::cv_status::timeout) {
            ready = count_ > 0 || closed_;
            break;
          }
        }
        if (!ready) break;       // delay budget exhausted
        if (count_ == 0) break;  // closed and drained mid-wait
        taken += take(out, max_batch - taken);
        not_full_.notify_all();
      }
    }
    return taken;
  }

  /// Non-blocking batched pop: takes whatever is immediately available (up
  /// to `max_batch`), appends to `out`, returns the count — 0 when the queue
  /// is momentarily empty (closed or not). The multi-tenant shard workers
  /// use this to top up their per-tenant pending lists between batches
  /// without ever sleeping while they still have work in hand.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max_batch) {
    if (max_batch == 0) max_batch = 1;
    std::size_t taken = 0;
    {
      const MutexLock lock(mutex_);
      taken = take(out, max_batch);
    }
    if (taken != 0) not_full_.notify_all();
    return taken;
  }

  /// Close the queue: subsequent pushes fail, pops drain the remainder.
  /// Idempotent.
  void close() {
    {
      const MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

 private:
  void place(T&& item) SMORE_REQUIRES(mutex_) {
    buffer_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
  }

  std::size_t take(std::vector<T>& out, std::size_t want)
      SMORE_REQUIRES(mutex_) {
    const std::size_t n = want < count_ ? want : count_;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(buffer_[head_]));
      head_ = (head_ + 1) % capacity_;
    }
    count_ -= n;
    return n;
  }

  mutable Mutex mutex_;
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> buffer_ SMORE_GUARDED_BY(mutex_);
  std::size_t capacity_;  // immutable after construction
  std::size_t head_ SMORE_GUARDED_BY(mutex_) = 0;
  std::size_t count_ SMORE_GUARDED_BY(mutex_) = 0;
  bool closed_ SMORE_GUARDED_BY(mutex_) = false;
};

}  // namespace smore
