#pragma once
// Clang Thread Safety Analysis macros (DESIGN.md §15).
//
// The serving stack's correctness rests on lock/ordering contracts that used
// to live only in comments ("guarded by ood_mutex_", "requires budget_m_
// held"). These macros turn those comments into attributes that
// `clang++ -Wthread-safety -Werror=thread-safety` checks on every build of
// the static-analysis CI job: a field read without its lock, a helper called
// without its required mutex, or a lock released twice is a compile error,
// not a 1-in-10⁶ TSan flake.
//
// Under any compiler without the capability attributes (gcc builds the tier-1
// matrix) every macro expands to nothing, so annotations cost zero and gate
// nothing locally. Annotate with the SMORE_* names only — bare
// __attribute__((guarded_by(...))) would silently break the gcc build.
//
// Vocabulary (mirrors the LLVM Thread Safety Analysis docs):
//   SMORE_CAPABILITY("mutex")      class is a lockable capability
//   SMORE_SCOPED_CAPABILITY        RAII class that acquires in its ctor
//   SMORE_GUARDED_BY(mu)           field requires mu held to touch
//   SMORE_PT_GUARDED_BY(mu)        pointee requires mu held to touch
//   SMORE_REQUIRES(mu)             function must be called with mu held
//   SMORE_ACQUIRE(mu) / SMORE_RELEASE(mu)   function locks / unlocks mu
//   SMORE_TRY_ACQUIRE(ok, mu)      function locks mu iff it returns `ok`
//   SMORE_EXCLUDES(mu)             function must NOT be called with mu held
//   SMORE_ASSERT_CAPABILITY(mu)    runtime assertion that mu is held
//   SMORE_RETURN_CAPABILITY(mu)    function returns a reference to mu
//   SMORE_NO_THREAD_SAFETY_ANALYSIS  opt-out (wrapper internals ONLY —
//                                    DESIGN.md §15 forbids it elsewhere, and
//                                    tools/check_invariants.py enforces that)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SMORE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SMORE_THREAD_ANNOTATION
#define SMORE_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define SMORE_CAPABILITY(x) SMORE_THREAD_ANNOTATION(capability(x))
#define SMORE_SCOPED_CAPABILITY SMORE_THREAD_ANNOTATION(scoped_lockable)
#define SMORE_GUARDED_BY(x) SMORE_THREAD_ANNOTATION(guarded_by(x))
#define SMORE_PT_GUARDED_BY(x) SMORE_THREAD_ANNOTATION(pt_guarded_by(x))
#define SMORE_ACQUIRED_BEFORE(...) \
  SMORE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SMORE_ACQUIRED_AFTER(...) \
  SMORE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SMORE_REQUIRES(...) \
  SMORE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SMORE_ACQUIRE(...) \
  SMORE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SMORE_RELEASE(...) \
  SMORE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SMORE_TRY_ACQUIRE(...) \
  SMORE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SMORE_EXCLUDES(...) SMORE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SMORE_ASSERT_CAPABILITY(x) \
  SMORE_THREAD_ANNOTATION(assert_capability(x))
#define SMORE_RETURN_CAPABILITY(x) SMORE_THREAD_ANNOTATION(lock_returned(x))
#define SMORE_NO_THREAD_SAFETY_ANALYSIS \
  SMORE_THREAD_ANNOTATION(no_thread_safety_analysis)
