#pragma once
// ShardedLruCache: byte-budgeted, single-flight, sharded LRU cache — the
// residency policy of the multi-tenant model registry (DESIGN.md §12).
//
// A fleet server hosts thousands of tenant artifacts but only a budgeted
// subset fits in memory. The cache answers three needs at once:
//
//   * sharded lookup — the hot path (a resident hit) takes ONE shard mutex
//     keyed by the hash of the key, so concurrent submitters for different
//     tenants do not serialize on a global cache lock;
//   * single-flight loading — the first request for a cold key runs the
//     loader; every concurrent request for the same key waits on the same
//     shared_future and gets the one loaded value (a thundering herd on a
//     just-deployed tenant loads its artifact once, not once per request).
//     A loader FAILURE is delivered to every waiter of that flight but is
//     never cached: the next request retries the load;
//   * byte-budget LRU eviction — each value carries a byte cost; when an
//     insert would exceed the budget, least-recently-used values are dropped
//     first. Values are handed out as shared_ptr, so eviction only drops the
//     cache's reference — a consumer mid-request keeps its value alive until
//     it finishes (the registry's "in-flight batches pin their snapshot"
//     guarantee rides on exactly this).
//
// Recency is a global atomic stamp (not per-shard lists): ready entries are
// stamped on every hit, and the evictor scans shard maps for the smallest
// stamp. Eviction is O(resident) per victim — residency is bounded by the
// budget (tens to hundreds of models), and evictions happen at artifact-load
// rate, not request rate, so the scan is noise next to one deserialization.
//
// Budget invariant: accounted bytes never exceed the budget while more than
// one value is resident. A single value larger than the whole budget is
// still admitted (alone) — refusing it would make one oversized tenant
// permanently unservable; it simply evicts everything else.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace smore {

/// Counters + gauges of one cache (all since construction).
struct ShardedLruStats {
  std::uint64_t hits = 0;        ///< resident lookups
  std::uint64_t misses = 0;      ///< lookups that started a load
  std::uint64_t loads = 0;       ///< loader successes
  std::uint64_t load_failures = 0;  ///< loader throws (never cached)
  std::uint64_t evictions = 0;   ///< values dropped by the budget
  std::uint64_t single_flight_waits = 0;  ///< lookups that joined a flight
  std::size_t resident = 0;         ///< values currently cached
  std::size_t resident_bytes = 0;   ///< accounted bytes currently cached
  std::size_t peak_resident_bytes = 0;  ///< high-water mark of the above
};

/// Bounded sharded LRU with single-flight loads. Keys are strings; values
/// are shared (eviction never invalidates a handed-out pointer).
template <typename Value>
class ShardedLruCache {
 public:
  struct Config {
    std::size_t shards = 8;  ///< lock shards (clamped to >= 1)
    /// Eviction threshold over the sum of per-value byte costs.
    std::size_t byte_budget = std::numeric_limits<std::size_t>::max();
    /// Observer invoked once per budget eviction with (key, freed bytes),
    /// AFTER the victim left the map. Runs under the budget lock with no
    /// shard mutex held; it must not call back into this cache. erase() does
    /// not fire it (an operator drop is not a budget eviction).
    std::function<void(const std::string&, std::size_t)> on_evict;
  };

  /// Loader: key -> (value, byte cost). Run outside all cache locks; may
  /// throw (the exception reaches every waiter of that flight).
  using Loader =
      std::function<std::pair<std::shared_ptr<Value>, std::size_t>(
          const std::string&)>;

  explicit ShardedLruCache(Config config = {}) : config_(config) {
    shards_.resize(std::max<std::size_t>(1, config_.shards));
    for (auto& s : shards_) s = std::make_unique<Shard>();
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Resident value or, when cold, the single-flight load of one. Blocks
  /// only on a load (its own or a joined flight). Rethrows the loader's
  /// exception; the failed key stays cold (the next call retries).
  std::shared_ptr<Value> get_or_load(const std::string& key,
                                     const Loader& loader) {
    Shard& shard = shard_of(key);
    std::shared_ptr<Slot> slot;
    std::shared_future<std::shared_ptr<Value>> flight;
    {
      const MutexLock lock(shard.m);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        slot = it->second;
        if (!slot->loading) {
          slot->stamp = next_stamp();
          hits_.fetch_add(1, std::memory_order_relaxed);
          return slot->value;
        }
        flight = slot->flight;  // join the in-progress load
      } else {
        misses_.fetch_add(1, std::memory_order_relaxed);
        slot = std::make_shared<Slot>();
        slot->flight = slot->promise.get_future().share();
        shard.map.emplace(key, slot);
      }
    }
    if (flight.valid()) {
      single_flight_waits_.fetch_add(1, std::memory_order_relaxed);
      return flight.get();  // value, or the loader's rethrown exception
    }
    return run_load(shard, key, std::move(slot), loader);
  }

  /// Resident value without loading (and without counting a hit/miss);
  /// nullptr when cold or still loading. Bumps recency on a hit — callers
  /// peek because they are about to use the value.
  [[nodiscard]] std::shared_ptr<Value> peek(const std::string& key) {
    Shard& shard = shard_of(key);
    const MutexLock lock(shard.m);
    auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second->loading) return nullptr;
    it->second->stamp = next_stamp();
    return it->second->value;
  }

  /// Drop a resident value (no-op on cold keys; a key mid-load is left
  /// alone — its flight completes and caches normally). Returns whether a
  /// value was dropped. Not counted as an eviction (see stats()).
  bool erase(const std::string& key) {
    Shard& shard = shard_of(key);
    std::size_t freed = 0;
    {
      const MutexLock lock(shard.m);
      auto it = shard.map.find(key);
      if (it == shard.map.end() || it->second->loading) return false;
      freed = it->second->bytes;
      shard.map.erase(it);
    }
    resident_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }

  [[nodiscard]] std::size_t size() const {
    return resident_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  [[nodiscard]] ShardedLruStats stats() const {
    ShardedLruStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.loads = loads_.load(std::memory_order_relaxed);
    s.load_failures = load_failures_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.single_flight_waits =
        single_flight_waits_.load(std::memory_order_relaxed);
    s.resident = resident_.load(std::memory_order_relaxed);
    s.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
    s.peak_resident_bytes =
        peak_resident_bytes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  // Slot state is guarded by the OWNING shard's mutex — an external guard a
  // GUARDED_BY attribute cannot name (slots do not point back at their
  // shard), so the contract is enforced by construction instead: every
  // slot access in this class sits inside a MutexLock(shard.m) block, and
  // DESIGN.md §15 records the exception. `promise`/`flight` are touched
  // lock-free only by the one flight owner (run_load) and by waiters through
  // the shared_future's own synchronization.
  struct Slot {
    std::shared_ptr<Value> value;  // set when loading flips to false
    std::size_t bytes = 0;
    std::uint64_t stamp = 0;  // guarded by the owning shard's mutex
    bool loading = true;
    std::promise<std::shared_ptr<Value>> promise;
    std::shared_future<std::shared_ptr<Value>> flight;
  };
  struct Shard {
    Mutex m;
    std::unordered_map<std::string, std::shared_ptr<Slot>> map
        SMORE_GUARDED_BY(m);
  };

  Shard& shard_of(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::uint64_t next_stamp() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// This thread owns the flight in `slot`. Lock order everywhere:
  /// budget_m_ before shard mutexes, never the reverse.
  std::shared_ptr<Value> run_load(Shard& shard, const std::string& key,
                                  std::shared_ptr<Slot> slot,
                                  const Loader& loader) {
    std::shared_ptr<Value> value;
    std::size_t bytes = 0;
    try {
      auto loaded = loader(key);
      value = std::move(loaded.first);
      bytes = loaded.second;
      if (value == nullptr) {
        throw std::runtime_error("ShardedLruCache: loader returned null");
      }
    } catch (...) {
      // Failure is delivered to every waiter but never cached: drop the
      // slot so the next request retries the load.
      {
        const MutexLock lock(shard.m);
        auto it = shard.map.find(key);
        if (it != shard.map.end() && it->second == slot) shard.map.erase(it);
      }
      load_failures_.fetch_add(1, std::memory_order_relaxed);
      slot->promise.set_exception(std::current_exception());
      throw;
    }

    {
      // Budget admission is serialized: evict-until-fit plus the byte
      // account must be one step, or two concurrent loads could both pass
      // the check and overshoot the budget together.
      const MutexLock budget_lock(budget_m_);
      while (resident_bytes_.load(std::memory_order_relaxed) + bytes >
                 config_.byte_budget &&
             evict_lru_victim()) {
      }
      resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      resident_.fetch_add(1, std::memory_order_relaxed);
      std::size_t now = resident_bytes_.load(std::memory_order_relaxed);
      std::size_t peak = peak_resident_bytes_.load(std::memory_order_relaxed);
      while (now > peak && !peak_resident_bytes_.compare_exchange_weak(
                               peak, now, std::memory_order_relaxed)) {
      }
    }
    {
      const MutexLock lock(shard.m);
      slot->value = value;
      slot->bytes = bytes;
      slot->stamp = next_stamp();
      slot->loading = false;
    }
    loads_.fetch_add(1, std::memory_order_relaxed);
    slot->promise.set_value(value);
    return value;
  }

  /// Drop the ready value with the globally smallest recency stamp.
  /// Returns false when nothing is evictable (only loading slots, or
  /// empty) — the caller then admits over budget.
  bool evict_lru_victim() SMORE_REQUIRES(budget_m_) {
    Shard* victim_shard = nullptr;
    std::string victim_key;
    std::uint64_t victim_stamp = std::numeric_limits<std::uint64_t>::max();
    for (auto& shard : shards_) {
      const MutexLock lock(shard->m);
      for (const auto& [key, slot] : shard->map) {
        if (slot->loading) continue;
        if (slot->stamp < victim_stamp) {
          victim_stamp = slot->stamp;
          victim_key = key;
          victim_shard = shard.get();
        }
      }
    }
    if (victim_shard == nullptr) return false;
    std::size_t freed = 0;
    {
      const MutexLock lock(victim_shard->m);
      auto it = victim_shard->map.find(victim_key);
      // The victim may have been re-stamped or erased since the scan; that
      // only makes this eviction conservative (evict it anyway — it was the
      // LRU moments ago and the loop re-checks the budget).
      if (it == victim_shard->map.end() || it->second->loading) return true;
      freed = it->second->bytes;
      victim_shard->map.erase(it);
    }
    resident_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    resident_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (config_.on_evict) config_.on_evict(victim_key, freed);
    return true;
  }

  Config config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Serializes eviction + byte accounting. Lock order everywhere: budget_m_
  // before shard mutexes, never the reverse (see run_load).
  Mutex budget_m_;
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> loads_{0};
  std::atomic<std::uint64_t> load_failures_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> single_flight_waits_{0};
  std::atomic<std::size_t> resident_{0};
  std::atomic<std::size_t> resident_bytes_{0};
  std::atomic<std::size_t> peak_resident_bytes_{0};
};

}  // namespace smore
