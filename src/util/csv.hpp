#pragma once
// Small CSV writer used by the benchmark harnesses to dump every table/figure
// series into results/*.csv so plots can be regenerated outside the binary.

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace smore {

/// Append-only CSV file writer. Creates parent directories on demand and
/// RFC4180-quotes any field containing commas, quotes, or newlines.
class CsvWriter {
 public:
  /// Open (truncate) `path` and emit `header` as the first row.
  /// Throws std::runtime_error when the file cannot be created.
  CsvWriter(const std::filesystem::path& path,
            const std::vector<std::string>& header);

  /// Emit one row; the field count must match the header.
  /// Throws std::invalid_argument on arity mismatch.
  void row(const std::vector<std::string>& fields);

  /// Convenience: format arithmetic values with max round-trip precision.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    fields.reserve(sizeof...(values));
    (fields.push_back(format(values)), ...);
    row(fields);
  }

  /// Number of data rows written so far (excluding the header).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// The file being written.
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  template <typename T>
  static std::string format(const T& v) {
    if constexpr (std::is_same_v<T, std::string> ||
                  std::is_same_v<T, const char*> ||
                  std::is_convertible_v<T, std::string_view>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os.precision(10);
      os << v;
      return os.str();
    }
  }

  static std::string escape(const std::string& field);

  std::filesystem::path path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
  std::size_t rows_ = 0;
};

}  // namespace smore
