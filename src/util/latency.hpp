#pragma once
// LatencyHistogram: fixed-bucket log-scale latency histogram with percentile
// extraction — the serving runtime's tail-latency instrument (DESIGN.md §9).
//
// eval/timer.hpp answers "how long did this take in total"; a server needs
// "how long does the p99 request take under load", which min/mean cannot
// express. Buckets are geometric (kSubBuckets per power of two, so every
// bucket spans ~9% of its value) over [1 µs, ~1100 s): record() is two
// shifts and an increment, the memory footprint is fixed, and percentiles
// are read by a single cumulative walk. Values outside the range clamp to
// the edge buckets.
//
// A histogram instance is NOT thread-safe; the intended pattern is one
// histogram per recording thread merged on the stats path (merge adds
// bucket-wise, and exact min/max/sum survive merging).

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace smore {

/// Fixed-footprint log-bucket histogram over seconds.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 8;   ///< buckets per octave (~9% width)
  static constexpr int kOctaves = 30;     ///< 1 µs · 2^30 ≈ 1074 s ceiling
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kSubBuckets) * kOctaves;

  /// Record one latency observation (negative values clamp to the floor).
  void record(double seconds) noexcept {
    ++counts_[bucket_of(seconds)];
    ++count_;
    sum_ += seconds > 0.0 ? seconds : 0.0;
    if (count_ == 1 || seconds < min_) min_ = seconds;
    if (count_ == 1 || seconds > max_) max_ = seconds;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double min_seconds() const noexcept {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] double max_seconds() const noexcept {
    return count_ ? max_ : 0.0;
  }
  [[nodiscard]] double mean_seconds() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  /// Latency at quantile `q` in [0, 1]: the geometric midpoint of the bucket
  /// holding the ceil(q·count)-th observation (resolution ~9%; exact min/max
  /// are reported for the endpoints). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    if (q <= 0.0) return min_seconds();
    if (q >= 1.0) return max_seconds();
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) return bucket_mid(b);
    }
    return max_seconds();
  }

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  /// Bucket-wise accumulation (per-thread histograms → one stats view).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
  }

  void reset() noexcept { *this = LatencyHistogram(); }

  /// Close the current observation window: return everything recorded so far
  /// and start an empty one. Long-run benches compare early-window vs
  /// late-window percentiles with this — a lifetime aggregate cannot show
  /// tail drift because early observations dilute it. The returned histogram
  /// is independent state; merge() successive snapshots to rebuild totals.
  [[nodiscard]] LatencyHistogram snapshot_and_reset() noexcept {
    LatencyHistogram out = *this;
    reset();
    return out;
  }

  /// Bucket index of a latency (exposed for tests).
  [[nodiscard]] static std::size_t bucket_of(double seconds) noexcept {
    const double us = seconds * 1e6;
    if (!(us > 1.0)) return 0;  // also catches NaN
    // log2(us) * kSubBuckets, clamped to the table.
    const double idx = std::log2(us) * kSubBuckets;
    if (idx >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
    return static_cast<std::size_t>(idx);
  }

  /// Geometric midpoint of bucket `b` in seconds (exposed for tests).
  [[nodiscard]] static double bucket_mid(std::size_t b) noexcept {
    const double lo = std::exp2(static_cast<double>(b) / kSubBuckets);
    const double hi = std::exp2(static_cast<double>(b + 1) / kSubBuckets);
    return std::sqrt(lo * hi) * 1e-6;
  }

  /// Upper edge of bucket `b` in seconds — the Prometheus `le` boundary for
  /// the cumulative-bucket exposition (obs/export.cpp).
  [[nodiscard]] static double bucket_upper(std::size_t b) noexcept {
    return std::exp2(static_cast<double>(b + 1) / kSubBuckets) * 1e-6;
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t b) const noexcept {
    return b < kBuckets ? counts_[b] : 0;
  }
  [[nodiscard]] double sum_seconds() const noexcept { return sum_; }

  /// Reassemble a histogram from raw state. The concurrent histogram in
  /// obs/metrics.hpp accumulates into striped atomic buckets and snapshots
  /// into this plain type at pull time; everything downstream (quantile,
  /// merge, LatencySummary) then works unchanged.
  [[nodiscard]] static LatencyHistogram from_parts(
      const std::array<std::uint64_t, kBuckets>& counts, double sum,
      double min, double max) noexcept {
    LatencyHistogram h;
    h.counts_ = counts;
    for (std::size_t b = 0; b < kBuckets; ++b) h.count_ += counts[b];
    h.sum_ = sum;
    h.min_ = h.count_ ? min : 0.0;
    h.max_ = h.count_ ? max : 0.0;
    return h;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Plain-data percentile snapshot (what stats endpoints embed).
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;

  static LatencySummary from(const LatencyHistogram& h) noexcept {
    return {h.count(),         h.mean_seconds(), h.p50(),
            h.p95(),           h.p99(),          h.max_seconds()};
  }
};

}  // namespace smore
