#pragma once
// Host CPU capability detection for the runtime kernel dispatch layer
// (DESIGN.md §11).
//
// One binary ships every compiled-in SIMD variant of the hot kernels; at
// startup the dispatch layer (hdc/dispatch.hpp) reads this feature mask and
// wires each kernel slot to the fastest variant the host can execute. The
// mask answers "may this instruction set be USED", not just "does the CPU
// advertise it": on x86 that includes the XGETBV check that the OS actually
// saves/restores the wide register state (a kernel that disables AVX-512
// state must make us fall back to AVX2 even on AVX-512 silicon).
//
// This TU is compiled WITHOUT ISA-specific flags (see CMakeLists.txt): it
// must run on the oldest host the binary can reach, because it executes
// before any dispatch decision exists.

#include <string>

namespace smore {

/// Usable-SIMD mask of the host CPU (instruction support AND OS-enabled
/// register state). Fields are ordered roughly by ISA generation.
struct CpuFeatures {
  // x86 tiers. sse2 is architectural baseline on x86-64 but detected anyway
  // so the mask is honest on 32-bit builds.
  bool sse2 = false;
  bool sse42 = false;
  bool popcnt = false;  ///< hardware POPCNT (SSE4.2 era; the Hamming path)
  bool avx = false;
  bool fma = false;
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vpopcntdq = false;  ///< vectorized popcount (Ice Lake+)
  // ARM.
  bool neon = false;  ///< Advanced SIMD (baseline on AArch64)
};

/// Detect the host's usable features (uncached; tools/tests may call this
/// directly, everything else should go through kern::dispatch()).
CpuFeatures detect_cpu_features();

/// Space-separated list of the set features, e.g. "sse2 sse4.2 popcnt avx
/// fma avx2" — for fleet triage logs and tools/cpu_features.
std::string to_string(const CpuFeatures& f);

}  // namespace smore
