#pragma once
// Tiny POD stream (de)serialization helpers shared by the binary model and
// artifact formats. Reads validate the stream and throw std::runtime_error
// with the caller's context on truncation — every loader's "corrupt input"
// contract funnels through here.

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace smore::serial {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
[[nodiscard]] T read_pod(std::istream& in, const char* context) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string(context) + ": truncated stream");
  }
  return value;
}

}  // namespace smore::serial
