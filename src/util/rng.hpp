#pragma once
// Deterministic, seedable random number generation for every stochastic
// component in the library.
//
// Design notes:
//  * xoshiro256** as the core generator: fast, high quality, and trivially
//    reproducible across platforms (unlike std::mt19937 distributions, whose
//    std::normal_distribution output is implementation-defined).
//  * All distribution sampling is implemented here so results are bit-stable
//    across standard libraries.
//  * `Rng::fork(tag)` derives an independent stream from a parent seed, which
//    lets parallel per-sample work stay deterministic regardless of scheduling.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numbers>
#include <utility>
#include <vector>

namespace smore {

/// splitmix64: used to seed and to derive independent sub-streams.
/// Reference: Sebastiano Vigna, public domain.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seedable pseudo-random generator (xoshiro256**) with portable
/// distribution sampling. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed. Two Rng constructed from the same seed
  /// produce identical streams on every platform.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  /// Re-initialize the state from `seed`.
  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent generator; `tag` distinguishes sibling streams.
  /// fork(i) != fork(j) for i != j, and forks never collide with the parent.
  [[nodiscard]] Rng fork(std::uint64_t tag) const noexcept {
    // Mix the current state with the tag through splitmix64 twice.
    std::uint64_t s = state_[0] ^ (state_[3] + 0x9e3779b97f4a7c15ULL * (tag + 1));
    std::uint64_t a = splitmix64(s);
    std::uint64_t b = splitmix64(s);
    Rng child(a ^ (b << 1) ^ tag);
    return child;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi) noexcept {
    return static_cast<float>(uniform(lo, hi));
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t index(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    index(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box-Muller (portable, unlike std::normal_distribution).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    // Avoid log(0).
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    spare_ = r * std::sin(theta);
    has_spare_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Random bipolar value: +1 or -1 with equal probability.
  float bipolar() noexcept { return ((*this)() & 1u) ? 1.0f : -1.0f; }

  /// Bernoulli trial with success probability `p`.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept {
    std::vector<std::size_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = i;
    shuffle(p);
    return p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace smore
