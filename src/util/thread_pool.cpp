#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <future>

namespace smore {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_blocks(
      n, [&body](std::size_t /*block*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

std::size_t ThreadPool::block_count(std::size_t n) const noexcept {
  const std::size_t threads = std::max<std::size_t>(1, workers_.size());
  return std::min<std::size_t>(std::max<std::size_t>(1, threads), n);
}

void ThreadPool::parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = std::max<std::size_t>(1, workers_.size());
  if (threads == 1 || n == 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t blocks = std::min(threads, n);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> pending;
  pending.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = b * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    auto task = std::make_shared<std::packaged_task<void()>>([b, lo, hi, &body] {
      body(b, lo, hi);
    });
    pending.push_back(task->get_future());
    {
      const std::scoped_lock lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
  }
  // Drain every future before surfacing a failure: tasks reference `body`,
  // which lives in the caller's frame, so returning (or throwing) while any
  // task is still queued or running would leave it with a dangling reference.
  std::exception_ptr first_error;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

void parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for_blocks(n, body);
}

std::size_t parallel_block_count(std::size_t n) {
  return ThreadPool::global().block_count(n);
}

}  // namespace smore
