#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace smore {

/// One parallel_for_blocks region. Lives on the caller's stack; workers only
/// ever see it through queue entries counted in `refs`, and the caller
/// returns only once every reference is dropped and every block has run.
struct ThreadPool::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body;
  std::size_t n = 0;
  std::size_t blocks = 0;
  std::size_t chunk = 0;
  std::atomic<std::size_t> next{0};     // next unclaimed block index
  std::atomic<std::size_t> pending{0};  // blocks not yet completed
  std::atomic<std::size_t> refs{0};     // queue entries not yet consumed
  Mutex m;
  CondVar done;
  std::exception_ptr error SMORE_GUARDED_BY(m);  // first body exception
};

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      const MutexLock lock(mutex_);
      while (!stopping_ && jobs_.empty()) cv_.wait(mutex_);
      if (jobs_.empty()) {
        if (stopping_) return;
        continue;
      }
      job = jobs_.front();
      jobs_.pop_front();
    }
    run_blocks(*job);
    finish_ref(*job);
  }
}

void ThreadPool::run_blocks(Job& job) {
  for (;;) {
    const std::size_t b = job.next.fetch_add(1, std::memory_order_relaxed);
    if (b >= job.blocks) return;
    const std::size_t lo = b * job.chunk;
    const std::size_t hi = std::min(job.n, lo + job.chunk);
    try {
      (*job.body)(b, lo, hi);
    } catch (...) {
      const MutexLock lock(job.m);
      if (!job.error) job.error = std::current_exception();
    }
    // Completed blocks are counted even after a failure: every block still
    // runs (they are independent), and the caller rethrows the first error
    // only once nothing references its frame anymore.
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const MutexLock lock(job.m);
      job.done.notify_all();
    }
  }
}

void ThreadPool::finish_ref(Job& job) {
  // The drop of the LAST reference must happen under job.m: refs==0 is the
  // terminal condition the owner destroys the job on, so decrementing it
  // outside the lock would let the owner wake (e.g. on the pending->0
  // notification), observe both counters at zero, and destroy the mutex
  // this thread is about to lock. Inside the lock, the owner cannot
  // re-check the predicate until this thread has released job.m.
  const MutexLock lock(job.m);
  if (job.refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    job.done.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_for_blocks(
      n, [&body](std::size_t /*block*/, std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
}

std::size_t ThreadPool::block_count(std::size_t n) const noexcept {
  const std::size_t threads = std::max<std::size_t>(1, workers_.size());
  return std::min<std::size_t>(std::max<std::size_t>(1, threads), n);
}

void ThreadPool::parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t threads = std::max<std::size_t>(1, workers_.size());
  if (threads == 1 || n == 1) {
    body(0, 0, n);
    return;
  }
  const std::size_t target = std::min(threads, n);
  const std::size_t chunk = (n + target - 1) / target;
  const std::size_t blocks = (n + chunk - 1) / chunk;

  Job job;
  job.body = &body;
  job.n = n;
  job.blocks = blocks;
  job.chunk = chunk;
  job.pending.store(blocks, std::memory_order_relaxed);
  // One queue entry per potential helper; the caller claims blocks too, so
  // helpers beyond blocks-1 could only ever pop a drained job.
  const std::size_t helpers = std::min(threads, blocks);
  job.refs.store(helpers, std::memory_order_relaxed);
  {
    const MutexLock lock(mutex_);
    for (std::size_t i = 0; i < helpers; ++i) jobs_.push_back(&job);
  }
  // helpers >= 2 on this path (threads >= 2 and n >= 2 imply blocks >= 2),
  // so a broadcast is always the right wakeup.
  cv_.notify_all();

  // The caller participates instead of sleeping: on a saturated or
  // single-core host most blocks run right here, skipping a full round of
  // context switches per parallel region.
  run_blocks(job);

  std::exception_ptr error;
  {
    const MutexLock lock(job.m);
    while (job.pending.load(std::memory_order_acquire) != 0 ||
           job.refs.load(std::memory_order_acquire) != 0) {
      job.done.wait(job.m);
    }
    // Read under job.m: the last writer stored it under the same lock, and
    // after this point the job's frame is exclusively the caller's again.
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(n, body);
}

void parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  ThreadPool::global().parallel_for_blocks(n, body);
}

std::size_t parallel_block_count(std::size_t n) {
  return ThreadPool::global().block_count(n);
}

}  // namespace smore
