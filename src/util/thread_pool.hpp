#pragma once
// Minimal fixed-size thread pool with a deterministic parallel_for.
//
// HDC encoding and similarity search are embarrassingly parallel per sample.
// The pool hands out contiguous index blocks so results land in pre-sized
// output slots: the outcome is bit-identical regardless of thread count,
// which keeps every experiment reproducible (see DESIGN.md §6).

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace smore {

/// Fixed-size worker pool. Create once, submit many tasks.
class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run `body(i)` for every i in [0, n), partitioned into contiguous blocks
  /// across the workers; blocks until all iterations have completed.
  /// `body` must be safe to call concurrently for distinct indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Block-granular variant: run `body(block, lo, hi)` once per contiguous
  /// index block [lo, hi) covering [0, n), with `block` < block_count(n).
  /// This is the scratch-pooling primitive: a caller that pre-sizes one
  /// scratch buffer per block index gets allocation-free workers without
  /// thread_local state (see the batched encoders). Blocks are a pure
  /// function of (n, pool size), never of scheduling, so any result written
  /// to disjoint per-index slots stays bit-identical for any thread count.
  void parallel_for_blocks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Upper bound on the block index parallel_for_blocks(n, ...) will use
  /// (callers size scratch pools with this).
  [[nodiscard]] std::size_t block_count(std::size_t n) const noexcept;

  /// Process-wide pool sized to the hardware; lazily constructed.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for. Falls back to a
/// serial loop when the pool has a single worker (avoids sync overhead on
/// single-core hosts).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Convenience wrapper over ThreadPool::global().parallel_for_blocks.
void parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Convenience wrapper over ThreadPool::global().block_count.
[[nodiscard]] std::size_t parallel_block_count(std::size_t n);

}  // namespace smore
