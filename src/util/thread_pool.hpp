#pragma once
// Minimal fixed-size thread pool with a deterministic parallel_for.
//
// HDC encoding and similarity search are embarrassingly parallel per sample.
// The pool hands out contiguous index blocks so results land in pre-sized
// output slots: the outcome is bit-identical regardless of thread count,
// which keeps every experiment reproducible (see DESIGN.md §6).
//
// Dispatch is job-based, not task-based: parallel_for_blocks publishes ONE
// stack-allocated job descriptor and every participant (workers and the
// calling thread itself) claims block indices from it with a fetch_add.
// Under sustained submission — the serving hot path issues one parallel
// region per micro-batch — this allocates nothing per task: the former
// implementation heap-allocated a shared std::packaged_task, its future's
// shared state, and a type-erased std::function per *block* per call
// (measured with an operator-new hook on a 4-worker pool: ~17 allocations
// per parallel region vs ~0.06 amortized for this dispatch), exactly the
// churn the serve scheduler would otherwise pay per micro-batch. The queue
// now holds raw job pointers whose lifetime is the caller's frame, guarded
// by a reference count the caller waits on.

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace smore {

/// Fixed-size worker pool. Create once, submit many tasks.
class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run `body(i)` for every i in [0, n), partitioned into contiguous blocks
  /// across the workers; blocks until all iterations have completed.
  /// `body` must be safe to call concurrently for distinct indices.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Block-granular variant: run `body(block, lo, hi)` once per contiguous
  /// index block [lo, hi) covering [0, n), with `block` < block_count(n).
  /// This is the scratch-pooling primitive: a caller that pre-sizes one
  /// scratch buffer per block index gets allocation-free workers without
  /// thread_local state (see the batched encoders). Blocks are a pure
  /// function of (n, pool size), never of scheduling, so any result written
  /// to disjoint per-index slots stays bit-identical for any thread count.
  /// The calling thread participates in executing blocks.
  void parallel_for_blocks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Upper bound on the block index parallel_for_blocks(n, ...) will use
  /// (callers size scratch pools with this).
  [[nodiscard]] std::size_t block_count(std::size_t n) const noexcept;

  /// Process-wide pool sized to the hardware; lazily constructed.
  static ThreadPool& global();

 private:
  struct Job;  // one parallel region: block claiming + completion state

  void worker_loop();
  /// Claim and run blocks of `job` until none remain.
  static void run_blocks(Job& job);
  /// Drop one queue reference to `job`, waking the owner when it was last.
  static void finish_ref(Job& job);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  // Pending job references: up to min(workers, blocks) entries per job, all
  // pointing at the caller-owned descriptor. Pointers, not closures — a pop
  // is O(1) with no allocation or type erasure.
  std::deque<Job*> jobs_ SMORE_GUARDED_BY(mutex_);
  bool stopping_ SMORE_GUARDED_BY(mutex_) = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for. Falls back to a
/// serial loop when the pool has a single worker (avoids sync overhead on
/// single-core hosts).
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Convenience wrapper over ThreadPool::global().parallel_for_blocks.
void parallel_for_blocks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

/// Convenience wrapper over ThreadPool::global().block_count.
[[nodiscard]] std::size_t parallel_block_count(std::size_t n);

}  // namespace smore
