#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace smore {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

CliParser& CliParser::flag_double(const std::string& name, double default_value,
                                  const std::string& help) {
  std::ostringstream os;
  os.precision(10);
  os << default_value;
  options_[name] = Option{Kind::kDouble, os.str(), os.str(), help};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::flag_int(const std::string& name,
                               std::int64_t default_value,
                               const std::string& help) {
  const std::string v = std::to_string(default_value);
  options_[name] = Option{Kind::kInt, v, v, help};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::flag_string(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& help) {
  options_[name] = Option{Kind::kString, default_value, default_value, help};
  order_.push_back(name);
  return *this;
}

CliParser& CliParser::flag_bool(const std::string& name, bool default_value,
                                const std::string& help) {
  const std::string v = default_value ? "true" : "false";
  options_[name] = Option{Kind::kBool, v, v, help};
  order_.push_back(name);
  return *this;
}

bool CliParser::assign(const std::string& name, const std::string& value) {
  auto it = options_.find(name);
  if (it == options_.end()) return false;
  Option& opt = it->second;
  try {
    switch (opt.kind) {
      case Kind::kDouble:
        (void)std::stod(value);
        break;
      case Kind::kInt:
        (void)std::stoll(value);
        break;
      case Kind::kBool:
        if (value != "true" && value != "false" && value != "1" &&
            value != "0") {
          return false;
        }
        break;
      case Kind::kString:
        break;
    }
  } catch (const std::exception&) {
    return false;
  }
  opt.value = value;
  return true;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), help_text().c_str());
      return false;
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = options_.find(name);
      const bool is_bool = it != options_.end() && it->second.kind == Kind::kBool;
      if (is_bool) {
        value = "true";  // bare --flag turns a boolean on
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    if (!assign(name, value)) {
      std::fprintf(stderr, "unknown or ill-formed flag: --%s=%s\n%s",
                   name.c_str(), value.c_str(), help_text().c_str());
      return false;
    }
  }
  return true;
}

double CliParser::get_double(const std::string& name) const {
  return std::stod(options_.at(name).value);
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return std::stoll(options_.at(name).value);
}

const std::string& CliParser::get_string(const std::string& name) const {
  return options_.at(name).value;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string& v = options_.at(name).value;
  return v == "true" || v == "1";
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << summary_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name << " (default: " << opt.default_value << ")\n      "
       << opt.help << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace smore
