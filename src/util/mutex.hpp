#pragma once
// Annotated mutex/condvar wrappers: the lock vocabulary every subsystem in
// src/ uses (DESIGN.md §15).
//
// Clang's Thread Safety Analysis cannot see through std::mutex /
// std::scoped_lock / std::condition_variable — they carry no capability
// attributes, so code built on them is invisible to the analysis. These thin
// wrappers add the attributes and nothing else: Mutex IS a std::mutex,
// MutexLock IS a scoped lock (with early unlock/relock for the
// unlock-before-notify and wait-loop idioms), CondVar IS a
// std::condition_variable that waits on a Mutex it can prove is held.
//
// Contract (enforced by tools/check_invariants.py): src/ code outside this
// file does not name std::mutex / std::condition_variable / std::scoped_lock
// / std::unique_lock directly — every new lock goes through these wrappers so
// the analysis sees it. std::atomic, std::call_once, and std::promise are
// not locks and stay as they are.
//
// Zero-cost claim: off clang the annotations expand to nothing and every
// method is a one-line inline forward; the generated code is the std::mutex
// code. On clang the attributes are compile-time only.

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.hpp"

namespace smore {

class CondVar;

/// std::mutex with capability annotations. Non-recursive, non-movable.
class SMORE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SMORE_ACQUIRE() { m_.lock(); }
  void unlock() SMORE_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() SMORE_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  friend class CondVar;  // waits on the wrapped mutex via adopt/release
  std::mutex m_;
};

/// RAII scoped lock over Mutex. Relockable: unlock() releases early (the
/// unlock-before-notify idiom), lock() re-acquires; the destructor releases
/// only when held. The analysis tracks the held/released state across all
/// three, so touching a guarded field in the unlocked window is a compile
/// error on clang.
class SMORE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SMORE_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() SMORE_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release (before a notify, or around a blocking call).
  void unlock() SMORE_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  /// Re-acquire after an early unlock().
  void lock() SMORE_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// std::condition_variable bound to Mutex. All waits REQUIRE the mutex held
/// (callers hold it via MutexLock); predicates are written as explicit while
/// loops at the call site so guarded reads stay inside the function the
/// analysis already knows holds the lock — no annotated-lambda contortions.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(Mutex& mu) SMORE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the wait, then release the
    // unique_lock so ownership stays with the caller's MutexLock. The
    // capability state never changes across this call — exactly what the
    // REQUIRES annotation tells the analysis.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      SMORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, dur);
    native.release();
    return status;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SMORE_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace smore
