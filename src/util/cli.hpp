#pragma once
// Tiny command-line flag parser shared by benches and examples.
//
// Supported syntax: --name=value, --name value, and boolean --name.
// Unknown flags raise an error listing the registered options, so every
// harness is self-documenting via --help.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace smore {

/// Declarative command-line parser: register flags with defaults, then parse.
class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Register flags. `help` is shown by --help. Returns *this for chaining.
  CliParser& flag_double(const std::string& name, double default_value,
                         const std::string& help);
  CliParser& flag_int(const std::string& name, std::int64_t default_value,
                      const std::string& help);
  CliParser& flag_string(const std::string& name,
                         const std::string& default_value,
                         const std::string& help);
  CliParser& flag_bool(const std::string& name, bool default_value,
                       const std::string& help);

  /// Parse argv. Returns false if --help was requested (help text printed) or
  /// an unknown/ill-formed flag was seen (diagnostic printed to stderr).
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Typed accessors; throw std::out_of_range for unregistered names.
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Render the --help text.
  [[nodiscard]] std::string help_text() const;

 private:
  enum class Kind { kDouble, kInt, kString, kBool };
  struct Option {
    Kind kind;
    std::string value;  // canonical string form of the current value
    std::string default_value;
    std::string help;
  };

  bool assign(const std::string& name, const std::string& value);

  std::string summary_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // registration order for --help
};

}  // namespace smore
