// Host CPU capability detection (see cpu_features.hpp). x86 uses CPUID plus
// the XGETBV extended-state check; AArch64 reports NEON unconditionally (it
// is architectural baseline there). Unknown architectures report an empty
// mask, which resolves every kernel to the portable scalar reference.

#include "util/cpu_features.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#include <cstdint>

namespace smore {

namespace {

#if defined(__x86_64__) || defined(__i386__)

/// XGETBV(0): which register states the OS saves/restores. Issued only after
/// CPUID reports OSXSAVE, so the instruction itself is always available.
std::uint64_t xgetbv0() {
  std::uint32_t eax = 0;
  std::uint32_t edx = 0;
  __asm__ volatile(".byte 0x0f, 0x01, 0xd0"  // xgetbv (encoded for old gas)
                   : "=a"(eax), "=d"(edx)
                   : "c"(0));
  return (static_cast<std::uint64_t>(edx) << 32) | eax;
}

CpuFeatures detect_x86() {
  CpuFeatures f;
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return f;

  f.sse2 = (edx & (1u << 26)) != 0;
  f.sse42 = (ecx & (1u << 20)) != 0;
  f.popcnt = (ecx & (1u << 23)) != 0;
  f.fma = (ecx & (1u << 12)) != 0;

  // AVX needs CPU support AND the OS saving xmm+ymm state (XCR0 bits 1|2);
  // AVX-512 additionally needs opmask + zmm hi256 + hi16-zmm (bits 5|6|7).
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool cpu_avx = (ecx & (1u << 28)) != 0;
  bool ymm_enabled = false;
  bool zmm_enabled = false;
  if (osxsave) {
    const std::uint64_t xcr0 = xgetbv0();
    ymm_enabled = (xcr0 & 0x6) == 0x6;
    zmm_enabled = ymm_enabled && (xcr0 & 0xe0) == 0xe0;
  }
  f.avx = cpu_avx && ymm_enabled;
  if (!f.avx) f.fma = false;  // FMA uses ymm state

  unsigned int eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7) != 0) {
    f.avx2 = f.avx && (ebx7 & (1u << 5)) != 0;
    f.avx512f = zmm_enabled && (ebx7 & (1u << 16)) != 0;
    f.avx512bw = f.avx512f && (ebx7 & (1u << 30)) != 0;
    f.avx512vl = f.avx512f && (ebx7 & (1u << 31)) != 0;
    f.avx512vpopcntdq = f.avx512f && (ecx7 & (1u << 14)) != 0;
  }
  return f;
}

#endif  // x86

}  // namespace

CpuFeatures detect_cpu_features() {
#if defined(__x86_64__) || defined(__i386__)
  return detect_x86();
#elif defined(__aarch64__)
  CpuFeatures f;
  f.neon = true;  // Advanced SIMD is AArch64 architectural baseline
  return f;
#elif defined(__ARM_NEON)
  CpuFeatures f;
  f.neon = true;  // 32-bit ARM built with NEON enabled
  return f;
#else
  return CpuFeatures{};
#endif
}

std::string to_string(const CpuFeatures& f) {
  std::string s;
  const auto add = [&s](bool on, const char* name) {
    if (!on) return;
    if (!s.empty()) s += ' ';
    s += name;
  };
  add(f.sse2, "sse2");
  add(f.sse42, "sse4.2");
  add(f.popcnt, "popcnt");
  add(f.avx, "avx");
  add(f.fma, "fma");
  add(f.avx2, "avx2");
  add(f.avx512f, "avx512f");
  add(f.avx512bw, "avx512bw");
  add(f.avx512vl, "avx512vl");
  add(f.avx512vpopcntdq, "avx512vpopcntdq");
  add(f.neon, "neon");
  if (s.empty()) s = "(none)";
  return s;
}

}  // namespace smore
