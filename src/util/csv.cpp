#include "util/csv.hpp"

#include <stdexcept>

namespace smore {

CsvWriter::CsvWriter(const std::filesystem::path& path,
                     const std::vector<std::string>& header)
    : path_(path) {
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  out_.open(path, std::ios::trunc);
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
  columns_ = header.size();
  rows_ = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (fields.size() != columns_) {
    throw std::invalid_argument("CsvWriter: expected " +
                                std::to_string(columns_) + " fields, got " +
                                std::to_string(fields.size()));
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  out_.flush();
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quoting =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return field;
  std::string quoted = "\"";
  for (const char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

}  // namespace smore
