#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace smore::nn {

Sgd::Sgd(std::vector<Param*> params, float learning_rate, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(learning_rate),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (learning_rate <= 0.0f) {
    throw std::invalid_argument("Sgd: learning_rate must be positive");
  }
  velocity_.reserve(params_.size());
  for (const Param* p : params_) velocity_.emplace_back(p->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j] + weight_decay_ * p.value[j];
      vel[j] = momentum_ * vel[j] + g;
      p.value[j] -= lr_ * vel[j];
    }
    p.zero_grad();
  }
}

Adam::Adam(std::vector<Param*> params, float learning_rate, float beta1,
           float beta2, float epsilon)
    : Optimizer(std::move(params)),
      lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      eps_(epsilon) {
  if (learning_rate <= 0.0f) {
    throw std::invalid_argument("Adam: learning_rate must be positive");
  }
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_count_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const double m_hat = m[j] / bc1;
      const double v_hat = v[j] / bc2;
      p.value[j] -= static_cast<float>(lr_ * m_hat / (std::sqrt(v_hat) + eps_));
    }
    p.zero_grad();
  }
}

}  // namespace smore::nn
