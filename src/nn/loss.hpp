#pragma once
// Losses for the CNN baselines, computed from raw logits:
//   * softmax cross-entropy — source training of TENT's backbone, MDANs'
//     label head, and the domain discriminators;
//   * prediction entropy H(softmax(z)) — the quantity TENT minimizes at test
//     time (Wang et al., ICLR 2021).

#include <vector>

#include "nn/tensor.hpp"

namespace smore::nn {

/// Value and logits-gradient of a loss over a batch.
struct LossResult {
  double value = 0.0;  ///< mean loss over the batch
  Tensor grad;         ///< dL/dlogits, same shape as the logits
};

/// Row-wise softmax of a [B, C] logit matrix (numerically stabilized).
[[nodiscard]] Tensor softmax(const Tensor& logits);

/// Mean softmax cross-entropy with integer targets.
/// Throws std::invalid_argument when shapes/labels are inconsistent.
[[nodiscard]] LossResult cross_entropy(const Tensor& logits,
                                       const std::vector<int>& targets);

/// Mean prediction entropy  H = -Σ_c p_c log p_c  over the batch.
/// The gradient w.r.t. logit z_k is  -p_k (log p_k + H_row) / B.
[[nodiscard]] LossResult entropy_loss(const Tensor& logits);

/// Batch classification accuracy from logits.
[[nodiscard]] double logits_accuracy(const Tensor& logits,
                                     const std::vector<int>& targets);

}  // namespace smore::nn
