#pragma once
// First-order optimizers over Param lists: SGD with momentum (source
// training) and Adam (the common choice for TENT/MDAN adaptation steps).

#include <vector>

#include "nn/tensor.hpp"

namespace smore::nn {

/// Abstract optimizer over a fixed parameter set.
class Optimizer {
 public:
  /// The pointed-to params must outlive the optimizer.
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Apply one update from the accumulated gradients, then clear them.
  virtual void step() = 0;

  /// Clear accumulated gradients without updating.
  void zero_grad() {
    for (Param* p : params_) p->zero_grad();
  }

  [[nodiscard]] const std::vector<Param*>& params() const noexcept {
    return params_;
  }

 protected:
  std::vector<Param*> params_;
};

/// SGD with classical momentum and optional L2 weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float learning_rate, float momentum = 0.9f,
      float weight_decay = 0.0f);

  void step() override;

  void set_learning_rate(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float epsilon = 1e-8f);

  void step() override;

  void set_learning_rate(float lr) noexcept { lr_ = lr; }
  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  long step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace smore::nn
