#include "nn/layers.hpp"

#include <cmath>
#include <stdexcept>

namespace smore::nn {

// ---------------------------------------------------------------- Dense ----

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features), out_(out_features), weight_({out_features, in_features}),
      bias_({out_features}) {
  if (in_features == 0 || out_features == 0) {
    throw std::invalid_argument("Dense: zero feature count");
  }
  // He initialization for ReLU networks.
  const double scale = std::sqrt(2.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value[i] = static_cast<float>(rng.normal(0.0, scale));
  }
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense: expected [B, in] input");
  }
  x_cache_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y = Tensor::matrix(batch, out_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x.data() + b * in_;
    float* yb = y.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* w = weight_.value.data() + o * in_;
      double acc = bias_.value[o];
      for (std::size_t i = 0; i < in_; ++i) acc += double(w[i]) * xb[i];
      yb[o] = static_cast<float>(acc);
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  const std::size_t batch = x_cache_.dim(0);
  Tensor grad_in = Tensor::matrix(batch, in_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xb = x_cache_.data() + b * in_;
    const float* gb = grad_out.data() + b * out_;
    float* gi = grad_in.data() + b * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = gb[o];
      if (g == 0.0f) continue;
      float* wg = weight_.grad.data() + o * in_;
      const float* w = weight_.value.data() + o * in_;
      bias_.grad[o] += g;
      for (std::size_t i = 0; i < in_; ++i) {
        wg[i] += g * xb[i];
        gi[i] += g * w[i];
      }
    }
  }
  return grad_in;
}

// --------------------------------------------------------------- Conv1D ----

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel_size),
      stride_(stride),
      weight_({out_channels, in_channels, kernel_size}),
      bias_({out_channels}) {
  if (in_channels == 0 || out_channels == 0 || kernel_size == 0 || stride == 0) {
    throw std::invalid_argument("Conv1D: zero-sized configuration");
  }
  const double fan_in = static_cast<double>(in_channels * kernel_size);
  const double scale = std::sqrt(2.0 / fan_in);
  for (std::size_t i = 0; i < weight_.value.size(); ++i) {
    weight_.value[i] = static_cast<float>(rng.normal(0.0, scale));
  }
}

Tensor Conv1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv1D: expected [B, C_in, T] input");
  }
  x_cache_ = x;
  const std::size_t batch = x.dim(0);
  const std::size_t t_in = x.dim(2);
  const std::size_t t_out = (t_in + stride_ - 1) / stride_;
  // 'same' padding: pad_left centers the kernel.
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(kernel_ - 1) / 2;

  Tensor y = Tensor::cube(batch, out_ch_, t_out);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float bias = bias_.value[oc];
      for (std::size_t ot = 0; ot < t_out; ++ot) {
        const std::ptrdiff_t origin =
            static_cast<std::ptrdiff_t>(ot * stride_) - pad;
        double acc = bias;
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          const float* xr = x.data() + (b * in_ch_ + ic) * t_in;
          const float* w = weight_.value.data() + (oc * in_ch_ + ic) * kernel_;
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t t = origin + static_cast<std::ptrdiff_t>(k);
            if (t < 0 || t >= static_cast<std::ptrdiff_t>(t_in)) continue;
            acc += double(w[k]) * xr[t];
          }
        }
        y.at(b, oc, ot) = static_cast<float>(acc);
      }
    }
  }
  return y;
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  const std::size_t batch = x_cache_.dim(0);
  const std::size_t t_in = x_cache_.dim(2);
  const std::size_t t_out = grad_out.dim(2);
  const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(kernel_ - 1) / 2;

  Tensor grad_in = Tensor::cube(batch, in_ch_, t_in);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t ot = 0; ot < t_out; ++ot) {
        const float g = grad_out.at(b, oc, ot);
        if (g == 0.0f) continue;
        bias_.grad[oc] += g;
        const std::ptrdiff_t origin =
            static_cast<std::ptrdiff_t>(ot * stride_) - pad;
        for (std::size_t ic = 0; ic < in_ch_; ++ic) {
          const float* xr = x_cache_.data() + (b * in_ch_ + ic) * t_in;
          float* gxr = grad_in.data() + (b * in_ch_ + ic) * t_in;
          const float* w = weight_.value.data() + (oc * in_ch_ + ic) * kernel_;
          float* wg = weight_.grad.data() + (oc * in_ch_ + ic) * kernel_;
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t t = origin + static_cast<std::ptrdiff_t>(k);
            if (t < 0 || t >= static_cast<std::ptrdiff_t>(t_in)) continue;
            wg[k] += g * xr[t];
            gxr[t] += g * w[k];
          }
        }
      }
    }
  }
  return grad_in;
}

// ------------------------------------------------------------ BatchNorm ----

BatchNorm::BatchNorm(std::size_t features, float momentum, float epsilon)
    : features_(features),
      momentum_(momentum),
      eps_(epsilon),
      gamma_({features}),
      beta_({features}),
      running_mean_({features}),
      running_var_({features}) {
  if (features == 0) {
    throw std::invalid_argument("BatchNorm: zero features");
  }
  gamma_.value.fill(1.0f);
  running_var_.fill(1.0f);
}

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  // Accept [B, F] or [B, F, T]; statistics are per feature/channel.
  if (!((x.rank() == 2 && x.dim(1) == features_) ||
        (x.rank() == 3 && x.dim(1) == features_))) {
    throw std::invalid_argument("BatchNorm: feature dimension mismatch");
  }
  const std::size_t batch = x.dim(0);
  const std::size_t t = x.rank() == 3 ? x.dim(2) : 1;
  const double count = static_cast<double>(batch * t);
  cached_shape_ = x.shape();

  const bool use_batch_stats = training || tent_mode_;
  batch_mean_.assign(features_, 0.0);
  batch_inv_std_.assign(features_, 0.0);

  if (use_batch_stats) {
    std::vector<double> var(features_, 0.0);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t f = 0; f < features_; ++f) {
        const float* row = x.data() + (b * features_ + f) * t;
        for (std::size_t i = 0; i < t; ++i) batch_mean_[f] += row[i];
      }
    }
    for (auto& m : batch_mean_) m /= count;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t f = 0; f < features_; ++f) {
        const float* row = x.data() + (b * features_ + f) * t;
        for (std::size_t i = 0; i < t; ++i) {
          const double d = row[i] - batch_mean_[f];
          var[f] += d * d;
        }
      }
    }
    for (std::size_t f = 0; f < features_; ++f) {
      var[f] /= count;
      batch_inv_std_[f] = 1.0 / std::sqrt(var[f] + eps_);
      if (training) {
        running_mean_[f] = (1.0f - momentum_) * running_mean_[f] +
                           momentum_ * static_cast<float>(batch_mean_[f]);
        running_var_[f] = (1.0f - momentum_) * running_var_[f] +
                          momentum_ * static_cast<float>(var[f]);
      }
    }
  } else {
    for (std::size_t f = 0; f < features_; ++f) {
      batch_mean_[f] = running_mean_[f];
      batch_inv_std_[f] = 1.0 / std::sqrt(running_var_[f] + eps_);
    }
  }

  x_hat_ = x;
  Tensor y = x;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t f = 0; f < features_; ++f) {
      const float mean = static_cast<float>(batch_mean_[f]);
      const float inv = static_cast<float>(batch_inv_std_[f]);
      const float g = gamma_.value[f];
      const float be = beta_.value[f];
      float* xh = x_hat_.data() + (b * features_ + f) * t;
      float* yr = y.data() + (b * features_ + f) * t;
      for (std::size_t i = 0; i < t; ++i) {
        xh[i] = (xh[i] - mean) * inv;
        yr[i] = g * xh[i] + be;
      }
    }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_shape_[0];
  const std::size_t t = cached_shape_.size() == 3 ? cached_shape_[2] : 1;
  const double count = static_cast<double>(batch * t);

  // Accumulate per-feature sums needed by the batch-norm gradient.
  std::vector<double> sum_g(features_, 0.0);
  std::vector<double> sum_gx(features_, 0.0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t f = 0; f < features_; ++f) {
      const float* g = grad_out.data() + (b * features_ + f) * t;
      const float* xh = x_hat_.data() + (b * features_ + f) * t;
      for (std::size_t i = 0; i < t; ++i) {
        sum_g[f] += g[i];
        sum_gx[f] += static_cast<double>(g[i]) * xh[i];
      }
    }
  }
  for (std::size_t f = 0; f < features_; ++f) {
    gamma_.grad[f] += static_cast<float>(sum_gx[f]);
    beta_.grad[f] += static_cast<float>(sum_g[f]);
  }

  Tensor grad_in(cached_shape_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t f = 0; f < features_; ++f) {
      const double inv = batch_inv_std_[f];
      const double g = gamma_.value[f];
      const float* go = grad_out.data() + (b * features_ + f) * t;
      const float* xh = x_hat_.data() + (b * features_ + f) * t;
      float* gi = grad_in.data() + (b * features_ + f) * t;
      for (std::size_t i = 0; i < t; ++i) {
        // dL/dx = γ·inv_std/N · (N·dL/dy − Σ dL/dy − x̂ Σ(dL/dy·x̂))
        gi[i] = static_cast<float>(
            g * inv / count *
            (count * go[i] - sum_g[f] - double(xh[i]) * sum_gx[f]));
      }
    }
  }
  return grad_in;
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  mask_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
    mask_[i] = y[i] > 0.0f ? 1.0f : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

// ------------------------------------------------------ GlobalAvgPool1D ----

Tensor GlobalAvgPool1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3) {
    throw std::invalid_argument("GlobalAvgPool1D: expected [B, C, T]");
  }
  in_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  const std::size_t ch = x.dim(1);
  const std::size_t t = x.dim(2);
  Tensor y = Tensor::matrix(batch, ch);
  const float inv = 1.0f / static_cast<float>(t);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* row = x.data() + (b * ch + c) * t;
      double acc = 0.0;
      for (std::size_t i = 0; i < t; ++i) acc += row[i];
      y.at(b, c) = static_cast<float>(acc) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool1D::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_[0];
  const std::size_t ch = in_shape_[1];
  const std::size_t t = in_shape_[2];
  Tensor grad_in(in_shape_);
  const float inv = 1.0f / static_cast<float>(t);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float g = grad_out.at(b, c) * inv;
      float* row = grad_in.data() + (b * ch + c) * t;
      for (std::size_t i = 0; i < t; ++i) row[i] = g;
    }
  }
  return grad_in;
}

// ------------------------------------------------------------ MaxPool1D ----

MaxPool1D::MaxPool1D(std::size_t kernel) : kernel_(kernel) {
  if (kernel == 0) throw std::invalid_argument("MaxPool1D: zero kernel");
}

Tensor MaxPool1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3) {
    throw std::invalid_argument("MaxPool1D: expected [B, C, T]");
  }
  in_shape_ = x.shape();
  const std::size_t batch = x.dim(0);
  const std::size_t ch = x.dim(1);
  const std::size_t t_in = x.dim(2);
  const std::size_t t_out = t_in / kernel_;
  if (t_out == 0) {
    throw std::invalid_argument("MaxPool1D: window longer than sequence");
  }
  Tensor y = Tensor::cube(batch, ch, t_out);
  argmax_.assign(batch * ch * t_out, 0);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      const float* row = x.data() + (b * ch + c) * t_in;
      for (std::size_t o = 0; o < t_out; ++o) {
        std::size_t best = o * kernel_;
        float best_v = row[best];
        for (std::size_t k = 1; k < kernel_; ++k) {
          const std::size_t idx = o * kernel_ + k;
          if (row[idx] > best_v) {
            best_v = row[idx];
            best = idx;
          }
        }
        y.at(b, c, o) = best_v;
        argmax_[(b * ch + c) * t_out + o] = best;
      }
    }
  }
  return y;
}

Tensor MaxPool1D::backward(const Tensor& grad_out) {
  const std::size_t batch = in_shape_[0];
  const std::size_t ch = in_shape_[1];
  const std::size_t t_in = in_shape_[2];
  const std::size_t t_out = grad_out.dim(2);
  Tensor grad_in(in_shape_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < ch; ++c) {
      float* row = grad_in.data() + (b * ch + c) * t_in;
      for (std::size_t o = 0; o < t_out; ++o) {
        row[argmax_[(b * ch + c) * t_out + o]] += grad_out.at(b, c, o);
      }
    }
  }
  return grad_in;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3) {
    throw std::invalid_argument("Flatten: expected [B, C, T]");
  }
  in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.dim(1) * x.dim(2)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

// --------------------------------------------------------- GradReversal ----

Tensor GradReversal::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= -lambda_;
  return grad_in;
}

}  // namespace smore::nn
