#pragma once
// Layer zoo for the CNN baselines.
//
// Each layer implements explicit forward/backward with cached activations —
// no autograd engine, just the chain rule written out. The set covers the
// backbone both TENT and MDANs need: Conv1D, BatchNorm (the layer TENT
// adapts at test time), ReLU, pooling, Dense, and the gradient-reversal
// layer that MDANs' adversarial training relies on.

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace smore::nn {

/// Abstract differentiable layer. `forward` caches whatever `backward`
/// needs; `backward` consumes the gradient w.r.t. the output and returns the
/// gradient w.r.t. the input, accumulating parameter gradients on the side.
class Layer {
 public:
  virtual ~Layer() = default;

  /// `training` toggles batch-statistics vs. running-statistics behaviour
  /// (BatchNorm) — other layers ignore it.
  virtual Tensor forward(const Tensor& x, bool training) = 0;
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param*> params() { return {}; }

  /// Human-readable layer name for summaries.
  [[nodiscard]] virtual const char* name() const = 0;
};

/// Fully connected layer: [B, in] -> [B, out], He-initialized.
class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] const char* name() const override { return "Dense"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor x_cache_;
};

/// 1-D convolution over [B, C, T] with zero 'same' padding and a stride.
/// Output time length = ceil(T / stride).
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t stride, Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  [[nodiscard]] const char* name() const override { return "Conv1D"; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t stride_;
  Param weight_;  // [out_ch, in_ch, kernel]
  Param bias_;    // [out_ch]
  Tensor x_cache_;
};

/// Batch normalization over features ([B, F]) or channels ([B, C, T]).
/// In training mode it normalizes with batch statistics and updates running
/// estimates; in eval mode it uses the running estimates. `use_batch_stats_in
/// _eval` supports TENT, which normalizes test batches with their own
/// statistics (Wang et al., ICLR 2021).
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(std::size_t features, float momentum = 0.1f,
                     float epsilon = 1e-5f);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  [[nodiscard]] const char* name() const override { return "BatchNorm"; }

  /// TENT switch: normalize with current-batch statistics even in eval mode.
  void set_use_batch_stats_in_eval(bool v) noexcept { tent_mode_ = v; }

  /// Affine parameters (the only parameters TENT updates).
  Param& gamma() noexcept { return gamma_; }
  Param& beta() noexcept { return beta_; }

  [[nodiscard]] const Tensor& running_mean() const noexcept {
    return running_mean_;
  }
  [[nodiscard]] const Tensor& running_var() const noexcept {
    return running_var_;
  }

 private:
  std::size_t features_;
  float momentum_;
  float eps_;
  bool tent_mode_ = false;
  Param gamma_;  // [F]
  Param beta_;   // [F]
  Tensor running_mean_;
  Tensor running_var_;
  // backward caches
  Tensor x_hat_;
  std::vector<double> batch_mean_;
  std::vector<double> batch_inv_std_;
  std::vector<std::size_t> cached_shape_;
};

/// Element-wise max(x, 0).
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* name() const override { return "ReLU"; }

 private:
  Tensor mask_;
};

/// Global average pooling over time: [B, C, T] -> [B, C].
class GlobalAvgPool1D : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* name() const override { return "GlobalAvgPool1D"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Max pooling over time with kernel == stride: [B, C, T] -> [B, C, T/k].
class MaxPool1D : public Layer {
 public:
  explicit MaxPool1D(std::size_t kernel);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* name() const override { return "MaxPool1D"; }

 private:
  std::size_t kernel_;
  std::vector<std::size_t> in_shape_;
  std::vector<std::size_t> argmax_;
};

/// [B, C, T] -> [B, C*T].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> in_shape_;
};

/// Gradient reversal (Ganin et al.): identity forward, -λ·grad backward.
/// The adversarial hinge of MDANs' domain discriminators.
class GradReversal : public Layer {
 public:
  explicit GradReversal(float lambda = 1.0f) : lambda_(lambda) {}

  Tensor forward(const Tensor& x, bool /*training*/) override { return x; }
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] const char* name() const override { return "GradReversal"; }

  void set_lambda(float lambda) noexcept { lambda_ = lambda; }
  [[nodiscard]] float lambda() const noexcept { return lambda_; }

 private:
  float lambda_;
};

}  // namespace smore::nn
