#pragma once
// Sequential network container: an ordered list of layers with forward /
// backward passes and parameter collection. TENT and MDAN compose their
// models from these.

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tensor.hpp"

namespace smore::nn {

/// A feed-forward stack of layers.
class Sequential {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference to it typed as the concrete layer
  /// (handy for keeping a handle on BatchNorm/GradReversal layers).
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Append an already-constructed layer.
  void append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  [[nodiscard]] std::size_t size() const noexcept { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Run the stack front-to-back.
  Tensor forward(const Tensor& x, bool training) {
    Tensor h = x;
    for (auto& l : layers_) h = l->forward(h, training);
    return h;
  }

  /// Run the chain rule back-to-front; returns gradient w.r.t. the input.
  Tensor backward(const Tensor& grad_out) {
    Tensor g = grad_out;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  /// All learnable parameters in layer order.
  [[nodiscard]] std::vector<Param*> params() {
    std::vector<Param*> out;
    for (auto& l : layers_) {
      for (Param* p : l->params()) out.push_back(p);
    }
    return out;
  }

  /// Total learnable scalar count (model size reporting).
  [[nodiscard]] std::size_t param_count() {
    std::size_t n = 0;
    for (Param* p : params()) n += p->value.size();
    return n;
  }

  /// Collect all BatchNorm layers (TENT adapts exactly these).
  [[nodiscard]] std::vector<BatchNorm*> batch_norm_layers() {
    std::vector<BatchNorm*> out;
    for (auto& l : layers_) {
      if (auto* bn = dynamic_cast<BatchNorm*>(l.get())) out.push_back(bn);
    }
    return out;
  }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace smore::nn
