#pragma once
// Minimal dense tensor for the CNN baseline substrate.
//
// The paper's comparators (TENT, MDANs) are small 1-D CNNs; this tensor is
// just enough for them: row-major float storage with a rank ≤ 3 shape
// ([batch, features] for dense layers, [batch, channels, time] for
// convolutions). No views, no broadcasting — layers own their layouts.

#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace smore::nn {

/// Dense row-major float tensor with a dynamic shape.
class Tensor {
 public:
  Tensor() = default;

  /// Zero tensor of the given shape. A dimension of 0 is invalid.
  explicit Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
    std::size_t n = 1;
    for (const std::size_t d : shape_) {
      if (d == 0) throw std::invalid_argument("Tensor: zero dimension");
      n *= d;
    }
    data_.assign(n, 0.0f);
  }

  static Tensor matrix(std::size_t rows, std::size_t cols) {
    return Tensor({rows, cols});
  }
  static Tensor cube(std::size_t b, std::size_t c, std::size_t t) {
    return Tensor({b, c, t});
  }

  [[nodiscard]] const std::vector<std::size_t>& shape() const noexcept {
    return shape_;
  }
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const { return shape_.at(i); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 2-D accessors ([rows, cols]).
  float& at(std::size_t r, std::size_t c) noexcept {
    return data_[r * shape_[1] + c];
  }
  [[nodiscard]] float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * shape_[1] + c];
  }

  /// 3-D accessors ([batch, channel, time]).
  float& at(std::size_t b, std::size_t c, std::size_t t) noexcept {
    return data_[(b * shape_[1] + c) * shape_[2] + t];
  }
  [[nodiscard]] float at(std::size_t b, std::size_t c,
                         std::size_t t) const noexcept {
    return data_[(b * shape_[1] + c) * shape_[2] + t];
  }

  void fill(float v) noexcept {
    for (auto& x : data_) x = v;
  }

  /// Reinterpret with a new shape of identical element count.
  [[nodiscard]] Tensor reshaped(std::vector<std::size_t> new_shape) const {
    const std::size_t n = std::accumulate(new_shape.begin(), new_shape.end(),
                                          std::size_t{1}, std::multiplies<>());
    if (n != size()) {
      throw std::invalid_argument("Tensor::reshaped: element count mismatch");
    }
    Tensor out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
  }

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return shape_ == other.shape_;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// A learnable parameter: value plus accumulated gradient of equal shape.
struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(std::vector<std::size_t> shape)
      : value(shape), grad(std::move(shape)) {}

  void zero_grad() noexcept { grad.fill(0.0f); }
};

}  // namespace smore::nn
