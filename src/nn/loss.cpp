#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace smore::nn {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected [B, C] logits");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  Tensor p = logits;
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = p.data() + b * classes;
    float max_v = row[0];
    for (std::size_t c = 1; c < classes; ++c) max_v = std::max(max_v, row[c]);
    double sum = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      row[c] = std::exp(row[c] - max_v);
      sum += row[c];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t c = 0; c < classes; ++c) row[c] *= inv;
  }
  return p;
}

LossResult cross_entropy(const Tensor& logits, const std::vector<int>& targets) {
  if (logits.rank() != 2 || logits.dim(0) != targets.size()) {
    throw std::invalid_argument("cross_entropy: shape/target mismatch");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  const Tensor p = softmax(logits);

  LossResult result;
  result.grad = Tensor::matrix(batch, classes);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const int y = targets[b];
    if (y < 0 || static_cast<std::size_t>(y) >= classes) {
      throw std::invalid_argument("cross_entropy: label out of range");
    }
    const float* pr = p.data() + b * classes;
    float* gr = result.grad.data() + b * classes;
    total -= std::log(std::max(pr[static_cast<std::size_t>(y)], 1e-12f));
    for (std::size_t c = 0; c < classes; ++c) {
      gr[c] = (pr[c] - (c == static_cast<std::size_t>(y) ? 1.0f : 0.0f)) *
              inv_batch;
    }
  }
  result.value = total / static_cast<double>(batch);
  return result;
}

LossResult entropy_loss(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("entropy_loss: expected [B, C] logits");
  }
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  const Tensor p = softmax(logits);

  LossResult result;
  result.grad = Tensor::matrix(batch, classes);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* pr = p.data() + b * classes;
    float* gr = result.grad.data() + b * classes;
    double h = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      const double pc = std::max(static_cast<double>(pr[c]), 1e-12);
      h -= pc * std::log(pc);
    }
    total += h;
    for (std::size_t c = 0; c < classes; ++c) {
      const double pc = std::max(static_cast<double>(pr[c]), 1e-12);
      // dH/dz_c = -p_c (log p_c + H)
      gr[c] = static_cast<float>(-pc * (std::log(pc) + h)) * inv_batch;
    }
  }
  result.value = total / static_cast<double>(batch);
  return result;
}

double logits_accuracy(const Tensor& logits, const std::vector<int>& targets) {
  if (logits.rank() != 2 || logits.dim(0) != targets.size()) {
    throw std::invalid_argument("logits_accuracy: shape/target mismatch");
  }
  if (targets.empty()) return 0.0;
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    correct += static_cast<int>(best) == targets[b] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(batch);
}

}  // namespace smore::nn
