#pragma once
// Adaptive test-time modeling (paper Sec 3.6, Eq. 3).
//
// For a query Q the test-time model is a weighted ensemble of the K
// domain-specific models:  M_T = Σ_k w_k · M_k, where w_k derives from the
// descriptor similarities δ(Q, U_k) and the OOD verdict:
//   * OOD query:            every domain participates, w_k = δ(Q, U_k);
//   * in-distribution query: only domains with δ(Q, U_k) ≥ δ* participate
//     (adding dissimilar domains would inject noise — Sec 3.6.2).
//
// Two implementations are provided:
//   * TestTimeModel materializes the ensembled class hypervectors (the
//     paper-literal formulation) — simple, used for verification;
//   * EnsembleEvaluator computes the same argmax without materializing M_T:
//     dot(Q, C_c^T) = Σ_k w_k dot(Q, C_c^k) and ‖C_c^T‖² = w^T G_c w with the
//     per-class Gram matrices G_c[i][j] = <C_c^i, C_c^j> precomputed at fit
//     time. Per query this trades the O(n·d) ensemble materialization (plus
//     its allocation) for O(n·K²) Gram sums; the O(K·n·d) similarity dots
//     dominate both paths, so wall-clock is comparable while the evaluator
//     is allocation-free and skips zero-weight domains entirely. A property
//     test pins both paths to identical argmax.

#include <cstddef>
#include <span>
#include <vector>

#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/onlinehd.hpp"

namespace smore {

/// How descriptor similarities become ensemble weights (ablation knob;
/// the paper's Eq. 3 uses the raw similarities).
///
/// Eq. 3's raw weights are only as sharp as the similarity spread, and that
/// spread depends on how much common component the encoder leaves in the
/// encodings: bundled n-gram codes compress all cosines into a narrow band
/// (e.g. 0.80-0.82), turning Eq. 3 into a near-uniform ensemble that lets
/// dissimilar domains poison the prediction. kStandardizedSoftmax is the
/// scale-free reading of the same idea: per query, similarities are
/// z-scored across the K domains and exponentiated, so the *ranking and
/// relative spread* decide the weights regardless of the encoder's
/// similarity scale. It reduces toward uniform when all domains are equally
/// similar and toward top-1 when one domain stands out — exactly Eq. 3's
/// intent. Raw mode stays available and is ablated.
enum class WeightMode {
  kStandardizedSoftmax,  ///< w_k = exp(zscore_k(δ)) (default, scale-free)
  kClampedSimilarity,    ///< w_k = max(δ_k, 0)
  kRawSimilarity,        ///< w_k = δ_k  (paper-literal Eq. 3)
  kSoftmax,              ///< w_k = exp(δ_k/τ) / Σ exp(δ_j/τ), τ = 0.1
  kTopOne,               ///< winner-take-all: only the most similar domain
};

/// Compute ensemble weights from descriptor similarities per Algorithm 1.
/// In the in-distribution case only domains with δ_k ≥ δ* keep weight; if the
/// weight vector degenerates to all-zero, it falls back to uniform weights so
/// the ensemble stays well-defined.
[[nodiscard]] std::vector<double> ensemble_weights(
    std::span<const double> similarities, double delta_star, bool is_ood,
    WeightMode mode = WeightMode::kStandardizedSoftmax);

/// Paper-literal materialized test-time model: n ensembled class hypervectors.
class TestTimeModel {
 public:
  /// `models[k]` must all share class count and dimension; `weights` must
  /// have the same arity. Throws std::invalid_argument otherwise.
  TestTimeModel(std::span<const OnlineHDClassifier* const> models,
                std::span<const double> weights);

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(classes_.size());
  }

  /// Ensembled class hypervector C_c^T.
  [[nodiscard]] const Hypervector& class_vector(int c) const {
    return classes_.at(static_cast<std::size_t>(c));
  }

  /// argmax_c δ(hv, C_c^T)  (Algorithm 1 line 7).
  [[nodiscard]] int predict(std::span<const float> hv) const;

 private:
  std::vector<Hypervector> classes_;
};

/// Materialization-free evaluator over a fixed set of domain models.
class EnsembleEvaluator {
 public:
  /// Precomputes the per-class Gram matrices. The pointed-to models must
  /// outlive the evaluator and must not be mutated afterwards.
  explicit EnsembleEvaluator(std::vector<const OnlineHDClassifier*> models);

  [[nodiscard]] std::size_t num_models() const noexcept {
    return models_.size();
  }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }

  /// argmax_c δ(hv, Σ_k w_k C_c^k) without building the ensemble.
  [[nodiscard]] int predict(std::span<const float> hv,
                            std::span<const double> weights) const;

  /// Cosine similarity of `hv` to every ensembled class hypervector.
  [[nodiscard]] std::vector<double> class_similarities(
      std::span<const float> hv, std::span<const double> weights) const;

  /// Batched argmax with per-query weights (`weights` is row-major
  /// [queries.rows × K]). The K·n class-vector dots of every query come from
  /// one blocked matrix kernel over the packed class vectors; the Gram
  /// combination per (query, class) is O(K²) on top.
  [[nodiscard]] std::vector<int> predict_batch(
      HvView queries, std::span<const double> weights) const;

 private:
  /// Shared ensemble math of the scalar and batch paths: given the K
  /// per-model dots of one class (`class_dots[k] = <Q, C_c^k>`), accumulate
  /// dot(Q, C_c^T) = Σ_k w_k class_dots[k] and ‖C_c^T‖² = w^T G_c w,
  /// skipping zero-weight models.
  void combine_class(const double* class_dots, std::span<const double> w,
                     int c, double& dot_qc, double& norm_sq) const;

  std::vector<const OnlineHDClassifier*> models_;
  int num_classes_ = 0;
  std::size_t dim_ = 0;
  // gram_[c] is a K×K matrix, row-major: <C_c^i, C_c^j>.
  std::vector<std::vector<double>> gram_;
  // All K·n class vectors packed row-major, row index c·K + k (the K vectors
  // of one class contiguous); feeds the batched dot kernel.
  HvMatrix packed_;
};

}  // namespace smore
