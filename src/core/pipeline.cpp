#include "core/pipeline.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/serial.hpp"

namespace smore {

namespace {

constexpr std::uint32_t kPipelineMagic = 0x4c504d53;  // "SMPL"
constexpr std::uint32_t kPipelineFormatVersion = 1;
// Section ids (kSectionEncoder/Model/Packed) live in pipeline.hpp: the
// header's ArtifactInfo::has_packed() reads the same numbering.
// Artifacts hold a handful of sections; anything larger is a garbled header.
constexpr std::uint32_t kMaxSections = 64;

}  // namespace

Pipeline::Pipeline(std::shared_ptr<const Encoder> encoder, int num_classes,
                   SmoreConfig config)
    : encoder_(std::move(encoder)) {
  if (encoder_ == nullptr) {
    throw std::invalid_argument("Pipeline: null encoder");
  }
  model_ = std::make_unique<SmoreModel>(num_classes, encoder_->dim(), config);
}

void Pipeline::require_trained(const char* what) const {
  if (!trained()) {
    throw std::logic_error(std::string(what) + " before fit()");
  }
}

std::vector<double> Pipeline::fit(const WindowDataset& train) {
  return fit_encoded(encode(train));
}

std::vector<double> Pipeline::fit_encoded(const HvDataset& train) {
  packed_.reset();  // quantized off the old weights; re-quantize after fit
  calibrated_ = false;
  packed_calibration_stale_ = false;
  return model_->fit(train);
}

double Pipeline::calibrate(const WindowDataset& in_distribution,
                           double target_ood_rate) {
  require_trained("Pipeline::calibrate");
  const HvDataset encoded = encode(in_distribution);
  const double delta = model_->calibrate_delta_star(encoded, target_ood_rate);
  if (packed_ != nullptr) {
    // Hamming similarities live on their own scale: the packed model gets
    // its own quantile, not the float δ*.
    packed_->calibrate_delta_star(encoded, target_ood_rate);
  }
  calibrated_ = true;
  packed_calibration_stale_ = false;
  return delta;
}

void Pipeline::quantize() {
  require_trained("Pipeline::quantize");
  packed_ = std::make_unique<BinarySmoreModel>(*model_);
  // The fresh quantization transfers the float δ* verbatim; an existing
  // calibration is meaningless on the Hamming scale (it can over-flag an
  // in-distribution set by an order of magnitude), so flag the pipeline
  // until calibrate() derives a packed quantile.
  packed_calibration_stale_ = calibrated_;
}

int Pipeline::predict(const Window& window) const {
  require_trained("Pipeline::predict");
  const Hypervector hv = encoder_->encode_one(window);
  return model_->predict(std::span<const float>(hv.data(), hv.dim()));
}

SmorePrediction Pipeline::predict_detail(const Window& window) const {
  require_trained("Pipeline::predict_detail");
  const Hypervector hv = encoder_->encode_one(window);
  return model_->predict_detail(std::span<const float>(hv.data(), hv.dim()));
}

std::vector<int> Pipeline::predict_batch(const WindowDataset& windows,
                                         ServeBackend backend) const {
  require_trained("Pipeline::predict_batch");
  HvMatrix block;
  encoder_->encode_batch(windows, block);
  if (backend == ServeBackend::kPacked) {
    if (!quantized()) {
      throw std::logic_error("Pipeline::predict_batch: packed backend before "
                             "quantize()");
    }
    return packed_->predict_batch(block.view());
  }
  return model_->predict_batch(block.view());
}

SmoreBatchResult Pipeline::predict_batch_full(const WindowDataset& windows,
                                              ServeBackend backend) const {
  require_trained("Pipeline::predict_batch_full");
  HvMatrix block;
  encoder_->encode_batch(windows, block);
  if (backend == ServeBackend::kPacked) {
    if (!quantized()) {
      throw std::logic_error(
          "Pipeline::predict_batch_full: packed backend before quantize()");
    }
    return packed_->predict_batch_full(block.view());
  }
  return model_->predict_batch_full(block.view());
}

SmoreEvaluation Pipeline::evaluate(const WindowDataset& windows,
                                   ServeBackend backend) const {
  require_trained("Pipeline::evaluate");
  const HvDataset encoded = encode(windows);
  if (backend == ServeBackend::kPacked) {
    if (!quantized()) {
      throw std::logic_error(
          "Pipeline::evaluate: packed backend before quantize()");
    }
    return packed_->evaluate(encoded);
  }
  return model_->evaluate(encoded);
}

HvDataset Pipeline::encode(const WindowDataset& windows) const {
  return encoder_->encode_dataset(windows);
}

void Pipeline::save(std::ostream& out) const {
  require_trained("Pipeline::save");
  if (packed_ != nullptr && packed_->num_domains() != model_->num_domains()) {
    // The mutable model() accessor allows post-quantize updates (e.g.
    // absorb_labeled of a new domain); persisting the stale quantization
    // next to the updated float model would ship an artifact whose two
    // backends disagree. (Same-domain-count staleness cannot be detected
    // here — re-quantize after any float-model mutation.)
    throw std::logic_error(
        "Pipeline::save: packed model is stale (the float model gained "
        "domains since quantize()) — call quantize() again");
  }
  if (packed_calibration_stale_) {
    throw std::logic_error(
        "Pipeline::save: quantize() discarded the calibration — call "
        "calibrate() again (canonical order: quantize, then calibrate) so "
        "the packed δ* is a Hamming-scale quantile, not the cosine-scale "
        "float value");
  }
  // Each section is rendered to its own buffer first so the header can
  // declare exact payload lengths (load() verifies them byte for byte).
  std::ostringstream encoder_section(std::ios::binary);
  encoder_->save(encoder_section);
  std::ostringstream model_section(std::ios::binary);
  model_->save(model_section);
  std::ostringstream packed_section(std::ios::binary);
  if (packed_ != nullptr) packed_->save(packed_section);

  serial::write_pod(out, kPipelineMagic);
  serial::write_pod(out, kPipelineFormatVersion);
  serial::write_pod(out,
                    static_cast<std::uint32_t>(packed_ != nullptr ? 3 : 2));
  const auto write_section = [&out](std::uint32_t id,
                                    const std::string& payload) {
    serial::write_pod(out, id);
    serial::write_pod(out, static_cast<std::uint64_t>(payload.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
  };
  write_section(kSectionEncoder, encoder_section.str());
  write_section(kSectionModel, model_section.str());
  if (packed_ != nullptr) write_section(kSectionPacked, packed_section.str());
  if (!out) {
    throw std::runtime_error("Pipeline::save: stream write failed");
  }
}

void Pipeline::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("Pipeline::save: cannot open " + path);
  }
  save(out);
  // Flush before the destructor would: a full disk at destructor-flush time
  // has no way to report, and a silently truncated artifact surfaces only
  // at load on the deployment host.
  out.flush();
  if (!out) {
    throw std::runtime_error("Pipeline::save: flush failed for " + path);
  }
}

Pipeline Pipeline::load(std::istream& in) {
  constexpr const char* ctx = "Pipeline::load";
  const auto magic = serial::read_pod<std::uint32_t>(in, ctx);
  const auto version = serial::read_pod<std::uint32_t>(in, ctx);
  if (magic != kPipelineMagic || version != kPipelineFormatVersion) {
    throw std::runtime_error("Pipeline::load: bad magic/version");
  }
  const auto sections = serial::read_pod<std::uint32_t>(in, ctx);
  if (sections < 2 || sections > kMaxSections) {
    throw std::runtime_error("Pipeline::load: implausible section count");
  }

  Pipeline out;
  for (std::uint32_t s = 0; s < sections; ++s) {
    const auto id = serial::read_pod<std::uint32_t>(in, ctx);
    const auto length = serial::read_pod<std::uint64_t>(in, ctx);
    const std::istream::pos_type start = in.tellg();
    switch (id) {
      case kSectionEncoder:
        if (out.encoder_ != nullptr) {
          throw std::runtime_error("Pipeline::load: duplicate encoder section");
        }
        out.encoder_ = std::shared_ptr<const Encoder>(load_encoder(in));
        break;
      case kSectionModel:
        if (out.model_ != nullptr) {
          throw std::runtime_error("Pipeline::load: duplicate model section");
        }
        out.model_ = std::make_unique<SmoreModel>(SmoreModel::load(in));
        break;
      case kSectionPacked:
        if (out.packed_ != nullptr) {
          throw std::runtime_error("Pipeline::load: duplicate packed section");
        }
        out.packed_ =
            std::make_unique<BinarySmoreModel>(BinarySmoreModel::load(in));
        break;
      default:
        // Unknown section from a newer writer: skip by declared length.
        // ignore() streams past without allocating, so an oversized length
        // just runs into EOF — never a giant allocation. gcount (not the
        // stream state: EOF mid-ignore sets only eofbit) detects a
        // truncated section even on non-seekable streams, where the
        // tellg-based length check below cannot run.
        in.ignore(static_cast<std::streamsize>(length));
        if (in.bad() ||
            static_cast<std::uint64_t>(in.gcount()) != length) {
          throw std::runtime_error(
              "Pipeline::load: truncated unknown section");
        }
        break;
    }
    // Consumed must equal declared: a garbled length (too long or too
    // short) is a corrupt artifact even when the section itself parsed.
    if (start != std::istream::pos_type(-1)) {
      const std::istream::pos_type end = in.tellg();
      if (end == std::istream::pos_type(-1) ||
          static_cast<std::uint64_t>(end - start) != length) {
        throw std::runtime_error("Pipeline::load: section length mismatch");
      }
    }
  }

  // The format is count-driven, so bytes after the last declared section
  // can only mean a garbled count (e.g. 3 corrupted to 2, which would
  // silently drop the packed section and serve the wrong backend).
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(
        "Pipeline::load: trailing bytes after the declared sections");
  }
  if (out.encoder_ == nullptr || out.model_ == nullptr) {
    throw std::runtime_error(
        "Pipeline::load: artifact is missing the encoder or model section");
  }
  if (out.encoder_->dim() != out.model_->dim()) {
    throw std::runtime_error(
        "Pipeline::load: encoder/model dimension mismatch");
  }
  if (out.packed_ != nullptr &&
      (out.packed_->dim() != out.model_->dim() ||
       out.packed_->num_classes() != out.model_->num_classes())) {
    throw std::runtime_error(
        "Pipeline::load: packed/model shape mismatch");
  }
  return out;
}

Pipeline Pipeline::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Pipeline::load: cannot open " + path);
  }
  return load(in);
}

ArtifactInfo Pipeline::probe(std::istream& in) {
  constexpr const char* ctx = "Pipeline::probe";
  const auto magic = serial::read_pod<std::uint32_t>(in, ctx);
  const auto version = serial::read_pod<std::uint32_t>(in, ctx);
  if (magic != kPipelineMagic || version != kPipelineFormatVersion) {
    throw std::runtime_error("Pipeline::probe: bad magic/version");
  }
  const auto sections = serial::read_pod<std::uint32_t>(in, ctx);
  if (sections < 2 || sections > kMaxSections) {
    throw std::runtime_error("Pipeline::probe: implausible section count");
  }

  ArtifactInfo info;
  info.format_version = version;
  info.sections.reserve(sections);
  for (std::uint32_t s = 0; s < sections; ++s) {
    ArtifactSection section;
    section.id = serial::read_pod<std::uint32_t>(in, ctx);
    section.bytes = serial::read_pod<std::uint64_t>(in, ctx);
    if (info.has_section(section.id)) {
      throw std::runtime_error("Pipeline::probe: duplicate section");
    }
    // Skip the payload the same way load() skips unknown sections: ignore()
    // streams past without allocating, and gcount catches truncation even
    // on non-seekable streams.
    in.ignore(static_cast<std::streamsize>(section.bytes));
    if (in.bad() ||
        static_cast<std::uint64_t>(in.gcount()) != section.bytes) {
      throw std::runtime_error("Pipeline::probe: truncated section");
    }
    info.sections.push_back(section);
    info.payload_bytes += section.bytes;
  }
  if (in.peek() != std::istream::traits_type::eof()) {
    throw std::runtime_error(
        "Pipeline::probe: trailing bytes after the declared sections");
  }
  if (!info.has_section(kSectionEncoder) || !info.has_section(kSectionModel)) {
    throw std::runtime_error(
        "Pipeline::probe: artifact is missing the encoder or model section");
  }
  return info;
}

ArtifactInfo Pipeline::probe(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("Pipeline::probe: cannot open " + path);
  }
  return probe(in);
}

}  // namespace smore
