#include "core/binary_smore.hpp"

#include <algorithm>
#include <stdexcept>

#include "hdc/ops_binary.hpp"

namespace smore {

BinarySmoreModel::BinarySmoreModel(const SmoreModel& model)
    : num_classes_(model.num_classes()),
      dim_(model.dim()),
      weight_mode_(model.config().weight_mode),
      detector_(model.config().delta_star) {
  if (!model.trained()) {
    throw std::logic_error("BinarySmoreModel: model is untrained");
  }
  const std::size_t k = model.num_domains();
  const auto classes = static_cast<std::size_t>(num_classes_);
  descriptors_.resize(k, dim_);
  class_bank_.resize(k * classes, dim_);
  for (std::size_t d = 0; d < k; ++d) {
    ops::sign_pack_row(model.descriptors().descriptor(d).data(), dim_,
                       descriptors_.row(d));
    const OnlineHDClassifier& domain_model = model.domain_model(d);
    for (int c = 0; c < num_classes_; ++c) {
      ops::sign_pack_row(domain_model.class_vector(c).data(), dim_,
                         class_bank_.row(d * classes +
                                         static_cast<std::size_t>(c)));
    }
  }
}

void BinarySmoreModel::set_delta_star(double delta_star) {
  detector_.set_delta_star(delta_star);
}

double BinarySmoreModel::calibrate_delta_star(const HvDataset& in_distribution,
                                              double target_ood_rate) {
  if (in_distribution.empty()) {
    throw std::invalid_argument("calibrate_delta_star: empty calibration set");
  }
  const BitMatrix packed = ops::sign_pack_matrix(in_distribution.view());
  const std::vector<double> sims = similarities_batch(packed.view());
  const std::size_t k = num_domains();
  std::vector<double> max_sims;
  max_sims.reserve(in_distribution.size());
  for (std::size_t i = 0; i < in_distribution.size(); ++i) {
    const std::span<const double> row(sims.data() + i * k, k);
    max_sims.push_back(detector_.evaluate(row).max_similarity);
  }
  set_delta_star(
      calibrate_threshold_quantile(std::move(max_sims), target_ood_rate));
  return detector_.delta_star();
}

int BinarySmoreModel::predict(std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("BinarySmoreModel::predict: dim mismatch");
  }
  return predict_batch(HvView(hv)).at(0);
}

std::vector<int> BinarySmoreModel::predict_batch(HvView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument(
        "BinarySmoreModel::predict_batch: dim mismatch");
  }
  return predict_batch(ops::sign_pack_matrix(queries).view());
}

std::vector<int> BinarySmoreModel::predict_batch(BitView queries) const {
  return predict_batch_impl(queries, nullptr);
}

std::vector<double> BinarySmoreModel::similarities_batch(
    BitView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_ ||
      queries.words_per_row != descriptors_.words_per_row()) {
    throw std::invalid_argument(
        "BinarySmoreModel::similarities_batch: dim mismatch");
  }
  std::vector<double> sims(queries.rows * num_domains());
  ops::binary_similarity_matrix(queries, descriptors_.view(), sims.data());
  return sims;
}

std::vector<int> BinarySmoreModel::predict_batch_impl(
    BitView queries, std::vector<std::uint8_t>* ood_flags) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_ ||
      queries.words_per_row != descriptors_.words_per_row()) {
    throw std::invalid_argument(
        "BinarySmoreModel::predict_batch: dim mismatch");
  }
  const std::size_t k = num_domains();
  const auto classes = static_cast<std::size_t>(num_classes_);

  // E: one packed kernel for every δ_H(Q_i, U_k) (Algorithm 1 lines 1-2).
  const std::vector<double> sims = similarities_batch(queries);
  // G's inputs: one packed kernel for every δ_H(Q_i, C_c^k).
  std::vector<double> class_sims(queries.rows * k * classes);
  ops::binary_similarity_matrix(queries, class_bank_.view(),
                                class_sims.data());
  if (ood_flags != nullptr) ood_flags->assign(queries.rows, 0);

  std::vector<int> labels(queries.rows);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    // F: verdict and ensemble weights from the Hamming similarities.
    const std::span<const double> row(sims.data() + q * k, k);
    const OodVerdict verdict = detector_.evaluate(row);
    if (ood_flags != nullptr && verdict.is_ood) (*ood_flags)[q] = 1;
    const std::vector<double> w = ensemble_weights(
        row, detector_.delta_star(), verdict.is_ood, weight_mode_);

    // G: similarity-ensembled argmax, skipping zero-weight domains.
    const double* qsims = class_sims.data() + q * k * classes;
    int best = 0;
    double best_score = 0.0;
    for (int c = 0; c < num_classes_; ++c) {
      double score = 0.0;
      for (std::size_t d = 0; d < k; ++d) {
        if (w[d] == 0.0) continue;
        score += w[d] * qsims[d * classes + static_cast<std::size_t>(c)];
      }
      if (c == 0 || score > best_score) {
        best_score = score;
        best = c;
      }
    }
    labels[q] = best;
  }
  return labels;
}

SmoreEvaluation BinarySmoreModel::evaluate(const HvDataset& data) const {
  if (data.empty()) return {};
  if (data.dim() != dim_) {
    throw std::invalid_argument("BinarySmoreModel::evaluate: dim mismatch");
  }
  return evaluate(ops::sign_pack_matrix(data.view()).view(), data.labels());
}

SmoreEvaluation BinarySmoreModel::evaluate(
    BitView queries, std::span<const int> labels) const {
  SmoreEvaluation out;
  if (queries.rows == 0) return out;
  if (labels.size() != queries.rows) {
    throw std::invalid_argument(
        "BinarySmoreModel::evaluate: label arity mismatch");
  }
  std::vector<std::uint8_t> flags;
  const std::vector<int> predicted = predict_batch_impl(queries, &flags);
  std::size_t correct = 0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < queries.rows; ++i) {
    correct += predicted[i] == labels[i] ? 1 : 0;
    flagged += flags[i];
  }
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(queries.rows);
  out.ood_rate =
      static_cast<double>(flagged) / static_cast<double>(queries.rows);
  return out;
}

}  // namespace smore
