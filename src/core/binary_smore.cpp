#include "core/binary_smore.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "hdc/ops_binary.hpp"

namespace smore {

BinarySmoreModel::BinarySmoreModel(const SmoreModel& model)
    : num_classes_(model.num_classes()),
      dim_(model.dim()),
      weight_mode_(model.config().weight_mode),
      detector_(model.config().delta_star) {
  if (!model.trained()) {
    throw std::logic_error("BinarySmoreModel: model is untrained");
  }
  const std::size_t k = model.num_domains();
  const auto classes = static_cast<std::size_t>(num_classes_);
  descriptors_.resize(k, dim_);
  class_bank_.resize(k * classes, dim_);
  for (std::size_t d = 0; d < k; ++d) {
    ops::sign_pack_row(model.descriptors().descriptor(d).data(), dim_,
                       descriptors_.row(d));
    const OnlineHDClassifier& domain_model = model.domain_model(d);
    for (int c = 0; c < num_classes_; ++c) {
      ops::sign_pack_row(domain_model.class_vector(c).data(), dim_,
                         class_bank_.row(d * classes +
                                         static_cast<std::size_t>(c)));
    }
  }
}

void BinarySmoreModel::set_delta_star(double delta_star) {
  detector_.set_delta_star(delta_star);
}

double BinarySmoreModel::calibrate_delta_star(const HvDataset& in_distribution,
                                              double target_ood_rate) {
  if (in_distribution.empty()) {
    throw std::invalid_argument("calibrate_delta_star: empty calibration set");
  }
  const BitMatrix packed = ops::sign_pack_matrix(in_distribution.view());
  const std::vector<double> sims = similarities_batch(packed.view());
  const std::size_t k = num_domains();
  std::vector<double> max_sims;
  max_sims.reserve(in_distribution.size());
  for (std::size_t i = 0; i < in_distribution.size(); ++i) {
    const std::span<const double> row(sims.data() + i * k, k);
    max_sims.push_back(detector_.evaluate(row).max_similarity);
  }
  set_delta_star(
      calibrate_threshold_quantile(std::move(max_sims), target_ood_rate));
  return detector_.delta_star();
}

int BinarySmoreModel::predict(std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("BinarySmoreModel::predict: dim mismatch");
  }
  return predict_batch(HvView(hv)).at(0);
}

std::vector<int> BinarySmoreModel::predict_batch(HvView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument(
        "BinarySmoreModel::predict_batch: dim mismatch");
  }
  return predict_batch(ops::sign_pack_matrix(queries).view());
}

std::vector<int> BinarySmoreModel::predict_batch(BitView queries) const {
  return predict_batch_impl(queries, nullptr, nullptr);
}

SmoreBatchResult BinarySmoreModel::predict_batch_full(BitView queries) const {
  SmoreBatchResult out;
  out.labels = predict_batch_impl(queries, nullptr, &out);
  return out;
}

SmoreBatchResult BinarySmoreModel::predict_batch_full(HvView queries) const {
  if (queries.rows != 0 && queries.dim != dim_) {
    throw std::invalid_argument(
        "BinarySmoreModel::predict_batch_full: dim mismatch");
  }
  return predict_batch_full(ops::sign_pack_matrix(queries).view());
}

std::vector<double> BinarySmoreModel::similarities_batch(
    BitView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_ ||
      queries.words_per_row != descriptors_.words_per_row()) {
    throw std::invalid_argument(
        "BinarySmoreModel::similarities_batch: dim mismatch");
  }
  std::vector<double> sims(queries.rows * num_domains());
  ops::binary_similarity_matrix(queries, descriptors_.view(), sims.data());
  return sims;
}

std::vector<int> BinarySmoreModel::predict_batch_impl(
    BitView queries, std::vector<std::uint8_t>* ood_flags,
    SmoreBatchResult* full) const {
  const std::size_t k = num_domains();
  if (full != nullptr) full->num_domains = k;
  if (queries.rows == 0) return {};
  if (queries.dim != dim_ ||
      queries.words_per_row != descriptors_.words_per_row()) {
    throw std::invalid_argument(
        "BinarySmoreModel::predict_batch: dim mismatch");
  }
  const auto classes = static_cast<std::size_t>(num_classes_);

  // E: one packed kernel for every δ_H(Q_i, U_k) (Algorithm 1 lines 1-2).
  const std::vector<double> sims = similarities_batch(queries);
  // G's inputs: one packed kernel for every δ_H(Q_i, C_c^k).
  std::vector<double> class_sims(queries.rows * k * classes);
  ops::binary_similarity_matrix(queries, class_bank_.view(),
                                class_sims.data());
  if (ood_flags != nullptr) ood_flags->assign(queries.rows, 0);
  if (full != nullptr) {
    full->ood.assign(queries.rows, 0);
    full->max_similarity.assign(queries.rows, 0.0);
    full->weights.assign(queries.rows * k, 0.0);
  }

  std::vector<int> labels(queries.rows);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    // F: verdict and ensemble weights from the Hamming similarities.
    const std::span<const double> row(sims.data() + q * k, k);
    const OodVerdict verdict = detector_.evaluate(row);
    if (ood_flags != nullptr && verdict.is_ood) (*ood_flags)[q] = 1;
    const std::vector<double> w = ensemble_weights(
        row, detector_.delta_star(), verdict.is_ood, weight_mode_);
    if (full != nullptr) {
      if (verdict.is_ood) full->ood[q] = 1;
      full->max_similarity[q] = verdict.max_similarity;
      std::copy(w.begin(), w.end(), full->weights.begin() + q * k);
    }

    // G: similarity-ensembled argmax, skipping zero-weight domains.
    const double* qsims = class_sims.data() + q * k * classes;
    int best = 0;
    double best_score = 0.0;
    for (int c = 0; c < num_classes_; ++c) {
      double score = 0.0;
      for (std::size_t d = 0; d < k; ++d) {
        if (w[d] == 0.0) continue;
        score += w[d] * qsims[d * classes + static_cast<std::size_t>(c)];
      }
      if (c == 0 || score > best_score) {
        best_score = score;
        best = c;
      }
    }
    labels[q] = best;
  }
  return labels;
}

namespace {
constexpr std::uint32_t kBinarySmoreMagic = 0x42534d52;  // "BSMR"
constexpr std::uint32_t kBinarySmoreVersion = 1;

void write_bits(std::ostream& out, const BitMatrix& m) {
  const std::uint64_t rows = m.rows();
  const std::uint64_t dim = m.dim();
  out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.bytes()));
}

BitMatrix read_bits(std::istream& in, std::uint64_t expected_dim,
                    std::uint64_t expected_rows) {
  std::uint64_t rows = 0;
  std::uint64_t dim = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  if (!in) throw std::runtime_error("BinarySmoreModel::load: truncated block");
  // Validate before allocating: a truncated stream must throw, not OOM.
  if (dim != expected_dim || rows != expected_rows) {
    throw std::runtime_error("BinarySmoreModel::load: inconsistent blocks");
  }
  BitMatrix m(static_cast<std::size_t>(rows), static_cast<std::size_t>(dim));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.bytes()));
  if (!in) throw std::runtime_error("BinarySmoreModel::load: truncated words");
  return m;
}
}  // namespace

void BinarySmoreModel::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&kBinarySmoreMagic),
            sizeof(kBinarySmoreMagic));
  out.write(reinterpret_cast<const char*>(&kBinarySmoreVersion),
            sizeof(kBinarySmoreVersion));
  const std::int32_t classes = num_classes_;
  const std::uint64_t dim = dim_;
  const double delta = detector_.delta_star();
  const std::int32_t mode = static_cast<std::int32_t>(weight_mode_);
  const std::uint64_t domains = num_domains();
  out.write(reinterpret_cast<const char*>(&classes), sizeof(classes));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&delta), sizeof(delta));
  out.write(reinterpret_cast<const char*>(&mode), sizeof(mode));
  out.write(reinterpret_cast<const char*>(&domains), sizeof(domains));
  write_bits(out, descriptors_);
  write_bits(out, class_bank_);
}

BinarySmoreModel BinarySmoreModel::load(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kBinarySmoreMagic || version != kBinarySmoreVersion) {
    throw std::runtime_error("BinarySmoreModel::load: bad magic/version");
  }
  std::int32_t classes = 0;
  std::uint64_t dim = 0;
  double delta = 0.0;
  std::int32_t mode = 0;
  std::uint64_t domains = 0;
  in.read(reinterpret_cast<char*>(&classes), sizeof(classes));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&delta), sizeof(delta));
  in.read(reinterpret_cast<char*>(&mode), sizeof(mode));
  in.read(reinterpret_cast<char*>(&domains), sizeof(domains));
  // Reject absurd header values before any allocation is sized from them:
  // a corrupt (not merely truncated) stream must throw, not OOM. The caps
  // are far above anything the library produces (d ≤ 2^24, K ≤ 2^20).
  constexpr std::uint64_t kMaxDim = 1u << 24;
  constexpr std::uint64_t kMaxDomains = 1u << 20;
  constexpr std::int32_t kMaxClasses = 1 << 20;
  if (!in || classes <= 0 || classes > kMaxClasses || dim == 0 ||
      dim > kMaxDim || domains > kMaxDomains || delta < -1.0 || delta > 1.0 ||
      mode < 0 || mode > static_cast<std::int32_t>(WeightMode::kTopOne)) {
    throw std::runtime_error("BinarySmoreModel::load: corrupt header");
  }
  // Per-field caps alone still admit a huge product (2^20 domains of 2^24
  // bits ≈ 2 TB); bound the total packed payload the header implies. 1 GiB
  // is orders of magnitude above any model this library produces.
  constexpr std::uint64_t kMaxTotalBytes = 1ull << 30;
  const std::uint64_t words = BitMatrix::words_for(dim);
  const std::uint64_t total_rows =
      domains * (1 + static_cast<std::uint64_t>(classes));
  if (total_rows * words * sizeof(std::uint64_t) > kMaxTotalBytes) {
    throw std::runtime_error("BinarySmoreModel::load: corrupt header");
  }
  BinarySmoreModel model;
  model.num_classes_ = classes;
  model.dim_ = static_cast<std::size_t>(dim);
  model.weight_mode_ = static_cast<WeightMode>(mode);
  model.detector_.set_delta_star(delta);
  model.descriptors_ = read_bits(in, dim, domains);
  model.class_bank_ =
      read_bits(in, dim, domains * static_cast<std::uint64_t>(classes));
  return model;
}

SmoreEvaluation BinarySmoreModel::evaluate(const HvDataset& data) const {
  if (data.empty()) return {};
  if (data.dim() != dim_) {
    throw std::invalid_argument("BinarySmoreModel::evaluate: dim mismatch");
  }
  return evaluate(ops::sign_pack_matrix(data.view()).view(), data.labels());
}

SmoreEvaluation BinarySmoreModel::evaluate(
    BitView queries, std::span<const int> labels) const {
  SmoreEvaluation out;
  if (queries.rows == 0) return out;
  if (labels.size() != queries.rows) {
    throw std::invalid_argument(
        "BinarySmoreModel::evaluate: label arity mismatch");
  }
  std::vector<std::uint8_t> flags;
  const std::vector<int> predicted =
      predict_batch_impl(queries, &flags, nullptr);
  std::size_t correct = 0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < queries.rows; ++i) {
    correct += predicted[i] == labels[i] ? 1 : 0;
    flagged += flags[i];
  }
  out.accuracy =
      static_cast<double>(correct) / static_cast<double>(queries.rows);
  out.ood_rate =
      static_cast<double>(flagged) / static_cast<double>(queries.rows);
  return out;
}

}  // namespace smore
