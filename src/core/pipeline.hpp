#pragma once
// Pipeline: the deployable SMORE artifact (DESIGN.md §10).
//
// The paper's system (Fig. 2) is ONE pipeline — encode (Sec 3.3), per-domain
// train + descriptors (Sec 3.4–3.5), OOD-gated test-time ensembling
// (Sec 3.6) — but the layers underneath it are deliberately loose parts
// (encoders, SmoreModel, BinarySmoreModel) so benches and ablations can swap
// any one of them. A *deployment* needs the opposite: one object that owns
// everything a serving process must agree on — the encoder (config + seed,
// basis reconstructed deterministically), the trained model, the calibrated
// OOD threshold δ*, and optionally the sign-quantized packed model — and one
// file that round-trips all of it. That object is the Pipeline:
//
//   Pipeline p(encoder, num_classes);
//   p.fit(train_windows);        // encode + per-domain train + descriptors
//   p.calibrate(train_windows);  // δ* at a known false-positive budget
//   p.quantize();                // optional packed edge/serving backend
//   p.save("model.smore");       // ONE self-describing artifact
//   ...
//   Pipeline q = Pipeline::load("model.smore");   // fresh process, no
//   q.predict(window);                            // out-of-band state
//
// Artifact format (versioned, sectioned):
//   header:   magic u32 | format-version u32 | section-count u32
//   section:  id u32 | payload-length u64 | payload
//   sections: 1 = encoder (Encoder::save record, config+seed only)
//             2 = model   (SmoreModel::save record)
//             3 = packed  (BinarySmoreModel::save record, optional)
// Unknown section ids are skipped by length (forward compatibility); known
// sections are parsed by their own loaders and the consumed byte count is
// checked against the declared length, so a garbled length is rejected
// without ever allocating memory proportional to it.
//
// The low-level classes stay public — the Pipeline is a facade, not a wall.
// Serving wraps the Pipeline's models behind the InferenceBackend interface
// (core/inference_backend.hpp, adapters in src/serve/backend.hpp).

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/binary_smore.hpp"
#include "core/inference_backend.hpp"
#include "core/smore.hpp"
#include "data/timeseries.hpp"
#include "hdc/encoder_base.hpp"
#include "hdc/hv_dataset.hpp"

namespace smore {

/// Section ids of the `.smore` artifact (the format note above) — the ONE
/// numbering shared by save()/load()/probe() and ArtifactInfo::has_packed().
inline constexpr std::uint32_t kSectionEncoder = 1;
inline constexpr std::uint32_t kSectionModel = 2;
inline constexpr std::uint32_t kSectionPacked = 3;

/// One section of a probed `.smore` artifact (id + declared payload bytes).
struct ArtifactSection {
  std::uint32_t id = 0;
  std::uint64_t bytes = 0;
};

/// Cheap artifact metadata: what Pipeline::probe() learns from the header
/// and the section table alone — no model is deserialized, no allocation is
/// proportional to the file. The multi-tenant ModelRegistry uses this to
/// validate an artifact and size it for its memory budget before paying for
/// a full load (serve/registry.hpp); `payload_bytes` is the registry's
/// resident-cost proxy when nothing better is known.
struct ArtifactInfo {
  std::uint32_t format_version = 0;
  std::vector<ArtifactSection> sections;
  std::uint64_t payload_bytes = 0;  ///< sum of declared section payloads

  [[nodiscard]] bool has_section(std::uint32_t id) const noexcept {
    for (const ArtifactSection& s : sections) {
      if (s.id == id) return true;
    }
    return false;
  }
  /// True when the artifact carries a packed (quantized) model section.
  [[nodiscard]] bool has_packed() const noexcept {
    return has_section(kSectionPacked);
  }
};

/// The end-to-end SMORE pipeline: encoder + model + calibration (+ packed).
/// Move-only; the encoder is shared (serving snapshots alias it).
class Pipeline {
 public:
  /// `encoder` must be non-null; `num_classes` positive. The model is
  /// created untrained with the encoder's dimension. Throws
  /// std::invalid_argument otherwise.
  Pipeline(std::shared_ptr<const Encoder> encoder, int num_classes,
           SmoreConfig config = {});

  Pipeline(Pipeline&&) noexcept = default;
  Pipeline& operator=(Pipeline&&) noexcept = default;

  /// Encode `train` and fit the SMORE model (per-domain OnlineHD models +
  /// descriptors). Drops any previously quantized packed model — it would
  /// describe the old weights. Returns per-domain final training accuracy.
  std::vector<double> fit(const WindowDataset& train);

  /// Fit from an already-encoded dataset — the shared-encoding escape hatch
  /// for callers that encode once and train many models over it (LODO folds,
  /// algorithm comparisons). The rows MUST come from this pipeline's own
  /// encoder (typically via encode()); the pipeline cannot verify provenance
  /// beyond the dimension, and an artifact fit on foreign encodings will
  /// mispredict after load. Same contract as fit() otherwise.
  std::vector<double> fit_encoded(const HvDataset& train);

  /// Calibrate δ* so that `target_ood_rate` of `in_distribution` windows are
  /// flagged (a known false-positive budget; see
  /// SmoreModel::calibrate_delta_star). Calibrates the packed model too when
  /// present — Hamming similarities live on their own scale, so the
  /// canonical order is quantize() THEN calibrate(). Returns the float δ*.
  double calibrate(const WindowDataset& in_distribution,
                   double target_ood_rate = 0.05);

  /// Sign-quantize the trained model into the packed binary backend
  /// (replaces any previous quantization). The fresh packed model inherits
  /// the float (cosine-scale) δ*; if calibrate() had already run, that
  /// calibration does NOT transfer to the Hamming scale — the pipeline is
  /// then marked packed-calibration-stale, and save() / serving snapshots
  /// refuse it until calibrate() runs again. Throws std::logic_error before
  /// fit().
  void quantize();

  /// True when quantize() discarded an earlier calibration: the packed δ*
  /// is the cosine-scale float value, not a Hamming-scale quantile. Cleared
  /// by calibrate().
  [[nodiscard]] bool packed_calibration_stale() const noexcept {
    return packed_calibration_stale_;
  }

  [[nodiscard]] bool trained() const noexcept { return model_->trained(); }
  [[nodiscard]] bool quantized() const noexcept { return packed_ != nullptr; }

  /// Classify one raw window (encode + Algorithm 1, float backend).
  [[nodiscard]] int predict(const Window& window) const;

  /// Per-query Algorithm 1 detail for one raw window (float backend).
  [[nodiscard]] SmorePrediction predict_detail(const Window& window) const;

  /// Classify a window block: one encode_batch + one batched Algorithm 1
  /// pass on the selected backend.
  [[nodiscard]] std::vector<int> predict_batch(
      const WindowDataset& windows,
      ServeBackend backend = ServeBackend::kFloat) const;

  /// predict_batch plus every per-query intermediate, on the selected
  /// backend. Throws std::logic_error for kPacked before quantize().
  [[nodiscard]] SmoreBatchResult predict_batch_full(
      const WindowDataset& windows,
      ServeBackend backend = ServeBackend::kFloat) const;

  /// Accuracy + OOD rate against the windows' own labels, on the selected
  /// backend.
  [[nodiscard]] SmoreEvaluation evaluate(
      const WindowDataset& windows,
      ServeBackend backend = ServeBackend::kFloat) const;

  /// Encode windows with the pipeline's encoder (labels/domains carried
  /// through) — the escape hatch to the batch-first encoded-domain APIs.
  [[nodiscard]] HvDataset encode(const WindowDataset& windows) const;

  /// Serialize the whole artifact (see the format note above). Throws
  /// std::logic_error when untrained.
  void save(std::ostream& out) const;
  void save(const std::string& path) const;

  /// Reconstruct an artifact written by save(): encoder (basis rebuilt from
  /// config+seed), model, δ*, and the packed model when present. Throws
  /// std::runtime_error on corrupt input.
  static Pipeline load(std::istream& in);
  static Pipeline load(const std::string& path);

  /// Walk the header and section table WITHOUT parsing any payload: the
  /// cheap open used by lazy loaders (the registry's cold-tenant path) to
  /// reject a corrupt artifact and learn its size before committing to a
  /// full deserialization. Validates magic/version, the section count, each
  /// declared length against the actual bytes present, and the
  /// no-trailing-bytes rule — the same structural checks as load(), minus
  /// the section parsers. Throws std::runtime_error on corrupt input.
  static ArtifactInfo probe(std::istream& in);
  static ArtifactInfo probe(const std::string& path);

  [[nodiscard]] const Encoder& encoder() const noexcept { return *encoder_; }
  [[nodiscard]] std::shared_ptr<const Encoder> encoder_ptr() const noexcept {
    return encoder_;
  }
  /// The float model (mutable access for post-load tweaks: set_delta_star,
  /// absorb_labeled). After mutating, call quantize() again before save() —
  /// the packed model is NOT auto-refreshed, and save() rejects the one
  /// staleness it can detect (a domain-count mismatch).
  [[nodiscard]] const SmoreModel& model() const noexcept { return *model_; }
  [[nodiscard]] SmoreModel& model() noexcept { return *model_; }
  /// The packed model, or nullptr before quantize().
  [[nodiscard]] const BinarySmoreModel* packed() const noexcept {
    return packed_.get();
  }

  [[nodiscard]] std::size_t dim() const noexcept { return encoder_->dim(); }
  [[nodiscard]] int num_classes() const noexcept {
    return model_->num_classes();
  }
  [[nodiscard]] std::size_t num_domains() const noexcept {
    return model_->num_domains();
  }

 private:
  Pipeline() = default;  // load() assembles the state section by section

  void require_trained(const char* what) const;

  std::shared_ptr<const Encoder> encoder_;
  std::unique_ptr<SmoreModel> model_;
  std::unique_ptr<BinarySmoreModel> packed_;
  bool calibrated_ = false;  // calibrate() has run since the last fit
  bool packed_calibration_stale_ = false;  // see packed_calibration_stale()
};

}  // namespace smore
