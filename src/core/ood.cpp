#include "core/ood.hpp"

namespace smore {

namespace {
void check_threshold(double delta_star) {
  if (delta_star < -1.0 || delta_star > 1.0) {
    throw std::invalid_argument(
        "OodDetector: delta_star must lie in [-1, 1] (cosine range)");
  }
}
}  // namespace

OodDetector::OodDetector(double delta_star) : delta_star_(delta_star) {
  check_threshold(delta_star);
}

void OodDetector::set_delta_star(double delta_star) {
  check_threshold(delta_star);
  delta_star_ = delta_star;
}

OodVerdict OodDetector::evaluate(std::span<const double> similarities) const {
  if (similarities.empty()) {
    throw std::invalid_argument("OodDetector::evaluate: no similarities");
  }
  OodVerdict v;
  v.max_similarity = similarities[0];
  v.best_domain = 0;
  for (std::size_t k = 1; k < similarities.size(); ++k) {
    if (similarities[k] > v.max_similarity) {
      v.max_similarity = similarities[k];
      v.best_domain = k;
    }
  }
  v.is_ood = v.max_similarity < delta_star_;
  return v;
}

}  // namespace smore
