#include "core/ood.hpp"

#include <algorithm>

namespace smore {

double calibrate_threshold_quantile(std::vector<double> max_similarities,
                                    double target_ood_rate) {
  if (max_similarities.empty()) {
    throw std::invalid_argument(
        "calibrate_threshold_quantile: empty calibration set");
  }
  if (target_ood_rate < 0.0 || target_ood_rate > 1.0) {
    throw std::invalid_argument(
        "calibrate_threshold_quantile: rate outside [0, 1]");
  }
  std::sort(max_similarities.begin(), max_similarities.end());
  // δ* at the target quantile: samples strictly below it are flagged OOD.
  const auto idx = static_cast<std::size_t>(
      target_ood_rate * static_cast<double>(max_similarities.size()));
  const double delta =
      max_similarities[std::min(idx, max_similarities.size() - 1)];
  return std::clamp(delta, -1.0, 1.0);
}

namespace {
void check_threshold(double delta_star) {
  if (delta_star < -1.0 || delta_star > 1.0) {
    throw std::invalid_argument(
        "OodDetector: delta_star must lie in [-1, 1] (cosine range)");
  }
}
}  // namespace

OodDetector::OodDetector(double delta_star) : delta_star_(delta_star) {
  check_threshold(delta_star);
}

void OodDetector::set_delta_star(double delta_star) {
  check_threshold(delta_star);
  delta_star_ = delta_star;
}

OodVerdict OodDetector::evaluate(std::span<const double> similarities) const {
  if (similarities.empty()) {
    throw std::invalid_argument("OodDetector::evaluate: no similarities");
  }
  OodVerdict v;
  v.max_similarity = similarities[0];
  v.best_domain = 0;
  for (std::size_t k = 1; k < similarities.size(); ++k) {
    if (similarities[k] > v.max_similarity) {
      v.max_similarity = similarities[k];
      v.best_domain = k;
    }
  }
  v.is_ood = v.max_similarity < delta_star_;
  return v;
}

}  // namespace smore
