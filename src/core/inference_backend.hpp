#pragma once
// InferenceBackend: the backend-agnostic inference interface (DESIGN.md §10).
//
// SMORE ships in two serving representations — the float SmoreModel (cosine
// ensembling) and the packed BinarySmoreModel (XOR+popcount Hamming
// ensembling) — that answer the same question: run Algorithm 1 over a query
// block and return every per-query intermediate. Consumers that only *serve*
// (the micro-batching server, the evaluation harness, deployment tooling)
// must not care which representation is underneath; this interface is the
// one seam they talk through. Concrete adapters over the two model types
// live in src/serve/backend.hpp — nothing outside those two adapters names
// a concrete backend.
//
// The interface is deliberately small: one batched predict (the serving
// currency), plus the three introspection calls deployment reports need
// (footprint, dimension, domain count). Training, calibration, and continual
// updates stay on the concrete types — backends are immutable serving views.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/hv_matrix.hpp"

namespace smore {

/// Which serving representation answers queries.
enum class ServeBackend {
  kFloat,   ///< SmoreModel cosine ensembling
  kPacked,  ///< BinarySmoreModel XOR+popcount Hamming ensembling
};

/// Batched evaluation summary: accuracy and OOD rate from one pass of the
/// matrix kernels (the two metrics share the descriptor-similarity matrix,
/// which separate accuracy()/ood_rate() calls would compute twice).
struct SmoreEvaluation {
  double accuracy = 0.0;
  double ood_rate = 0.0;
};

/// Full per-query output of one batched Algorithm 1 pass — the result
/// currency of the backend interface (every field a ServeResult carries
/// comes from here, for the float and the packed backend alike).
struct SmoreBatchResult {
  std::vector<int> labels;             ///< [n] predicted class per query
  std::vector<std::uint8_t> ood;       ///< [n] 1 = flagged OOD (step E)
  std::vector<double> max_similarity;  ///< [n] δ_max per query
  std::vector<double> weights;         ///< [n × K] ensemble weights (step F)
  std::size_t num_domains = 0;         ///< K (row stride of `weights`)
};

/// Abstract immutable serving view of a trained SMORE model. All methods are
/// const and data-race-free once the underlying model is prepared for
/// serving (SmoreModel::prepare_serving; packed models are immutable by
/// construction) — a backend can be shared across any number of threads.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  /// Algorithm 1 over a float query block: labels, OOD verdicts, δ_max, and
  /// ensemble weights in one batched pass. Packed implementations quantize
  /// the block internally.
  [[nodiscard]] virtual SmoreBatchResult predict_batch_full(
      HvView queries) const = 0;

  /// Serving-state size in bytes (descriptors + class banks in the backend's
  /// own representation).
  [[nodiscard]] virtual std::size_t footprint_bytes() const noexcept = 0;

  /// Hyperdimensional size d of the queries this backend accepts.
  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;

  /// Number of source domains K.
  [[nodiscard]] virtual std::size_t num_domains() const noexcept = 0;

  /// Which representation this is (reports/labels only — never branch on it
  /// at a call site; that is what the virtual calls are for).
  [[nodiscard]] virtual ServeBackend kind() const noexcept = 0;

  /// Short display name ("float" / "packed").
  [[nodiscard]] virtual const char* name() const noexcept = 0;
};

}  // namespace smore
