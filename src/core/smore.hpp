#pragma once
// SMORE: similarity-based hyperdimensional domain adaptation — the paper's
// primary contribution (Sec 3.2-3.6, Figure 2, Algorithm 1).
//
// Training (fit):
//   B  split encoded samples by domain;
//   C  train one OnlineHD domain-specific model M_k per source domain;
//   D  bundle per-domain descriptors U_k = Σ_i H_i^k.
// Inference (predict):
//   E  OOD detection: δ_max = max_k δ(Q, U_k); OOD iff δ_max < δ*;
//   F  test-time model M_T = Σ_k w_k M_k with w from the similarities
//      (all domains when OOD, only domains with δ_k ≥ δ* otherwise);
//   G  label = argmax_c δ(Q, C_c^T).
//
// The encoder is deliberately *outside* this class: SMORE consumes encoded
// HvDatasets, so a dataset is encoded once and shared across folds,
// algorithms, and ablations.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "core/domain_descriptor.hpp"
#include "core/inference_backend.hpp"
#include "core/ood.hpp"
#include "core/test_time_model.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/onlinehd.hpp"

namespace smore {

/// SMORE hyperparameters.
struct SmoreConfig {
  double delta_star = 0.65;  ///< OOD threshold δ* (paper Fig. 5 optimum)
  OnlineHDConfig domain_model;  ///< per-domain OnlineHD training parameters
  WeightMode weight_mode = WeightMode::kStandardizedSoftmax;  ///< Eq. 3 variant
};

/// Per-query prediction detail (Algorithm 1 intermediate state), exposed for
/// analysis benches and the streaming example.
struct SmorePrediction {
  int label = -1;
  bool is_ood = false;
  double max_similarity = 0.0;            ///< δ_max
  std::vector<double> domain_similarity;  ///< δ(Q, U_k) for every k
  std::vector<double> weights;            ///< ensemble weights used
};

// SmoreEvaluation and SmoreBatchResult (the batched Algorithm 1 outputs)
// live in core/inference_backend.hpp with the backend interface they are the
// currency of.

/// The SMORE classifier.
class SmoreModel {
 public:
  /// Throws std::invalid_argument when num_classes <= 0 or dim == 0.
  SmoreModel(int num_classes, std::size_t dim, SmoreConfig config = {});

  [[nodiscard]] const SmoreConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Train domain-specific models and descriptors on the encoded training
  /// set. Requires at least one sample and at least one domain; the paper
  /// assumes K > 1 source domains but K = 1 degrades gracefully to plain
  /// OnlineHD. Returns per-domain final training accuracy.
  std::vector<double> fit(const HvDataset& train);

  /// Has fit() completed?
  [[nodiscard]] bool trained() const noexcept { return !models_.empty(); }

  /// Algorithm 1 for one encoded query.
  [[nodiscard]] SmorePrediction predict_detail(std::span<const float> hv) const;

  /// Predicted label only. Thin wrapper over a batch of one.
  [[nodiscard]] int predict(std::span<const float> hv) const;

  /// Algorithm 1 over a whole query block: descriptor similarities, OOD
  /// verdicts, and the ensembled argmax each run as one batched matrix-kernel
  /// pass instead of per-query loops.
  [[nodiscard]] std::vector<int> predict_batch(HvView queries) const;

  /// predict_batch plus every per-query intermediate Algorithm 1 exposes
  /// (OOD verdict, δ_max, ensemble weights) from the same single pass — what
  /// the serving layer fulfills responses from.
  [[nodiscard]] SmoreBatchResult predict_batch_full(HvView queries) const;

  /// Row-major [queries.rows × K] descriptor-similarity matrix δ(Q_i, U_k)
  /// (the input of OOD detection and ensemble weighting).
  [[nodiscard]] std::vector<double> similarities_batch(HvView queries) const;

  /// Accuracy and OOD rate of `data` in one batched pass.
  [[nodiscard]] SmoreEvaluation evaluate(const HvDataset& data) const;

  /// Fraction of `data` classified correctly (batched).
  [[nodiscard]] double accuracy(const HvDataset& data) const;

  /// Fraction of `data` flagged OOD (batched; paper's detector diagnostics).
  [[nodiscard]] double ood_rate(const HvDataset& data) const;

  /// Number of source domains K seen at fit time.
  [[nodiscard]] std::size_t num_domains() const noexcept {
    return models_.size();
  }

  /// Serving-state size in bytes: K·C per-domain class vectors plus K
  /// domain descriptors, all float — the float counterpart of
  /// BinarySmoreModel::footprint_bytes (footprint reports derive their
  /// float-vs-packed ratios from these two).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return models_.size() *
           (static_cast<std::size_t>(num_classes_) + 1) * dim_ *
           sizeof(float);
  }

  /// Domain-specific model M_k by position (ascending domain id).
  [[nodiscard]] const OnlineHDClassifier& domain_model(std::size_t k) const {
    return *models_.at(k);
  }

  /// The descriptor bank U.
  [[nodiscard]] const DomainDescriptorBank& descriptors() const noexcept {
    return descriptors_;
  }

  /// Mutable bank access for the lifecycle layer (usage credit, decay,
  /// round clock). Structural changes (absorb/remove) must go through
  /// absorb_labeled/remove_domain so the per-domain models stay aligned.
  [[nodiscard]] DomainDescriptorBank& descriptors() noexcept {
    return descriptors_;
  }

  /// Evict domain at position k (ascending-id order): drops the descriptor
  /// AND its class bank together, so positions stay aligned. Survivors are
  /// untouched bit-for-bit. Throws std::logic_error when untrained or when
  /// this would evict the last domain, std::out_of_range on a bad position.
  void remove_domain(std::size_t k);

  /// Adjust δ* after training (Fig. 5 sweeps this without refitting).
  void set_delta_star(double delta_star);

  /// Calibrate δ* from in-distribution data: sets the threshold at the
  /// `target_ood_rate` quantile of max-descriptor-similarity over
  /// `in_distribution` (e.g. 0.05 = flag the 5% least typical training
  /// samples), so the detector has a known false-positive budget — the
  /// standard way to pick an OOD threshold in deployment. Returns the chosen
  /// δ*. Throws std::logic_error before fit, std::invalid_argument for an
  /// empty set or a rate outside [0, 1].
  double calibrate_delta_star(const HvDataset& in_distribution,
                              double target_ood_rate = 0.05);

  /// Materialize the paper-literal test-time model for a query (used by
  /// equivalence tests and for inspection; predict() itself uses the
  /// Gram-accelerated path).
  [[nodiscard]] TestTimeModel materialize_test_time_model(
      std::span<const float> hv) const;

  /// Continual learning (the "Model Update" box of the paper's Fig. 2):
  /// absorb one labeled sample into the domain-specific model and descriptor
  /// of `domain_id` after fit(), creating both when the domain is new — the
  /// streaming complement to batch fit(). Uses the adaptive bootstrap rule
  /// (C += (1-δ)·H) plus one Eq.-2 refinement step. The Gram acceleration
  /// structures are refreshed lazily on the next prediction, so bursts of
  /// updates cost one rebuild. Throws std::logic_error before fit(),
  /// std::invalid_argument on bad label/dimension.
  void absorb_labeled(std::span<const float> hv, int label, int domain_id);

  /// Serialize the trained model (config, per-domain models, descriptors);
  /// load() reconstructs a ready-to-predict model including the Gram
  /// acceleration structures. Throws std::logic_error when untrained,
  /// std::runtime_error on corrupt input.
  void save(std::ostream& out) const;
  static SmoreModel load(std::istream& in);

  /// Deep copy (SmoreModel is move-only; copying is deliberate and
  /// explicit). The adaptation worker clones the live snapshot, mutates the
  /// private copy, and publishes it — readers never observe a half-updated
  /// model. Throws std::logic_error when untrained.
  [[nodiscard]] SmoreModel clone() const;

  /// Refresh every lazily rebuilt acceleration structure (ensemble
  /// evaluator, descriptor and class-vector batch caches) so that ALL const
  /// prediction methods are data-race-free from any number of threads.
  /// Publishing a model as an immutable serving snapshot requires calling
  /// this first (ModelSnapshot::make does); after any later mutation the
  /// model must be re-prepared before being shared again (DESIGN.md §9).
  /// Throws std::logic_error when untrained.
  void prepare_serving() const;

 private:
  [[nodiscard]] std::vector<double> weights_for(
      std::span<const float> hv, const OodVerdict& verdict,
      std::span<const double> sims) const;
  /// Batched Algorithm 1 core; fills `ood_flags` (one per query) and/or the
  /// non-label fields of `full` when non-null.
  [[nodiscard]] std::vector<int> predict_batch_impl(
      HvView queries, std::vector<std::uint8_t>* ood_flags,
      SmoreBatchResult* full) const;
  void rebuild_evaluator() const;

  int num_classes_;
  std::size_t dim_;
  SmoreConfig config_;
  OodDetector detector_;
  // unique_ptr keeps OnlineHDClassifier addresses stable for the evaluator.
  std::vector<std::unique_ptr<OnlineHDClassifier>> models_;
  DomainDescriptorBank descriptors_;
  // Lazily rebuilt after continual updates (absorb_labeled marks it stale).
  mutable std::unique_ptr<EnsembleEvaluator> evaluator_;
  mutable bool evaluator_stale_ = false;
};

}  // namespace smore
