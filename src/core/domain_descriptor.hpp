#pragma once
// Domain descriptors (paper Sec 3.5.1) + lifecycle state (DESIGN.md §13).
//
// For each source domain k, the descriptor U_k = Σ_i H_i^k bundles every
// encoded training sample of the domain. By the bundling property (Sec 3.1),
// U_k stays cosine-similar to the samples that contributed to it and nearly
// orthogonal to samples that did not — which is exactly what the OOD detector
// and the test-time ensembling weights need.
//
// Under continual adaptation a descriptor is not built once: it is bundled
// into on every merge, forever. The bank therefore keeps each U_k as a
// wide-counter accumulator (hdc/wide_counter.hpp) — double-precision master,
// float mirror for the similarity kernels — so repeated bundling stays exact
// instead of saturating float accumulation, plus per-domain lifecycle
// metadata (usage, rounds, merges) that the eviction policy scores.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/wide_counter.hpp"

namespace smore {

/// Per-domain lifecycle bookkeeping (DESIGN.md §13). Rounds are ticks of the
/// bank's own clock (advance_round()), not wall time, so the state is
/// deterministic and serializes with the model.
struct DomainMeta {
  std::uint64_t enrolled_round = 0;   ///< bank clock when first absorbed
  std::uint64_t last_used_round = 0;  ///< bank clock at last usage credit
  std::uint64_t merge_count = 0;      ///< lifecycle merges bundled into U_k
  double usage = 0.0;                 ///< decayed served-query credit
};

/// The bank of K domain descriptors, built during training and mutated by
/// the adaptation lifecycle (absorb/merge/remove).
///
/// Concurrency: const similarity queries are safe from multiple threads on a
/// bank produced by the HvDataset constructor or load() (the packed batch
/// cache is warmed there). Mutations (absorb/remove/usage updates) are not
/// synchronized against readers; after streaming updates, make one similarity
/// call before sharing the bank across threads again.
class DomainDescriptorBank {
 public:
  DomainDescriptorBank() = default;

  /// Bundle the rows of `train` into one descriptor per distinct domain id
  /// (ascending id order). Throws std::invalid_argument when `train` is empty.
  explicit DomainDescriptorBank(const HvDataset& train);

  /// Number of domains K.
  [[nodiscard]] std::size_t size() const noexcept { return descriptors_.size(); }
  [[nodiscard]] bool empty() const noexcept { return descriptors_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return descriptors_.empty() ? 0 : descriptors_.front().dim();
  }

  /// Descriptor U_k by position (not domain id) — the float mirror of the
  /// wide-counter master, always in sync.
  [[nodiscard]] const Hypervector& descriptor(std::size_t k) const {
    return descriptors_.at(k);
  }

  /// Original domain id of position k (LODO training sets have a hole in the
  /// id range, so positions and ids can differ).
  [[nodiscard]] int domain_id(std::size_t k) const { return ids_.at(k); }
  [[nodiscard]] const std::vector<int>& domain_ids() const noexcept {
    return ids_;
  }

  /// Number of samples bundled into descriptor k.
  [[nodiscard]] std::size_t sample_count(std::size_t k) const {
    return counts_.at(k);
  }

  /// Lifecycle metadata of descriptor k.
  [[nodiscard]] const DomainMeta& meta(std::size_t k) const {
    return meta_.at(k);
  }

  /// The bank's lifecycle clock (number of advance_round() calls).
  [[nodiscard]] std::uint64_t clock() const noexcept { return clock_; }

  /// Smallest id strictly above every id EVER enrolled — monotone across
  /// evictions, so a fresh pseudo-domain never aliases a dead one's usage
  /// history.
  [[nodiscard]] int next_domain_id() const noexcept { return next_id_; }

  /// δ(query, U_k) for every k. Thin wrapper over a batch of one.
  [[nodiscard]] std::vector<double> similarities(
      std::span<const float> query) const;

  /// Row-major [queries.rows × K] matrix of δ(Q_i, U_k): one blocked matrix
  /// kernel over the packed descriptors instead of a per-query loop.
  [[nodiscard]] std::vector<double> similarities_batch(HvView queries) const;

  /// Incremental construction (streaming/adaptation use cases): bundle one
  /// more sample into the descriptor of `domain_id`, creating the descriptor
  /// when the id is new. `dim` fixes the dimension on first use.
  void absorb(std::span<const float> hv, int domain_id);

  /// Bundle a whole block of samples into the descriptor of `domain_id` in
  /// one pass (the batch form of absorb: streaming enrollment hands over an
  /// adaptation batch, the packed cache goes stale once instead of per row).
  void absorb_batch(HvView block, int domain_id);

  /// Drop descriptor k (position, not id) — the evict half of the lifecycle.
  /// Survivors are untouched bit-for-bit; the caller must drop the matching
  /// class bank itself (SmoreModel::remove_domain does both).
  /// Throws std::out_of_range on a bad position.
  void remove(std::size_t k);

  /// Credit served queries to the domain with this id (no-op for unknown
  /// ids — the domain may have been evicted since the batch was scored).
  /// Also stamps last_used_round with the current clock.
  void note_usage(int domain_id, double amount);

  /// Record a lifecycle merge into descriptor k (position).
  void note_merge(std::size_t k);

  /// Multiply every usage score by `factor` (exponential forgetting — recent
  /// traffic outweighs history when the eviction policy ranks domains).
  void decay_usage(double factor);

  /// Tick the lifecycle clock (once per adaptation round).
  void advance_round() noexcept { ++clock_; }

  /// Binary serialization: versioned record with ids, sample counts,
  /// lifecycle metadata and the DOUBLE wide-counter masters (the float
  /// mirrors are derived state). Format is stable within a library version.
  void save(std::ostream& out) const;
  static DomainDescriptorBank load(std::istream& in);

  /// Rebuild the lazy batch cache now if it is stale. After this, const
  /// similarity queries are safe from any number of threads until the next
  /// absorb — the serving snapshot contract (DESIGN.md §9).
  void warm_cache() const { (void)packed(); }

 private:
  /// Packed [K × dim] descriptor block plus squared norms for the batch
  /// kernel; rebuilt lazily after absorb().
  const HvMatrix& packed() const;
  /// Position of `domain_id`, inserting an empty descriptor (sorted by id)
  /// when new.
  std::size_t locate_or_create(int domain_id, std::size_t dim);

  std::vector<Hypervector> descriptors_;  // float mirrors (query plane)
  std::vector<WideAccumulator> accum_;    // double masters (update plane)
  std::vector<int> ids_;
  std::vector<std::size_t> counts_;
  std::vector<DomainMeta> meta_;
  std::uint64_t clock_ = 0;
  int next_id_ = 0;
  mutable HvMatrix packed_;
  mutable std::vector<double> packed_norms_sq_;
  mutable bool packed_stale_ = true;
};

}  // namespace smore
