#pragma once
// Domain descriptors (paper Sec 3.5.1).
//
// For each source domain k, the descriptor U_k = Σ_i H_i^k bundles every
// encoded training sample of the domain. By the bundling property (Sec 3.1),
// U_k stays cosine-similar to the samples that contributed to it and nearly
// orthogonal to samples that did not — which is exactly what the OOD detector
// and the test-time ensembling weights need.

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"

namespace smore {

/// The bank of K domain descriptors, built once during training.
///
/// Concurrency: const similarity queries are safe from multiple threads on a
/// bank produced by the HvDataset constructor or load() (the packed batch
/// cache is warmed there). absorb() is not synchronized against readers;
/// after streaming updates, make one similarity call before sharing the bank
/// across threads again.
class DomainDescriptorBank {
 public:
  DomainDescriptorBank() = default;

  /// Bundle the rows of `train` into one descriptor per distinct domain id
  /// (ascending id order). Throws std::invalid_argument when `train` is empty.
  explicit DomainDescriptorBank(const HvDataset& train);

  /// Number of domains K.
  [[nodiscard]] std::size_t size() const noexcept { return descriptors_.size(); }
  [[nodiscard]] bool empty() const noexcept { return descriptors_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept {
    return descriptors_.empty() ? 0 : descriptors_.front().dim();
  }

  /// Descriptor U_k by position (not domain id).
  [[nodiscard]] const Hypervector& descriptor(std::size_t k) const {
    return descriptors_.at(k);
  }

  /// Original domain id of position k (LODO training sets have a hole in the
  /// id range, so positions and ids can differ).
  [[nodiscard]] int domain_id(std::size_t k) const { return ids_.at(k); }
  [[nodiscard]] const std::vector<int>& domain_ids() const noexcept {
    return ids_;
  }

  /// Number of samples bundled into descriptor k.
  [[nodiscard]] std::size_t sample_count(std::size_t k) const {
    return counts_.at(k);
  }

  /// δ(query, U_k) for every k. Thin wrapper over a batch of one.
  [[nodiscard]] std::vector<double> similarities(
      std::span<const float> query) const;

  /// Row-major [queries.rows × K] matrix of δ(Q_i, U_k): one blocked matrix
  /// kernel over the packed descriptors instead of a per-query loop.
  [[nodiscard]] std::vector<double> similarities_batch(HvView queries) const;

  /// Incremental construction (streaming/adaptation use cases): bundle one
  /// more sample into the descriptor of `domain_id`, creating the descriptor
  /// when the id is new. `dim` fixes the dimension on first use.
  void absorb(std::span<const float> hv, int domain_id);

  /// Bundle a whole block of samples into the descriptor of `domain_id` in
  /// one pass (the batch form of absorb: streaming enrollment hands over an
  /// adaptation batch, the packed cache goes stale once instead of per row).
  void absorb_batch(HvView block, int domain_id);

  /// Binary serialization (descriptor count, ids, sample counts, raw
  /// vectors). Format is stable within a library version.
  void save(std::ostream& out) const;
  static DomainDescriptorBank load(std::istream& in);

  /// Rebuild the lazy batch cache now if it is stale. After this, const
  /// similarity queries are safe from any number of threads until the next
  /// absorb — the serving snapshot contract (DESIGN.md §9).
  void warm_cache() const { (void)packed(); }

 private:
  /// Packed [K × dim] descriptor block plus squared norms for the batch
  /// kernel; rebuilt lazily after absorb().
  const HvMatrix& packed() const;

  std::vector<Hypervector> descriptors_;
  std::vector<int> ids_;
  std::vector<std::size_t> counts_;
  mutable HvMatrix packed_;
  mutable std::vector<double> packed_norms_sq_;
  mutable bool packed_stale_ = true;
};

}  // namespace smore
