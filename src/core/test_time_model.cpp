#include "core/test_time_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace smore {

std::vector<double> ensemble_weights(std::span<const double> similarities,
                                     double delta_star, bool is_ood,
                                     WeightMode mode) {
  std::vector<double> w(similarities.begin(), similarities.end());

  // Algorithm 1 lines 5-6: in-distribution queries drop dissimilar domains.
  if (!is_ood) {
    for (auto& x : w) {
      if (x < delta_star) x = 0.0;
    }
  }

  switch (mode) {
    case WeightMode::kStandardizedSoftmax: {
      // z-score across domains, then exponentiate: scale-free contrast.
      // Dropped (gated) domains keep weight 0 and are excluded from the
      // statistics.
      double sum = 0.0;
      double sum_sq = 0.0;
      int live = 0;
      for (std::size_t k = 0; k < w.size(); ++k) {
        if (!is_ood && similarities[k] < delta_star) continue;
        sum += similarities[k];
        sum_sq += similarities[k] * similarities[k];
        ++live;
      }
      if (live == 0) break;  // degenerate; handled by the uniform fallback
      const double mean = sum / live;
      const double var = std::max(0.0, sum_sq / live - mean * mean);
      const double sd = std::sqrt(var);
      for (std::size_t k = 0; k < w.size(); ++k) {
        if (!is_ood && similarities[k] < delta_star) {
          w[k] = 0.0;
          continue;
        }
        const double z =
            sd > 1e-12 ? std::clamp((similarities[k] - mean) / sd, -4.0, 4.0)
                       : 0.0;
        w[k] = std::exp(0.5 * z);
      }
      break;
    }
    case WeightMode::kRawSimilarity:
      break;
    case WeightMode::kClampedSimilarity:
      for (auto& x : w) x = std::max(x, 0.0);
      break;
    case WeightMode::kSoftmax: {
      constexpr double kTau = 0.1;
      double max_w = -2.0;
      for (std::size_t k = 0; k < w.size(); ++k) {
        // Dropped domains must stay dropped: mark with -inf before softmax.
        if (!is_ood && similarities[k] < delta_star) {
          w[k] = -std::numeric_limits<double>::infinity();
        } else {
          w[k] = similarities[k];
          max_w = std::max(max_w, w[k]);
        }
      }
      double sum = 0.0;
      for (auto& x : w) {
        x = std::isinf(x) ? 0.0 : std::exp((x - max_w) / kTau);
        sum += x;
      }
      if (sum > 0.0) {
        for (auto& x : w) x /= sum;
      }
      break;
    }
    case WeightMode::kTopOne: {
      std::size_t best = 0;
      for (std::size_t k = 1; k < similarities.size(); ++k) {
        if (similarities[k] > similarities[best]) best = k;
      }
      for (std::size_t k = 0; k < w.size(); ++k) w[k] = (k == best) ? 1.0 : 0.0;
      break;
    }
  }

  // Degenerate all-zero weights (e.g., every similarity negative under
  // clamping): fall back to a uniform ensemble so M_T stays well-defined.
  double total = 0.0;
  for (const double x : w) total += std::abs(x);
  if (total == 0.0) {
    for (auto& x : w) x = 1.0;
  }
  return w;
}

TestTimeModel::TestTimeModel(std::span<const OnlineHDClassifier* const> models,
                             std::span<const double> weights) {
  if (models.empty() || models.size() != weights.size()) {
    throw std::invalid_argument("TestTimeModel: model/weight arity mismatch");
  }
  const int n = models.front()->num_classes();
  const std::size_t d = models.front()->dim();
  for (const auto* m : models) {
    if (m->num_classes() != n || m->dim() != d) {
      throw std::invalid_argument("TestTimeModel: heterogeneous models");
    }
  }
  classes_.assign(static_cast<std::size_t>(n), Hypervector(d));
  for (int c = 0; c < n; ++c) {
    Hypervector& out = classes_[static_cast<std::size_t>(c)];
    for (std::size_t k = 0; k < models.size(); ++k) {
      out.add_scaled(models[k]->class_vector(c),
                     static_cast<float>(weights[k]));
    }
  }
}

int TestTimeModel::predict(std::span<const float> hv) const {
  int best = 0;
  double best_sim = -2.0;
  for (int c = 0; c < num_classes(); ++c) {
    const auto& cls = classes_[static_cast<std::size_t>(c)];
    if (hv.size() != cls.dim()) {
      throw std::invalid_argument("TestTimeModel::predict: dim mismatch");
    }
    const double s = ops::cosine(hv.data(), cls.data(), cls.dim());
    if (s > best_sim) {
      best_sim = s;
      best = c;
    }
  }
  return best;
}

EnsembleEvaluator::EnsembleEvaluator(
    std::vector<const OnlineHDClassifier*> models)
    : models_(std::move(models)) {
  if (models_.empty()) {
    throw std::invalid_argument("EnsembleEvaluator: no models");
  }
  num_classes_ = models_.front()->num_classes();
  dim_ = models_.front()->dim();
  for (const auto* m : models_) {
    if (m == nullptr || m->num_classes() != num_classes_ || m->dim() != dim_) {
      throw std::invalid_argument("EnsembleEvaluator: heterogeneous models");
    }
  }
  const std::size_t k = models_.size();
  gram_.assign(static_cast<std::size_t>(num_classes_),
               std::vector<double>(k * k, 0.0));
  for (int c = 0; c < num_classes_; ++c) {
    auto& g = gram_[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i; j < k; ++j) {
        const double v = ops::dot(models_[i]->class_vector(c).data(),
                                  models_[j]->class_vector(c).data(), dim_);
        g[i * k + j] = v;
        g[j * k + i] = v;
      }
    }
  }
  // Pack every class vector of every model contiguously (row c·K + k) so the
  // batched path computes all K·n dots of a query block with one kernel.
  packed_ = HvMatrix(static_cast<std::size_t>(num_classes_) * k, dim_);
  for (int c = 0; c < num_classes_; ++c) {
    for (std::size_t i = 0; i < k; ++i) {
      packed_.set_row(static_cast<std::size_t>(c) * k + i,
                      models_[i]->class_vector(c).span());
    }
  }
}

void EnsembleEvaluator::combine_class(const double* class_dots,
                                      std::span<const double> w, int c,
                                      double& dot_qc, double& norm_sq) const {
  const std::size_t k = models_.size();
  dot_qc = 0.0;
  norm_sq = 0.0;
  // dot(Q, C_c^T) = Σ_k w_k <Q, C_c^k>
  for (std::size_t i = 0; i < k; ++i) {
    if (w[i] == 0.0) continue;
    dot_qc += w[i] * class_dots[i];
  }
  // ‖C_c^T‖² = w^T G_c w
  const auto& g = gram_[static_cast<std::size_t>(c)];
  for (std::size_t i = 0; i < k; ++i) {
    if (w[i] == 0.0) continue;
    for (std::size_t j = 0; j < k; ++j) {
      if (w[j] == 0.0) continue;
      norm_sq += w[i] * w[j] * g[i * k + j];
    }
  }
}

std::vector<double> EnsembleEvaluator::class_similarities(
    std::span<const float> hv, std::span<const double> weights) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("EnsembleEvaluator: query dim mismatch");
  }
  if (weights.size() != models_.size()) {
    throw std::invalid_argument("EnsembleEvaluator: weight arity mismatch");
  }
  const std::size_t k = models_.size();
  const double q_norm = ops::nrm2(hv.data(), dim_);
  std::vector<double> class_dots(k);
  std::vector<double> sims(static_cast<std::size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    for (std::size_t i = 0; i < k; ++i) {
      class_dots[i] =
          weights[i] == 0.0
              ? 0.0
              : ops::dot(hv.data(), models_[i]->class_vector(c).data(), dim_);
    }
    double dot_qc = 0.0;
    double norm_sq = 0.0;
    combine_class(class_dots.data(), weights, c, dot_qc, norm_sq);
    const double denom = q_norm * std::sqrt(std::max(norm_sq, 0.0));
    sims[static_cast<std::size_t>(c)] = denom > 0.0 ? dot_qc / denom : 0.0;
  }
  return sims;
}

int EnsembleEvaluator::predict(std::span<const float> hv,
                               std::span<const double> weights) const {
  const std::vector<double> sims = class_similarities(hv, weights);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (sims[static_cast<std::size_t>(c)] >
        sims[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

std::vector<int> EnsembleEvaluator::predict_batch(
    HvView queries, std::span<const double> weights) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument("EnsembleEvaluator: query dim mismatch");
  }
  const std::size_t k = models_.size();
  if (weights.size() != queries.rows * k) {
    throw std::invalid_argument("EnsembleEvaluator: weight arity mismatch");
  }
  const auto n = static_cast<std::size_t>(num_classes_);
  // One blocked kernel for all <Q_q, C_c^k> dots, then the cheap per-query
  // Gram combination. The query norm scales every class score equally, so
  // the argmax skips it.
  std::vector<double> dots(queries.rows * n * k);
  ops::dot_matrix(queries.data, queries.rows, packed_.data(), n * k, dim_,
                  dots.data());
  std::vector<int> labels(queries.rows);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    const double* qdots = dots.data() + q * n * k;
    const std::span<const double> w(weights.data() + q * k, k);
    std::size_t best = 0;
    // Unnormalized scores are unbounded below (no division by the query
    // norm), so a cosine-range sentinel like -2 would be wrong here.
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < n; ++c) {
      double dot_qc = 0.0;
      double norm_sq = 0.0;
      combine_class(qdots + c * k, w, static_cast<int>(c), dot_qc, norm_sq);
      const double score =
          norm_sq > 0.0 ? dot_qc / std::sqrt(norm_sq) : 0.0;
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    labels[q] = static_cast<int>(best);
  }
  return labels;
}

}  // namespace smore
