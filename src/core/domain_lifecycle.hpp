#pragma once
// DomainLifecycle: bounded continual adaptation (DESIGN.md §13).
//
// The serving stack enrolls OOD traffic as new pseudo-domains (the paper's
// Fig. 2 "Model Update" box), but enrollment alone grows the bank — and the
// O(K) per-query ensemble cost — linearly with stream length. This layer
// makes long-running adaptation O(1) in steady state by running every
// adaptation round through a fixed state machine:
//
//   enroll → cluster → merge → decay → evict
//
//   cluster  split the round's OOD buffer into k coherent pseudo-domains
//            (hdc/cluster.hpp) instead of one smeared blob;
//   merge    a cluster whose centroid is ≥ merge_threshold cosine-similar to
//            an existing UNPROTECTED descriptor bundles INTO it (wide
//            counters keep the repeated bundling lossless) — recurring drift
//            re-uses the pseudo-domain it enrolled, while the operator's
//            source domains are never polluted with pseudo-labeled traffic;
//   enroll   everything else becomes a new pseudo-domain at a fresh id;
//   decay    usage scores forget exponentially, so eviction ranks recent
//            traffic above history;
//   evict    while K > max_domains, drop the least-used / oldest descriptor
//            AND its class bank together (SmoreModel::remove_domain).
//
// The engine is deliberately a pure model-to-model transformation: it knows
// nothing about threads, snapshots, or servers. The serving layers clone the
// live model, run one round, and publish the result (serve/server.cpp,
// serve/router.cpp), so readers never observe intermediate states.

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "core/smore.hpp"
#include "hdc/cluster.hpp"
#include "hdc/hv_matrix.hpp"

namespace smore {

/// Lifecycle policy knobs.
struct LifecycleConfig {
  /// Hard cap on K: after every round, descriptors beyond this are evicted
  /// (least-used first). The knob that makes serving cost O(1).
  std::size_t max_domains = 16;
  /// Bundle a cluster into an existing domain when its centroid's cosine to
  /// that descriptor reaches this; below it, enroll a new domain. In the
  /// serve path every candidate arrives through the OOD gate, so its best
  /// similarity is < δ* by construction — the threshold must sit BELOW the
  /// model's delta_star (default 0.65) or merging is unreachable and
  /// recurring drift re-enrolls forever. The merge band is
  /// [merge_threshold, δ*): too far to serve, close enough to be a known
  /// regime.
  double merge_threshold = 0.50;
  /// Per-round multiplier on every usage score (exponential forgetting).
  double usage_decay = 0.98;
  /// The first N bank positions are never evicted AND never merged into
  /// (typically the source domains the model was trained on — their class
  /// banks hold ground-truth labels, which pseudo-labeled merges would
  /// poison). Must leave at least one evictable position for the cap to be
  /// enforceable past N+1 enrolled domains.
  std::size_t protected_domains = 0;
  /// Round clustering (see hdc/cluster.hpp).
  ClusterConfig cluster;
};

/// What one lifecycle round did (serving stats, bench output, and the
/// telemetry event log — each id below becomes one lifecycle event when the
/// round's generation is published).
struct LifecycleRoundStats {
  std::size_t clusters = 0;      ///< coherent groups found in the round
  std::size_t enrolled_new = 0;  ///< clusters enrolled as new domains
  std::size_t merged = 0;        ///< clusters bundled into existing domains
  std::size_t evicted = 0;       ///< domains dropped by the cap
  std::size_t absorbed = 0;      ///< samples absorbed (all of them)
  std::vector<int> merged_ids;   ///< target domain id per merged cluster
  std::vector<int> enrolled_ids; ///< fresh domain id per enrolled cluster
  std::vector<int> evicted_ids;  ///< ids of the dropped domains
};

/// The lifecycle engine. Stateless between rounds beyond its config — all
/// durable state (usage, clocks, merge counts) lives in the model's
/// descriptor bank and serializes with it.
class DomainLifecycle {
 public:
  explicit DomainLifecycle(LifecycleConfig config) : config_(config) {}

  [[nodiscard]] const LifecycleConfig& config() const noexcept {
    return config_;
  }

  /// Run one adaptation round against `model` (must be trained; typically a
  /// clone of the live generation):
  ///   1. tick the bank clock, credit `usage` (id → served-query weight
  ///      since the last round), decay all usage scores;
  ///   2. cluster `samples` (one pseudo-label per row, parallel spans);
  ///   3. merge or enroll each cluster (every sample is absorbed — labeled
  ///      updates into the domain model, bundle into the descriptor);
  ///   4. evict down to max_domains.
  /// Throws std::invalid_argument on samples/labels size mismatch,
  /// std::logic_error on an untrained model.
  LifecycleRoundStats run_round(
      SmoreModel& model, HvView samples, std::span<const int> pseudo_labels,
      std::span<const std::pair<int, double>> usage = {});

 private:
  LifecycleConfig config_;
};

}  // namespace smore
