#pragma once
// Out-of-distribution detection (paper Sec 3.5.2, Algorithm 1 lines 1-2).
//
// A query is OOD when even its most similar source domain is below the
// threshold δ*: max_k δ(Q, U_k) < δ*. δ* is the paper's single tunable
// hyperparameter (Figure 5 sweeps it; the best value reported is ≈ 0.65).

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace smore {

/// Verdict of the OOD detector for one query.
struct OodVerdict {
  bool is_ood = false;
  double max_similarity = 0.0;  ///< δ_max over all domain descriptors
  std::size_t best_domain = 0;  ///< argmax position
};

/// Shared calibration rule of SmoreModel::calibrate_delta_star and
/// BinarySmoreModel::calibrate_delta_star: the δ* sitting at the
/// `target_ood_rate` quantile of per-sample maximum descriptor similarities
/// (samples strictly below it are flagged OOD), clamped to the detector's
/// [-1, 1] range. Takes the vector by value — it is sorted in place.
/// Throws std::invalid_argument when `max_similarities` is empty or the
/// rate lies outside [0, 1].
[[nodiscard]] double calibrate_threshold_quantile(
    std::vector<double> max_similarities, double target_ood_rate);

/// Thresholding detector over domain-descriptor similarities.
class OodDetector {
 public:
  /// Throws std::invalid_argument when `delta_star` is outside [-1, 1].
  explicit OodDetector(double delta_star = 0.65);

  [[nodiscard]] double delta_star() const noexcept { return delta_star_; }
  void set_delta_star(double delta_star);

  /// Classify from precomputed descriptor similarities.
  /// Throws std::invalid_argument when `similarities` is empty.
  [[nodiscard]] OodVerdict evaluate(
      std::span<const double> similarities) const;

 private:
  double delta_star_;
};

}  // namespace smore
