#include "core/smore.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace smore {

SmoreModel::SmoreModel(int num_classes, std::size_t dim, SmoreConfig config)
    : num_classes_(num_classes),
      dim_(dim),
      config_(config),
      detector_(config.delta_star) {
  if (num_classes <= 0) {
    throw std::invalid_argument("SmoreModel: num_classes must be positive");
  }
  if (dim == 0) {
    throw std::invalid_argument("SmoreModel: dim must be positive");
  }
}

std::vector<double> SmoreModel::fit(const HvDataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("SmoreModel::fit: empty training set");
  }
  if (train.dim() != dim_) {
    throw std::invalid_argument("SmoreModel::fit: dataset dimension mismatch");
  }

  // D: domain descriptors (bundles every sample per domain, sorted by id).
  descriptors_ = DomainDescriptorBank(train);

  // B + C: split by domain and train one model per domain.
  models_.clear();
  std::vector<double> final_accuracy;
  for (std::size_t k = 0; k < descriptors_.size(); ++k) {
    const int domain_id = descriptors_.domain_id(k);
    const auto idx = train.indices_of_domain(domain_id);
    const HvDataset domain_data = train.select(idx);

    auto model = std::make_unique<OnlineHDClassifier>(num_classes_, dim_);
    const auto history = model->fit(domain_data, config_.domain_model);
    final_accuracy.push_back(history.empty() ? 0.0 : history.back());
    models_.push_back(std::move(model));
  }

  // Precompute the Gram matrices for materialization-free ensembling.
  rebuild_evaluator();

  return final_accuracy;
}

void SmoreModel::rebuild_evaluator() const {
  std::vector<const OnlineHDClassifier*> ptrs;
  ptrs.reserve(models_.size());
  for (const auto& m : models_) ptrs.push_back(m.get());
  evaluator_ = std::make_unique<EnsembleEvaluator>(std::move(ptrs));
  evaluator_stale_ = false;
}

void SmoreModel::absorb_labeled(std::span<const float> hv, int label,
                                int domain_id) {
  if (!trained()) {
    throw std::logic_error("SmoreModel::absorb_labeled before fit");
  }
  if (hv.size() != dim_) {
    throw std::invalid_argument("absorb_labeled: dimension mismatch");
  }
  if (label < 0 || label >= num_classes_) {
    throw std::invalid_argument("absorb_labeled: label out of range");
  }
  // Locate (or create) the domain model at the position matching the
  // descriptor bank's sorted-id order.
  const auto& ids = descriptors_.domain_ids();
  const auto it = std::lower_bound(ids.begin(), ids.end(), domain_id);
  std::size_t pos = static_cast<std::size_t>(it - ids.begin());
  if (it == ids.end() || *it != domain_id) {
    models_.insert(models_.begin() + static_cast<std::ptrdiff_t>(pos),
                   std::make_unique<OnlineHDClassifier>(num_classes_, dim_));
  }
  descriptors_.absorb(hv, domain_id);  // keeps its own sorted order
  models_[pos]->bootstrap(hv, label);
  models_[pos]->refine(hv, label, config_.domain_model.learning_rate);
  evaluator_stale_ = true;
}

void SmoreModel::remove_domain(std::size_t k) {
  if (!trained()) {
    throw std::logic_error("SmoreModel::remove_domain before fit");
  }
  if (k >= models_.size()) {
    throw std::out_of_range("SmoreModel::remove_domain: bad position");
  }
  if (models_.size() == 1) {
    throw std::logic_error(
        "SmoreModel::remove_domain: cannot evict the last domain");
  }
  models_.erase(models_.begin() + static_cast<std::ptrdiff_t>(k));
  descriptors_.remove(k);
  evaluator_stale_ = true;
}

std::vector<double> SmoreModel::weights_for(std::span<const float> /*hv*/,
                                            const OodVerdict& verdict,
                                            std::span<const double> sims) const {
  return ensemble_weights(sims, detector_.delta_star(), verdict.is_ood,
                          config_.weight_mode);
}

SmorePrediction SmoreModel::predict_detail(std::span<const float> hv) const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::predict before fit");
  }
  SmorePrediction out;
  // E: OOD detection from descriptor similarities (Algorithm 1 lines 1-2).
  out.domain_similarity = descriptors_.similarities(hv);
  const OodVerdict verdict = detector_.evaluate(out.domain_similarity);
  out.is_ood = verdict.is_ood;
  out.max_similarity = verdict.max_similarity;

  // F: ensemble weights (lines 3-6).
  out.weights = weights_for(hv, verdict, out.domain_similarity);

  // G: argmax over ensembled class hypervectors (line 7).
  if (evaluator_stale_) rebuild_evaluator();
  out.label = evaluator_->predict(hv, out.weights);
  return out;
}

int SmoreModel::predict(std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("SmoreModel::predict: dimension mismatch");
  }
  return predict_batch(HvView(hv)).at(0);
}

std::vector<double> SmoreModel::similarities_batch(HvView queries) const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::similarities_batch before fit");
  }
  return descriptors_.similarities_batch(queries);
}

std::vector<int> SmoreModel::predict_batch_impl(
    HvView queries, std::vector<std::uint8_t>* ood_flags,
    SmoreBatchResult* full) const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::predict before fit");
  }
  const std::size_t k = descriptors_.size();
  if (full != nullptr) full->num_domains = k;
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument("SmoreModel::predict_batch: dim mismatch");
  }
  // E: one matrix kernel for every δ(Q_i, U_k) (Algorithm 1 lines 1-2).
  const std::vector<double> sims = descriptors_.similarities_batch(queries);
  if (ood_flags != nullptr) ood_flags->assign(queries.rows, 0);
  if (full != nullptr) {
    full->ood.assign(queries.rows, 0);
    full->max_similarity.assign(queries.rows, 0.0);
  }

  // F: per-query verdicts and ensemble weights (lines 3-6) — O(K) each.
  std::vector<double> weights(queries.rows * k);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    const std::span<const double> row(sims.data() + q * k, k);
    const OodVerdict verdict = detector_.evaluate(row);
    if (ood_flags != nullptr && verdict.is_ood) (*ood_flags)[q] = 1;
    if (full != nullptr) {
      if (verdict.is_ood) full->ood[q] = 1;
      full->max_similarity[q] = verdict.max_similarity;
    }
    const std::vector<double> w = ensemble_weights(
        row, detector_.delta_star(), verdict.is_ood, config_.weight_mode);
    std::copy(w.begin(), w.end(), weights.begin() + q * k);
  }

  // G: batched ensembled argmax (line 7).
  if (evaluator_stale_) rebuild_evaluator();
  std::vector<int> labels = evaluator_->predict_batch(queries, weights);
  if (full != nullptr) full->weights = std::move(weights);
  return labels;
}

std::vector<int> SmoreModel::predict_batch(HvView queries) const {
  return predict_batch_impl(queries, nullptr, nullptr);
}

SmoreBatchResult SmoreModel::predict_batch_full(HvView queries) const {
  SmoreBatchResult out;
  out.labels = predict_batch_impl(queries, nullptr, &out);
  return out;
}

SmoreEvaluation SmoreModel::evaluate(const HvDataset& data) const {
  SmoreEvaluation out;
  if (data.empty()) return out;
  std::vector<std::uint8_t> flags;
  const std::vector<int> labels =
      predict_batch_impl(data.view(), &flags, nullptr);
  std::size_t correct = 0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += labels[i] == data.label(i) ? 1 : 0;
    flagged += flags[i];
  }
  out.accuracy = static_cast<double>(correct) / static_cast<double>(data.size());
  out.ood_rate = static_cast<double>(flagged) / static_cast<double>(data.size());
  return out;
}

double SmoreModel::accuracy(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  return evaluate(data).accuracy;
}

double SmoreModel::ood_rate(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  if (!trained()) {
    throw std::logic_error("SmoreModel::ood_rate before fit");
  }
  // Detector-only path: skips the classifier stage entirely.
  const std::vector<double> sims = descriptors_.similarities_batch(data.view());
  const std::size_t k = descriptors_.size();
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const std::span<const double> row(sims.data() + i * k, k);
    flagged += detector_.evaluate(row).is_ood ? 1 : 0;
  }
  return static_cast<double>(flagged) / static_cast<double>(data.size());
}

void SmoreModel::set_delta_star(double delta_star) {
  detector_.set_delta_star(delta_star);
  config_.delta_star = delta_star;
}

double SmoreModel::calibrate_delta_star(const HvDataset& in_distribution,
                                        double target_ood_rate) {
  if (!trained()) {
    throw std::logic_error("SmoreModel::calibrate_delta_star before fit");
  }
  if (in_distribution.empty()) {
    throw std::invalid_argument("calibrate_delta_star: empty calibration set");
  }
  const std::vector<double> sims =
      descriptors_.similarities_batch(in_distribution.view());
  const std::size_t k = descriptors_.size();
  std::vector<double> max_sims;
  max_sims.reserve(in_distribution.size());
  for (std::size_t i = 0; i < in_distribution.size(); ++i) {
    const std::span<const double> row(sims.data() + i * k, k);
    max_sims.push_back(detector_.evaluate(row).max_similarity);
  }
  set_delta_star(
      calibrate_threshold_quantile(std::move(max_sims), target_ood_rate));
  return config_.delta_star;
}

namespace {
constexpr std::uint32_t kSmoreMagic = 0x534d4f52;  // "SMOR"
constexpr std::uint32_t kSmoreVersion = 2;  // v2: wide-counter bank payload
}  // namespace

void SmoreModel::save(std::ostream& out) const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::save before fit");
  }
  out.write(reinterpret_cast<const char*>(&kSmoreMagic), sizeof(kSmoreMagic));
  out.write(reinterpret_cast<const char*>(&kSmoreVersion),
            sizeof(kSmoreVersion));
  const std::int32_t classes = num_classes_;
  const std::uint64_t dim = dim_;
  const double delta = config_.delta_star;
  const std::int32_t mode = static_cast<std::int32_t>(config_.weight_mode);
  const std::uint64_t domains = models_.size();
  out.write(reinterpret_cast<const char*>(&classes), sizeof(classes));
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  out.write(reinterpret_cast<const char*>(&delta), sizeof(delta));
  out.write(reinterpret_cast<const char*>(&mode), sizeof(mode));
  out.write(reinterpret_cast<const char*>(&domains), sizeof(domains));
  for (const auto& model : models_) model->save(out);
  descriptors_.save(out);
}

SmoreModel SmoreModel::load(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kSmoreMagic || version != kSmoreVersion) {
    throw std::runtime_error("SmoreModel::load: bad magic/version");
  }
  std::int32_t classes = 0;
  std::uint64_t dim = 0;
  double delta = 0.0;
  std::int32_t mode = 0;
  std::uint64_t domains = 0;
  in.read(reinterpret_cast<char*>(&classes), sizeof(classes));
  in.read(reinterpret_cast<char*>(&dim), sizeof(dim));
  in.read(reinterpret_cast<char*>(&delta), sizeof(delta));
  in.read(reinterpret_cast<char*>(&mode), sizeof(mode));
  in.read(reinterpret_cast<char*>(&domains), sizeof(domains));
  if (!in || classes <= 0 || dim == 0) {
    throw std::runtime_error("SmoreModel::load: corrupt header");
  }
  SmoreConfig config;
  config.delta_star = delta;
  config.weight_mode = static_cast<WeightMode>(mode);
  SmoreModel model(classes, static_cast<std::size_t>(dim), config);
  for (std::uint64_t k = 0; k < domains; ++k) {
    auto m = std::make_unique<OnlineHDClassifier>(OnlineHDClassifier::load(in));
    if (m->num_classes() != classes || m->dim() != dim) {
      throw std::runtime_error("SmoreModel::load: inconsistent domain model");
    }
    model.models_.push_back(std::move(m));
  }
  model.descriptors_ = DomainDescriptorBank::load(in);
  if (model.descriptors_.size() != model.models_.size()) {
    throw std::runtime_error("SmoreModel::load: descriptor/model mismatch");
  }
  if (!model.models_.empty()) {
    std::vector<const OnlineHDClassifier*> ptrs;
    ptrs.reserve(model.models_.size());
    for (const auto& m : model.models_) ptrs.push_back(m.get());
    model.evaluator_ = std::make_unique<EnsembleEvaluator>(std::move(ptrs));
  }
  return model;
}

SmoreModel SmoreModel::clone() const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::clone before fit");
  }
  // config_ carries the current δ* (set_delta_star keeps it in sync), so the
  // constructor rebuilds an identical detector.
  SmoreModel out(num_classes_, dim_, config_);
  out.descriptors_ = descriptors_;
  out.models_.reserve(models_.size());
  for (const auto& m : models_) {
    out.models_.push_back(std::make_unique<OnlineHDClassifier>(*m));
  }
  out.rebuild_evaluator();
  return out;
}

void SmoreModel::prepare_serving() const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::prepare_serving before fit");
  }
  if (evaluator_stale_) rebuild_evaluator();
  descriptors_.warm_cache();
  for (const auto& m : models_) m->warm_cache();
}

TestTimeModel SmoreModel::materialize_test_time_model(
    std::span<const float> hv) const {
  if (!trained()) {
    throw std::logic_error("SmoreModel::materialize before fit");
  }
  const auto sims = descriptors_.similarities(hv);
  const OodVerdict verdict = detector_.evaluate(sims);
  const auto weights = weights_for(hv, verdict, sims);
  std::vector<const OnlineHDClassifier*> ptrs;
  ptrs.reserve(models_.size());
  for (const auto& m : models_) ptrs.push_back(m.get());
  return TestTimeModel(ptrs, weights);
}

}  // namespace smore
