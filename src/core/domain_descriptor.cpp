#include "core/domain_descriptor.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace smore {

DomainDescriptorBank::DomainDescriptorBank(const HvDataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("DomainDescriptorBank: empty training set");
  }
  for (std::size_t i = 0; i < train.size(); ++i) {
    absorb(train.row(i), train.domain(i));
  }
  // Warm the batch-path cache so a freshly built bank can serve concurrent
  // const similarity queries without a lazy rebuild race.
  (void)packed();
}

std::vector<double> DomainDescriptorBank::similarities(
    std::span<const float> query) const {
  if (!empty() && query.size() != dim()) {
    throw std::invalid_argument(
        "DomainDescriptorBank::similarities: dimension mismatch");
  }
  return similarities_batch(HvView(query));
}

const HvMatrix& DomainDescriptorBank::packed() const {
  if (packed_stale_) {
    packed_ = HvMatrix::pack(descriptors_);
    packed_norms_sq_.resize(descriptors_.size());
    ops::nrm2_sq_rows(packed_.data(), packed_.rows(), packed_.dim(),
                      packed_norms_sq_.data());
    packed_stale_ = false;
  }
  return packed_;
}

std::vector<double> DomainDescriptorBank::similarities_batch(
    HvView queries) const {
  if (queries.rows == 0 || empty()) return {};
  if (queries.dim != dim()) {
    throw std::invalid_argument(
        "DomainDescriptorBank::similarities: dimension mismatch");
  }
  const HvMatrix& u = packed();
  std::vector<double> sims(queries.rows * u.rows());
  ops::similarity_matrix(queries.data, queries.rows, u.data(), u.rows(),
                         u.dim(), sims.data(), packed_norms_sq_.data());
  return sims;
}

void DomainDescriptorBank::absorb(std::span<const float> hv, int domain_id) {
  const auto it = std::find(ids_.begin(), ids_.end(), domain_id);
  std::size_t k;
  if (it == ids_.end()) {
    // New domain: keep positions sorted by id so construction order does not
    // matter (bit-for-bit reproducibility).
    const auto pos = std::upper_bound(ids_.begin(), ids_.end(), domain_id);
    k = static_cast<std::size_t>(pos - ids_.begin());
    ids_.insert(pos, domain_id);
    descriptors_.insert(descriptors_.begin() + static_cast<std::ptrdiff_t>(k),
                        Hypervector(hv.size()));
    counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(k), 0);
  } else {
    k = static_cast<std::size_t>(it - ids_.begin());
  }
  Hypervector& u = descriptors_[k];
  if (u.dim() != hv.size()) {
    throw std::invalid_argument("DomainDescriptorBank::absorb: dim mismatch");
  }
  ops::axpy(1.0f, hv.data(), u.data(), u.dim());
  ++counts_[k];
  packed_stale_ = true;
}

void DomainDescriptorBank::absorb_batch(HvView block, int domain_id) {
  if (block.empty()) return;
  // First row through absorb() (creates/locates the descriptor, keeps the
  // sorted-id invariant), the rest accumulate straight into it.
  absorb(block.row(0), domain_id);
  const auto it = std::find(ids_.begin(), ids_.end(), domain_id);
  Hypervector& u = descriptors_[static_cast<std::size_t>(it - ids_.begin())];
  if (u.dim() != block.dim) {
    throw std::invalid_argument("DomainDescriptorBank::absorb_batch: dim mismatch");
  }
  for (std::size_t i = 1; i < block.rows; ++i) {
    ops::axpy(1.0f, block.row(i).data(), u.data(), u.dim());
  }
  counts_[static_cast<std::size_t>(it - ids_.begin())] += block.rows - 1;
  packed_stale_ = true;
}

void DomainDescriptorBank::save(std::ostream& out) const {
  const std::uint64_t k = descriptors_.size();
  const std::uint64_t d = dim();
  out.write(reinterpret_cast<const char*>(&k), sizeof(k));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  for (std::size_t i = 0; i < descriptors_.size(); ++i) {
    const std::int32_t id = ids_[i];
    const std::uint64_t count = counts_[i];
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(descriptors_[i].data()),
              static_cast<std::streamsize>(sizeof(float) * d));
  }
}

DomainDescriptorBank DomainDescriptorBank::load(std::istream& in) {
  std::uint64_t k = 0;
  std::uint64_t d = 0;
  in.read(reinterpret_cast<char*>(&k), sizeof(k));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in || (k > 0 && d == 0)) {
    throw std::runtime_error("DomainDescriptorBank::load: corrupt header");
  }
  DomainDescriptorBank bank;
  for (std::uint64_t i = 0; i < k; ++i) {
    std::int32_t id = 0;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&id), sizeof(id));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    Hypervector hv(static_cast<std::size_t>(d));
    in.read(reinterpret_cast<char*>(hv.data()),
            static_cast<std::streamsize>(sizeof(float) * d));
    if (!in) {
      throw std::runtime_error("DomainDescriptorBank::load: truncated payload");
    }
    bank.ids_.push_back(id);
    bank.counts_.push_back(static_cast<std::size_t>(count));
    bank.descriptors_.push_back(std::move(hv));
  }
  (void)bank.packed();  // warm the batch cache (see the HvDataset ctor)
  return bank;
}

}  // namespace smore
