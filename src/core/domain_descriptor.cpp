#include "core/domain_descriptor.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace smore {

namespace {
constexpr std::uint32_t kBankMagic = 0x4b4e4244;  // "DBNK"
constexpr std::uint32_t kBankVersion = 2;  // v2: wide counters + lifecycle meta
}  // namespace

DomainDescriptorBank::DomainDescriptorBank(const HvDataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("DomainDescriptorBank: empty training set");
  }
  for (std::size_t i = 0; i < train.size(); ++i) {
    absorb(train.row(i), train.domain(i));
  }
  // Warm the batch-path cache so a freshly built bank can serve concurrent
  // const similarity queries without a lazy rebuild race.
  (void)packed();
}

std::vector<double> DomainDescriptorBank::similarities(
    std::span<const float> query) const {
  if (!empty() && query.size() != dim()) {
    throw std::invalid_argument(
        "DomainDescriptorBank::similarities: dimension mismatch");
  }
  return similarities_batch(HvView(query));
}

const HvMatrix& DomainDescriptorBank::packed() const {
  if (packed_stale_) {
    packed_ = HvMatrix::pack(descriptors_);
    packed_norms_sq_.resize(descriptors_.size());
    ops::nrm2_sq_rows(packed_.data(), packed_.rows(), packed_.dim(),
                      packed_norms_sq_.data());
    packed_stale_ = false;
  }
  return packed_;
}

std::vector<double> DomainDescriptorBank::similarities_batch(
    HvView queries) const {
  if (queries.rows == 0 || empty()) return {};
  if (queries.dim != dim()) {
    throw std::invalid_argument(
        "DomainDescriptorBank::similarities: dimension mismatch");
  }
  const HvMatrix& u = packed();
  std::vector<double> sims(queries.rows * u.rows());
  ops::similarity_matrix(queries.data, queries.rows, u.data(), u.rows(),
                         u.dim(), sims.data(), packed_norms_sq_.data());
  return sims;
}

std::size_t DomainDescriptorBank::locate_or_create(int domain_id,
                                                   std::size_t dim) {
  const auto it = std::find(ids_.begin(), ids_.end(), domain_id);
  if (it != ids_.end()) return static_cast<std::size_t>(it - ids_.begin());
  // New domain: keep positions sorted by id so construction order does not
  // matter (bit-for-bit reproducibility).
  const auto pos = std::upper_bound(ids_.begin(), ids_.end(), domain_id);
  const auto k = static_cast<std::size_t>(pos - ids_.begin());
  const auto off = static_cast<std::ptrdiff_t>(k);
  ids_.insert(pos, domain_id);
  descriptors_.insert(descriptors_.begin() + off, Hypervector(dim));
  accum_.insert(accum_.begin() + off, WideAccumulator(dim));
  counts_.insert(counts_.begin() + off, 0);
  DomainMeta meta;
  meta.enrolled_round = clock_;
  meta.last_used_round = clock_;
  meta_.insert(meta_.begin() + off, meta);
  if (domain_id >= next_id_) next_id_ = domain_id + 1;
  return k;
}

void DomainDescriptorBank::absorb(std::span<const float> hv, int domain_id) {
  const std::size_t k = locate_or_create(domain_id, hv.size());
  Hypervector& u = descriptors_[k];
  if (u.dim() != hv.size()) {
    throw std::invalid_argument("DomainDescriptorBank::absorb: dim mismatch");
  }
  accum_[k].axpy(1.0, hv);
  accum_[k].materialize(u.data());
  ++counts_[k];
  packed_stale_ = true;
}

void DomainDescriptorBank::absorb_batch(HvView block, int domain_id) {
  if (block.empty()) return;
  const std::size_t k = locate_or_create(domain_id, block.dim);
  Hypervector& u = descriptors_[k];
  if (u.dim() != block.dim) {
    throw std::invalid_argument(
        "DomainDescriptorBank::absorb_batch: dim mismatch");
  }
  // Accumulate every row into the double master, materialize the float
  // mirror once for the whole block.
  for (std::size_t i = 0; i < block.rows; ++i) {
    accum_[k].axpy(1.0, block.row(i));
  }
  accum_[k].materialize(u.data());
  counts_[k] += block.rows;
  packed_stale_ = true;
}

void DomainDescriptorBank::remove(std::size_t k) {
  if (k >= descriptors_.size()) {
    throw std::out_of_range("DomainDescriptorBank::remove: bad position");
  }
  const auto off = static_cast<std::ptrdiff_t>(k);
  descriptors_.erase(descriptors_.begin() + off);
  accum_.erase(accum_.begin() + off);
  ids_.erase(ids_.begin() + off);
  counts_.erase(counts_.begin() + off);
  meta_.erase(meta_.begin() + off);
  packed_stale_ = true;
}

void DomainDescriptorBank::note_usage(int domain_id, double amount) {
  const auto it = std::find(ids_.begin(), ids_.end(), domain_id);
  if (it == ids_.end()) return;  // evicted between scoring and crediting
  DomainMeta& m = meta_[static_cast<std::size_t>(it - ids_.begin())];
  m.usage += amount;
  m.last_used_round = clock_;
}

void DomainDescriptorBank::note_merge(std::size_t k) {
  DomainMeta& m = meta_.at(k);
  ++m.merge_count;
  m.last_used_round = clock_;
}

void DomainDescriptorBank::decay_usage(double factor) {
  for (DomainMeta& m : meta_) m.usage *= factor;
}

void DomainDescriptorBank::save(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&kBankMagic), sizeof(kBankMagic));
  out.write(reinterpret_cast<const char*>(&kBankVersion), sizeof(kBankVersion));
  const std::uint64_t k = descriptors_.size();
  const std::uint64_t d = dim();
  const std::int32_t next_id = next_id_;
  out.write(reinterpret_cast<const char*>(&k), sizeof(k));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(&clock_), sizeof(clock_));
  out.write(reinterpret_cast<const char*>(&next_id), sizeof(next_id));
  for (std::size_t i = 0; i < descriptors_.size(); ++i) {
    const std::int32_t id = ids_[i];
    const std::uint64_t count = counts_[i];
    const DomainMeta& m = meta_[i];
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(&m.enrolled_round),
              sizeof(m.enrolled_round));
    out.write(reinterpret_cast<const char*>(&m.last_used_round),
              sizeof(m.last_used_round));
    out.write(reinterpret_cast<const char*>(&m.merge_count),
              sizeof(m.merge_count));
    out.write(reinterpret_cast<const char*>(&m.usage), sizeof(m.usage));
    // The double master is the state of record; the float mirror is derived.
    out.write(reinterpret_cast<const char*>(accum_[i].data()),
              static_cast<std::streamsize>(sizeof(double) * d));
  }
}

DomainDescriptorBank DomainDescriptorBank::load(std::istream& in) {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || magic != kBankMagic || version != kBankVersion) {
    throw std::runtime_error(
        "DomainDescriptorBank::load: bad magic/version");
  }
  std::uint64_t k = 0;
  std::uint64_t d = 0;
  std::uint64_t clock = 0;
  std::int32_t next_id = 0;
  in.read(reinterpret_cast<char*>(&k), sizeof(k));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  in.read(reinterpret_cast<char*>(&clock), sizeof(clock));
  in.read(reinterpret_cast<char*>(&next_id), sizeof(next_id));
  if (!in || (k > 0 && d == 0)) {
    throw std::runtime_error("DomainDescriptorBank::load: corrupt header");
  }
  DomainDescriptorBank bank;
  bank.clock_ = clock;
  bank.next_id_ = next_id;
  for (std::uint64_t i = 0; i < k; ++i) {
    std::int32_t id = 0;
    std::uint64_t count = 0;
    DomainMeta meta;
    in.read(reinterpret_cast<char*>(&id), sizeof(id));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    in.read(reinterpret_cast<char*>(&meta.enrolled_round),
            sizeof(meta.enrolled_round));
    in.read(reinterpret_cast<char*>(&meta.last_used_round),
            sizeof(meta.last_used_round));
    in.read(reinterpret_cast<char*>(&meta.merge_count),
            sizeof(meta.merge_count));
    in.read(reinterpret_cast<char*>(&meta.usage), sizeof(meta.usage));
    WideAccumulator acc(static_cast<std::size_t>(d));
    in.read(reinterpret_cast<char*>(acc.data()),
            static_cast<std::streamsize>(sizeof(double) * d));
    if (!in) {
      throw std::runtime_error("DomainDescriptorBank::load: truncated payload");
    }
    Hypervector hv(static_cast<std::size_t>(d));
    acc.materialize(hv.data());
    bank.ids_.push_back(id);
    bank.counts_.push_back(static_cast<std::size_t>(count));
    bank.meta_.push_back(meta);
    bank.accum_.push_back(std::move(acc));
    bank.descriptors_.push_back(std::move(hv));
    if (id >= bank.next_id_) bank.next_id_ = id + 1;
  }
  (void)bank.packed();  // warm the batch cache (see the HvDataset ctor)
  return bank;
}

}  // namespace smore
