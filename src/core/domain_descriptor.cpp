#include "core/domain_descriptor.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace smore {

DomainDescriptorBank::DomainDescriptorBank(const HvDataset& train) {
  if (train.empty()) {
    throw std::invalid_argument("DomainDescriptorBank: empty training set");
  }
  for (std::size_t i = 0; i < train.size(); ++i) {
    absorb(train.row(i), train.domain(i));
  }
}

std::vector<double> DomainDescriptorBank::similarities(
    std::span<const float> query) const {
  std::vector<double> sims(descriptors_.size());
  for (std::size_t k = 0; k < descriptors_.size(); ++k) {
    const auto& u = descriptors_[k];
    if (query.size() != u.dim()) {
      throw std::invalid_argument(
          "DomainDescriptorBank::similarities: dimension mismatch");
    }
    sims[k] = ops::cosine(query.data(), u.data(), u.dim());
  }
  return sims;
}

void DomainDescriptorBank::absorb(std::span<const float> hv, int domain_id) {
  const auto it = std::find(ids_.begin(), ids_.end(), domain_id);
  std::size_t k;
  if (it == ids_.end()) {
    // New domain: keep positions sorted by id so construction order does not
    // matter (bit-for-bit reproducibility).
    const auto pos = std::upper_bound(ids_.begin(), ids_.end(), domain_id);
    k = static_cast<std::size_t>(pos - ids_.begin());
    ids_.insert(pos, domain_id);
    descriptors_.insert(descriptors_.begin() + static_cast<std::ptrdiff_t>(k),
                        Hypervector(hv.size()));
    counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(k), 0);
  } else {
    k = static_cast<std::size_t>(it - ids_.begin());
  }
  Hypervector& u = descriptors_[k];
  if (u.dim() != hv.size()) {
    throw std::invalid_argument("DomainDescriptorBank::absorb: dim mismatch");
  }
  ops::axpy(1.0f, hv.data(), u.data(), u.dim());
  ++counts_[k];
}

void DomainDescriptorBank::save(std::ostream& out) const {
  const std::uint64_t k = descriptors_.size();
  const std::uint64_t d = dim();
  out.write(reinterpret_cast<const char*>(&k), sizeof(k));
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  for (std::size_t i = 0; i < descriptors_.size(); ++i) {
    const std::int32_t id = ids_[i];
    const std::uint64_t count = counts_[i];
    out.write(reinterpret_cast<const char*>(&id), sizeof(id));
    out.write(reinterpret_cast<const char*>(&count), sizeof(count));
    out.write(reinterpret_cast<const char*>(descriptors_[i].data()),
              static_cast<std::streamsize>(sizeof(float) * d));
  }
}

DomainDescriptorBank DomainDescriptorBank::load(std::istream& in) {
  std::uint64_t k = 0;
  std::uint64_t d = 0;
  in.read(reinterpret_cast<char*>(&k), sizeof(k));
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  if (!in || (k > 0 && d == 0)) {
    throw std::runtime_error("DomainDescriptorBank::load: corrupt header");
  }
  DomainDescriptorBank bank;
  for (std::uint64_t i = 0; i < k; ++i) {
    std::int32_t id = 0;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char*>(&id), sizeof(id));
    in.read(reinterpret_cast<char*>(&count), sizeof(count));
    Hypervector hv(static_cast<std::size_t>(d));
    in.read(reinterpret_cast<char*>(hv.data()),
            static_cast<std::streamsize>(sizeof(float) * d));
    if (!in) {
      throw std::runtime_error("DomainDescriptorBank::load: truncated payload");
    }
    bank.ids_.push_back(id);
    bank.counts_.push_back(static_cast<std::size_t>(count));
    bank.descriptors_.push_back(std::move(hv));
  }
  return bank;
}

}  // namespace smore
