#pragma once
// BinarySmoreModel: a trained SMORE model sign-quantized to packed bits
// (extension beyond the paper; DESIGN.md §8).
//
// Everything Algorithm 1 touches at inference time is packed: the K domain
// descriptors U_k, the K per-domain class banks {C_c^k}, and the query
// block. All similarities become normalized Hamming similarities
// (1 - 2·hamming/d, the binary analogue of cosine), so the whole pipeline —
// OOD detection (δ* thresholding, step E), similarity-derived ensemble
// weights (step F), and the ensembled argmax (step G) — runs on XOR+popcount
// kernels over d/64-word rows. The model is ~32× smaller than its float
// parent and the query path touches no floats after quantization.
//
// One deliberate divergence from the float path: step G. The float model
// ensembles class *vectors* (Σ_k w_k C_c^k) and cosines the query against
// the sum; packed bits cannot form that weighted sum, so the binary model
// ensembles class *similarities* instead — score(c) = Σ_k w_k·δ_H(Q, C_c^k).
// Because Hamming similarities are already normalized to [-1, 1], this is
// the natural packed reading of Eq. 3; the quantized-vs-float accuracy gap
// is bounded by a tier-1 test and quantified in bench_binary_inference and
// the edge example.
//
// δ* transfers from the float model by default, but Hamming similarities
// live on a (slightly) different scale than cosine; calibrate_delta_star
// re-derives the threshold from in-distribution data, exactly like
// SmoreModel::calibrate_delta_star.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "core/ood.hpp"
#include "core/smore.hpp"
#include "core/test_time_model.hpp"
#include "hdc/bit_matrix.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"

namespace smore {

/// The packed-binary SMORE classifier: quantize once, serve on Hamming.
class BinarySmoreModel {
 public:
  /// Sign-quantize a trained model (descriptors, per-domain class vectors,
  /// δ*, weight mode). Throws std::logic_error when `model` is untrained.
  explicit BinarySmoreModel(const SmoreModel& model);

  [[nodiscard]] int num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t num_domains() const noexcept {
    return descriptors_.rows();
  }
  [[nodiscard]] double delta_star() const noexcept {
    return detector_.delta_star();
  }

  /// Packed model size in bytes: descriptor block + class banks.
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return descriptors_.bytes() + class_bank_.bytes();
  }

  /// The packed descriptor block [K × dim] (footprint reports).
  [[nodiscard]] const BitMatrix& descriptor_bits() const noexcept {
    return descriptors_;
  }
  /// The packed class banks [K·num_classes × dim], row k·num_classes + c.
  [[nodiscard]] const BitMatrix& class_bank_bits() const noexcept {
    return class_bank_;
  }

  /// Adjust δ* after quantization (mirrors SmoreModel::set_delta_star).
  void set_delta_star(double delta_star);

  /// Calibrate δ* on the Hamming-similarity scale: sets the threshold at the
  /// `target_ood_rate` quantile of max-descriptor-similarity over
  /// `in_distribution` (see SmoreModel::calibrate_delta_star — same
  /// contract, packed arithmetic). Returns the chosen δ*.
  double calibrate_delta_star(const HvDataset& in_distribution,
                              double target_ood_rate = 0.05);

  /// Algorithm 1 (packed) for one float query: quantize + batch of one.
  [[nodiscard]] int predict(std::span<const float> hv) const;

  /// Quantize a float query block (ops::sign_pack_matrix) and predict it.
  [[nodiscard]] std::vector<int> predict_batch(HvView queries) const;

  /// Algorithm 1 over a pre-packed query block: descriptor Hamming
  /// similarities, OOD verdicts, and the similarity-ensembled argmax, each
  /// as one blocked XOR+popcount pass.
  [[nodiscard]] std::vector<int> predict_batch(BitView queries) const;

  /// predict_batch plus every per-query intermediate (OOD verdict, δ_max on
  /// the Hamming scale, ensemble weights) — the packed counterpart of
  /// SmoreModel::predict_batch_full, sharing its result type so the serving
  /// layer treats both backends uniformly.
  [[nodiscard]] SmoreBatchResult predict_batch_full(BitView queries) const;

  /// Float-query convenience: sign-pack the block, then predict_batch_full.
  [[nodiscard]] SmoreBatchResult predict_batch_full(HvView queries) const;

  /// Row-major [queries.rows × K] descriptor Hamming-similarity matrix
  /// δ_H(Q_i, U_k) — the packed input of OOD detection and weighting.
  [[nodiscard]] std::vector<double> similarities_batch(BitView queries) const;

  /// Accuracy and OOD rate of `data` in one packed pass (quantizes the
  /// block, then mirrors SmoreModel::evaluate).
  [[nodiscard]] SmoreEvaluation evaluate(const HvDataset& data) const;

  /// Accuracy and OOD rate of a pre-packed query block against aligned
  /// labels. Throws std::invalid_argument on arity mismatch.
  [[nodiscard]] SmoreEvaluation evaluate(BitView queries,
                                         std::span<const int> labels) const;

  /// Serialize the packed model (classes, dim, δ*, weight mode, domain
  /// count, descriptor words, class-bank words); load() reconstructs a
  /// ready-to-serve model
  /// without its float parent — what lets a server boot a packed snapshot
  /// straight from disk. Throws std::runtime_error on corrupt input.
  void save(std::ostream& out) const;
  static BinarySmoreModel load(std::istream& in);

 private:
  BinarySmoreModel() = default;  // load() builds the state field by field

  [[nodiscard]] std::vector<int> predict_batch_impl(
      BitView queries, std::vector<std::uint8_t>* ood_flags,
      SmoreBatchResult* full) const;

  int num_classes_ = 0;
  std::size_t dim_ = 0;
  WeightMode weight_mode_ = WeightMode::kStandardizedSoftmax;
  OodDetector detector_;
  BitMatrix descriptors_;  // [K × dim], ascending domain-id order
  BitMatrix class_bank_;   // [K·num_classes × dim], row k·num_classes + c
};

}  // namespace smore
