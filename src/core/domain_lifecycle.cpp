#include "core/domain_lifecycle.hpp"

#include <stdexcept>

namespace smore {

LifecycleRoundStats DomainLifecycle::run_round(
    SmoreModel& model, HvView samples, std::span<const int> pseudo_labels,
    std::span<const std::pair<int, double>> usage) {
  if (!model.trained()) {
    throw std::logic_error("DomainLifecycle::run_round: untrained model");
  }
  if (samples.rows != pseudo_labels.size()) {
    throw std::invalid_argument(
        "DomainLifecycle::run_round: samples/labels size mismatch");
  }
  LifecycleRoundStats stats;
  DomainDescriptorBank& bank = model.descriptors();

  // 1. Clock tick + usage credit + decay. Credit BEFORE decay so this
  // round's traffic is dampened once by the next round, not immediately.
  bank.advance_round();
  for (const auto& [id, amount] : usage) bank.note_usage(id, amount);
  bank.decay_usage(config_.usage_decay);

  // 2-3. Cluster the round and route each cluster: merge into the most
  // similar existing descriptor when close enough, else enroll fresh.
  if (samples.rows > 0) {
    const Clustering clusters = cluster_rows(samples, config_.cluster);
    stats.clusters = clusters.k;
    // Route every cluster against the PRE-ROUND bank state: decisions are
    // made per cluster before any absorption, so the order clusters are
    // processed in cannot flip a merge into an enroll (a freshly enrolled
    // cluster never captures its round-mates).
    std::vector<int> target_ids(clusters.k);
    std::vector<bool> is_merge(clusters.k, false);
    int fresh_id = bank.next_domain_id();
    const std::vector<double> sims =
        bank.similarities_batch(clusters.centroids.view());
    const std::size_t k_bank = bank.size();
    // Protected positions are not merge targets: they are the operator's
    // ground-truth-trained source domains, and bundling pseudo-labeled
    // traffic into them would poison their class banks. Recurring drift
    // merges into the pseudo-domain IT enrolled, never into a source.
    const std::size_t first_target =
        std::min(config_.protected_domains, k_bank);
    for (std::size_t c = 0; c < clusters.k; ++c) {
      const double* row = sims.data() + c * k_bank;
      std::size_t best = k_bank;
      for (std::size_t k = first_target; k < k_bank; ++k) {
        if (best == k_bank || row[k] > row[best]) best = k;
      }
      if (best < k_bank && row[best] >= config_.merge_threshold) {
        target_ids[c] = bank.domain_id(best);
        is_merge[c] = true;
      } else {
        target_ids[c] = fresh_id++;
      }
    }
    for (std::size_t c = 0; c < clusters.k; ++c) {
      if (is_merge[c]) {
        ++stats.merged;
        stats.merged_ids.push_back(target_ids[c]);
      } else {
        ++stats.enrolled_new;
        stats.enrolled_ids.push_back(target_ids[c]);
      }
    }
    // Absorb: labeled update into the domain model + descriptor bundle.
    for (std::size_t i = 0; i < samples.rows; ++i) {
      model.absorb_labeled(samples.row(i), pseudo_labels[i],
                           target_ids[clusters.assignment[i]]);
    }
    stats.absorbed = samples.rows;
    // Credit the round's own domains so a just-touched domain is not the
    // immediate eviction victim, and stamp merge counters.
    for (std::size_t c = 0; c < clusters.k; ++c) {
      bank.note_usage(target_ids[c], static_cast<double>(clusters.sizes[c]));
      if (is_merge[c]) {
        const auto& ids = bank.domain_ids();
        for (std::size_t k = 0; k < ids.size(); ++k) {
          if (ids[k] == target_ids[c]) {
            bank.note_merge(k);
            break;
          }
        }
      }
    }
  }

  // 4. Evict down to the cap: lowest usage first, then least recently used,
  // then oldest enrollment — never a protected (source) position, never the
  // last domain.
  while (model.num_domains() > config_.max_domains &&
         model.num_domains() > 1) {
    const std::size_t k_bank = bank.size();
    std::size_t victim = k_bank;
    for (std::size_t k = config_.protected_domains; k < k_bank; ++k) {
      if (victim == k_bank) {
        victim = k;
        continue;
      }
      const DomainMeta& a = bank.meta(k);
      const DomainMeta& b = bank.meta(victim);
      if (a.usage != b.usage ? a.usage < b.usage
          : a.last_used_round != b.last_used_round
              ? a.last_used_round < b.last_used_round
              : a.enrolled_round < b.enrolled_round) {
        victim = k;
      }
    }
    if (victim >= k_bank) break;  // everything is protected: cap unreachable
    stats.evicted_ids.push_back(bank.domain_id(victim));
    model.remove_domain(victim);
    ++stats.evicted;
  }

  return stats;
}

}  // namespace smore
