#include "serve/snapshot.hpp"

#include <istream>
#include <stdexcept>
#include <utility>

namespace smore {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::make(SmoreModel model,
                                                         bool quantize,
                                                         std::uint64_t version) {
  auto float_model = std::make_shared<const SmoreModel>(std::move(model));
  float_model->prepare_serving();
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->model = float_model;
  if (quantize) {
    snap->packed = std::make_shared<const BinarySmoreModel>(*float_model);
  }
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_stream(
    std::istream& in, bool quantize, std::uint64_t version) {
  return make(SmoreModel::load(in), quantize, version);
}

bool SnapshotRegistry::publish(std::shared_ptr<const ModelSnapshot> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("SnapshotRegistry::publish: null snapshot");
  }
  // CAS loop: the version check and the swap must be one atomic step, or a
  // slow publisher (e.g. an adaptation round built off generation N) could
  // overwrite a newer generation installed meanwhile by another publisher.
  auto expected = current_.load(std::memory_order_acquire);
  for (;;) {
    if (expected != nullptr && snap->version <= expected->version) {
      return false;  // stale publisher loses; the newer generation stays
    }
    if (current_.compare_exchange_weak(expected, snap,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      publishes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

}  // namespace smore
