#include "serve/snapshot.hpp"

#include <istream>
#include <stdexcept>
#include <utility>

#include "core/pipeline.hpp"
#include "serve/backend.hpp"

namespace smore {

std::shared_ptr<const ModelSnapshot> ModelSnapshot::make(
    SmoreModel model, bool quantize, std::uint64_t version,
    std::shared_ptr<const Encoder> encoder) {
  auto float_model = std::make_shared<const SmoreModel>(std::move(model));
  float_model->prepare_serving();
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->model = float_model;
  snap->encoder = std::move(encoder);
  if (quantize) {
    snap->packed = std::make_shared<const BinarySmoreModel>(*float_model);
  }
  snap->backend = make_serving_backend(snap->model, snap->packed);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::make(
    const Pipeline& pipeline, std::uint64_t version, bool prefer_packed) {
  auto float_model =
      std::make_shared<const SmoreModel>(pipeline.model().clone());
  float_model->prepare_serving();
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->model = float_model;
  snap->encoder = pipeline.encoder_ptr();
  if (prefer_packed && pipeline.quantized()) {
    if (pipeline.packed_calibration_stale()) {
      // Serving this would apply the cosine-scale float δ* to Hamming
      // similarities — the broken operating point would then propagate
      // through every adapted generation via next_generation's carry-over.
      throw std::logic_error(
          "ModelSnapshot::make: the pipeline's packed δ* is stale — call "
          "Pipeline::calibrate() after quantize()");
    }
    // Copy (don't re-quantize): the pipeline's packed model may carry its
    // own Hamming-scale δ* from Pipeline::calibrate.
    snap->packed = std::make_shared<const BinarySmoreModel>(*pipeline.packed());
  }
  snap->backend = make_serving_backend(snap->model, snap->packed);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::next_generation(
    const ModelSnapshot& parent, SmoreModel model, std::uint64_t version) {
  auto float_model = std::make_shared<const SmoreModel>(std::move(model));
  float_model->prepare_serving();
  auto snap = std::make_shared<ModelSnapshot>();
  snap->version = version;
  snap->model = float_model;
  snap->encoder = parent.encoder;
  if (parent.packed != nullptr) {
    auto packed = std::make_unique<BinarySmoreModel>(*float_model);
    // The fresh quantization inherits the float (cosine-scale) δ*; the
    // parent's packed detector may have been calibrated on the Hamming
    // scale — keep that operating point.
    packed->set_delta_star(parent.packed->delta_star());
    snap->packed = std::move(packed);
  }
  snap->backend = make_serving_backend(snap->model, snap->packed);
  return snap;
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_stream(
    std::istream& in, bool quantize, std::uint64_t version) {
  return make(SmoreModel::load(in), quantize, version);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshot::from_artifact(
    std::istream& in, std::uint64_t version) {
  return make(Pipeline::load(in), version);
}

bool SnapshotRegistry::publish(std::shared_ptr<const ModelSnapshot> snap) {
  if (snap == nullptr) {
    throw std::invalid_argument("SnapshotRegistry::publish: null snapshot");
  }
  // CAS loop: the version check and the swap must be one atomic step, or a
  // slow publisher (e.g. an adaptation round built off generation N) could
  // overwrite a newer generation installed meanwhile by another publisher.
  auto expected = current_.load(std::memory_order_acquire);
  for (;;) {
    if (expected != nullptr && snap->version <= expected->version) {
      return false;  // stale publisher loses; the newer generation stays
    }
    if (current_.compare_exchange_weak(expected, snap,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      publishes_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
}

}  // namespace smore
