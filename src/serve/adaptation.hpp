#pragma once
// The adaptation round shared by both serving planes (DESIGN.md §13).
//
// The single-tenant InferenceServer and the multi-tenant router both run the
// same loop: drain an OOD side buffer, clone the live generation, run one
// DomainLifecycle round on the clone, publish the result as the next
// generation. This header is that one round as a pure function — the two
// servers keep only their own buffering, locking, and publish plumbing.

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "core/domain_lifecycle.hpp"
#include "serve/snapshot.hpp"

namespace smore::obs {
class Telemetry;
}  // namespace smore::obs

namespace smore {

/// One OOD window queued for enrollment: the encoded query plus the
/// pseudo-label the serving pass predicted for it (paper Sec 3.6 — the
/// ensemble's own prediction supervises the update).
struct OodSample {
  std::vector<float> hv;
  int pseudo_label = -1;
};

/// Result of one adaptation round: the candidate next generation (null when
/// the round was empty) and what the lifecycle did to produce it.
struct AdaptationOutcome {
  std::shared_ptr<const ModelSnapshot> next;
  LifecycleRoundStats lifecycle;
};

/// Clone `parent`'s model, run one lifecycle round over `round` (usage is
/// the per-domain served-query credit accumulated since the last round), and
/// wrap the result as generation `next_version` with the parent's shape
/// (re-quantized iff the parent was quantized, same shared encoder). The
/// caller publishes the returned snapshot — CAS semantics stay at the
/// publish site, where losing to a newer generation is handled.
[[nodiscard]] AdaptationOutcome run_lifecycle_round(
    const ModelSnapshot& parent, std::span<const OodSample> round,
    std::span<const std::pair<int, double>> usage,
    const LifecycleConfig& config, std::uint64_t next_version);

/// Emit one lifecycle event per merge / enroll / evict decision of a
/// PUBLISHED round (DESIGN.md §14) — call this only after the publish CAS
/// succeeded, so the event log never claims changes that a lost race threw
/// away (a shed round emits kAdaptationShed at its own decision site
/// instead). `scope` is the tenant (fleet plane) or the plane name.
void emit_lifecycle_events(obs::Telemetry& telemetry, std::string_view scope,
                           const LifecycleRoundStats& stats);

}  // namespace smore
