#pragma once
// ServeStatus: the admission-control result plane shared by the
// single-tenant server (serve/server.hpp), the multi-tenant router
// (serve/router.hpp), and the telemetry layer (serve/telemetry.hpp), which
// keys shed counters and shed events off it. Lives in its own header so
// telemetry does not have to pull in either server.

namespace smore {

/// Disposition of a submission. Shedding reasons are distinct so clients can
/// react differently: a full queue calls for backoff, an exhausted tenant
/// quota means THIS tenant is over its fair share (other tenants would still
/// be admitted), and a shutting-down server will never accept again.
enum class ServeStatus {
  kOk = 0,           ///< served; the result fields are valid
  kShedQueueFull,    ///< try_submit refused: the shard queue is full
  kShedTenantQuota,  ///< try_submit refused: per-tenant in-flight quota hit
  kShuttingDown,     ///< submitted after shutdown() — never enqueued
};

/// Human-readable ServeStatus name (logs, bench output, shed-event reasons).
[[nodiscard]] inline const char* to_string(ServeStatus status) noexcept {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kShedQueueFull: return "shed-queue-full";
    case ServeStatus::kShedTenantQuota: return "shed-tenant-quota";
    case ServeStatus::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

}  // namespace smore
