#include "serve/adaptation.hpp"

#include "hdc/hv_matrix.hpp"

namespace smore {

AdaptationOutcome run_lifecycle_round(
    const ModelSnapshot& parent, std::span<const OodSample> round,
    std::span<const std::pair<int, double>> usage,
    const LifecycleConfig& config, std::uint64_t next_version) {
  AdaptationOutcome out;
  if (round.empty()) return out;
  SmoreModel next = parent.model->clone();
  HvMatrix block(round.size(), next.dim());
  std::vector<int> labels(round.size());
  for (std::size_t i = 0; i < round.size(); ++i) {
    block.set_row(i, round[i].hv);
    labels[i] = round[i].pseudo_label;
  }
  DomainLifecycle engine(config);
  out.lifecycle = engine.run_round(next, block.view(), labels, usage);
  out.next =
      ModelSnapshot::next_generation(parent, std::move(next), next_version);
  return out;
}

}  // namespace smore
