#include "serve/adaptation.hpp"

#include "hdc/hv_matrix.hpp"
#include "obs/telemetry.hpp"

namespace smore {

AdaptationOutcome run_lifecycle_round(
    const ModelSnapshot& parent, std::span<const OodSample> round,
    std::span<const std::pair<int, double>> usage,
    const LifecycleConfig& config, std::uint64_t next_version) {
  AdaptationOutcome out;
  if (round.empty()) return out;
  SmoreModel next = parent.model->clone();
  HvMatrix block(round.size(), next.dim());
  std::vector<int> labels(round.size());
  for (std::size_t i = 0; i < round.size(); ++i) {
    block.set_row(i, round[i].hv);
    labels[i] = round[i].pseudo_label;
  }
  DomainLifecycle engine(config);
  out.lifecycle = engine.run_round(next, block.view(), labels, usage);
  out.next =
      ModelSnapshot::next_generation(parent, std::move(next), next_version);
  return out;
}

void emit_lifecycle_events(obs::Telemetry& telemetry, std::string_view scope,
                           const LifecycleRoundStats& stats) {
  for (const int id : stats.merged_ids) {
    telemetry.emit(obs::EventType::kLifecycleMerge, scope, "centroid-match",
                   id);
  }
  for (const int id : stats.enrolled_ids) {
    telemetry.emit(obs::EventType::kLifecycleEnroll, scope, "novel-cluster",
                   id);
  }
  for (const int id : stats.evicted_ids) {
    telemetry.emit(obs::EventType::kLifecycleEvict, scope, "domain-cap", id);
  }
}

}  // namespace smore
