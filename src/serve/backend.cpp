#include "serve/backend.hpp"

#include <stdexcept>
#include <utility>

namespace smore {

FloatBackend::FloatBackend(std::shared_ptr<const SmoreModel> model)
    : model_(std::move(model)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("FloatBackend: null model");
  }
  if (!model_->trained()) {
    throw std::logic_error("FloatBackend: untrained model");
  }
}

SmoreBatchResult FloatBackend::predict_batch_full(HvView queries) const {
  return model_->predict_batch_full(queries);
}

std::size_t FloatBackend::footprint_bytes() const noexcept {
  return model_->footprint_bytes();
}

std::size_t FloatBackend::dim() const noexcept { return model_->dim(); }

std::size_t FloatBackend::num_domains() const noexcept {
  return model_->num_domains();
}

ServeBackend FloatBackend::kind() const noexcept {
  return ServeBackend::kFloat;
}

const char* FloatBackend::name() const noexcept { return "float"; }

PackedBackend::PackedBackend(std::shared_ptr<const BinarySmoreModel> model)
    : model_(std::move(model)) {
  if (model_ == nullptr) {
    throw std::invalid_argument("PackedBackend: null model");
  }
}

SmoreBatchResult PackedBackend::predict_batch_full(HvView queries) const {
  return model_->predict_batch_full(queries);
}

std::size_t PackedBackend::footprint_bytes() const noexcept {
  return model_->footprint_bytes();
}

std::size_t PackedBackend::dim() const noexcept { return model_->dim(); }

std::size_t PackedBackend::num_domains() const noexcept {
  return model_->num_domains();
}

ServeBackend PackedBackend::kind() const noexcept {
  return ServeBackend::kPacked;
}

const char* PackedBackend::name() const noexcept { return "packed"; }

std::shared_ptr<const InferenceBackend> make_serving_backend(
    std::shared_ptr<const SmoreModel> model,
    std::shared_ptr<const BinarySmoreModel> packed) {
  if (packed != nullptr) {
    return std::make_shared<const PackedBackend>(std::move(packed));
  }
  return std::make_shared<const FloatBackend>(std::move(model));
}

}  // namespace smore
