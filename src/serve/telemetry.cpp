#include "serve/telemetry.hpp"

#include <utility>

#include "hdc/dispatch.hpp"

namespace smore {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::uint64_t ns_between(std::chrono::steady_clock::time_point a,
                         std::chrono::steady_clock::time_point b) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count();
  return d > 0 ? static_cast<std::uint64_t>(d) : 0;
}

}  // namespace

ServeTelemetry::ServeTelemetry(std::shared_ptr<obs::Telemetry> hub,
                               std::string plane, std::size_t worker_stripes)
    : hub_(hub != nullptr ? std::move(hub) : obs::Telemetry::make()),
      plane_(std::move(plane)) {
  obs::MetricsRegistry& m = hub_->metrics();
  const obs::Labels p{{"plane", plane_}};
  submitted = m.counter("smore_requests_submitted_total", p);
  rejected = m.counter("smore_requests_rejected_total", p);
  const auto shed = [&](const char* reason) {
    return m.counter("smore_requests_shed_total",
                     {{"plane", plane_}, {"reason", reason}});
  };
  shed_queue_full = shed("queue-full");
  shed_quota = shed("tenant-quota");
  shed_shutdown = shed("shutting-down");
  load_failures = m.counter("smore_load_failures_total", p);
  completed = m.counter("smore_requests_completed_total", p);
  batches = m.counter("smore_batches_total", p);
  batched_rows = m.counter("smore_batched_rows_total", p);
  ood_flagged = m.counter("smore_ood_flagged_total", p);
  adapt_rounds = m.counter("smore_adaptation_rounds_total", p);
  adapt_absorbed = m.counter("smore_adaptation_absorbed_total", p);
  adapt_dropped = m.counter("smore_adaptation_dropped_total", p);
  adapt_overflow = m.counter("smore_adaptation_overflow_total", p);
  adapt_merged = m.counter("smore_adaptation_merged_total", p);
  adapt_evicted = m.counter("smore_adaptation_evicted_total", p);
  latency = m.histogram("smore_request_latency_seconds", p,
                        worker_stripes > 0 ? worker_stripes : 1);
  // Info-style gauge: which kernel tier this process dispatches to — the
  // "backend/kernel tier" fleet dimension, constant 1 with the tier as a
  // label (the Prometheus info-metric idiom).
  m.gauge("smore_kernel_tier_info",
          {{"plane", plane_},
           {"tier", kern::tier_name(kern::dispatch().tier)}})
      ->set(1.0);
}

TenantTelemetry ServeTelemetry::tenant(const std::string& name) {
  obs::MetricsRegistry& m = hub_->metrics();
  const obs::Labels l{{"tenant", name}};
  TenantTelemetry t;
  t.submitted = m.counter("smore_tenant_submitted_total", l);
  t.completed = m.counter("smore_tenant_completed_total", l);
  t.shed_queue = m.counter("smore_tenant_shed_total",
                           {{"tenant", name}, {"reason", "queue-full"}});
  t.shed_quota = m.counter("smore_tenant_shed_total",
                           {{"tenant", name}, {"reason", "tenant-quota"}});
  t.load_failures = m.counter("smore_tenant_load_failures_total", l);
  t.ood = m.counter("smore_tenant_ood_flagged_total", l);
  t.adapt_rounds = m.counter("smore_tenant_adaptation_rounds_total", l);
  t.adapt_absorbed = m.counter("smore_tenant_adaptation_absorbed_total", l);
  t.adapt_dropped = m.counter("smore_tenant_adaptation_dropped_total", l);
  t.adapt_overflow = m.counter("smore_tenant_adaptation_overflow_total", l);
  t.adapt_merged = m.counter("smore_tenant_adaptation_merged_total", l);
  t.adapt_evicted = m.counter("smore_tenant_adaptation_evicted_total", l);
  t.queue_wait = m.histogram("smore_tenant_queue_wait_seconds", l);
  t.service = m.histogram("smore_tenant_service_seconds", l);
  t.latency = m.histogram("smore_tenant_latency_seconds", l);
  return t;
}

void ServeTelemetry::record_shed(ServeStatus reason, std::string_view scope,
                                 const TenantTelemetry* tenant) {
  rejected->add(1);
  switch (reason) {
    case ServeStatus::kShedQueueFull:
      shed_queue_full->add(1);
      if (tenant != nullptr) tenant->shed_queue->add(1);
      break;
    case ServeStatus::kShedTenantQuota:
      shed_quota->add(1);
      if (tenant != nullptr) tenant->shed_quota->add(1);
      break;
    default: shed_shutdown->add(1); break;
  }
  hub_->emit(obs::EventType::kShed, scope, to_string(reason));
}

void ServeTelemetry::record_load_failure(const TenantTelemetry* tenant) {
  load_failures->add(1);
  if (tenant != nullptr) tenant->load_failures->add(1);
}

void ServeTelemetry::record_batch(
    const BatchTimes& t,
    std::span<const std::chrono::steady_clock::time_point> submit_times,
    std::span<const std::uint8_t> ood_flags, std::span<const int> labels,
    std::uint64_t snapshot_version, std::uint32_t shard,
    std::string_view tenant_name, const TenantTelemetry* tenant) {
  const std::size_t n = submit_times.size();
  batches->add(1);
  batched_rows->add(n);
  completed->add(n);
  std::uint64_t flagged = 0;
  for (const std::uint8_t f : ood_flags) flagged += f != 0 ? 1 : 0;
  if (flagged != 0) ood_flagged->add(flagged);
  if (tenant != nullptr) {
    tenant->completed->add(n);
    if (flagged != 0) tenant->ood->add(flagged);
  }

  const bool hists = hub_->histograms_on();
  const bool traces = hub_->traces_on();
  if (!hists && !traces) return;
  const double service_s = seconds_between(t.batch_start, t.done);
  for (std::size_t i = 0; i < n; ++i) {
    if (hists) {
      const double queue_s = seconds_between(submit_times[i], t.batch_start);
      latency->record(queue_s + service_s);
      if (tenant != nullptr) {
        tenant->queue_wait->record(queue_s);
        tenant->service->record(service_s);
        tenant->latency->record(queue_s + service_s);
      }
    }
    if (traces) {
      obs::TraceSpan span;
      span.snapshot_version = snapshot_version;
      span.queue_ns = ns_between(submit_times[i], t.batch_start);
      span.encode_ns = ns_between(t.batch_start, t.encode_done);
      span.predict_ns = ns_between(t.encode_done, t.predict_done);
      span.fulfill_ns = ns_between(t.predict_done, t.done);
      span.total_ns =
          span.queue_ns + span.encode_ns + span.predict_ns + span.fulfill_ns;
      span.shard = shard;
      span.batch_rows = static_cast<std::uint32_t>(n);
      span.label = i < labels.size() ? labels[i] : -1;
      span.ood = i < ood_flags.size() ? ood_flags[i] : 0;
      span.set_tenant(tenant_name);
      hub_->tracer().record(span);
    }
  }
}

}  // namespace smore
