#include "serve/registry.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/pipeline.hpp"

namespace smore {

TenantModel::TenantModel(std::string tenant,
                         std::shared_ptr<const ModelSnapshot> boot)
    : tenant_(std::move(tenant)) {
  if (boot == nullptr || boot->model == nullptr) {
    throw std::invalid_argument("TenantModel: null boot snapshot");
  }
  dim_ = boot->model->dim();
  generations_.publish(std::move(boot));
}

bool TenantModel::publish(std::shared_ptr<const ModelSnapshot> snap) {
  if (snap == nullptr || snap->model == nullptr) {
    throw std::invalid_argument("TenantModel::publish: null snapshot");
  }
  if (snap->model->dim() != dim_) {
    throw std::invalid_argument(
        "TenantModel::publish: snapshot dimension mismatch for tenant " +
        tenant_);
  }
  return generations_.publish(std::move(snap));
}

std::size_t snapshot_resident_bytes(const ModelSnapshot& snap) {
  std::size_t bytes = 0;
  if (snap.model != nullptr) bytes += snap.model->footprint_bytes();
  if (snap.packed != nullptr) bytes += snap.packed->footprint_bytes();
  // Encoder state (item-memory basis, level bank, projection matrix) is
  // charged at its CURRENT materialized size. A freshly loaded artifact
  // carries config+seed only, and the multi-tenant data plane submits
  // pre-encoded hypervectors, so the basis normally never materializes and
  // near-zero is the true cost. A tenant that encodes raw windows grows its
  // basis AFTER this charge — that growth is outside the registry budget
  // (see RegistryConfig::byte_budget), not silently undercounted at load.
  if (snap.encoder != nullptr) {
    bytes += snap.encoder->footprint_bytes();
  }
  return bytes;
}

ModelRegistry::ModelRegistry(ArtifactOpener opener, RegistryConfig config)
    : config_(config),
      opener_(std::move(opener)),
      cache_({/*shards=*/config.cache_shards,
              /*byte_budget=*/config.byte_budget}) {
  if (!opener_) {
    throw std::invalid_argument("ModelRegistry: empty ArtifactOpener");
  }
}

ModelRegistry::ArtifactOpener ModelRegistry::directory_source(
    std::string dir) {
  return [dir = std::move(dir)](const std::string& tenant) {
    const std::string path = dir + "/" + tenant + ".smore";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("ModelRegistry: cannot open artifact " + path);
    }
    // Structural validation first: probe() walks the section table without
    // allocating payload-proportional memory, so a corrupt or truncated
    // artifact is rejected before the expensive deserialization starts.
    (void)Pipeline::probe(in);
    in.clear();
    in.seekg(0, std::ios::beg);
    return ModelSnapshot::from_artifact(in, /*version=*/1);
  };
}

std::shared_ptr<TenantModel> ModelRegistry::acquire(const std::string& tenant) {
  return cache_.get_or_load(tenant, [this](const std::string& key) {
    std::shared_ptr<const ModelSnapshot> boot = opener_(key);
    auto model = std::make_shared<TenantModel>(key, boot);
    return std::make_pair(std::move(model), snapshot_resident_bytes(*boot));
  });
}

std::shared_ptr<TenantModel> ModelRegistry::resident(
    const std::string& tenant) {
  return cache_.peek(tenant);
}

bool ModelRegistry::publish(const std::string& tenant,
                            std::shared_ptr<const ModelSnapshot> snap) {
  std::shared_ptr<TenantModel> model = cache_.peek(tenant);
  if (model == nullptr) return false;
  return model->publish(std::move(snap));
}

bool ModelRegistry::evict(const std::string& tenant) {
  return cache_.erase(tenant);
}

RegistryStats ModelRegistry::stats() const {
  const ShardedLruStats c = cache_.stats();
  RegistryStats s;
  s.hits = c.hits;
  s.misses = c.misses;
  s.loads = c.loads;
  s.load_failures = c.load_failures;
  s.evictions = c.evictions;
  s.single_flight_waits = c.single_flight_waits;
  s.resident_tenants = c.resident;
  s.resident_bytes = c.resident_bytes;
  s.peak_resident_bytes = c.peak_resident_bytes;
  s.byte_budget = config_.byte_budget;
  return s;
}

}  // namespace smore
