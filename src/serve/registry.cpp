#include "serve/registry.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "core/pipeline.hpp"

namespace smore {

TenantModel::TenantModel(std::string tenant,
                         std::shared_ptr<const ModelSnapshot> boot)
    : tenant_(std::move(tenant)) {
  if (boot == nullptr || boot->model == nullptr) {
    throw std::invalid_argument("TenantModel: null boot snapshot");
  }
  dim_ = boot->model->dim();
  generations_.publish(std::move(boot));
}

bool TenantModel::publish(std::shared_ptr<const ModelSnapshot> snap) {
  if (snap == nullptr || snap->model == nullptr) {
    throw std::invalid_argument("TenantModel::publish: null snapshot");
  }
  if (snap->model->dim() != dim_) {
    throw std::invalid_argument(
        "TenantModel::publish: snapshot dimension mismatch for tenant " +
        tenant_);
  }
  return generations_.publish(std::move(snap));
}

std::size_t snapshot_resident_bytes(const ModelSnapshot& snap) {
  std::size_t bytes = 0;
  if (snap.model != nullptr) bytes += snap.model->footprint_bytes();
  if (snap.packed != nullptr) bytes += snap.packed->footprint_bytes();
  // Encoder state (item-memory basis, level bank, projection matrix) is
  // charged at its CURRENT materialized size. A freshly loaded artifact
  // carries config+seed only, and the multi-tenant data plane submits
  // pre-encoded hypervectors, so the basis normally never materializes and
  // near-zero is the true cost. A tenant that encodes raw windows grows its
  // basis AFTER this charge — that growth is outside the registry budget
  // (see RegistryConfig::byte_budget), not silently undercounted at load.
  if (snap.encoder != nullptr) {
    bytes += snap.encoder->footprint_bytes();
  }
  return bytes;
}

namespace {

/// Callback-metric names registered per registry (removed in the dtor so a
/// hub that outlives the registry never calls into a dead object).
const char* const kCallbackCounters[] = {
    "smore_registry_hits_total",          "smore_registry_misses_total",
    "smore_registry_loads_total",         "smore_registry_load_failures_total",
    "smore_registry_evictions_total",
    "smore_registry_single_flight_waits_total"};
const char* const kCallbackGauges[] = {
    "smore_registry_resident_tenants", "smore_registry_resident_bytes",
    "smore_registry_peak_resident_bytes", "smore_registry_byte_budget_bytes"};

}  // namespace

ModelRegistry::ModelRegistry(ArtifactOpener opener, RegistryConfig config)
    : config_(config),
      opener_(std::move(opener)),
      tel_(config.telemetry != nullptr ? config.telemetry
                                       : obs::Telemetry::make()),
      cache_({/*shards=*/config.cache_shards,
              /*byte_budget=*/config.byte_budget,
              /*on_evict=*/
              [this](const std::string& key, std::size_t bytes) {
                tel_->emit(obs::EventType::kRegistryEvict, key, "byte-budget",
                           static_cast<std::int64_t>(bytes));
              }}) {
  if (!opener_) {
    throw std::invalid_argument("ModelRegistry: empty ArtifactOpener");
  }
  // Residency metrics are pull-time callbacks over the cache's own counters:
  // no double accounting, and the exporter always shows what stats() shows.
  obs::MetricsRegistry& m = tel_->metrics();
  const auto counter = [&](const char* name, auto field) {
    m.gauge_callback(
        name, {},
        [this, field] { return static_cast<double>(cache_.stats().*field); },
        obs::MetricType::kCounter);
  };
  counter(kCallbackCounters[0], &ShardedLruStats::hits);
  counter(kCallbackCounters[1], &ShardedLruStats::misses);
  counter(kCallbackCounters[2], &ShardedLruStats::loads);
  counter(kCallbackCounters[3], &ShardedLruStats::load_failures);
  counter(kCallbackCounters[4], &ShardedLruStats::evictions);
  counter(kCallbackCounters[5], &ShardedLruStats::single_flight_waits);
  m.gauge_callback(kCallbackGauges[0], {}, [this] {
    return static_cast<double>(cache_.size());
  });
  m.gauge_callback(kCallbackGauges[1], {}, [this] {
    return static_cast<double>(cache_.resident_bytes());
  });
  m.gauge_callback(kCallbackGauges[2], {}, [this] {
    return static_cast<double>(cache_.stats().peak_resident_bytes);
  });
  m.gauge_callback(kCallbackGauges[3], {}, [budget = config_.byte_budget] {
    return static_cast<double>(budget);
  });
}

ModelRegistry::~ModelRegistry() {
  obs::MetricsRegistry& m = tel_->metrics();
  for (const char* name : kCallbackCounters) m.remove(name, {});
  for (const char* name : kCallbackGauges) m.remove(name, {});
}

ModelRegistry::ArtifactOpener ModelRegistry::directory_source(
    std::string dir) {
  return [dir = std::move(dir)](const std::string& tenant) {
    const std::string path = dir + "/" + tenant + ".smore";
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw std::runtime_error("ModelRegistry: cannot open artifact " + path);
    }
    // Structural validation first: probe() walks the section table without
    // allocating payload-proportional memory, so a corrupt or truncated
    // artifact is rejected before the expensive deserialization starts.
    (void)Pipeline::probe(in);
    in.clear();
    in.seekg(0, std::ios::beg);
    return ModelSnapshot::from_artifact(in, /*version=*/1);
  };
}

std::shared_ptr<TenantModel> ModelRegistry::acquire(const std::string& tenant) {
  return cache_.get_or_load(tenant, [this](const std::string& key) {
    // One event per load outcome, emitted at the flight that did the work —
    // joiners observe the result through the future, not the event log.
    try {
      std::shared_ptr<const ModelSnapshot> boot = opener_(key);
      auto model = std::make_shared<TenantModel>(key, boot);
      const std::size_t bytes = snapshot_resident_bytes(*boot);
      tel_->emit(obs::EventType::kRegistryLoad, key, "artifact-load",
                 static_cast<std::int64_t>(bytes));
      return std::make_pair(std::move(model), bytes);
    } catch (const std::exception& e) {
      tel_->emit(obs::EventType::kRegistryLoadFailure, key, e.what());
      throw;
    } catch (...) {
      tel_->emit(obs::EventType::kRegistryLoadFailure, key, "unknown error");
      throw;
    }
  });
}

std::shared_ptr<TenantModel> ModelRegistry::resident(
    const std::string& tenant) {
  return cache_.peek(tenant);
}

bool ModelRegistry::publish(const std::string& tenant,
                            std::shared_ptr<const ModelSnapshot> snap) {
  std::shared_ptr<TenantModel> model = cache_.peek(tenant);
  if (model == nullptr) return false;
  const std::uint64_t version = snap != nullptr ? snap->version : 0;
  const bool published = model->publish(std::move(snap));
  if (published) {
    tel_->emit(obs::EventType::kSnapshotPublish, tenant, "operator",
               static_cast<std::int64_t>(version));
  }
  return published;
}

bool ModelRegistry::evict(const std::string& tenant) {
  const bool dropped = cache_.erase(tenant);
  if (dropped) {
    tel_->emit(obs::EventType::kRegistryEvict, tenant, "operator");
  }
  return dropped;
}

RegistryStats ModelRegistry::stats() const {
  const ShardedLruStats c = cache_.stats();
  RegistryStats s;
  s.hits = c.hits;
  s.misses = c.misses;
  s.loads = c.loads;
  s.load_failures = c.load_failures;
  s.evictions = c.evictions;
  s.single_flight_waits = c.single_flight_waits;
  s.resident_tenants = c.resident;
  s.resident_bytes = c.resident_bytes;
  s.peak_resident_bytes = c.peak_resident_bytes;
  s.byte_budget = config_.byte_budget;
  return s;
}

}  // namespace smore
