#pragma once
// MultiTenantServer: tenant routing, per-shard worker groups, and fair
// admission control over the ModelRegistry (DESIGN.md §12).
//
// The single-tenant InferenceServer (serve/server.hpp) scales one model to
// many clients. A fleet inverts the problem: many tenants, each with its own
// model, sharing one machine. Three mechanisms make that safe:
//
//   * tenant → shard routing — a request is hashed by tenant id onto one of
//     `num_shards` shards. A shard is a thread slice that owns its own
//     bounded request queue and worker group, so tenants on different shards
//     never contend on a queue lock, and all of one tenant's traffic lands
//     where its batches can coalesce;
//   * per-tenant micro-batches — batches cannot mix tenants (each tenant has
//     its own model), so shard workers stage arrivals into per-tenant
//     pending groups and run ONE predict_batch_full per tenant-batch against
//     that tenant's pinned snapshot. The batch pins the TenantModel: a
//     registry eviction mid-batch cannot free the model under the kernel;
//   * tenant-fair admission + drain — with `fair` set, try_submit enforces a
//     per-tenant in-flight quota (admission control: a Zipf-head tenant that
//     floods the shard is shed with kShedTenantQuota while the tail is still
//     admitted) and workers drain pending tenant groups round-robin (one
//     batch per tenant per turn — service fairness: the head cannot starve
//     the tail inside the queue either). With `fair` off the server is the
//     throughput-greedy baseline: no quota, largest-group-first drain
//     (maximizes batch fill, starves the tail) — the configuration the
//     multi-tenant bench contrasts against.
//
// Model residency (lazy load, single-flight, LRU under a byte budget) is the
// registry's job; the router only acquires. An artifact that fails to load
// fails THE REQUESTS that needed it — the returned future carries the
// loader's exception, per-request, never process-wide.
//
// Requests are pre-encoded hypervectors: in a fleet the encoder is
// tenant-specific state that travels inside the artifact, and per-tenant
// in-batch encoding stays deferred. Per-tenant adaptation (ROADMAP item 3)
// is served here: turn on MultiTenantConfig::adaptation and each tenant's
// OOD traffic drives its own bounded domain lifecycle (DESIGN.md §13) —
// flat per-tenant memory no matter how long its drift history runs.
// Shutdown is graceful and total: queues close, workers
// drain every pending group across all shards, every future is fulfilled,
// and late submits resolve immediately with kShuttingDown.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>  // std::once_flag only; locks go through util/mutex.hpp
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/domain_lifecycle.hpp"
#include "serve/adaptation.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/annotations.hpp"
#include "util/latency.hpp"
#include "util/mpmc_queue.hpp"
#include "util/mutex.hpp"

namespace smore {

/// Fleet-serving knobs. Scheduler knobs (max_batch / max_delay_us) mean the
/// same as in ServerConfig; the new surface is the shard layout and the
/// fairness policy.
struct MultiTenantConfig {
  std::size_t num_shards = 1;        ///< independent queue+worker slices
  std::size_t workers_per_shard = 1; ///< batching workers per shard
  std::size_t max_batch = 64;        ///< per-tenant micro-batch cap
  std::uint32_t max_delay_us = 200;  ///< batch-formation wait when idle
  std::size_t shard_queue_capacity = 1024;  ///< per-shard request bound

  bool fair = true;  ///< per-tenant quota + round-robin drain (see header)
  /// Max in-flight requests per tenant before try_submit sheds with
  /// kShedTenantQuota (fair mode only; 0 = unbounded). Blocking submit()
  /// bypasses the quota — backpressure already slows that producer down.
  std::size_t tenant_inflight_quota = 256;

  /// Per-tenant online adaptation (ROADMAP item 3): shard
  /// workers feed each tenant's OOD traffic into that tenant's own bounded
  /// side buffer, and ONE shared adaptation worker sweeps ready tenants,
  /// runs a bounded lifecycle round (DESIGN.md §13) on the tenant's clone,
  /// and republishes that tenant's generation. Always lifecycle-bounded:
  /// a fleet tenant's model size is a function of lifecycle_config, never
  /// of its traffic history. Cold (evicted) tenants are never reloaded just
  /// to adapt them — their buffered rounds are shed and counted.
  bool adaptation = false;
  std::size_t adapt_min_batch = 64;         ///< OOD windows per tenant round
  std::size_t adapt_buffer_capacity = 512;  ///< per-tenant side-buffer bound
  std::uint32_t adapt_poll_ms = 2;          ///< adaptation sweep cadence
  LifecycleConfig lifecycle_config;         ///< bounded lifecycle knobs

  /// Telemetry hub (DESIGN.md §14): every fleet counter/histogram lives in
  /// its MetricsRegistry, requests cut trace spans, and shed / publish /
  /// lifecycle occurrences emit events. Pass the SAME hub as
  /// RegistryConfig::telemetry for one unified export surface (fleet_top
  /// sees residency AND traffic); null means a private hub.
  std::shared_ptr<obs::Telemetry> telemetry;
  /// When non-empty, a background thread writes the JSON telemetry snapshot
  /// (obs::snapshot_json_text) to this path every export_interval_ms,
  /// atomically (tmp + rename) — the file fleet_top watches. One final
  /// write happens at shutdown so the last counters are never lost.
  std::string export_path;
  std::uint32_t export_interval_ms = 1000;  ///< exporter cadence
};

/// Per-tenant counters + latency histograms. Slots are created on first
/// submit and never dropped — stats survive model eviction, so a tenant's
/// history spans its cold/warm cycles. A VIEW over the telemetry registry's
/// {tenant=...} series; the histograms are empty when the hub's histogram
/// switch is off.
struct TenantServerStats {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_tenant_quota = 0;
  std::uint64_t load_failures = 0;  ///< requests failed by artifact loads
  std::uint64_t ood_flagged = 0;
  std::uint64_t inflight = 0;  ///< gauge at the time of the stats call
  std::uint64_t adaptation_rounds = 0;   ///< generations this tenant published
  std::uint64_t adaptation_absorbed = 0; ///< OOD windows absorbed
  std::uint64_t adaptation_dropped = 0;  ///< OOD windows shed (all causes)
  std::uint64_t adaptation_overflow = 0; ///< …of which: side-buffer overflow
  std::uint64_t adaptation_merged = 0;   ///< lifecycle: clusters merged
  std::uint64_t adaptation_evicted = 0;  ///< lifecycle: domains evicted
  /// Histogram COPIES (mergeable): queue_wait is submit → batch start,
  /// service is batch start → fulfillment, latency is the end-to-end sum
  /// per request. The bench merges tail-tenant cohorts from these.
  LatencyHistogram queue_wait;
  LatencyHistogram service;
  LatencyHistogram latency;
};

/// Aggregate counters + the registry's residency stats.
struct MultiTenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;  ///< all sheds + late submits
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_tenant_quota = 0;
  std::uint64_t load_failures = 0;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::uint64_t batched_rows = 0;
  std::uint64_t ood_flagged = 0;
  std::uint64_t tenants_seen = 0;  ///< tenant slots ever created
  std::uint64_t adaptation_rounds = 0;   ///< tenant generations published
  std::uint64_t adaptation_absorbed = 0;
  std::uint64_t adaptation_dropped = 0;
  std::uint64_t adaptation_overflow = 0;
  std::uint64_t adaptation_merged = 0;   ///< lifecycle: clusters merged
  std::uint64_t adaptation_evicted = 0;  ///< lifecycle: domains evicted
  double mean_batch_fill = 0.0;
  LatencySummary latency;  ///< submit → fulfill, all tenants merged
  RegistryStats registry;
};

/// The fleet router. Construction spawns all shard workers; destruction (or
/// shutdown()) drains and joins them.
class MultiTenantServer {
 public:
  /// `registry` must be non-null (shared: benches/operators keep a handle
  /// for evict/publish). Throws std::invalid_argument otherwise.
  explicit MultiTenantServer(std::shared_ptr<ModelRegistry> registry,
                             MultiTenantConfig config = {});
  ~MultiTenantServer();

  MultiTenantServer(const MultiTenantServer&) = delete;
  MultiTenantServer& operator=(const MultiTenantServer&) = delete;

  /// Submit one encoded query for `tenant`; blocks on a full shard queue
  /// (backpressure). A cold tenant triggers the (single-flight) artifact
  /// load on THIS call. Load failure returns a future carrying the loader's
  /// exception; dimension mismatch throws std::invalid_argument; after
  /// shutdown() the future is already fulfilled with kShuttingDown.
  std::future<ServeResult> submit(const std::string& tenant,
                                  std::vector<float> hv);

  /// Non-blocking submit: sheds instead of waiting. std::nullopt on a full
  /// shard queue (kShedQueueFull), an exhausted tenant quota
  /// (kShedTenantQuota, fair mode), or after shutdown (kShuttingDown) —
  /// the reason lands in `*shed_reason` when non-null. A failed artifact
  /// load still returns a future (carrying the exception): the request was
  /// admitted, the tenant is broken — those are different signals.
  std::optional<std::future<ServeResult>> try_submit(
      const std::string& tenant, std::vector<float> hv,
      ServeStatus* shed_reason = nullptr);

  [[nodiscard]] const MultiTenantConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] ModelRegistry& registry() noexcept { return *registry_; }

  /// Graceful shutdown: close every shard queue, drain every pending tenant
  /// group, fulfill every future, join all workers. Idempotent; the
  /// destructor calls it.
  void shutdown();

  [[nodiscard]] MultiTenantStats stats() const;
  /// Per-tenant stats (histogram copies), sorted by tenant id.
  [[nodiscard]] std::vector<TenantServerStats> tenant_stats() const;

  /// The telemetry hub this fleet reports into (never null — private when
  /// the config left it unset). Exporters (obs/export.hpp) read it.
  [[nodiscard]] const std::shared_ptr<obs::Telemetry>& telemetry()
      const noexcept {
    return tel_->hub_ptr();
  }

  /// Write the JSON telemetry snapshot to `path` atomically (tmp + rename).
  /// What the periodic exporter calls; also useful for one-shot dumps.
  bool write_telemetry(const std::string& path) const;

 private:
  /// Persistent per-tenant bookkeeping (never evicted; see
  /// TenantServerStats). Counters and histograms live in the telemetry
  /// registry ({tenant=...} series, handles bundled in `tel`); only the
  /// in-flight quota gauge and the adaptation side state are slot-local.
  struct TenantSlot {
    TenantSlot(std::string name, TenantTelemetry telemetry)
        : tenant(std::move(name)), tel(telemetry) {}
    const std::string tenant;
    const TenantTelemetry tel;  // handles stay valid for the hub's lifetime
    std::atomic<std::uint64_t> inflight{0};
    // This tenant's OOD side buffer + per-domain usage credit since its last
    // adaptation round (adaptation mode only; bounded by
    // adapt_buffer_capacity, overflow is counted and shed).
    Mutex adapt_m;
    std::vector<OodSample> ood_buffer SMORE_GUARDED_BY(adapt_m);
    std::map<int, double> usage SMORE_GUARDED_BY(adapt_m);
  };

  struct Request {
    std::shared_ptr<TenantSlot> slot;
    std::shared_ptr<TenantModel> model;  // pinned: eviction-safe
    std::vector<float> hv;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  struct Shard {
    explicit Shard(std::size_t capacity) : queue(capacity) {}
    MpmcQueue<Request> queue;
  };

  std::shared_ptr<TenantSlot> slot_of(const std::string& tenant);
  Shard& shard_of(const std::string& tenant);
  std::optional<std::future<ServeResult>> do_submit(const std::string& tenant,
                                                    std::vector<float> hv,
                                                    bool blocking,
                                                    ServeStatus* shed_reason);
  void worker_loop(std::size_t shard_index, std::size_t worker_index);
  /// Run one single-tenant micro-batch end to end.
  void process_batch(std::vector<Request>& batch, std::size_t worker_index);
  /// The shared per-tenant adaptation sweep (one thread for the fleet).
  void adaptation_loop();
  /// Periodic JSON snapshot writer (spawned when export_path is set).
  void export_loop();
  /// One tenant's lifecycle round: clone → adapt → republish its generation.
  void run_tenant_round(TenantSlot& slot, std::vector<OodSample> round,
                        std::span<const std::pair<int, double>> usage);
  /// Every live slot (snapshot of the insert-only maps).
  [[nodiscard]] std::vector<std::shared_ptr<TenantSlot>> all_slots() const;

  MultiTenantConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> workers_;
  std::thread adaptation_thread_;
  Mutex adapt_wake_m_;
  CondVar adapt_cv_;
  bool adapt_stopping_ SMORE_GUARDED_BY(adapt_wake_m_) = false;

  // Tenant slots: sharded string → slot map, insert-only.
  static constexpr std::size_t kSlotShards = 16;
  struct SlotShard {
    Mutex m;
    std::unordered_map<std::string, std::shared_ptr<TenantSlot>> map
        SMORE_GUARDED_BY(m);
  };
  std::vector<std::unique_ptr<SlotShard>> slot_shards_;

  // Fleet-plane counters/histograms live in the telemetry hub ({plane=fleet}
  // series); stats() reads the same handles the hot path bumps.
  std::unique_ptr<ServeTelemetry> tel_;
  obs::Counter* tenants_seen_ = nullptr;  // slots ever created

  // Periodic exporter (export_path only).
  std::thread export_thread_;
  Mutex export_m_;
  CondVar export_cv_;
  bool export_stopping_ SMORE_GUARDED_BY(export_m_) = false;

  std::atomic<bool> shut_down_{false};
  std::once_flag shutdown_once_;
};

}  // namespace smore
