#pragma once
// ServeTelemetry: the serving planes' shared metric vocabulary and the ONE
// accounting-before-fulfillment implementation (DESIGN.md §14).
//
// Both process_batch sites (serve/server.cpp, serve/router.cpp) used to
// carry their own copy of the same delicate counter-ordering block: all
// externally observable accounting must land BEFORE any promise is
// fulfilled, so a submitter that returns from get() and immediately reads
// stats() sees its own request counted. That block now lives here once, as
// record_batch(), which also cuts the per-request trace spans from the same
// four timestamps (so queue+encode+predict+fulfill == total exactly) and
// feeds the latency histograms.
//
// Metric handles are created once at construction / slot creation — the hot
// path never touches the registry map. Counters are always on (they back the
// legacy stats structs); histogram and trace recording honor the hub's
// switches, which is the axis bench_telemetry_overhead measures.

#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "obs/telemetry.hpp"
#include "serve/status.hpp"

namespace smore {

/// Per-tenant metric handle bundle ({tenant=...} label set). Created once
/// per tenant slot; raw pointers stay valid for the hub's lifetime.
struct TenantTelemetry {
  obs::Counter* submitted = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* shed_queue = nullptr;
  obs::Counter* shed_quota = nullptr;
  obs::Counter* load_failures = nullptr;
  obs::Counter* ood = nullptr;
  obs::Counter* adapt_rounds = nullptr;
  obs::Counter* adapt_absorbed = nullptr;
  obs::Counter* adapt_dropped = nullptr;
  obs::Counter* adapt_overflow = nullptr;
  obs::Counter* adapt_merged = nullptr;
  obs::Counter* adapt_evicted = nullptr;
  obs::Histogram* queue_wait = nullptr;  ///< submit → batch start
  obs::Histogram* service = nullptr;     ///< batch start → fulfill
  obs::Histogram* latency = nullptr;     ///< submit → fulfill
};

/// One serving plane's handle bundle over an obs::Telemetry hub. `plane`
/// labels every plane-level series ("server" or "fleet"), so a hub shared
/// between planes exports without collisions. A null hub means "private
/// hub": stats views always work and unit tests never collide on names.
class ServeTelemetry {
 public:
  ServeTelemetry(std::shared_ptr<obs::Telemetry> hub, std::string plane,
                 std::size_t worker_stripes);

  [[nodiscard]] obs::Telemetry& hub() noexcept { return *hub_; }
  [[nodiscard]] const obs::Telemetry& hub() const noexcept { return *hub_; }
  [[nodiscard]] const std::shared_ptr<obs::Telemetry>& hub_ptr()
      const noexcept {
    return hub_;
  }
  [[nodiscard]] const std::string& plane() const noexcept { return plane_; }

  /// Get-or-create the {tenant=name} handle bundle (call at slot creation,
  /// not per request — registration takes the registry mutex).
  [[nodiscard]] TenantTelemetry tenant(const std::string& name);

  /// One refusal: plane rejected + per-reason shed counter, the tenant's
  /// mirror counters when given, and exactly one kShed event carrying the
  /// reason. `scope` is the tenant (fleet plane) or the plane name.
  void record_shed(ServeStatus reason, std::string_view scope,
                   const TenantTelemetry* tenant = nullptr);

  /// One admitted request whose artifact load failed (counters only — the
  /// registry emits the load-failure event; it made the call).
  void record_load_failure(const TenantTelemetry* tenant);

  /// The four batch phase boundaries. `encode_done == batch_start` on planes
  /// that take pre-encoded queries (the encode span reads 0).
  struct BatchTimes {
    std::chrono::steady_clock::time_point batch_start;
    std::chrono::steady_clock::time_point encode_done;
    std::chrono::steady_clock::time_point predict_done;
    std::chrono::steady_clock::time_point done;
  };

  /// THE accounting-before-fulfillment block: batch/row/completed/ood
  /// counters (plane + tenant), latency histograms when enabled, and one
  /// trace span per request when enabled — all from the caller's timestamps,
  /// all before the caller touches a promise. Spans are parallel over the
  /// batch: submit_times[i], ood_flags[i], labels[i] describe request i.
  void record_batch(const BatchTimes& t,
                    std::span<const std::chrono::steady_clock::time_point>
                        submit_times,
                    std::span<const std::uint8_t> ood_flags,
                    std::span<const int> labels,
                    std::uint64_t snapshot_version, std::uint32_t shard,
                    std::string_view tenant_name,
                    const TenantTelemetry* tenant);

  // Plane-level handles ({plane=...} label), public by design: the servers
  // bump adaptation/drop counters at their own decision points.
  obs::Counter* submitted = nullptr;
  obs::Counter* rejected = nullptr;  ///< all refusals (every shed reason)
  obs::Counter* shed_queue_full = nullptr;
  obs::Counter* shed_quota = nullptr;
  obs::Counter* shed_shutdown = nullptr;
  obs::Counter* load_failures = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* batches = nullptr;
  obs::Counter* batched_rows = nullptr;
  obs::Counter* ood_flagged = nullptr;
  obs::Counter* adapt_rounds = nullptr;
  obs::Counter* adapt_absorbed = nullptr;
  obs::Counter* adapt_dropped = nullptr;
  obs::Counter* adapt_overflow = nullptr;
  obs::Counter* adapt_merged = nullptr;
  obs::Counter* adapt_evicted = nullptr;
  obs::Histogram* latency = nullptr;  ///< submit → fulfill, plane-wide

 private:
  std::shared_ptr<obs::Telemetry> hub_;
  std::string plane_;
};

}  // namespace smore
