#include "serve/router.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>
#include <utility>

#include "hdc/hv_matrix.hpp"
#include "obs/export.hpp"

namespace smore {

namespace {
double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// A future already fulfilled with just a status (late-submit path).
std::future<ServeResult> ready_status(ServeStatus status) {
  std::promise<ServeResult> p;
  ServeResult r;
  r.status = status;
  p.set_value(std::move(r));
  return p.get_future();
}

/// A future already fulfilled with an exception (artifact-load failure:
/// the error surfaces to THIS request, never process-wide).
std::future<ServeResult> ready_error(std::exception_ptr error) {
  std::promise<ServeResult> p;
  p.set_exception(std::move(error));
  return p.get_future();
}
}  // namespace

MultiTenantServer::MultiTenantServer(std::shared_ptr<ModelRegistry> registry,
                                     MultiTenantConfig config)
    : config_(config), registry_(std::move(registry)) {
  if (registry_ == nullptr) {
    throw std::invalid_argument("MultiTenantServer: null registry");
  }
  config_.num_shards = std::max<std::size_t>(1, config_.num_shards);
  config_.workers_per_shard = std::max<std::size_t>(1, config_.workers_per_shard);
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  config_.shard_queue_capacity =
      std::max<std::size_t>(1, config_.shard_queue_capacity);

  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.shard_queue_capacity));
  }
  slot_shards_.resize(kSlotShards);
  for (auto& s : slot_shards_) s = std::make_unique<SlotShard>();

  const std::size_t total = config_.num_shards * config_.workers_per_shard;
  tel_ = std::make_unique<ServeTelemetry>(config_.telemetry, "fleet", total);
  tenants_seen_ = tel_->hub().metrics().counter("smore_tenants_seen_total",
                                                {{"plane", "fleet"}});
  workers_.reserve(total);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    for (std::size_t w = 0; w < config_.workers_per_shard; ++w) {
      const std::size_t index = s * config_.workers_per_shard + w;
      workers_.emplace_back([this, s, index] { worker_loop(s, index); });
    }
  }
  if (config_.adaptation) {
    config_.adapt_min_batch = std::max<std::size_t>(1, config_.adapt_min_batch);
    config_.adapt_buffer_capacity =
        std::max(config_.adapt_min_batch, config_.adapt_buffer_capacity);
    adaptation_thread_ = std::thread([this] { adaptation_loop(); });
  }
  if (!config_.export_path.empty()) {
    config_.export_interval_ms =
        std::max<std::uint32_t>(1, config_.export_interval_ms);
    export_thread_ = std::thread([this] { export_loop(); });
  }
}

MultiTenantServer::~MultiTenantServer() { shutdown(); }

std::shared_ptr<MultiTenantServer::TenantSlot> MultiTenantServer::slot_of(
    const std::string& tenant) {
  SlotShard& shard =
      *slot_shards_[std::hash<std::string>{}(tenant) % kSlotShards];
  const MutexLock lock(shard.m);
  auto it = shard.map.find(tenant);
  if (it != shard.map.end()) return it->second;
  // The {tenant=...} metric bundle is created here, once per slot — the hot
  // path only ever touches the cached raw handles.
  auto slot = std::make_shared<TenantSlot>(tenant, tel_->tenant(tenant));
  shard.map.emplace(tenant, slot);
  tenants_seen_->add(1);
  return slot;
}

MultiTenantServer::Shard& MultiTenantServer::shard_of(
    const std::string& tenant) {
  // Same hash as the slot map, different modulus: one tenant's traffic
  // always lands on one shard, where its micro-batches coalesce.
  return *shards_[std::hash<std::string>{}(tenant) % shards_.size()];
}

std::optional<std::future<ServeResult>> MultiTenantServer::do_submit(
    const std::string& tenant, std::vector<float> hv, bool blocking,
    ServeStatus* shed_reason) {
  std::shared_ptr<TenantSlot> slot = slot_of(tenant);
  if (shut_down_.load(std::memory_order_acquire)) {
    tel_->record_shed(ServeStatus::kShuttingDown, tenant, &slot->tel);
    if (blocking) return ready_status(ServeStatus::kShuttingDown);
    if (shed_reason != nullptr) *shed_reason = ServeStatus::kShuttingDown;
    return std::nullopt;
  }

  // Admission control: the in-flight count is bumped BEFORE the quota test
  // (fetch_add is the reservation; losers roll back) so concurrent
  // submitters cannot all pass the same reading. Blocking submit() skips
  // the test — the queue bound already applies backpressure to it — but
  // still counts, so its traffic is visible to concurrent try_submits.
  const std::uint64_t inflight =
      slot->inflight.fetch_add(1, std::memory_order_relaxed);
  if (!blocking && config_.fair && config_.tenant_inflight_quota != 0 &&
      inflight >= config_.tenant_inflight_quota) {
    slot->inflight.fetch_sub(1, std::memory_order_relaxed);
    tel_->record_shed(ServeStatus::kShedTenantQuota, tenant, &slot->tel);
    if (shed_reason != nullptr) *shed_reason = ServeStatus::kShedTenantQuota;
    return std::nullopt;
  }

  // Resolve the model (cold tenants load here, single-flight). The loader's
  // exception is delivered on the request's own future — admission
  // succeeded, the TENANT is broken, and only its requests see that.
  std::shared_ptr<TenantModel> model;
  try {
    model = registry_->acquire(tenant);
  } catch (...) {
    slot->inflight.fetch_sub(1, std::memory_order_relaxed);
    // Counters only: the registry emitted the load-failure event (it made
    // the call, it knows the cause).
    tel_->record_load_failure(&slot->tel);
    return ready_error(std::current_exception());
  }
  if (hv.size() != model->dim()) {
    slot->inflight.fetch_sub(1, std::memory_order_relaxed);
    throw std::invalid_argument(
        "MultiTenantServer::submit: dimension mismatch for tenant " + tenant);
  }

  Request req;
  req.slot = slot;
  req.model = std::move(model);
  req.hv = std::move(hv);
  req.submit_time = std::chrono::steady_clock::now();
  std::future<ServeResult> fut = req.promise.get_future();
  Shard& shard = shard_of(tenant);
  // On refusal the queue has already consumed the moved request (promise
  // included) — do not touch `req` or `fut` past this point on those paths.
  // The refusal reason is the queue's own atomic decision (QueuePush), not a
  // second racy closed() read that a concurrent shutdown could flip.
  bool accepted = false;
  ServeStatus reason = ServeStatus::kShuttingDown;
  if (blocking) {
    // A blocking push only refuses when the queue closed mid-wait.
    accepted = shard.queue.push(std::move(req));
  } else {
    switch (shard.queue.try_push(std::move(req))) {
      case QueuePush::kAccepted: accepted = true; break;
      case QueuePush::kFull: reason = ServeStatus::kShedQueueFull; break;
      case QueuePush::kClosed: reason = ServeStatus::kShuttingDown; break;
    }
  }
  if (!accepted) {
    slot->inflight.fetch_sub(1, std::memory_order_relaxed);
    tel_->record_shed(blocking ? ServeStatus::kShuttingDown : reason, tenant,
                      &slot->tel);
    if (blocking) return ready_status(ServeStatus::kShuttingDown);
    if (shed_reason != nullptr) *shed_reason = reason;
    return std::nullopt;
  }
  slot->tel.submitted->add(1);
  tel_->submitted->add(1);
  return fut;
}

std::future<ServeResult> MultiTenantServer::submit(const std::string& tenant,
                                                   std::vector<float> hv) {
  return *do_submit(tenant, std::move(hv), /*blocking=*/true, nullptr);
}

std::optional<std::future<ServeResult>> MultiTenantServer::try_submit(
    const std::string& tenant, std::vector<float> hv,
    ServeStatus* shed_reason) {
  return do_submit(tenant, std::move(hv), /*blocking=*/false, shed_reason);
}

void MultiTenantServer::worker_loop(std::size_t shard_index,
                                    std::size_t worker_index) {
  Shard& shard = *shards_[shard_index];
  const std::chrono::microseconds delay(config_.max_delay_us);

  // Worker-local staging: arrivals (any tenant, FIFO off the shard queue)
  // are grouped per tenant here, because a batch cannot mix tenants. The
  // rotation ring realizes drain fairness: one micro-batch per pending
  // tenant per turn. Invariant (fair mode): a tenant is in the ring iff its
  // group exists (groups are erased when drained).
  struct Group {
    std::deque<Request> q;
  };
  std::unordered_map<std::string, Group> groups;
  std::deque<std::string> rotation;
  std::size_t pending = 0;
  std::vector<Request> incoming;
  std::vector<Request> batch;
  incoming.reserve(config_.max_batch);
  batch.reserve(config_.max_batch);

  for (;;) {
    incoming.clear();
    if (pending == 0) {
      // Idle: block for the first arrival (pop_batch also coalesces
      // stragglers for max_delay_us). 0 means closed AND drained — with no
      // pending work left, the shard is fully served.
      if (shard.queue.pop_batch(incoming, config_.max_batch, delay) == 0) {
        return;
      }
    } else {
      // Work in hand: top up without sleeping, then keep draining. After
      // close this returns 0 and the loop finishes the pending groups —
      // graceful shutdown fulfills every future across all shards.
      shard.queue.try_pop_batch(incoming, config_.max_batch);
    }
    for (Request& r : incoming) {
      Group& g = groups[r.slot->tenant];
      if (g.q.empty() && config_.fair) rotation.push_back(r.slot->tenant);
      g.q.push_back(std::move(r));
      ++pending;
    }

    // Pick the tenant to serve this turn.
    std::string tenant;
    if (config_.fair) {
      tenant = std::move(rotation.front());
      rotation.pop_front();
    } else {
      // Throughput-greedy baseline: serve the LARGEST pending group —
      // maximizing batch fill maximizes aggregate q/s, and is exactly the
      // policy that starves the tail: a Zipf-head tenant's group refills
      // faster than a tail tenant's singleton can ever become the largest.
      // Ties break toward the older front request so equal-depth groups
      // still drain in arrival order. The bench quantifies the tail p99
      // this policy buys its throughput with.
      auto best = groups.begin();
      for (auto it = std::next(groups.begin()); it != groups.end(); ++it) {
        if (it->second.q.size() > best->second.q.size() ||
            (it->second.q.size() == best->second.q.size() &&
             it->second.q.front().submit_time <
                 best->second.q.front().submit_time)) {
          best = it;
        }
      }
      tenant = best->first;
    }

    auto git = groups.find(tenant);
    Group& g = git->second;
    batch.clear();
    const std::size_t take = std::min(config_.max_batch, g.q.size());
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(g.q.front()));
      g.q.pop_front();
    }
    pending -= take;
    if (g.q.empty()) {
      groups.erase(git);
    } else if (config_.fair) {
      rotation.push_back(tenant);  // back of the ring: others go first
    }
    process_batch(batch, worker_index);
  }
}

void MultiTenantServer::process_batch(std::vector<Request>& batch,
                                      std::size_t worker_index) {
  TenantSlot& slot = *batch.front().slot;
  // All requests of a batch share one tenant; the snapshot is grabbed once
  // (RCU read) and pins the model generation for the whole batch.
  const auto snap = batch.front().model->snapshot();
  const std::size_t dim = snap->backend->dim();

  // One tenant's requests can still be pinned to DIFFERENT TenantModel
  // instances: evict + redeploy with a new dimension while earlier requests
  // sat queued. Each was validated only against its own pinned model at
  // submit, so a row may not fit this batch's dim — that is a per-request
  // error, delivered on its own promise; it must never escape the worker
  // thread (the process-wide-failure contract this server exists for).
  std::size_t mismatched = 0;
  for (const Request& r : batch) mismatched += r.hv.size() != dim ? 1 : 0;
  if (mismatched != 0) {
    // Accounting before fulfillment (the invariant of this function): a
    // submitter whose future resolves must already see its quota released.
    slot.inflight.fetch_sub(mismatched, std::memory_order_relaxed);
    tel_->hub().emit(obs::EventType::kShed, slot.tenant, "dim-mismatch",
                     static_cast<std::int64_t>(mismatched));
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].hv.size() == dim) {
        if (kept != i) batch[kept] = std::move(batch[i]);
        ++kept;
        continue;
      }
      batch[i].promise.set_exception(std::make_exception_ptr(
          std::invalid_argument("MultiTenantServer: request for tenant " +
                                slot.tenant +
                                " was pinned to a model generation with a "
                                "different dimension than its batch")));
    }
    batch.resize(kept);
    if (batch.empty()) return;
  }
  const std::size_t n = batch.size();
  const auto batch_start = std::chrono::steady_clock::now();

  SmoreBatchResult result;
  try {
    // The matrix fill sits inside the try: any residual bad row fails the
    // BATCH on its requests' promises, never the worker thread.
    HvMatrix queries(n, dim);
    for (std::size_t i = 0; i < n; ++i) queries.set_row(i, batch[i].hv);
    result = snap->backend->predict_batch_full(queries.view());
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    slot.inflight.fetch_sub(n, std::memory_order_relaxed);
    for (Request& req : batch) req.promise.set_exception(error);
    return;
  }

  const std::size_t k = result.num_domains;
  const auto predict_done = std::chrono::steady_clock::now();

  if (config_.adaptation && k > 0) {
    // Feed this tenant's lifecycle: OOD rows into its bounded side buffer
    // (the encoded hv is moved — the kernel consumed it above), and one unit
    // of usage credit to each request's best-matching domain so decay/evict
    // rank domains by what this tenant's traffic actually exercises.
    std::vector<double> pos_usage(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double* w = result.weights.data() + i * k;
      std::size_t best = 0;
      for (std::size_t p = 1; p < k; ++p) {
        if (w[p] > w[best]) best = p;
      }
      pos_usage[best] += 1.0;
    }
    const std::vector<int>& ids = snap->model->descriptors().domain_ids();
    std::size_t overflow = 0;
    bool ready = false;
    {
      const MutexLock lock(slot.adapt_m);
      for (std::size_t p = 0; p < k && p < ids.size(); ++p) {
        if (pos_usage[p] != 0.0) slot.usage[ids[p]] += pos_usage[p];
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (result.ood[i] == 0) continue;
        if (slot.ood_buffer.size() >= config_.adapt_buffer_capacity) {
          ++overflow;
          continue;
        }
        slot.ood_buffer.push_back(
            OodSample{std::move(batch[i].hv), result.labels[i]});
      }
      ready = slot.ood_buffer.size() >= config_.adapt_min_batch;
    }
    if (overflow != 0) {
      slot.tel.adapt_overflow->add(overflow);
      slot.tel.adapt_dropped->add(overflow);
      tel_->adapt_overflow->add(overflow);
      tel_->adapt_dropped->add(overflow);
      tel_->hub().emit(obs::EventType::kAdaptationShed, slot.tenant,
                       "buffer-overflow",
                       static_cast<std::int64_t>(overflow));
    }
    if (ready) adapt_cv_.notify_one();
  }
  const auto now = std::chrono::steady_clock::now();

  // ALL externally observable accounting lands before any promise is
  // fulfilled: a submitter that returns from get() and immediately reads
  // stats()/tenant_stats() must see its own request counted, its quota
  // reservation released, and its latency recorded. record_batch is the ONE
  // shared implementation of that invariant (counters, per-tenant
  // histograms, trace spans) for both serving planes.
  std::vector<std::chrono::steady_clock::time_point> submit_times;
  submit_times.reserve(n);
  for (const Request& req : batch) submit_times.push_back(req.submit_time);
  tel_->record_batch(
      {batch_start, /*encode_done=*/batch_start, predict_done, now},
      submit_times, result.ood, result.labels, snap->version,
      static_cast<std::uint32_t>(worker_index / config_.workers_per_shard),
      slot.tenant, &slot.tel);
  slot.inflight.fetch_sub(n, std::memory_order_relaxed);

  for (std::size_t i = 0; i < n; ++i) {
    ServeResult r;
    r.status = ServeStatus::kOk;
    r.label = result.labels[i];
    r.is_ood = result.ood[i] != 0;
    r.max_similarity = result.max_similarity[i];
    r.weights.assign(
        result.weights.begin() + static_cast<std::ptrdiff_t>(i * k),
        result.weights.begin() + static_cast<std::ptrdiff_t>((i + 1) * k));
    r.latency_seconds = seconds_between(batch[i].submit_time, now);
    r.snapshot_version = snap->version;
    batch[i].promise.set_value(std::move(r));
  }
}

std::vector<std::shared_ptr<MultiTenantServer::TenantSlot>>
MultiTenantServer::all_slots() const {
  std::vector<std::shared_ptr<TenantSlot>> slots;
  for (const auto& shard : slot_shards_) {
    const MutexLock lock(shard->m);
    for (const auto& [tenant, slot] : shard->map) slots.push_back(slot);
  }
  return slots;
}

void MultiTenantServer::adaptation_loop() {
  const std::chrono::milliseconds poll(
      std::max<std::uint32_t>(1, config_.adapt_poll_ms));
  for (;;) {
    {
      const MutexLock lock(adapt_wake_m_);
      const auto deadline = std::chrono::steady_clock::now() + poll;
      while (!adapt_stopping_) {
        if (adapt_cv_.wait_until(adapt_wake_m_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (adapt_stopping_) break;
    }
    // Sweep every tenant with a ready round. One worker for the fleet: a
    // round is a clone + a few kernel calls over at most
    // adapt_buffer_capacity rows, and serialization across tenants keeps
    // adaptation from ever competing with serving for more than one core.
    for (const auto& slot : all_slots()) {
      std::vector<OodSample> round;
      std::vector<std::pair<int, double>> usage;
      {
        const MutexLock lock(slot->adapt_m);
        if (slot->ood_buffer.size() < config_.adapt_min_batch) continue;
        round.swap(slot->ood_buffer);
        usage.assign(slot->usage.begin(), slot->usage.end());
        slot->usage.clear();
      }
      run_tenant_round(*slot, std::move(round), usage);
    }
  }
  // Shutdown drain: buffered windows that never made a round are shed, not
  // silently forgotten — same honesty contract as the request counters.
  for (const auto& slot : all_slots()) {
    std::size_t remaining = 0;
    {
      const MutexLock lock(slot->adapt_m);
      remaining = slot->ood_buffer.size();
      slot->ood_buffer.clear();
      slot->usage.clear();
    }
    if (remaining != 0) {
      slot->tel.adapt_dropped->add(remaining);
      tel_->adapt_dropped->add(remaining);
      tel_->hub().emit(obs::EventType::kAdaptationShed, slot->tenant,
                       "shutdown", static_cast<std::int64_t>(remaining));
    }
  }
}

void MultiTenantServer::export_loop() {
  const std::chrono::milliseconds interval(config_.export_interval_ms);
  for (;;) {
    {
      const MutexLock lock(export_m_);
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!export_stopping_) {
        if (export_cv_.wait_until(export_m_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (export_stopping_) return;  // shutdown writes the final snapshot
    }
    write_telemetry(config_.export_path);
  }
}

bool MultiTenantServer::write_telemetry(const std::string& path) const {
  return obs::write_file_atomic(path,
                                obs::snapshot_json_text(*tel_->hub_ptr()));
}

void MultiTenantServer::run_tenant_round(
    TenantSlot& slot, std::vector<OodSample> round,
    std::span<const std::pair<int, double>> usage) {
  const std::shared_ptr<TenantModel> tm = registry_->resident(slot.tenant);
  if (tm == nullptr) {
    // Cold tenant: adaptation never pays an artifact reload for a tenant
    // whose traffic no longer keeps it resident. The round is shed.
    slot.tel.adapt_dropped->add(round.size());
    tel_->adapt_dropped->add(round.size());
    tel_->hub().emit(obs::EventType::kAdaptationShed, slot.tenant,
                     "cold-tenant", static_cast<std::int64_t>(round.size()));
    return;
  }
  const auto snap = tm->snapshot();
  // Rows collected against an older evict+redeploy generation may not fit
  // the current dimension; they are shed per-row, same as mismatched
  // requests in process_batch — never an exception out of this thread.
  const std::size_t dim = snap->backend->dim();
  std::size_t kept = 0;
  for (auto& s : round) {
    if (s.hv.size() == dim) {
      if (kept != static_cast<std::size_t>(&s - round.data())) {
        round[kept] = std::move(s);
      }
      ++kept;
    }
  }
  const std::size_t mismatched = round.size() - kept;
  round.resize(kept);
  if (mismatched != 0) {
    slot.tel.adapt_dropped->add(mismatched);
    tel_->adapt_dropped->add(mismatched);
    tel_->hub().emit(obs::EventType::kAdaptationShed, slot.tenant,
                     "dim-mismatch", static_cast<std::int64_t>(mismatched));
  }
  if (round.empty()) return;
  try {
    const AdaptationOutcome out = run_lifecycle_round(
        *snap, round, usage, config_.lifecycle_config, snap->version + 1);
    const std::uint64_t version = out.next != nullptr ? out.next->version : 0;
    if (out.next != nullptr && tm->publish(out.next)) {
      slot.tel.adapt_rounds->add(1);
      slot.tel.adapt_absorbed->add(out.lifecycle.absorbed);
      slot.tel.adapt_merged->add(out.lifecycle.merged);
      slot.tel.adapt_evicted->add(out.lifecycle.evicted);
      tel_->adapt_rounds->add(1);
      tel_->adapt_absorbed->add(out.lifecycle.absorbed);
      tel_->adapt_merged->add(out.lifecycle.merged);
      tel_->adapt_evicted->add(out.lifecycle.evicted);
      // Events only for the generation that actually went live: one publish
      // (this plane published, so this plane reports it) plus one lifecycle
      // event per merged/enrolled/evicted domain of the round.
      tel_->hub().emit(obs::EventType::kSnapshotPublish, slot.tenant,
                       "adaptation", static_cast<std::int64_t>(version));
      emit_lifecycle_events(tel_->hub(), slot.tenant, out.lifecycle);
    } else {
      // Lost the publish race (or the tenant republished concurrently):
      // stale-publisher-loses, the round is shed.
      slot.tel.adapt_dropped->add(round.size());
      tel_->adapt_dropped->add(round.size());
      tel_->hub().emit(obs::EventType::kAdaptationShed, slot.tenant,
                       "publish-race",
                       static_cast<std::int64_t>(round.size()));
    }
  } catch (...) {
    // A lifecycle failure is this tenant's loss, never the fleet worker's:
    // the thread survives, the round is counted shed.
    slot.tel.adapt_dropped->add(round.size());
    tel_->adapt_dropped->add(round.size());
    tel_->hub().emit(obs::EventType::kAdaptationShed, slot.tenant,
                     "round-failed", static_cast<std::int64_t>(round.size()));
  }
}

void MultiTenantServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    shut_down_.store(true, std::memory_order_release);
    for (auto& shard : shards_) shard->queue.close();
    for (auto& w : workers_) w.join();
    if (adaptation_thread_.joinable()) {
      {
        const MutexLock lock(adapt_wake_m_);
        adapt_stopping_ = true;
      }
      adapt_cv_.notify_all();
      adaptation_thread_.join();
    }
    if (export_thread_.joinable()) {
      {
        const MutexLock lock(export_m_);
        export_stopping_ = true;
      }
      export_cv_.notify_all();
      export_thread_.join();
      // Final snapshot AFTER all workers drained: the exported file's last
      // generation carries the complete counters.
      write_telemetry(config_.export_path);
    }
  });
}

MultiTenantStats MultiTenantServer::stats() const {
  // A view over the telemetry registry: every counter is read back from the
  // same handle the hot path bumps, so stats() and the exporters can never
  // disagree.
  MultiTenantStats s;
  s.submitted = tel_->submitted->value();
  s.rejected = tel_->rejected->value();
  s.shed_queue_full = tel_->shed_queue_full->value();
  s.shed_tenant_quota = tel_->shed_quota->value();
  s.load_failures = tel_->load_failures->value();
  s.completed = tel_->completed->value();
  s.batches = tel_->batches->value();
  s.batched_rows = tel_->batched_rows->value();
  s.ood_flagged = tel_->ood_flagged->value();
  s.tenants_seen = tenants_seen_->value();
  s.adaptation_rounds = tel_->adapt_rounds->value();
  s.adaptation_absorbed = tel_->adapt_absorbed->value();
  s.adaptation_dropped = tel_->adapt_dropped->value();
  s.adaptation_overflow = tel_->adapt_overflow->value();
  s.adaptation_merged = tel_->adapt_merged->value();
  s.adaptation_evicted = tel_->adapt_evicted->value();
  s.mean_batch_fill =
      s.batches != 0
          ? static_cast<double>(s.batched_rows) / static_cast<double>(s.batches)
          : 0.0;
  s.latency = LatencySummary::from(tel_->latency->snapshot());
  s.registry = registry_->stats();
  return s;
}

std::vector<TenantServerStats> MultiTenantServer::tenant_stats() const {
  std::vector<TenantServerStats> out;
  for (const auto& shard : slot_shards_) {
    const MutexLock lock(shard->m);
    for (const auto& [tenant, slot] : shard->map) {
      TenantServerStats t;
      t.tenant = tenant;
      t.submitted = slot->tel.submitted->value();
      t.completed = slot->tel.completed->value();
      t.shed_queue_full = slot->tel.shed_queue->value();
      t.shed_tenant_quota = slot->tel.shed_quota->value();
      t.load_failures = slot->tel.load_failures->value();
      t.ood_flagged = slot->tel.ood->value();
      t.inflight = slot->inflight.load(std::memory_order_relaxed);
      t.adaptation_rounds = slot->tel.adapt_rounds->value();
      t.adaptation_absorbed = slot->tel.adapt_absorbed->value();
      t.adaptation_dropped = slot->tel.adapt_dropped->value();
      t.adaptation_overflow = slot->tel.adapt_overflow->value();
      t.adaptation_merged = slot->tel.adapt_merged->value();
      t.adaptation_evicted = slot->tel.adapt_evicted->value();
      t.queue_wait = slot->tel.queue_wait->snapshot();
      t.service = slot->tel.service->snapshot();
      t.latency = slot->tel.latency->snapshot();
      out.push_back(std::move(t));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TenantServerStats& a, const TenantServerStats& b) {
              return a.tenant < b.tenant;
            });
  return out;
}

}  // namespace smore
