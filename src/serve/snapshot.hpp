#pragma once
// ModelSnapshot / SnapshotRegistry: immutable, atomically swappable serving
// models (DESIGN.md §9, §10).
//
// The serving runtime separates two mutation rates: queries arrive
// continuously, model updates arrive rarely (an adaptation round, an
// operator pushing a retrained model). RCU-style snapshots make the common
// path free: a worker grabs `shared_ptr<const ModelSnapshot>` once per
// micro-batch — a single lock-free atomic load — and predicts against state
// that can never change underneath it. Publication builds a complete new
// snapshot off to the side and swaps the pointer; readers holding the old
// snapshot keep it alive until their batch completes, so there is no moment
// at which a request can observe a half-updated model. Nothing is ever
// mutated in place and nothing is ever freed while referenced.
//
// A snapshot serves through ONE polymorphic `InferenceBackend` — the server
// never branches on which representation is underneath (the two adapters in
// serve/backend.hpp are the only code that names one). The concrete models
// ride along for the consumers that need them: the adaptation worker clones
// and extends the float parent, and re-quantizes when the snapshot carries a
// packed model. The encoder (when known, e.g. when the snapshot is built
// from a Pipeline) is shared so window-submitting servers keep it alive.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>

#include "core/binary_smore.hpp"
#include "core/inference_backend.hpp"
#include "core/smore.hpp"
#include "hdc/encoder_base.hpp"

namespace smore {

class Pipeline;

/// One immutable serving model generation.
struct ModelSnapshot {
  std::uint64_t version = 0;  ///< monotonically increasing generation id
  std::shared_ptr<const SmoreModel> model;         ///< float parent
  std::shared_ptr<const BinarySmoreModel> packed;  ///< set when quantized
  std::shared_ptr<const Encoder> encoder;  ///< set when known (Pipeline boot)
  /// The serving interface: packed when `packed` is set, float otherwise.
  /// Never null after make().
  std::shared_ptr<const InferenceBackend> backend;

  /// Build a snapshot from a trained model: runs prepare_serving() so every
  /// lazy acceleration structure is materialized before the first concurrent
  /// reader, sign-packs a BinarySmoreModel when `quantize` is set, and
  /// installs the matching backend adapter. Throws std::logic_error when
  /// `model` is untrained.
  static std::shared_ptr<const ModelSnapshot> make(
      SmoreModel model, bool quantize, std::uint64_t version,
      std::shared_ptr<const Encoder> encoder = nullptr);

  /// Build a snapshot from a deployable Pipeline: clones the float model,
  /// copies the packed model when the pipeline is quantized (preserving its
  /// Hamming-scale δ* calibration) and `prefer_packed` is set, and shares
  /// the pipeline's encoder. Throws std::logic_error when untrained.
  static std::shared_ptr<const ModelSnapshot> make(const Pipeline& pipeline,
                                                   std::uint64_t version,
                                                   bool prefer_packed = true);

  /// Build generation `version` from an updated float model, keeping the
  /// parent generation's shape: re-quantized iff the parent was quantized —
  /// with the parent's packed δ* carried over (re-quantization would
  /// otherwise reset the detector to the cosine-scale float δ*, destroying
  /// a Hamming-scale calibration) — and the same shared encoder. The
  /// adaptation worker's republish path.
  static std::shared_ptr<const ModelSnapshot> next_generation(
      const ModelSnapshot& parent, SmoreModel model, std::uint64_t version);

  /// Boot a snapshot from a stream written by SmoreModel::save (the packed
  /// half is re-quantized from the float parent when `quantize` is set).
  static std::shared_ptr<const ModelSnapshot> from_stream(
      std::istream& in, bool quantize, std::uint64_t version = 0);

  /// Boot a snapshot from a Pipeline artifact (Pipeline::save): encoder,
  /// model, δ*, and packed backend all come from the one file.
  static std::shared_ptr<const ModelSnapshot> from_artifact(
      std::istream& in, std::uint64_t version = 0);
};

/// The swap point between serving workers and publishers. Readers never
/// lock: current() is one atomic shared_ptr load.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  explicit SnapshotRegistry(std::shared_ptr<const ModelSnapshot> boot) {
    publish(std::move(boot));
  }

  /// The live snapshot (nullptr before the first publish). Lock-free.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Atomically replace the live snapshot IF `snap` is a newer generation.
  /// Readers that already loaded the old generation finish on it; new loads
  /// see the new one. Returns false (and installs nothing) when the live
  /// version is already >= snap->version — a compare-and-swap loop, so two
  /// concurrent publishers (an adaptation round and an operator push)
  /// cannot lose the newer one or regress the version. Throws
  /// std::invalid_argument on nullptr.
  bool publish(std::shared_ptr<const ModelSnapshot> snap);

  /// Version of the live snapshot (0 before the first publish).
  [[nodiscard]] std::uint64_t version() const {
    const auto snap = current();
    return snap ? snap->version : 0;
  }

  /// Number of publish() calls so far.
  [[nodiscard]] std::uint64_t publish_count() const noexcept {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace smore
