#pragma once
// InferenceServer: the micro-batching serving runtime (DESIGN.md §9).
//
// PRs 1-3 made every layer batch-first, but a deployed system receives
// *single* windows from many concurrent clients — nobody hands the server a
// WindowDataset. This is the component in between:
//
//   producers ──submit()──▶ MpmcQueue ──pop_batch()──▶ worker threads
//                (future)     (bounded,                  coalesce ≤ max_batch
//                              backpressure)             or max_delay_us,
//                                                        one batched predict,
//                                                        fulfill futures
//
// Three actors, three mutation rates:
//   * producers submit one encoded hypervector (or one raw Window, encoded
//     inside the batch via Encoder::encode_batch) and get a
//     std::future<ServeResult>;
//   * batching workers drain the queue into micro-batches and run ONE
//     Encoder::encode_batch + ONE predict_batch_full per batch against an
//     immutable ModelSnapshot — the per-request costs (wakeups, kernel
//     setup, allocations) amortize across the batch, which is where the
//     ≥5× over per-request dispatch comes from (bench_serving);
//   * the adaptation worker drains OOD-flagged windows into a side buffer
//     and, once enough accumulate, clones the live model, enrolls them as a
//     new domain (descriptor absorb + pseudo-labeled OnlineHD updates — the
//     paper's Fig. 2 "Model Update" box, Sec 3.6), and publishes a new
//     snapshot. Enrollment of an unseen domain is concurrent with live
//     traffic: readers keep serving the old generation mid-publish.
//
// Backpressure: the queue is bounded. submit() blocks the producer when the
// server is saturated (latency, not memory growth); try_submit() refuses
// instead (load shedding). Shutdown is graceful: the queue closes, workers
// drain every in-flight request, and every future is fulfilled.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>  // std::once_flag only; locks go through util/mutex.hpp
#include <optional>
#include <thread>
#include <vector>

#include <map>

#include "core/domain_lifecycle.hpp"
#include "core/inference_backend.hpp"
#include "core/smore.hpp"
#include "data/timeseries.hpp"
#include "hdc/encoder_base.hpp"
#include "serve/adaptation.hpp"
#include "serve/snapshot.hpp"
#include "serve/status.hpp"
#include "serve/telemetry.hpp"
#include "util/annotations.hpp"
#include "util/latency.hpp"
#include "util/mpmc_queue.hpp"
#include "util/mutex.hpp"

namespace smore {

class Pipeline;

/// Serving runtime knobs. The two scheduler knobs trade latency for
/// throughput: max_batch caps how much work one kernel pass fuses, and
/// max_delay_us caps how long the first request of a batch waits for
/// stragglers when traffic is sparse. Which representation answers queries
/// is NOT a server knob: every snapshot carries its own InferenceBackend
/// (packed when quantized, float otherwise) and the server just calls it.
struct ServerConfig {
  std::size_t max_batch = 64;        ///< coalesce at most this many requests
  std::uint32_t max_delay_us = 200;  ///< batch-formation wait after 1st item
  std::size_t num_workers = 1;       ///< batching worker threads
  std::size_t queue_capacity = 1024; ///< request bound (backpressure point)

  bool adaptation = false;           ///< run the online-adaptation worker
  std::size_t adapt_min_batch = 64;  ///< OOD windows per enrollment round
  std::size_t adapt_buffer_capacity = 1024;  ///< OOD side-buffer bound
  std::size_t adapt_max_domains = 16;  ///< stop enrolling beyond this K
  std::uint32_t adapt_poll_ms = 2;   ///< adaptation worker wake cadence

  /// Bounded domain lifecycle (DESIGN.md §13). Off: every adaptation round
  /// enrolls ONE new domain and rounds past adapt_max_domains are shed (the
  /// pre-lifecycle policy, kept for operators that consolidate manually).
  /// On: rounds are clustered, merged into similar existing domains, and the
  /// bank is evicted down to lifecycle_config.max_domains — adapt_max_domains
  /// is ignored, adaptation never stops, and K stays O(1) forever.
  bool lifecycle = false;
  LifecycleConfig lifecycle_config;  ///< knobs when `lifecycle` is on

  /// Telemetry hub (DESIGN.md §14): every counter/histogram below lives in
  /// its MetricsRegistry, requests cut trace spans, and publish / shed /
  /// lifecycle occurrences emit events. Null means a private hub — stats()
  /// always works and unit tests never collide on metric names.
  std::shared_ptr<obs::Telemetry> telemetry;
};

// ServeStatus and to_string(ServeStatus) live in serve/status.hpp (shared
// with the router and the telemetry layer).

/// Per-request response (the future's value). The non-status fields are
/// meaningful only when `status == ServeStatus::kOk`.
struct ServeResult {
  ServeStatus status = ServeStatus::kOk;
  int label = -1;
  bool is_ood = false;
  double max_similarity = 0.0;     ///< δ_max against the domain descriptors
  std::vector<double> weights;     ///< ensemble weights used (size K)
  double latency_seconds = 0.0;    ///< submit → fulfillment
  std::uint64_t snapshot_version = 0;  ///< model generation that answered
};

/// Counters + latency percentiles (the stats endpoint payload). A VIEW over
/// the server's metrics registry: every field is read back from the same
/// handles the hot path writes, so stats() and the exporters can never
/// disagree. `latency` is empty when the hub's histogram switch is off.
struct ServerStats {
  std::uint64_t submitted = 0;      ///< accepted into the queue
  std::uint64_t rejected = 0;       ///< try_submit refusals (queue full)
  std::uint64_t completed = 0;      ///< futures fulfilled with a value
  std::uint64_t batches = 0;        ///< batched predict passes
  std::uint64_t batched_rows = 0;   ///< requests across those passes
  std::uint64_t ood_flagged = 0;    ///< responses with is_ood
  std::uint64_t adaptation_rounds = 0;   ///< snapshots published by adaptation
  std::uint64_t adaptation_absorbed = 0; ///< OOD windows enrolled
  std::uint64_t adaptation_dropped = 0;  ///< OOD windows shed (all causes)
  std::uint64_t adaptation_overflow = 0; ///< …of which: side-buffer overflow
  std::uint64_t adaptation_merged = 0;   ///< lifecycle: clusters merged
  std::uint64_t adaptation_evicted = 0;  ///< lifecycle: domains evicted
  std::uint64_t snapshot_version = 0;    ///< live generation id
  std::size_t live_domains = 0;          ///< K of the live snapshot
  double mean_batch_fill = 0.0;     ///< batched_rows / batches
  LatencySummary latency;           ///< submit→fulfill percentiles
};

/// The serving runtime. Construction spawns the worker threads; destruction
/// (or shutdown()) drains and joins them.
class InferenceServer {
 public:
  /// `boot` is the initial snapshot (must be non-null; its backend answers
  /// queries). `encoder` may be null, in which case the snapshot's own
  /// encoder (set when booted from a Pipeline) is used; when neither exists
  /// every request must be pre-encoded and submit(Window) throws
  /// std::logic_error. The server shares ownership of the encoder — no
  /// "must outlive the server" contract. Throws std::invalid_argument on
  /// config/snapshot mismatch.
  InferenceServer(std::shared_ptr<const ModelSnapshot> boot,
                  std::shared_ptr<const Encoder> encoder,
                  ServerConfig config = {});

  /// Boot straight from a deployable Pipeline: snapshot version
  /// `boot_version`, the pipeline's packed backend when quantized, and the
  /// pipeline's encoder (shared) for raw-window submission.
  explicit InferenceServer(const Pipeline& pipeline, ServerConfig config = {},
                           std::uint64_t boot_version = 1);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Submit one encoded hypervector; blocks while the queue is full
  /// (backpressure). Throws std::invalid_argument on dimension mismatch.
  /// After shutdown() it never blocks or throws: the returned future is
  /// already fulfilled with ServeStatus::kShuttingDown.
  std::future<ServeResult> submit(std::vector<float> hv);

  /// Submit one raw multi-sensor window, encoded inside the micro-batch via
  /// the server's encoder (one encode_batch per batch, not per request).
  std::future<ServeResult> submit(Window window);

  /// Non-blocking submit: returns std::nullopt (and counts a rejection)
  /// instead of waiting when the queue is full — the load-shedding policy.
  /// When `shed_reason` is non-null it reports why a request was refused
  /// (kShedQueueFull vs kShuttingDown); untouched on acceptance.
  std::optional<std::future<ServeResult>> try_submit(
      std::vector<float> hv, ServeStatus* shed_reason = nullptr);

  /// Atomically swap the serving model. The snapshot must match the boot
  /// model's dimension; in-flight batches finish on the generation they
  /// started with. Returns false when the live generation is already
  /// >= snap->version (the stale publisher loses; see SnapshotRegistry).
  bool publish(std::shared_ptr<const ModelSnapshot> snap);

  /// The live snapshot (never null).
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const {
    return registry_.current();
  }

  [[nodiscard]] const ServerConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Graceful shutdown: stop accepting, drain every queued request, fulfill
  /// every future, join all threads. Idempotent; the destructor calls it.
  void shutdown();

  /// Counters and latency percentiles since construction.
  [[nodiscard]] ServerStats stats() const;

  /// The telemetry hub this server reports into (never null — private when
  /// the config left it unset). Exporters (obs/export.hpp) read it.
  [[nodiscard]] const std::shared_ptr<obs::Telemetry>& telemetry()
      const noexcept {
    return tel_->hub_ptr();
  }

 private:
  struct Request {
    std::vector<float> hv;          // encoded query (empty when window set)
    std::optional<Window> window;   // raw window to encode in-batch
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point submit_time;
  };

  // OodSample (the side-buffer element) lives in serve/adaptation.hpp,
  // shared with the multi-tenant router's per-tenant adaptation.

  /// Shared submit bookkeeping: stamp, push (blocking or refusing), count.
  /// nullopt only in non-blocking mode (full/closed queue, counted as a
  /// rejection, reason in *shed_reason); in blocking mode a post-shutdown
  /// submit yields a ready future carrying kShuttingDown.
  std::optional<std::future<ServeResult>> enqueue(Request req, bool blocking,
                                                  ServeStatus* shed_reason);
  void worker_loop(std::size_t worker_index);
  void adaptation_loop();
  /// Run one micro-batch: encode window-requests, predict, fulfill.
  void process_batch(std::vector<Request>& batch, std::size_t worker_index);
  /// publish() with the event reason ("operator" / "adaptation" / "boot").
  bool do_publish(std::shared_ptr<const ModelSnapshot> snap,
                  const char* reason);

  ServerConfig config_;
  std::size_t dim_ = 0;
  std::shared_ptr<const Encoder> encoder_;
  SnapshotRegistry registry_;
  MpmcQueue<Request> queue_;

  std::vector<std::thread> workers_;
  std::thread adaptation_thread_;

  // OOD side buffer (adaptation worker input). Bounded: overflow sheds the
  // newest sample and counts it — adaptation is best-effort by design.
  Mutex ood_mutex_;
  std::vector<OodSample> ood_buffer_ SMORE_GUARDED_BY(ood_mutex_);
  bool stopping_ SMORE_GUARDED_BY(ood_mutex_) = false;  // adaptation wake flag
  CondVar ood_cv_;

  // Served-query credit per domain id since the last lifecycle round (the
  // eviction policy's usage signal). Only written when lifecycle is on.
  Mutex usage_mutex_;
  std::map<int, double> usage_acc_ SMORE_GUARDED_BY(usage_mutex_);

  // Stats live in the telemetry hub: counter/histogram handles are created
  // once at construction (ServeTelemetry), stats() reads them back. The two
  // gauges are refreshed at publish and stats time (no callbacks — the hub
  // may outlive this server).
  std::unique_ptr<ServeTelemetry> tel_;
  obs::Gauge* version_gauge_ = nullptr;
  obs::Gauge* domains_gauge_ = nullptr;

  std::atomic<bool> shut_down_{false};
  std::once_flag shutdown_once_;
};

}  // namespace smore
