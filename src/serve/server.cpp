#include "serve/server.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/pipeline.hpp"
#include "data/dataset.hpp"

namespace smore {

namespace {
/// Seconds between two steady_clock points.
double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

InferenceServer::InferenceServer(std::shared_ptr<const ModelSnapshot> boot,
                                 std::shared_ptr<const Encoder> encoder,
                                 ServerConfig config)
    : config_(config),
      encoder_(std::move(encoder)),
      queue_(std::max<std::size_t>(1, config.queue_capacity)) {
  if (boot == nullptr || boot->model == nullptr || boot->backend == nullptr) {
    throw std::invalid_argument("InferenceServer: null boot snapshot");
  }
  if (encoder_ == nullptr) {
    encoder_ = boot->encoder;  // Pipeline-boot snapshots carry one
  }
  if (encoder_ != nullptr && encoder_->dim() != boot->backend->dim()) {
    throw std::invalid_argument(
        "InferenceServer: encoder/model dimension mismatch");
  }
  dim_ = boot->backend->dim();

  config_.num_workers = std::max<std::size_t>(1, config_.num_workers);
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  tel_ = std::make_unique<ServeTelemetry>(config_.telemetry, "server",
                                          config_.num_workers);
  version_gauge_ = tel_->hub().metrics().gauge("smore_snapshot_version",
                                               {{"plane", "server"}});
  domains_gauge_ = tel_->hub().metrics().gauge("smore_live_domains",
                                               {{"plane", "server"}});
  const std::uint64_t boot_version = boot->version;
  const std::size_t boot_domains = boot->model->num_domains();
  registry_.publish(std::move(boot));
  version_gauge_->set(static_cast<double>(boot_version));
  domains_gauge_->set(static_cast<double>(boot_domains));
  tel_->hub().emit(obs::EventType::kSnapshotPublish, "server", "boot",
                   static_cast<std::int64_t>(boot_version));

  workers_.reserve(config_.num_workers);
  for (std::size_t w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (config_.adaptation) {
    adaptation_thread_ = std::thread([this] { adaptation_loop(); });
  }
}

InferenceServer::InferenceServer(const Pipeline& pipeline, ServerConfig config,
                                 std::uint64_t boot_version)
    : InferenceServer(ModelSnapshot::make(pipeline, boot_version),
                      pipeline.encoder_ptr(), config) {}

InferenceServer::~InferenceServer() { shutdown(); }

std::optional<std::future<ServeResult>> InferenceServer::enqueue(
    Request req, bool blocking, ServeStatus* shed_reason) {
  req.submit_time = std::chrono::steady_clock::now();
  std::future<ServeResult> fut = req.promise.get_future();
  const bool closed = shut_down_.load(std::memory_order_acquire);
  // On refusal the queue has already consumed (and destroyed) the moved
  // request, promise included — the rejection paths below must not touch
  // `req` or `fut` again. The refusal reason comes from the queue's own
  // atomic decision (QueuePush), never from a second racy closed() read.
  bool accepted = false;
  ServeStatus reason = ServeStatus::kShuttingDown;
  if (closed) {
    // Fast-path refusal before touching the queue.
  } else if (blocking) {
    // A blocking push only refuses when the queue closed mid-wait.
    accepted = queue_.push(std::move(req));
  } else {
    switch (queue_.try_push(std::move(req))) {
      case QueuePush::kAccepted: accepted = true; break;
      case QueuePush::kFull: reason = ServeStatus::kShedQueueFull; break;
      case QueuePush::kClosed: reason = ServeStatus::kShuttingDown; break;
    }
  }
  if (!accepted) {
    // A refused *blocking* push is a late submit racing shutdown. Resolve it
    // on the result plane (a distinct ServeStatus, not a thrown exception or
    // an indefinite block): producers racing a shutdown get a deterministic,
    // immediately-ready answer.
    tel_->record_shed(blocking ? ServeStatus::kShuttingDown : reason,
                      "server");
    if (blocking) {
      std::promise<ServeResult> late;
      ServeResult r;
      r.status = ServeStatus::kShuttingDown;
      late.set_value(std::move(r));
      return late.get_future();
    }
    if (shed_reason != nullptr) *shed_reason = reason;
    return std::nullopt;
  }
  tel_->submitted->add(1);
  return fut;
}

std::future<ServeResult> InferenceServer::submit(std::vector<float> hv) {
  if (hv.size() != dim_) {
    throw std::invalid_argument("InferenceServer::submit: dimension mismatch");
  }
  Request req;
  req.hv = std::move(hv);
  return *enqueue(std::move(req), /*blocking=*/true, nullptr);
}

std::future<ServeResult> InferenceServer::submit(Window window) {
  if (encoder_ == nullptr) {
    throw std::logic_error(
        "InferenceServer::submit(Window): server built without an encoder");
  }
  Request req;
  req.window = std::move(window);
  return *enqueue(std::move(req), /*blocking=*/true, nullptr);
}

std::optional<std::future<ServeResult>> InferenceServer::try_submit(
    std::vector<float> hv, ServeStatus* shed_reason) {
  if (hv.size() != dim_) {
    throw std::invalid_argument(
        "InferenceServer::try_submit: dimension mismatch");
  }
  Request req;
  req.hv = std::move(hv);
  return enqueue(std::move(req), /*blocking=*/false, shed_reason);
}

bool InferenceServer::publish(std::shared_ptr<const ModelSnapshot> snap) {
  return do_publish(std::move(snap), "operator");
}

bool InferenceServer::do_publish(std::shared_ptr<const ModelSnapshot> snap,
                                 const char* reason) {
  if (snap == nullptr || snap->model == nullptr || snap->backend == nullptr) {
    throw std::invalid_argument("InferenceServer::publish: null snapshot");
  }
  if (snap->backend->dim() != dim_) {
    throw std::invalid_argument(
        "InferenceServer::publish: dimension mismatch");
  }
  const std::uint64_t version = snap->version;
  const std::size_t domains = snap->model->num_domains();
  if (!registry_.publish(std::move(snap))) return false;
  // Exactly one publish event per generation that actually went live, at the
  // layer that decided it (the lost CAS is the caller's shed to report).
  version_gauge_->set(static_cast<double>(version));
  domains_gauge_->set(static_cast<double>(domains));
  tel_->hub().emit(obs::EventType::kSnapshotPublish, "server", reason,
                   static_cast<std::int64_t>(version));
  return true;
}

void InferenceServer::worker_loop(std::size_t worker_index) {
  std::vector<Request> batch;
  batch.reserve(config_.max_batch);
  const std::chrono::microseconds delay(config_.max_delay_us);
  for (;;) {
    batch.clear();
    if (queue_.pop_batch(batch, config_.max_batch, delay) == 0) {
      return;  // closed and drained: every in-flight request was handed out
    }
    process_batch(batch, worker_index);
  }
}

void InferenceServer::process_batch(std::vector<Request>& batch,
                                    std::size_t worker_index) {
  const std::size_t n = batch.size();
  const auto batch_start = std::chrono::steady_clock::now();
  const auto snap = registry_.current();

  // Assemble the query block: pre-encoded rows are copied, raw windows are
  // grouped by shape and each group encoded with a single encode_batch —
  // the whole point of coalescing. Grouping (rather than one dataset for
  // all) keeps requests independent: a window the encoder rejects fails
  // only its own shape group, never a batch-mate.
  HvMatrix queries(n, dim_);
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      window_groups;  // (channels, steps) -> batch rows
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i].window.has_value()) {
      window_groups[{batch[i].window->channels(), batch[i].window->steps()}]
          .push_back(i);
    } else {
      queries.set_row(i, batch[i].hv);
    }
  }
  std::vector<std::uint8_t> failed;  // lazily sized: rare path
  for (const auto& [shape, rows] : window_groups) {
    try {
      WindowDataset windows("serve", shape.first, shape.second);
      for (const std::size_t i : rows) windows.add(*batch[i].window);
      HvMatrix encoded;
      // A single batching worker owns the whole machine and uses the pool;
      // with several workers, each stays serial on the encode so concurrent
      // batches don't convoy on the shared global pool (the predict kernels
      // below parallelize internally either way).
      encoder_->encode_batch(windows, encoded,
                             /*parallel=*/config_.num_workers == 1);
      for (std::size_t j = 0; j < rows.size(); ++j) {
        queries.set_row(rows[j], encoded.row(j));
      }
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      if (failed.empty()) failed.assign(n, 0);
      for (const std::size_t i : rows) {
        batch[i].promise.set_exception(error);
        failed[i] = 1;
      }
    }
  }
  if (!failed.empty()) {
    // Compact to the surviving requests; their rows are already encoded in
    // `queries`, so compaction is a row copy.
    std::vector<Request> kept;
    kept.reserve(batch.size());
    HvMatrix kept_queries(n - static_cast<std::size_t>(
                                  std::count(failed.begin(), failed.end(), 1)),
                          dim_);
    for (std::size_t i = 0; i < n; ++i) {
      if (failed[i]) continue;
      kept_queries.set_row(kept.size(), queries.row(i));
      kept.push_back(std::move(batch[i]));
    }
    if (kept.empty()) return;
    batch = std::move(kept);
    queries = std::move(kept_queries);
  }
  const auto encode_done = std::chrono::steady_clock::now();

  SmoreBatchResult result;
  try {
    // One virtual call: the snapshot's backend knows its representation.
    result = snap->backend->predict_batch_full(queries.view());
  } catch (...) {
    const std::exception_ptr error = std::current_exception();
    for (auto& req : batch) req.promise.set_exception(error);
    return;
  }
  const auto predict_done = std::chrono::steady_clock::now();

  const std::size_t k = result.num_domains;
  const auto now = std::chrono::steady_clock::now();

  // Externally observable accounting lands before any promise is fulfilled:
  // a submitter that returns from get() and immediately reads stats() must
  // see its own request counted and its latency recorded. The shared
  // implementation (ServeTelemetry::record_batch) also cuts each request's
  // trace span from the same four timestamps.
  std::vector<std::chrono::steady_clock::time_point> submit_times;
  submit_times.reserve(batch.size());
  for (const Request& req : batch) submit_times.push_back(req.submit_time);
  tel_->record_batch({batch_start, encode_done, predict_done, now},
                     submit_times, result.ood, result.labels, snap->version,
                     static_cast<std::uint32_t>(worker_index),
                     /*tenant_name=*/{}, /*tenant=*/nullptr);

  // Usage credit for the eviction policy: each served query credits the
  // domain its ensemble weight peaked at. Accumulated batch-locally, flushed
  // once under the usage lock; drained by the next lifecycle round.
  if (config_.adaptation && config_.lifecycle && k > 0) {
    std::vector<double> pos_usage(k, 0.0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double* wrow = result.weights.data() + i * k;
      std::size_t best = 0;
      for (std::size_t c = 1; c < k; ++c) {
        if (wrow[c] > wrow[best]) best = c;
      }
      pos_usage[best] += 1.0;
    }
    const auto& ids = snap->model->descriptors().domain_ids();
    const MutexLock lock(usage_mutex_);
    for (std::size_t p = 0; p < k && p < ids.size(); ++p) {
      if (pos_usage[p] != 0.0) usage_acc_[ids[p]] += pos_usage[p];
    }
  }

  std::vector<OodSample> ood_samples;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ServeResult r;
    r.label = result.labels[i];
    r.is_ood = result.ood[i] != 0;
    r.max_similarity = result.max_similarity[i];
    r.weights.assign(result.weights.begin() + static_cast<std::ptrdiff_t>(i * k),
                     result.weights.begin() +
                         static_cast<std::ptrdiff_t>((i + 1) * k));
    r.latency_seconds = seconds_between(batch[i].submit_time, now);
    r.snapshot_version = snap->version;
    if (r.is_ood && config_.adaptation) {
      OodSample sample;
      const auto row = queries.row(i);
      sample.hv.assign(row.begin(), row.end());
      sample.pseudo_label = r.label;
      ood_samples.push_back(std::move(sample));
    }
    batch[i].promise.set_value(std::move(r));
  }

  if (!ood_samples.empty()) {
    std::size_t dropped = 0;
    bool ready = false;
    {
      const MutexLock lock(ood_mutex_);
      for (auto& sample : ood_samples) {
        if (ood_buffer_.size() >= config_.adapt_buffer_capacity) {
          ++dropped;  // best-effort: overload sheds adaptation, not serving
        } else {
          ood_buffer_.push_back(std::move(sample));
        }
      }
      ready = ood_buffer_.size() >= config_.adapt_min_batch;
    }
    if (dropped != 0) {
      tel_->adapt_dropped->add(dropped);
      tel_->adapt_overflow->add(dropped);
      tel_->hub().emit(obs::EventType::kAdaptationShed, "server",
                       "buffer-overflow", static_cast<std::int64_t>(dropped));
    }
    if (ready) ood_cv_.notify_one();
  }
}

void InferenceServer::adaptation_loop() {
  const std::chrono::milliseconds poll(std::max<std::uint32_t>(
      1, config_.adapt_poll_ms));
  for (;;) {
    std::vector<OodSample> round;
    {
      const MutexLock lock(ood_mutex_);
      // Timed wait for (stopping_ || buffer ready), written as an explicit
      // loop so the guarded reads stay under the lock the analysis sees; a
      // timeout just falls through to the re-check below (the poll cadence).
      const auto deadline = std::chrono::steady_clock::now() + poll;
      while (!stopping_ && ood_buffer_.size() < config_.adapt_min_batch) {
        if (ood_cv_.wait_until(ood_mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) {
        if (!ood_buffer_.empty()) {
          tel_->adapt_dropped->add(ood_buffer_.size());
          tel_->hub().emit(obs::EventType::kAdaptationShed, "server",
                           "shutdown",
                           static_cast<std::int64_t>(ood_buffer_.size()));
        }
        ood_buffer_.clear();
        return;
      }
      if (ood_buffer_.size() < config_.adapt_min_batch) continue;
      round = std::move(ood_buffer_);
      ood_buffer_.clear();
    }

    const auto snap = registry_.current();

    if (config_.lifecycle) {
      // Bounded lifecycle round (DESIGN.md §13): cluster → merge/enroll →
      // decay → evict on a clone, publish the result. The cap is enforced by
      // eviction, so rounds are never shed for model size.
      std::vector<std::pair<int, double>> usage;
      {
        const MutexLock lock(usage_mutex_);
        usage.assign(usage_acc_.begin(), usage_acc_.end());
        usage_acc_.clear();
      }
      const AdaptationOutcome out = run_lifecycle_round(
          *snap, round, usage, config_.lifecycle_config, snap->version + 1);
      if (out.next != nullptr && do_publish(out.next, "adaptation")) {
        tel_->adapt_rounds->add(1);
        tel_->adapt_absorbed->add(out.lifecycle.absorbed);
        tel_->adapt_merged->add(out.lifecycle.merged);
        tel_->adapt_evicted->add(out.lifecycle.evicted);
        // Lifecycle events only for the generation that actually went live:
        // a lost CAS means none of the round's merges/evictions exist.
        emit_lifecycle_events(tel_->hub(), "server", out.lifecycle);
      } else {
        // Lost the publish CAS to a newer operator generation: shed the
        // round rather than clobbering it (stale publisher loses).
        tel_->adapt_dropped->add(round.size());
        tel_->hub().emit(obs::EventType::kAdaptationShed, "server",
                         "publish-race",
                         static_cast<std::int64_t>(round.size()));
      }
      continue;
    }

    if (snap->model->num_domains() >= config_.adapt_max_domains) {
      // Enrollment cap reached: keep serving, shed the round (the policy is
      // bounded model growth; operators raise adapt_max_domains or push a
      // consolidated model).
      tel_->adapt_dropped->add(round.size());
      tel_->hub().emit(obs::EventType::kAdaptationShed, "server",
                       "domain-cap", static_cast<std::int64_t>(round.size()));
      continue;
    }

    // Enroll the round as ONE new domain: clone the live generation, absorb
    // every buffered window under its pseudo-label (descriptor bundling +
    // OnlineHD bootstrap/refine — the paper's "Model Update" box), and
    // publish. Readers never see the intermediate states.
    SmoreModel next = snap->model->clone();
    // The bank keeps ids sorted, but max_element keeps this correct even if
    // that invariant ever changes — colliding with an existing id would
    // silently merge the round into an unrelated domain.
    const auto& ids = next.descriptors().domain_ids();
    const int new_domain =
        ids.empty() ? 0 : *std::max_element(ids.begin(), ids.end()) + 1;
    for (const OodSample& sample : round) {
      next.absorb_labeled(sample.hv, sample.pseudo_label, new_domain);
    }
    // An operator may have published a newer generation while this round
    // was being built off `snap`; the CAS-guarded publish then refuses the
    // stale derivative and the round is shed rather than reverting the
    // operator's model. The new generation keeps the old one's shape:
    // re-quantized iff it was quantized (packed δ* carried over), same
    // shared encoder.
    if (do_publish(ModelSnapshot::next_generation(*snap, std::move(next),
                                                  snap->version + 1),
                   "adaptation")) {
      tel_->adapt_rounds->add(1);
      tel_->adapt_absorbed->add(round.size());
      tel_->hub().emit(obs::EventType::kLifecycleEnroll, "server",
                       "ood-round", new_domain);
    } else {
      tel_->adapt_dropped->add(round.size());
      tel_->hub().emit(obs::EventType::kAdaptationShed, "server",
                       "publish-race",
                       static_cast<std::int64_t>(round.size()));
    }
  }
}

void InferenceServer::shutdown() {
  std::call_once(shutdown_once_, [this] {
    shut_down_.store(true, std::memory_order_release);
    queue_.close();  // wakes workers; they drain and fulfill everything
    for (auto& w : workers_) w.join();
    {
      const MutexLock lock(ood_mutex_);
      stopping_ = true;
    }
    ood_cv_.notify_all();
    if (adaptation_thread_.joinable()) adaptation_thread_.join();
  });
}

ServerStats InferenceServer::stats() const {
  // A view over the telemetry registry: every counter is read back from the
  // same handle the hot path bumps, so stats() and the exporters can never
  // disagree.
  ServerStats s;
  s.submitted = tel_->submitted->value();
  s.rejected = tel_->rejected->value();
  s.completed = tel_->completed->value();
  s.batches = tel_->batches->value();
  s.batched_rows = tel_->batched_rows->value();
  s.ood_flagged = tel_->ood_flagged->value();
  s.adaptation_rounds = tel_->adapt_rounds->value();
  s.adaptation_absorbed = tel_->adapt_absorbed->value();
  s.adaptation_dropped = tel_->adapt_dropped->value();
  s.adaptation_overflow = tel_->adapt_overflow->value();
  s.adaptation_merged = tel_->adapt_merged->value();
  s.adaptation_evicted = tel_->adapt_evicted->value();
  s.snapshot_version = registry_.version();
  s.live_domains = registry_.current()->model->num_domains();
  s.mean_batch_fill =
      s.batches != 0
          ? static_cast<double>(s.batched_rows) / static_cast<double>(s.batches)
          : 0.0;
  s.latency = LatencySummary::from(tel_->latency->snapshot());
  // Keep the exporter's gauges fresh even when nobody published recently.
  version_gauge_->set(static_cast<double>(s.snapshot_version));
  domains_gauge_->set(static_cast<double>(s.live_domains));
  return s;
}

}  // namespace smore
