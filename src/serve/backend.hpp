#pragma once
// The two InferenceBackend adapters (DESIGN.md §10).
//
// These are the ONLY places in the serving and evaluation layers that name a
// concrete backend: everything else — the micro-batching server, the
// snapshot registry, the evaluation harness, the deployment examples —
// holds a `shared_ptr<const InferenceBackend>` and calls through the
// interface. Adding a third representation (e.g. an int8 model) means
// writing one more adapter here and touching nothing else.
//
// Adapters share ownership of their model: a serving snapshot and the
// adaptation worker can alias the same immutable float model without any
// lifetime choreography.

#include <memory>

#include "core/binary_smore.hpp"
#include "core/inference_backend.hpp"
#include "core/smore.hpp"

namespace smore {

class Pipeline;

/// Float SmoreModel (cosine ensembling) behind the backend interface.
class FloatBackend final : public InferenceBackend {
 public:
  /// `model` must be non-null and trained; prepare_serving() must have run
  /// if the backend will be shared across threads (ModelSnapshot::make
  /// does). Throws std::invalid_argument on nullptr, std::logic_error when
  /// untrained.
  explicit FloatBackend(std::shared_ptr<const SmoreModel> model);

  [[nodiscard]] SmoreBatchResult predict_batch_full(
      HvView queries) const override;
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;
  [[nodiscard]] std::size_t dim() const noexcept override;
  [[nodiscard]] std::size_t num_domains() const noexcept override;
  [[nodiscard]] ServeBackend kind() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override;

 private:
  std::shared_ptr<const SmoreModel> model_;
};

/// Packed BinarySmoreModel (XOR+popcount Hamming ensembling) behind the
/// backend interface. Queries are float blocks; quantization happens inside
/// the packed model's batched kernels.
class PackedBackend final : public InferenceBackend {
 public:
  /// Throws std::invalid_argument on nullptr.
  explicit PackedBackend(std::shared_ptr<const BinarySmoreModel> model);

  [[nodiscard]] SmoreBatchResult predict_batch_full(
      HvView queries) const override;
  [[nodiscard]] std::size_t footprint_bytes() const noexcept override;
  [[nodiscard]] std::size_t dim() const noexcept override;
  [[nodiscard]] std::size_t num_domains() const noexcept override;
  [[nodiscard]] ServeBackend kind() const noexcept override;
  [[nodiscard]] const char* name() const noexcept override;

 private:
  std::shared_ptr<const BinarySmoreModel> model_;
};

/// The snapshot rule: serve the packed model when one is present, the float
/// model otherwise. `model` must be non-null.
[[nodiscard]] std::shared_ptr<const InferenceBackend> make_serving_backend(
    std::shared_ptr<const SmoreModel> model,
    std::shared_ptr<const BinarySmoreModel> packed);

}  // namespace smore
