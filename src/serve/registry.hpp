#pragma once
// ModelRegistry: the multi-tenant model plane (DESIGN.md §12).
//
// A fleet server hosts MANY tenants — each with its own deployable Pipeline
// artifact — but only a budgeted subset fits in memory. The registry owns
// the residency policy so the router (serve/router.hpp) never has to:
//
//   * lazy loading — a tenant's artifact is opened on its FIRST request,
//     not at boot; a fleet of thousands of mostly-idle tenants costs only
//     what its working set costs;
//   * single-flight warm-load — a thundering herd on a cold tenant runs ONE
//     artifact deserialization; every concurrent request joins that flight
//     (util/sharded_lru.hpp). A load FAILURE (missing file, corrupt
//     artifact) is delivered to the requests of that flight and NOT cached:
//     the tenant stays cold and a later request retries, so a bad deploy of
//     one tenant never poisons the registry;
//   * byte-budget LRU eviction — resident tenants are accounted by model
//     footprint; when a load would exceed the budget, the least-recently-
//     used tenants are dropped first. Eviction only drops the registry's
//     reference: a shard worker mid-batch holds its own shared_ptr and
//     finishes on the model it started with.
//
// Each resident tenant is a TenantModel: a per-tenant SnapshotRegistry, so
// operators can publish a retrained generation for ONE tenant (RCU swap,
// same semantics as the single-tenant server) without touching the others.
// The budget accounts the boot footprint; published generations are assumed
// footprint-equivalent (same artifact, retrained weights). Note the
// eviction/publish race: a publish targets the CURRENTLY resident
// TenantModel instance — if the tenant was evicted and reloaded in between,
// the publish lands on the dead instance and is lost. That is the documented
// cost of keeping the hot path lock-free; operators re-publish after a
// deploy, they do not fire-and-forget across evictions.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "obs/telemetry.hpp"
#include "serve/snapshot.hpp"
#include "util/sharded_lru.hpp"

namespace smore {

/// Registry knobs. The byte budget is the whole policy: it bounds the sum of
/// resident model footprints (float model + packed model + encoder state as
/// materialized at load time), NOT process RSS — transient load buffers and
/// per-request state live outside. Encoder bases are lazily reconstructed
/// from (config, seed): a tenant that encodes raw windows after loading
/// grows its basis outside this budget (hv-submitting data planes never do),
/// so size the budget with headroom when serving raw windows per tenant.
struct RegistryConfig {
  /// Eviction threshold over resident model footprints. One tenant larger
  /// than the whole budget is still admitted (alone) — see ShardedLruCache.
  std::size_t byte_budget = std::numeric_limits<std::size_t>::max();
  std::size_t cache_shards = 8;  ///< lock shards of the residency cache
  /// Telemetry hub (DESIGN.md §14): residency metrics register here and
  /// load / evict / publish occurrences emit events. Pass the SAME hub as
  /// MultiTenantConfig::telemetry for one unified export surface; null means
  /// a private hub. One registry per hub (metrics are keyed by name only).
  std::shared_ptr<obs::Telemetry> telemetry;
};

/// Registry counters/gauges (the fleet-operations dashboard payload).
struct RegistryStats {
  std::uint64_t hits = 0;           ///< acquire() served by a resident model
  std::uint64_t misses = 0;         ///< acquire() that started a load
  std::uint64_t loads = 0;          ///< artifact loads completed
  std::uint64_t load_failures = 0;  ///< loads that threw (never cached)
  std::uint64_t evictions = 0;      ///< tenants dropped by the byte budget
  std::uint64_t single_flight_waits = 0;  ///< acquires that joined a flight
  std::size_t resident_tenants = 0;
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
  std::size_t byte_budget = 0;
};

/// One resident tenant: its own RCU snapshot chain. Handed out as a
/// shared_ptr so in-flight work pins it across eviction.
class TenantModel {
 public:
  TenantModel(std::string tenant, std::shared_ptr<const ModelSnapshot> boot);

  [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }

  /// The tenant's live snapshot (never null). Lock-free.
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const {
    return generations_.current();
  }

  /// RCU-publish a new generation for this tenant (e.g. a retrain push).
  /// The snapshot must match the boot dimension (std::invalid_argument
  /// otherwise); returns false when the live generation is already newer —
  /// same stale-publisher-loses contract as SnapshotRegistry.
  bool publish(std::shared_ptr<const ModelSnapshot> snap);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

 private:
  std::string tenant_;
  std::size_t dim_ = 0;
  SnapshotRegistry generations_;
};

/// Resident-memory cost of a snapshot: what the registry budget accounts.
[[nodiscard]] std::size_t snapshot_resident_bytes(const ModelSnapshot& snap);

/// The tenant → model map with lazy load, single-flight, and budgeted LRU.
class ModelRegistry {
 public:
  /// Opens one tenant's artifact by name and builds its boot snapshot. Run
  /// outside all registry locks (it deserializes a whole model); may throw —
  /// the exception surfaces to every request of that load's flight.
  using ArtifactOpener =
      std::function<std::shared_ptr<const ModelSnapshot>(const std::string&)>;

  /// Throws std::invalid_argument when `opener` is empty.
  explicit ModelRegistry(ArtifactOpener opener, RegistryConfig config = {});
  /// Unregisters this registry's callback metrics from the hub.
  ~ModelRegistry();

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The standard opener: tenant `t` lives at `<dir>/<t>.smore`. The file is
  /// probed first (Pipeline::probe — header/section-table validation with no
  /// payload allocation), then deserialized via ModelSnapshot::from_artifact
  /// with boot version 1.
  static ArtifactOpener directory_source(std::string dir);

  /// The resident tenant, loading its artifact (single-flight) when cold.
  /// Never null; throws what the opener threw when the load fails (the
  /// tenant stays cold — a later acquire retries).
  std::shared_ptr<TenantModel> acquire(const std::string& tenant);

  /// The resident tenant without loading; nullptr when cold or mid-load.
  [[nodiscard]] std::shared_ptr<TenantModel> resident(
      const std::string& tenant);

  /// Publish a new generation to a RESIDENT tenant. Returns false when the
  /// tenant is cold (nothing to publish onto — load-then-publish instead)
  /// or when the live generation is already newer.
  bool publish(const std::string& tenant,
               std::shared_ptr<const ModelSnapshot> snap);

  /// Drop a resident tenant (deploy rollback, manual unload). In-flight
  /// batches finish on their pinned model; the next acquire reloads.
  bool evict(const std::string& tenant);

  [[nodiscard]] const RegistryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] RegistryStats stats() const;

  /// The hub this registry reports into (never null — private when the
  /// config left it unset).
  [[nodiscard]] const std::shared_ptr<obs::Telemetry>& telemetry()
      const noexcept {
    return tel_;
  }

 private:
  RegistryConfig config_;
  ArtifactOpener opener_;
  std::shared_ptr<obs::Telemetry> tel_;
  ShardedLruCache<TenantModel> cache_;
};

}  // namespace smore
