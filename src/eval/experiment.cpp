#include "eval/experiment.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include <memory>

#include "baselines/mdan.hpp"
#include "baselines/tent.hpp"
#include "core/smore.hpp"
#include "data/normalize.hpp"
#include "eval/backend_eval.hpp"
#include "eval/timer.hpp"
#include "hdc/domino.hpp"
#include "hdc/onlinehd.hpp"
#include "hdc/projection_encoder.hpp"
#include "serve/backend.hpp"
#include "util/rng.hpp"

namespace smore {

const char* algo_name(Algo algo) {
  switch (algo) {
    case Algo::kTent:
      return "TENT";
    case Algo::kMdans:
      return "MDANs";
    case Algo::kBaselineHd:
      return "BaselineHD";
    case Algo::kDomino:
      return "DOMINO";
    case Algo::kSmore:
      return "SMORE";
  }
  return "?";
}

WorkloadKind algo_workload(Algo algo) {
  switch (algo) {
    case Algo::kTent:
    case Algo::kMdans:
      return WorkloadKind::kCnnInference;
    default:
      return WorkloadKind::kHdcInference;
  }
}

namespace {

// BaselineHD is OnlineHD *as published* (Sec 4.1 [22]): its own nonlinear
// random-projection encoding over the raw flattened window plus a single
// pooled classifier — no distribution-shift handling anywhere in the
// pipeline. Projection time is measured as part of its train/infer cost
// (it is not shared with the other HDC algorithms).
AlgoRunResult run_baseline_hd(const WindowDataset& raw, const Split& fold,
                              const SuiteConfig& config) {
  AlgoRunResult result;
  result.algo = Algo::kBaselineHd;
  const int classes = raw.num_classes();

  ChannelNormalizer norm;
  norm.fit(raw, fold.train);
  const WindowDataset normalized = norm.transform(raw);

  ProjectionEncoderConfig pc;
  pc.dim = config.dim;
  pc.seed = config.seed ^ 0x09e14d;
  const ProjectionEncoder encoder(pc);

  OnlineHDConfig hd;
  hd.learning_rate = config.hd_learning_rate;
  hd.epochs = config.hd_epochs;
  hd.seed = config.seed;

  OnlineHDClassifier model(classes, config.dim);
  double encode_s = 0.0;
  std::size_t encoded_windows = 0;
  {
    WallTimer t;
    WallTimer te;
    const HvDataset train =
        encoder.encode_dataset(take(normalized, fold.train));
    encode_s += te.seconds();
    encoded_windows += train.size();
    model.fit(train, hd);
    result.train_seconds = t.seconds();
  }
  {
    WallTimer t;
    WallTimer te;
    const HvDataset test = encoder.encode_dataset(take(normalized, fold.test));
    encode_s += te.seconds();
    encoded_windows += test.size();
    result.accuracy = model.accuracy(test);
    result.infer_seconds = t.seconds();
  }
  if (encode_s > 0.0) {
    result.encode_windows_per_second =
        static_cast<double>(encoded_windows) / encode_s;
  }
  return result;
}

AlgoRunResult run_hdc(Algo algo, const HvDataset& encoded, const Split& fold,
                      const SuiteConfig& config) {
  AlgoRunResult result;
  result.algo = algo;

  const HvDataset train = encoded.select(fold.train);
  const HvDataset test = encoded.select(fold.test);
  const int classes = encoded.num_classes();

  OnlineHDConfig hd;
  hd.learning_rate = config.hd_learning_rate;
  hd.epochs = config.hd_epochs;
  hd.seed = config.seed;

  // Encoding is shared infrastructure; attribute each split's share here so
  // the reported times cover the full pipeline.
  const double train_encode =
      config.encode_seconds_per_sample * static_cast<double>(fold.train.size());
  const double test_encode =
      config.encode_seconds_per_sample * static_cast<double>(fold.test.size());
  if (config.encode_seconds_per_sample > 0.0) {
    result.encode_windows_per_second = 1.0 / config.encode_seconds_per_sample;
  }

  switch (algo) {
    case Algo::kDomino: {
      DominoConfig dc;
      dc.total_dim = encoded.dim();
      dc.active_dim =
          std::max<std::size_t>(64, encoded.dim() / config.domino_active_divisor);
      dc.regen_fraction = config.domino_regen_fraction;
      dc.inner_epochs = config.domino_inner_epochs;
      dc.learning_rate = config.hd_learning_rate;
      dc.seed = config.seed;
      DominoClassifier model(classes, dc);
      {
        WallTimer t;
        model.fit(train);
        result.train_seconds = t.seconds() + train_encode;
      }
      {
        WallTimer t;
        result.accuracy = model.accuracy(test);
        result.infer_seconds = t.seconds() + test_encode;
      }
      break;
    }
    case Algo::kSmore: {
      SmoreConfig sc;
      sc.delta_star = config.delta_star;
      sc.domain_model = hd;
      auto model = std::make_shared<SmoreModel>(classes, encoded.dim(), sc);
      {
        WallTimer t;
        model->fit(train);
        result.train_seconds = t.seconds() + train_encode;
      }
      {
        // Inference goes through the polymorphic backend interface — the
        // exact code path the serving runtime executes, so the reported
        // accuracy is deployment accuracy.
        const FloatBackend backend(model);
        WallTimer t;
        const SmoreEvaluation eval = evaluate_backend(backend, test);
        result.accuracy = eval.accuracy;
        result.ood_rate = eval.ood_rate;
        result.infer_seconds = t.seconds() + test_encode;
      }
      break;
    }
    default:
      throw std::logic_error("run_hdc: not an HDC algorithm");
  }
  return result;
}

AlgoRunResult run_cnn(Algo algo, const WindowDataset& raw, const Split& fold,
                      const SuiteConfig& config) {
  AlgoRunResult result;
  result.algo = algo;
  const int classes = raw.num_classes();

  // Normalize with training-split statistics only.
  ChannelNormalizer norm;
  norm.fit(raw, fold.train);
  WindowDataset normalized = norm.transform(raw);

  const nn::Tensor x_train = windows_to_tensor(normalized, fold.train);
  const nn::Tensor x_test = windows_to_tensor(normalized, fold.test);
  const std::vector<int> y_train = labels_of(normalized, fold.train);
  const std::vector<int> y_test = labels_of(normalized, fold.test);

  BackboneConfig backbone;
  backbone.in_channels = raw.channels();

  if (algo == Algo::kTent) {
    TentConfig tc;
    tc.backbone = backbone;
    tc.num_classes = classes;
    tc.epochs = config.cnn_epochs;
    tc.batch_size = config.cnn_batch;
    tc.learning_rate = config.cnn_learning_rate;
    tc.adapt_steps = config.tent_adapt_steps;
    tc.adapt_batch_size = config.tent_adapt_batch;
    tc.seed = config.seed;
    TentClassifier model(tc);
    {
      WallTimer t;
      model.fit(x_train, y_train);
      result.train_seconds = t.seconds();
    }
    // TENT adapts on each test batch's own statistics, so batch composition
    // matters: the generated fold order is grouped by (subject, activity),
    // which would hand TENT near-single-class batches — an artifact no real
    // deployment sees. Shuffle the test order (deterministically) so batches
    // mix classes the way the paper's shuffled evaluation loaders do.
    Rng shuffle_rng(config.seed ^ 0x7e57);
    std::vector<std::size_t> order(fold.test.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = fold.test[i];
    shuffle_rng.shuffle(order);
    const nn::Tensor x_test_shuffled = windows_to_tensor(normalized, order);
    std::vector<int> y_test_shuffled;
    y_test_shuffled.reserve(order.size());
    for (const std::size_t i : order) {
      y_test_shuffled.push_back(normalized[i].label());
    }
    {
      WallTimer t;
      result.accuracy =
          model.evaluate_adaptive(x_test_shuffled, y_test_shuffled).accuracy;
      result.infer_seconds = t.seconds();
    }
    return result;
  }

  if (algo == Algo::kMdans) {
    // Densify the domain ids of the training split (LODO leaves a hole).
    const std::vector<int> raw_domains = domains_of(normalized, fold.train);
    std::map<int, int> dense;
    for (const int d : raw_domains) dense.emplace(d, 0);
    int next = 0;
    for (auto& [id, mapped] : dense) mapped = next++;
    std::vector<int> src_domains;
    src_domains.reserve(raw_domains.size());
    for (const int d : raw_domains) src_domains.push_back(dense.at(d));

    MdanConfig mc;
    mc.backbone = backbone;
    mc.num_classes = classes;
    mc.num_source_domains = next;
    mc.epochs = config.cnn_epochs;
    mc.batch_size = config.cnn_batch;
    mc.learning_rate = config.cnn_learning_rate;
    mc.mu = config.mdan_mu;
    mc.seed = config.seed;
    MdanClassifier model(mc);
    {
      WallTimer t;
      // Transductive DA: the held-out windows act as the unlabeled target.
      model.fit(x_train, y_train, src_domains, x_test);
      result.train_seconds = t.seconds();
    }
    {
      WallTimer t;
      result.accuracy = model.evaluate(x_test, y_test);
      result.infer_seconds = t.seconds();
    }
    return result;
  }

  throw std::logic_error("run_cnn: not a CNN algorithm");
}

}  // namespace

AlgoRunResult run_algorithm(Algo algo, const WindowDataset& raw,
                            const HvDataset& encoded, const Split& fold,
                            const SuiteConfig& config) {
  if (fold.train.empty() || fold.test.empty()) {
    throw std::invalid_argument("run_algorithm: empty fold");
  }
  switch (algo) {
    case Algo::kTent:
    case Algo::kMdans:
      return run_cnn(algo, raw, fold, config);
    case Algo::kBaselineHd:
      return run_baseline_hd(raw, fold, config);
    default:
      if (encoded.size() != raw.size()) {
        throw std::invalid_argument(
            "run_algorithm: encoded dataset not aligned with raw windows");
      }
      return run_hdc(algo, encoded, fold, config);
  }
}

}  // namespace smore
