#include "eval/edge_model.hpp"

namespace smore {

EdgePlatform raspberry_pi3() {
  // Xeon Silver 4310 single-thread vs Cortex-A53: ~4× IPC×clock gap widened
  // by NEON's narrow SIMD for convolutions. HDC streaming ops are
  // memory-bound and suffer less.
  return EdgePlatform{"Raspberry Pi 3B+", /*power_watts=*/5.0,
                      /*hdc_slowdown=*/18.0, /*cnn_slowdown=*/65.0};
}

EdgePlatform jetson_nano() {
  // A57 cores are slightly faster than the Pi's A53; the Maxwell GPU
  // accelerates convolutions, narrowing but not closing the CNN gap.
  return EdgePlatform{"Jetson Nano", /*power_watts=*/10.0,
                      /*hdc_slowdown=*/14.0, /*cnn_slowdown=*/45.0};
}

std::vector<EdgePlatform> paper_edge_platforms() {
  return {raspberry_pi3(), jetson_nano()};
}

}  // namespace smore
