#include "eval/backend_eval.hpp"

namespace smore {

SmoreEvaluation evaluate_backend(const InferenceBackend& backend,
                                 const HvDataset& data) {
  SmoreEvaluation out;
  if (data.empty()) return out;
  const SmoreBatchResult result = backend.predict_batch_full(data.view());
  std::size_t correct = 0;
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += result.labels[i] == data.label(i) ? 1 : 0;
    flagged += result.ood[i];
  }
  const auto n = static_cast<double>(data.size());
  out.accuracy = static_cast<double>(correct) / n;
  out.ood_rate = static_cast<double>(flagged) / n;
  return out;
}

}  // namespace smore
