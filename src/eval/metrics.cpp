#include "eval/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace smore {

ConfusionMatrix::ConfusionMatrix(int num_classes) : classes_(num_classes) {
  if (num_classes <= 0) {
    throw std::invalid_argument("ConfusionMatrix: num_classes must be > 0");
  }
  counts_.assign(static_cast<std::size_t>(num_classes) *
                     static_cast<std::size_t>(num_classes),
                 0);
}

void ConfusionMatrix::record(int truth, int predicted) {
  if (truth < 0 || truth >= classes_ || predicted < 0 ||
      predicted >= classes_) {
    throw std::invalid_argument("ConfusionMatrix::record: label out of range");
  }
  ++counts_[static_cast<std::size_t>(truth) * classes_ +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

void ConfusionMatrix::record_all(std::span<const int> truth,
                                 std::span<const int> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("ConfusionMatrix::record_all: size mismatch");
  }
  for (std::size_t i = 0; i < truth.size(); ++i) {
    record(truth[i], predicted[i]);
  }
}

std::size_t ConfusionMatrix::at(int truth, int predicted) const {
  if (truth < 0 || truth >= classes_ || predicted < 0 ||
      predicted >= classes_) {
    throw std::invalid_argument("ConfusionMatrix::at: label out of range");
  }
  return counts_[static_cast<std::size_t>(truth) * classes_ +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::accuracy() const noexcept {
  if (total_ == 0) return 0.0;
  std::size_t hit = 0;
  for (int c = 0; c < classes_; ++c) {
    hit += counts_[static_cast<std::size_t>(c) * classes_ +
                   static_cast<std::size_t>(c)];
  }
  return static_cast<double>(hit) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(int c) const {
  std::size_t tp = at(c, c);
  std::size_t predicted = 0;
  for (int t = 0; t < classes_; ++t) predicted += at(t, c);
  return predicted == 0 ? 0.0
                        : static_cast<double>(tp) /
                              static_cast<double>(predicted);
}

double ConfusionMatrix::recall(int c) const {
  std::size_t tp = at(c, c);
  std::size_t occurred = 0;
  for (int p = 0; p < classes_; ++p) occurred += at(c, p);
  return occurred == 0 ? 0.0
                       : static_cast<double>(tp) /
                             static_cast<double>(occurred);
}

double ConfusionMatrix::f1(int c) const {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  int present = 0;
  for (int c = 0; c < classes_; ++c) {
    std::size_t occurred = 0;
    for (int p = 0; p < classes_; ++p) occurred += at(c, p);
    if (occurred == 0) continue;
    sum += f1(c);
    ++present;
  }
  return present == 0 ? 0.0 : sum / present;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "confusion matrix (" << classes_ << " classes, " << total_
     << " samples)\n";
  for (int t = 0; t < classes_; ++t) {
    for (int p = 0; p < classes_; ++p) {
      os << at(t, p) << (p + 1 == classes_ ? '\n' : '\t');
    }
  }
  return os.str();
}

double accuracy_score(const std::vector<int>& truth,
                      const std::vector<int>& predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("accuracy_score: size mismatch");
  }
  if (truth.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    hit += truth[i] == predicted[i] ? 1 : 0;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

}  // namespace smore
