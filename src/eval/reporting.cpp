#include "eval/reporting.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace smore {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TablePrinter: empty header");
  }
}

void TablePrinter::row(std::vector<std::string> fields) {
  if (fields.size() != header_.size()) {
    throw std::invalid_argument("TablePrinter: arity mismatch");
  }
  rows_.push_back(std::move(fields));
}

void TablePrinter::row_numeric(const std::string& label,
                               const std::vector<double>& values,
                               int precision) {
  std::vector<std::string> fields;
  fields.push_back(label);
  for (const double v : values) fields.push_back(fmt(v, precision));
  row(std::move(fields));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << r[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

void print_banner(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_speedup(double ratio, int precision) {
  return fmt(ratio, precision) + "x";
}

}  // namespace smore
