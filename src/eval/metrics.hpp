#pragma once
// Classification metrics: confusion matrix, accuracy, per-class
// precision/recall/F1, macro aggregates. Used by tests and every accuracy
// bench.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace smore {

/// Dense confusion matrix over `num_classes` labels.
class ConfusionMatrix {
 public:
  /// Throws std::invalid_argument when num_classes <= 0.
  explicit ConfusionMatrix(int num_classes);

  /// Record one (truth, prediction) pair; out-of-range labels throw.
  void record(int truth, int predicted);

  /// Record a whole batch of aligned (truth, prediction) pairs — the natural
  /// sink of the predict_batch APIs. Throws std::invalid_argument on size
  /// mismatch; out-of-range labels throw as in record().
  void record_all(std::span<const int> truth, std::span<const int> predicted);

  [[nodiscard]] int num_classes() const noexcept { return classes_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

  /// Count at (truth, predicted).
  [[nodiscard]] std::size_t at(int truth, int predicted) const;

  [[nodiscard]] double accuracy() const noexcept;

  /// Per-class precision: TP / (TP + FP); 0 when the class was never
  /// predicted.
  [[nodiscard]] double precision(int c) const;

  /// Per-class recall: TP / (TP + FN); 0 when the class never occurred.
  [[nodiscard]] double recall(int c) const;

  /// Per-class F1 (harmonic mean of precision and recall).
  [[nodiscard]] double f1(int c) const;

  /// Unweighted mean F1 over classes that occur in the data.
  [[nodiscard]] double macro_f1() const;

  /// Pretty multi-line rendering for logs.
  [[nodiscard]] std::string to_string() const;

 private:
  int classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // classes × classes, row = truth
};

/// Plain accuracy from two label vectors of equal size.
[[nodiscard]] double accuracy_score(const std::vector<int>& truth,
                                    const std::vector<int>& predicted);

}  // namespace smore
