#pragma once
// Console table rendering for the benchmark harnesses: every bench prints
// the paper's rows/series next to our measured numbers in aligned columns.

#include <string>
#include <vector>

namespace smore {

/// Fixed-column text table accumulated in memory and printed at once.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append a row; arity must match the header.
  void row(std::vector<std::string> fields);

  /// Convenience row from printf-style doubles with the given precision.
  void row_numeric(const std::string& label, const std::vector<double>& values,
                   int precision = 2);

  /// Render with padding and a separator under the header.
  [[nodiscard]] std::string to_string() const;

  /// Print to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// "===== title =====" section banner to stdout.
void print_banner(const std::string& title);

/// Format a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Format a ratio as "N.NNx".
[[nodiscard]] std::string fmt_speedup(double ratio, int precision = 2);

}  // namespace smore
