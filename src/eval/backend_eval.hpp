#pragma once
// Backend-agnostic evaluation: score any InferenceBackend on an encoded,
// labeled dataset. The evaluation layer talks to serving representations
// only through the polymorphic interface (DESIGN.md §10) — a float model, a
// packed model, or any future representation scores through the exact same
// code path the serving runtime executes, so reported accuracy is the
// accuracy a deployment would see.

#include "core/inference_backend.hpp"
#include "hdc/hv_dataset.hpp"

namespace smore {

/// Accuracy + OOD rate of `backend` on `data` (one batched
/// predict_batch_full pass, verdicts against the dataset's own labels).
/// Empty data evaluates to zeros. Throws std::invalid_argument on dimension
/// mismatch (from the backend's own validation).
[[nodiscard]] SmoreEvaluation evaluate_backend(const InferenceBackend& backend,
                                               const HvDataset& data);

}  // namespace smore
