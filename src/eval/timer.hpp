#pragma once
// Wall-clock timing for the efficiency experiments (paper Sec 4.3).

#include <chrono>

namespace smore {

/// Monotonic stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = clock::now(); }

  /// Seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Adds the lifetime of the scope to an accumulator on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double& accumulator) : acc_(accumulator) {}
  ~ScopedTimer() { acc_ += timer_.seconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& acc_;
  WallTimer timer_;
};

}  // namespace smore
