#pragma once
// The shared experiment engine behind the figure/table benches.
//
// Runs one algorithm on one cross-validation fold of one dataset and reports
// accuracy plus wall-clock training and inference time. All five algorithms
// of the paper's evaluation (Sec 4.1) are covered:
//   TENT, MDANs            — CNN-based DA (raw windows, normalized)
//   BaselineHD, DOMINO, SMORE — HDC (pre-encoded hypervectors)
//
// HDC timing: the encoder runs once per dataset and is shared by the three
// HDC algorithms and all folds (an engineering choice, see DESIGN.md §6);
// `encode_seconds_per_sample` re-attributes that cost so reported train /
// inference times include each split's fair share of encoding.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "data/dataset.hpp"
#include "data/timeseries.hpp"
#include "eval/edge_model.hpp"
#include "hdc/hv_dataset.hpp"

namespace smore {

/// The five evaluated algorithms, in the paper's legend order.
enum class Algo { kTent, kMdans, kBaselineHd, kDomino, kSmore };

/// Display name matching the paper's legends.
[[nodiscard]] const char* algo_name(Algo algo);

/// Workload class for edge projection (Fig. 6b).
[[nodiscard]] WorkloadKind algo_workload(Algo algo);

/// All five algorithms in legend order.
[[nodiscard]] inline constexpr std::array<Algo, 5> all_algos() {
  return {Algo::kTent, Algo::kMdans, Algo::kBaselineHd, Algo::kDomino,
          Algo::kSmore};
}

/// Shared hyperparameters for a full experiment suite.
struct SuiteConfig {
  std::size_t dim = 2048;  ///< hyperdimension (paper: 8k; see DESIGN.md §7)
  double delta_star = 0.65;
  // HDC training
  int hd_epochs = 20;
  float hd_learning_rate = 0.035f;
  // DOMINO (active = dim / domino_active_divisor, total = dim: the paper's
  // d* = 1k vs 8k fairness ratio)
  std::size_t domino_active_divisor = 8;
  double domino_regen_fraction = 0.10;
  int domino_inner_epochs = 4;
  // CNN training
  int cnn_epochs = 10;
  std::size_t cnn_batch = 32;
  float cnn_learning_rate = 1e-3f;
  float mdan_mu = 0.1f;
  // TENT adaptation
  int tent_adapt_steps = 1;
  std::size_t tent_adapt_batch = 64;
  // encoding amortization (seconds per sample measured by the caller)
  double encode_seconds_per_sample = 0.0;
  std::uint64_t seed = 0x5eed;
};

/// Outcome of one (algorithm, fold) run.
struct AlgoRunResult {
  Algo algo = Algo::kSmore;
  double accuracy = 0.0;
  double train_seconds = 0.0;
  double infer_seconds = 0.0;
  double ood_rate = 0.0;  ///< SMORE only; 0 elsewhere
  /// Batched-encode throughput feeding this run (HDC algorithms only; CNNs
  /// consume raw windows and report 0). For the shared multi-sensor encoding
  /// this is 1 / encode_seconds_per_sample; BaselineHD measures its own
  /// projection encode.
  double encode_windows_per_second = 0.0;
};

/// Execute `algo` on the given fold. `raw` and `encoded` must be aligned
/// (row i of `encoded` is the encoding of window i of `raw`); CNN algorithms
/// ignore `encoded`, HDC algorithms ignore the raw signals.
[[nodiscard]] AlgoRunResult run_algorithm(Algo algo, const WindowDataset& raw,
                                          const HvDataset& encoded,
                                          const Split& fold,
                                          const SuiteConfig& config);

}  // namespace smore
