#pragma once
// Edge-platform latency/energy model (substitution for paper Fig. 6b).
//
// The paper measures inference latency and energy on a Raspberry Pi 3B+ and
// an NVIDIA Jetson Nano. Neither device exists in this environment, so we
// project *measured server latency* through a per-platform device model:
//
//     latency_edge  = latency_server × slowdown(platform, workload class)
//     energy_edge   = latency_edge × average power draw
//
// Slowdown factors derive from public spec ratios (core count × clock ×
// SIMD width vs. the evaluation host) and reproduce the paper's observed
// trend that HDC workloads suffer a smaller edge penalty than CNN inference
// (memory-bound streaming vs. compute-bound convolutions; the Jetson's GPU
// partially offsets the CNN penalty). Figures produced from this model are
// labeled "simulated" in every bench output. See DESIGN.md §3.

#include <string>
#include <vector>

namespace smore {

/// Workload class for the slowdown lookup.
enum class WorkloadKind {
  kHdcInference,  ///< hypervector similarity search (SMORE, BaselineHD, ...)
  kCnnInference,  ///< convolutional forward passes (TENT, MDANs)
};

/// One edge platform's model parameters.
struct EdgePlatform {
  std::string name;
  double power_watts;     ///< average active power draw
  double hdc_slowdown;    ///< latency multiplier for HDC workloads
  double cnn_slowdown;    ///< latency multiplier for CNN workloads

  [[nodiscard]] double slowdown(WorkloadKind kind) const noexcept {
    return kind == WorkloadKind::kHdcInference ? hdc_slowdown : cnn_slowdown;
  }

  /// Projected latency (seconds) from a measured server latency.
  [[nodiscard]] double project_latency(double server_seconds,
                                       WorkloadKind kind) const noexcept {
    return server_seconds * slowdown(kind);
  }

  /// Projected energy (joules) for that latency.
  [[nodiscard]] double project_energy(double server_seconds,
                                      WorkloadKind kind) const noexcept {
    return project_latency(server_seconds, kind) * power_watts;
  }
};

/// Raspberry Pi 3 Model B+ (quad A53 @ 1.4 GHz, 5 W TDP): scalar-narrow
/// cores hit CNN inference ~3.6× harder than streaming HDC ops.
[[nodiscard]] EdgePlatform raspberry_pi3();

/// NVIDIA Jetson Nano (quad A57 @ 1.43 GHz + 128-core Maxwell, 10 W TDP):
/// the GPU absorbs part of the CNN penalty, but CNNs still degrade ~3.2×
/// more than HDC.
[[nodiscard]] EdgePlatform jetson_nano();

/// Both platforms of the paper's Fig. 6b, in paper order.
[[nodiscard]] std::vector<EdgePlatform> paper_edge_platforms();

}  // namespace smore
