#include "data/windowing.hpp"

#include <algorithm>
#include <cmath>

namespace smore {

namespace {
void validate(const SegmentationConfig& config) {
  if (config.window_steps == 0) {
    throw std::invalid_argument("segmentation: window_steps must be positive");
  }
  if (config.overlap < 0.0 || config.overlap >= 1.0) {
    throw std::invalid_argument("segmentation: overlap must be in [0, 1)");
  }
}
}  // namespace

std::size_t hop_of(const SegmentationConfig& config) {
  validate(config);
  const auto hop = static_cast<std::size_t>(std::llround(
      static_cast<double>(config.window_steps) * (1.0 - config.overlap)));
  return std::max<std::size_t>(1, hop);
}

std::size_t window_count(std::size_t stream_steps,
                         const SegmentationConfig& config) {
  validate(config);
  if (stream_steps < config.window_steps) return 0;
  return (stream_steps - config.window_steps) / hop_of(config) + 1;
}

std::size_t steps_for_windows(std::size_t n, const SegmentationConfig& config) {
  validate(config);
  if (n == 0) return 0;
  return config.window_steps + (n - 1) * hop_of(config);
}

std::vector<Window> segment(const MultiChannelStream& stream,
                            const SegmentationConfig& config) {
  validate(config);
  const std::size_t count = window_count(stream.steps(), config);
  const std::size_t hop = hop_of(config);
  std::vector<Window> out;
  out.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    const std::size_t start = w * hop;
    Window win(stream.channels(), config.window_steps);
    for (std::size_t c = 0; c < stream.channels(); ++c) {
      const auto src = stream.channel(c);
      std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(start),
                  config.window_steps, win.channel(c).begin());
    }
    win.set_label(stream.label());
    win.set_subject(stream.subject());
    win.set_domain(stream.domain());
    out.push_back(std::move(win));
  }
  return out;
}

}  // namespace smore
