#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace smore {

namespace {

constexpr int kHarmonics = 3;

// Mixes identifying integers into a fork tag.
constexpr std::uint64_t tag(std::uint64_t kind, std::uint64_t a,
                            std::uint64_t b = 0, std::uint64_t c = 0) {
  std::uint64_t s = kind;
  s = s * 0x100000001b3ULL + a;
  s = s * 0x100000001b3ULL + b;
  s = s * 0x100000001b3ULL + c;
  return s;
}

// Per-(activity, channel) harmonic template: the class-conditional pattern.
struct ChannelTemplate {
  float involvement;                  // how strongly this channel expresses
  float offset;                       // DC bias of the channel
  float amplitude[kHarmonics];        // harmonic weights
  float freq[kHarmonics];             // absolute frequencies (Hz)
  float phase[kHarmonics];            // phase offsets
  float burst_rate_hz;                // expected transient bursts per second
  float burst_amp;                    // burst amplitude
};

ChannelTemplate make_template(const SyntheticSpec& spec, int activity,
                              std::size_t channel) {
  Rng root(spec.seed);
  // Activity-level parameters shared across channels (the "motion tempo").
  Rng act_rng(root.fork(tag(0xac7, static_cast<std::uint64_t>(activity)))());
  const double base_freq = act_rng.uniform(0.7, 3.3);
  const double burst_rate = act_rng.uniform(0.0, 1.2);

  Rng ch_rng(root.fork(tag(0xc4a, static_cast<std::uint64_t>(activity),
                           channel))());
  ChannelTemplate t{};
  // Channels participate to varying degrees in a given activity. The range
  // is kept moderate ([0.5, 1]) so class identity rests mostly on temporal
  // structure (frequencies, harmonic mix) rather than on a static
  // channel-activity fingerprint — static fingerprints are immune to subject
  // shift and would make the LODO protocol trivially easy for every model.
  t.involvement = ch_rng.uniform_f(0.5f, 1.0f);
  // DC bias belongs to the sensor channel (mounting position), not to the
  // activity: a class-conditional DC would hand every model a shift-free
  // fingerprint readable through trivial average pooling, which real
  // wearable data does not provide.
  Rng off_rng(root.fork(tag(0x0ff5, channel))());
  t.offset = static_cast<float>(off_rng.normal(0.0, 0.5));
  for (int h = 0; h < kHarmonics; ++h) {
    // Energy decays with harmonic order; weights are channel-specific.
    t.amplitude[h] =
        ch_rng.uniform_f(0.3f, 1.0f) / static_cast<float>(h + 1);
    // Harmonic multiples with per-channel detuning keeps classes overlapping
    // but separable.
    t.freq[h] = static_cast<float>(base_freq * (h + 1) *
                                   ch_rng.uniform(0.97, 1.03));
    t.phase[h] = ch_rng.uniform_f(0.0f, 2.0f * std::numbers::pi_v<float>);
  }
  t.burst_rate_hz = static_cast<float>(burst_rate * ch_rng.uniform(0.0, 1.0));
  t.burst_amp = ch_rng.uniform_f(0.5f, 1.5f);
  return t;
}

// Per-subject covariate shift: drawn once per subject, applied to every
// recording of that subject. `strength` scales all perturbations.
//
// Two kinds of shift are modeled, because the HDC encoder's per-window
// min/max anchoring makes it invariant to pure affine distortions:
//   * affine shifts (gains, offsets) — visible to the CNN baselines, mostly
//     normalized away by both pipelines;
//   * *shape* shifts (tempo, per-harmonic restyling and phase jitter,
//     quadratic waveform distortion, noise floor) — these change the
//     waveform morphology itself, which is what genuinely separates subjects
//     in wearable-sensor data and what survives every normalization.
struct SubjectTransform {
  float global_gain;
  float tempo;        // frequency multiplier
  float phase_shift;
  float noise_gain;
  float distortion;   // quadratic waveform asymmetry κ: v -> v + κ v²
  std::vector<float> channel_gain;
  std::vector<float> channel_offset;
  std::vector<float> restyle;       // per-(channel, harmonic) amplitude factor
  std::vector<float> phase_jitter;  // per-(channel, harmonic) phase offset
};

// Raw (unit-strength) perturbation parameters of one subject archetype.
struct SubjectParams {
  double log_global_gain;
  double log_tempo;
  double log_noise_gain;
  double distortion;
  std::vector<double> log_channel_gain;
  std::vector<double> channel_offset;
  std::vector<double> log_restyle;
  std::vector<double> phase_jitter;
};

SubjectParams draw_params(const SyntheticSpec& spec, Rng rng) {
  SubjectParams p;
  // σ values set so that at domain_shift = 1 the *extremes* of the subject
  // continuum collide in class space (a fast subject's slow activity looks
  // like a slow subject's fast activity) while neighbors stay compatible —
  // the regime where pooled prototypes blur but similarity-weighted
  // domain-specific models recover (paper Sec 1, Fig. 1a).
  p.log_global_gain = rng.normal(0.0, 0.18);
  p.log_tempo = rng.normal(0.0, 0.25);
  p.log_noise_gain = rng.normal(0.0, 0.25);
  p.distortion = rng.normal(0.0, 0.25);
  p.log_channel_gain.resize(spec.channels);
  p.channel_offset.resize(spec.channels);
  p.log_restyle.resize(spec.channels * kHarmonics);
  p.phase_jitter.resize(spec.channels * kHarmonics);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    p.log_channel_gain[c] = rng.normal(0.0, 0.20);
    p.channel_offset[c] = rng.normal(0.0, 0.35);
    for (int h = 0; h < kHarmonics; ++h) {
      p.log_restyle[c * kHarmonics + h] = rng.normal(0.0, 0.40);
      p.phase_jitter[c * kHarmonics + h] = rng.normal(0.0, 0.60);
    }
  }
  return p;
}

// Population structure: the paper groups subjects into domains "based on
// subject ID from low to high", and the motivating example (Fig. 1a) is an
// age/demographic gradient. We model that as a 1-D latent continuum: two
// population archetypes A and B are drawn once per dataset, each subject sits
// at λ = id/(subjects-1) between them with individual jitter on top. Domains
// (consecutive subject groups) therefore form a gradient — a held-out group
// genuinely resembles its neighboring groups more than distant ones, which
// is the structure SMORE's descriptor-weighted ensembling exploits and i.i.d.
// subjects would not provide.
SubjectTransform make_subject(const SyntheticSpec& spec, int subject) {
  const double beta = spec.domain_shift;
  Rng root(spec.seed);
  const SubjectParams a = draw_params(spec, Rng(root.fork(tag(0xa4c, 0))()));
  const SubjectParams b = draw_params(spec, Rng(root.fork(tag(0xa4c, 1))()));
  const SubjectParams own =
      draw_params(spec, Rng(root.fork(tag(0x5b, static_cast<std::uint64_t>(
                                                    subject)))()));
  const double lambda =
      spec.subjects > 1
          ? static_cast<double>(subject) / static_cast<double>(spec.subjects - 1)
          : 0.5;
  constexpr double kIndividual = 0.35;  // jitter around the continuum

  const auto mix = [&](double pa, double pb, double po) {
    return beta * ((1.0 - lambda) * pa + lambda * pb + kIndividual * po);
  };

  Rng rng(root.fork(tag(0x5b2, static_cast<std::uint64_t>(subject)))());
  SubjectTransform s;
  s.global_gain = static_cast<float>(
      std::exp(mix(a.log_global_gain, b.log_global_gain, own.log_global_gain)));
  s.tempo =
      static_cast<float>(std::exp(mix(a.log_tempo, b.log_tempo, own.log_tempo)));
  s.phase_shift = rng.uniform_f(0.0f, 2.0f * std::numbers::pi_v<float>);
  s.noise_gain = static_cast<float>(
      std::exp(mix(a.log_noise_gain, b.log_noise_gain, own.log_noise_gain)));
  s.distortion =
      static_cast<float>(mix(a.distortion, b.distortion, own.distortion));
  s.channel_gain.resize(spec.channels);
  s.channel_offset.resize(spec.channels);
  s.restyle.resize(spec.channels * kHarmonics);
  s.phase_jitter.resize(spec.channels * kHarmonics);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    s.channel_gain[c] = static_cast<float>(std::exp(
        mix(a.log_channel_gain[c], b.log_channel_gain[c], own.log_channel_gain[c])));
    s.channel_offset[c] = static_cast<float>(
        mix(a.channel_offset[c], b.channel_offset[c], own.channel_offset[c]));
    for (int h = 0; h < kHarmonics; ++h) {
      const std::size_t i = c * kHarmonics + h;
      s.restyle[i] = static_cast<float>(
          std::exp(mix(a.log_restyle[i], b.log_restyle[i], own.log_restyle[i])));
      s.phase_jitter[i] = static_cast<float>(
          mix(a.phase_jitter[i], b.phase_jitter[i], own.phase_jitter[i]));
    }
  }
  return s;
}

}  // namespace

int SyntheticSpec::num_domains() const {
  int m = -1;
  for (const int d : subject_to_domain) m = d > m ? d : m;
  return m + 1;
}

MultiChannelStream generate_stream(const SyntheticSpec& spec, int subject,
                                   int activity, std::size_t steps,
                                   int repetition) {
  if (subject < 0 || subject >= spec.subjects) {
    throw std::invalid_argument("generate_stream: subject out of range");
  }
  if (activity < 0 || activity >= spec.activities) {
    throw std::invalid_argument("generate_stream: activity out of range");
  }
  const SubjectTransform subj = make_subject(spec, subject);
  Rng noise_rng(Rng(spec.seed).fork(tag(0x401e, static_cast<std::uint64_t>(subject),
                                        static_cast<std::uint64_t>(activity),
                                        static_cast<std::uint64_t>(repetition)))());
  // Each repetition starts at an independent point in the motion cycle.
  const double t0 = noise_rng.uniform(0.0, 100.0);
  const double dt = 1.0 / spec.sample_rate_hz;

  MultiChannelStream stream(spec.channels, steps);
  stream.set_label(activity);
  stream.set_subject(subject);
  const int domain = spec.subject_to_domain.empty()
                         ? 0
                         : spec.subject_to_domain[static_cast<std::size_t>(subject)];
  stream.set_domain(domain);

  std::vector<float> burst(steps, 0.0f);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    const ChannelTemplate tpl = make_template(spec, activity, c);
    auto out = stream.channel(c);

    // Transient bursts: Poisson-ish arrivals, Gaussian bump of ~80 ms width.
    std::fill(burst.begin(), burst.end(), 0.0f);
    const double expected =
        tpl.burst_rate_hz * static_cast<double>(steps) * dt;
    const int n_bursts = static_cast<int>(expected) +
                         (noise_rng.bernoulli(expected - std::floor(expected))
                              ? 1
                              : 0);
    const double width = 0.04 * spec.sample_rate_hz;  // sigma in steps
    for (int b = 0; b < n_bursts; ++b) {
      const auto center =
          static_cast<double>(noise_rng.index(steps == 0 ? 1 : steps));
      const float amp =
          tpl.burst_amp * static_cast<float>(noise_rng.uniform(0.6, 1.4));
      const int lo = std::max(0, static_cast<int>(center - 3 * width));
      const int hi =
          std::min(static_cast<int>(steps), static_cast<int>(center + 3 * width));
      for (int i = lo; i < hi; ++i) {
        const double z = (i - center) / width;
        burst[static_cast<std::size_t>(i)] +=
            amp * static_cast<float>(std::exp(-0.5 * z * z));
      }
    }

    const float gain =
        subj.global_gain * subj.channel_gain[c] * tpl.involvement;
    const float sigma = 0.15f * static_cast<float>(spec.noise_level) *
                        subj.noise_gain;
    for (std::size_t i = 0; i < steps; ++i) {
      const double t = t0 + static_cast<double>(i) * dt;
      double v = 0.0;
      for (int h = 0; h < kHarmonics; ++h) {
        const double w = 2.0 * std::numbers::pi * tpl.freq[h] * subj.tempo;
        v += static_cast<double>(tpl.amplitude[h] *
                                 subj.restyle[c * kHarmonics + h]) *
             std::sin(w * t + tpl.phase[h] + subj.phase_shift +
                      subj.phase_jitter[c * kHarmonics + h]);
      }
      // Subject-specific waveform asymmetry: a shape shift that survives
      // per-window normalization (unlike pure gain/offset).
      v += static_cast<double>(subj.distortion) * v * std::abs(v) * 0.5;
      v = tpl.offset + subj.channel_offset[c] + gain * (v + burst[i]);
      v += sigma * noise_rng.normal();
      out[i] = static_cast<float>(v);
    }
  }
  return stream;
}

WindowDataset generate_dataset(const SyntheticSpec& spec) {
  if (spec.subject_to_domain.size() != static_cast<std::size_t>(spec.subjects)) {
    throw std::invalid_argument(
        "generate_dataset: subject_to_domain size must equal subjects");
  }
  const int domains = spec.num_domains();
  if (domains <= 0) {
    throw std::invalid_argument("generate_dataset: no domains");
  }
  if (spec.domain_counts.size() != static_cast<std::size_t>(domains)) {
    throw std::invalid_argument(
        "generate_dataset: domain_counts size must equal domain count");
  }

  const SegmentationConfig seg{spec.window_steps, spec.overlap};
  WindowDataset dataset(spec.name, spec.channels, spec.window_steps);

  for (int d = 0; d < domains; ++d) {
    std::vector<int> members;
    for (int s = 0; s < spec.subjects; ++s) {
      if (spec.subject_to_domain[static_cast<std::size_t>(s)] == d) {
        members.push_back(s);
      }
    }
    if (members.empty()) {
      throw std::invalid_argument("generate_dataset: empty domain " +
                                  std::to_string(d));
    }
    const std::size_t target = spec.domain_counts[static_cast<std::size_t>(d)];

    // Quota per (subject, activity) cell, remainder spread over early cells.
    const std::size_t cells =
        members.size() * static_cast<std::size_t>(spec.activities);
    const std::size_t base = target / cells;
    std::size_t remainder = target % cells;

    for (const int subject : members) {
      for (int a = 0; a < spec.activities; ++a) {
        std::size_t quota = base + (remainder > 0 ? 1 : 0);
        if (remainder > 0) --remainder;
        if (quota == 0) continue;
        const std::size_t steps = steps_for_windows(quota, seg);
        const MultiChannelStream stream =
            generate_stream(spec, subject, a, steps, /*repetition=*/0);
        std::vector<Window> windows = segment(stream, seg);
        for (std::size_t w = 0; w < quota && w < windows.size(); ++w) {
          dataset.add(std::move(windows[w]));
        }
      }
    }
  }
  return dataset;
}

namespace {
std::vector<std::size_t> scaled_counts(std::initializer_list<std::size_t> full,
                                       double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    throw std::invalid_argument("dataset scale must be in (0, 1]");
  }
  std::vector<std::size_t> out;
  for (const std::size_t n : full) {
    out.push_back(std::max<std::size_t>(
        1, static_cast<std::size_t>(std::llround(scale * static_cast<double>(n)))));
  }
  return out;
}
}  // namespace

SyntheticSpec dsads_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "DSADS";
  spec.activities = 19;
  spec.subjects = 8;
  spec.subject_to_domain = {0, 0, 1, 1, 2, 2, 3, 3};
  spec.channels = 45;
  spec.window_steps = 125;  // 5 s @ 25 Hz
  spec.overlap = 0.0;       // non-overlapping segments
  spec.sample_rate_hz = 25.0;
  spec.domain_counts = scaled_counts({2280, 2280, 2280, 2280}, scale);
  spec.seed = seed;
  return spec;
}

SyntheticSpec uschad_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "USC-HAD";
  spec.activities = 12;
  spec.subjects = 14;
  spec.subject_to_domain = {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 4, 4};
  spec.channels = 6;        // 3-axis accelerometer + 3-axis gyroscope
  spec.window_steps = 126;  // 1.26 s @ 100 Hz
  spec.overlap = 0.5;
  spec.sample_rate_hz = 100.0;
  spec.domain_counts = scaled_counts({8945, 8754, 8534, 8867, 8274}, scale);
  spec.seed = seed;
  return spec;
}

SyntheticSpec pamap2_spec(double scale, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "PAMAP2";
  spec.activities = 18;
  spec.subjects = 8;  // subject nine excluded per the paper
  spec.subject_to_domain = {0, 0, 1, 1, 2, 2, 3, 3};
  spec.channels = 27;       // 3 IMUs × (acc + gyro + mag)
  spec.window_steps = 127;  // 1.27 s @ 100 Hz
  spec.overlap = 0.5;
  spec.sample_rate_hz = 100.0;
  spec.domain_counts = scaled_counts({5636, 5591, 5806, 5660}, scale);
  spec.seed = seed;
  return spec;
}

}  // namespace smore
