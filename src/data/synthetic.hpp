#pragma once
// Synthetic multi-sensor activity-recognition datasets.
//
// The paper evaluates on DSADS, USC-HAD and PAMAP2 — real wearable-sensor
// recordings that are not redistributable and not available in this offline
// environment. Per DESIGN.md §3 we substitute parametric generators that
// reproduce the *causal structure* the experiments depend on:
//
//   signal(subject, activity, channel, t) =
//       subject-shifted mixture of activity-specific harmonics
//     + activity-dependent transient bursts
//     + measurement noise
//
// Class identity lives in the harmonic mixture (base frequency, harmonic
// weights, channel involvement); the *domain shift* lives in per-subject
// transforms (tempo, gains, offsets, harmonic restyling, noise level) drawn
// once per subject — exactly the "different age groups / demographics"
// covariate shift of Figure 1(a). Subjects are grouped into domains by id,
// matching the paper's Sec 4.1 protocol and Table 1 sample counts.
//
// Every value is a deterministic function of (spec, seed).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/timeseries.hpp"
#include "data/windowing.hpp"

namespace smore {

/// Full description of a synthetic multi-sensor dataset.
struct SyntheticSpec {
  std::string name = "synthetic";
  int activities = 4;    ///< number of classes
  int subjects = 4;      ///< number of recorded subjects
  std::vector<int> subject_to_domain;  ///< domain id per subject (-1 = dropped)
  std::size_t channels = 3;
  std::size_t window_steps = 64;
  double overlap = 0.0;            ///< window overlap fraction, [0, 1)
  double sample_rate_hz = 50.0;
  std::vector<std::size_t> domain_counts;  ///< target window count per domain
  double domain_shift = 1.0;  ///< subject covariate-shift strength multiplier
  double noise_level = 1.0;   ///< measurement-noise multiplier
  std::uint64_t seed = 0x5eed;

  /// Number of domains = max(subject_to_domain)+1.
  [[nodiscard]] int num_domains() const;
};

/// DSADS-like spec (Table 1): 19 activities, 8 subjects in 4 domains of two,
/// 45 channels (5 body units × 9 sensors), 5 s windows @ 25 Hz,
/// non-overlapping; 2280 windows per domain at scale 1.
[[nodiscard]] SyntheticSpec dsads_spec(double scale = 1.0,
                                       std::uint64_t seed = 0xd5ad5);

/// USC-HAD-like spec (Table 1): 12 activities, 14 subjects in 5 domains
/// (three subjects each, last domain two), 6 channels (3-axis acc + gyro),
/// 1.26 s windows @ 100 Hz with 50% overlap; 8945/8754/8534/8867/8274
/// windows per domain at scale 1.
[[nodiscard]] SyntheticSpec uschad_spec(double scale = 1.0,
                                        std::uint64_t seed = 0x05c4ad);

/// PAMAP2-like spec (Table 1): 18 activities, 8 of 9 subjects (subject nine
/// excluded) in 4 domains of two, 27 channels (3 IMUs × 9), 1.27 s windows
/// @ 100 Hz with 50% overlap; 5636/5591/5806/5660 windows per domain.
[[nodiscard]] SyntheticSpec pamap2_spec(double scale = 1.0,
                                        std::uint64_t seed = 0x9a3a92);

/// Generate the segmented dataset described by `spec`. Window counts match
/// spec.domain_counts exactly (quota split evenly across the domain's
/// subjects and activities). Throws std::invalid_argument on inconsistent
/// specs (empty domains, zero counts, bad overlap).
[[nodiscard]] WindowDataset generate_dataset(const SyntheticSpec& spec);

/// Generate one continuous recording for (subject, activity) of the given
/// length — exposed so tests and streaming examples can drive the signal
/// model directly. `repetition` distinguishes independent recordings.
[[nodiscard]] MultiChannelStream generate_stream(const SyntheticSpec& spec,
                                                 int subject, int activity,
                                                 std::size_t steps,
                                                 int repetition = 0);

}  // namespace smore
