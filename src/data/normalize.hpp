#pragma once
// Per-channel normalization fit on training windows and applied to test
// windows. The CNN baselines need standardized inputs; statistics are always
// computed on the training split only so no test information leaks (the very
// leakage Figure 1(b) of the paper warns about for k-fold CV).

#include <cstddef>
#include <vector>

#include "data/timeseries.hpp"

namespace smore {

/// Z-score normalizer: x -> (x - mean_c) / std_c per channel c.
class ChannelNormalizer {
 public:
  ChannelNormalizer() = default;

  /// Estimate per-channel mean and standard deviation over the windows at
  /// `indices` of `data`. Channels with zero variance get std = 1 so the
  /// transform stays finite. Throws std::invalid_argument when indices is
  /// empty.
  void fit(const WindowDataset& data, const std::vector<std::size_t>& indices);

  /// Fit over every window.
  void fit(const WindowDataset& data);

  /// Normalize one window in place. Throws std::logic_error when called
  /// before fit(), std::invalid_argument on channel-count mismatch.
  void apply(Window& window) const;

  /// Normalize a copy of every window in `data`.
  [[nodiscard]] WindowDataset transform(const WindowDataset& data) const;

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] const std::vector<float>& mean() const noexcept { return mean_; }
  [[nodiscard]] const std::vector<float>& stddev() const noexcept {
    return std_;
  }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace smore
