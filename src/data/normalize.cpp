#include "data/normalize.hpp"

#include <cmath>
#include <stdexcept>

namespace smore {

void ChannelNormalizer::fit(const WindowDataset& data,
                            const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    throw std::invalid_argument("ChannelNormalizer::fit: no training windows");
  }
  const std::size_t channels = data.channels();
  const std::size_t steps = data.steps();
  std::vector<double> sum(channels, 0.0);
  std::vector<double> sum_sq(channels, 0.0);
  for (const std::size_t i : indices) {
    const Window& w = data[i];
    for (std::size_t c = 0; c < channels; ++c) {
      for (const float v : w.channel(c)) {
        sum[c] += v;
        sum_sq[c] += static_cast<double>(v) * v;
      }
    }
  }
  const double n =
      static_cast<double>(indices.size()) * static_cast<double>(steps);
  mean_.resize(channels);
  std_.resize(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    const double mean = sum[c] / n;
    const double var = std::max(0.0, sum_sq[c] / n - mean * mean);
    mean_[c] = static_cast<float>(mean);
    const double sd = std::sqrt(var);
    std_[c] = sd > 1e-12 ? static_cast<float>(sd) : 1.0f;
  }
}

void ChannelNormalizer::fit(const WindowDataset& data) {
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  fit(data, all);
}

void ChannelNormalizer::apply(Window& window) const {
  if (!fitted()) {
    throw std::logic_error("ChannelNormalizer::apply before fit");
  }
  if (window.channels() != mean_.size()) {
    throw std::invalid_argument("ChannelNormalizer::apply: channel mismatch");
  }
  for (std::size_t c = 0; c < window.channels(); ++c) {
    const float m = mean_[c];
    const float inv = 1.0f / std_[c];
    for (float& v : window.channel(c)) v = (v - m) * inv;
  }
}

WindowDataset ChannelNormalizer::transform(const WindowDataset& data) const {
  WindowDataset out(data.name(), data.channels(), data.steps());
  for (std::size_t i = 0; i < data.size(); ++i) {
    Window w = data[i];
    apply(w);
    out.add(std::move(w));
  }
  return out;
}

}  // namespace smore
