#pragma once
// Continuous-recording segmentation (paper Sec 4.1.2).
//
// Wearable-sensor datasets ship as long continuous recordings per
// (subject, activity); learning operates on fixed-length windows cut from
// them, possibly overlapping (USC-HAD and PAMAP2 use 50% overlap, DSADS
// non-overlapping five-second segments). MultiChannelStream models the
// recording; segment() cuts it into Windows.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "data/timeseries.hpp"

namespace smore {

/// A continuous multi-channel recording with provenance metadata.
class MultiChannelStream {
 public:
  /// Zero-filled recording. Throws std::invalid_argument on zero extents.
  MultiChannelStream(std::size_t channels, std::size_t steps)
      : channels_(channels), steps_(steps), values_(channels * steps, 0.0f) {
    if (channels == 0 || steps == 0) {
      throw std::invalid_argument("MultiChannelStream: extents must be positive");
    }
  }

  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

  [[nodiscard]] std::span<const float> channel(std::size_t c) const noexcept {
    return {values_.data() + c * steps_, steps_};
  }
  [[nodiscard]] std::span<float> channel(std::size_t c) noexcept {
    return {values_.data() + c * steps_, steps_};
  }

  [[nodiscard]] int label() const noexcept { return label_; }
  [[nodiscard]] int subject() const noexcept { return subject_; }
  [[nodiscard]] int domain() const noexcept { return domain_; }
  void set_label(int v) noexcept { label_ = v; }
  void set_subject(int v) noexcept { subject_ = v; }
  void set_domain(int v) noexcept { domain_ = v; }

 private:
  std::size_t channels_;
  std::size_t steps_;
  std::vector<float> values_;
  int label_ = -1;
  int subject_ = -1;
  int domain_ = -1;
};

/// Windowing parameters. `overlap` is the fraction of a window shared with
/// its successor: 0.0 = non-overlapping, 0.5 = half-overlapping windows.
struct SegmentationConfig {
  std::size_t window_steps = 128;
  double overlap = 0.0;
};

/// Hop (stride) in steps implied by a segmentation config; always >= 1.
[[nodiscard]] std::size_t hop_of(const SegmentationConfig& config);

/// Number of windows segment() will cut from a recording of `stream_steps`.
[[nodiscard]] std::size_t window_count(std::size_t stream_steps,
                                       const SegmentationConfig& config);

/// Minimum recording length that yields exactly `n` windows.
[[nodiscard]] std::size_t steps_for_windows(std::size_t n,
                                            const SegmentationConfig& config);

/// Cut a recording into fixed-length windows, copying provenance metadata
/// (label/subject/domain) into each. Throws std::invalid_argument when
/// window_steps == 0 or overlap outside [0, 1).
[[nodiscard]] std::vector<Window> segment(const MultiChannelStream& stream,
                                          const SegmentationConfig& config);

}  // namespace smore
