#pragma once
// Cross-validation splits over windowed datasets (paper Sec 1 & 4.1).
//
// Two protocols matter for the paper:
//   * LODO (leave-one-domain-out): train on all domains except one, test on
//     the held-out domain — the realistic distribution-shift protocol.
//   * standard k-fold: random partition regardless of domain — inflates
//     accuracy through domain leakage (paper Figure 1b's point).
// Splits are index-based so they apply equally to raw WindowDatasets and
// encoded HvDatasets of the same ordering.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/timeseries.hpp"

namespace smore {

/// Index-based train/test partition of a dataset.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// LODO split: test = windows of `held_out_domain`, train = the rest.
/// Throws std::invalid_argument when the domain does not exist in `data`.
[[nodiscard]] Split lodo_split(const WindowDataset& data, int held_out_domain);

/// All LODO folds, one per domain id in [0, num_domains).
[[nodiscard]] std::vector<Split> lodo_folds(const WindowDataset& data);

/// Random k-fold partition (shuffled with `seed`); fold f's test set is the
/// f-th shard. Throws std::invalid_argument when k < 2 or k > data.size().
[[nodiscard]] std::vector<Split> kfold_splits(std::size_t n, int k,
                                              std::uint64_t seed);

/// Deterministic stratified subsample: keeps ~`fraction` of the windows of
/// every (domain, label) cell so the class/domain balance of Table 1 is
/// preserved at reduced scale. fraction outside (0,1] throws.
[[nodiscard]] std::vector<std::size_t> stratified_subsample(
    const WindowDataset& data, double fraction, std::uint64_t seed);

/// Materialize the selected windows into a new dataset.
[[nodiscard]] WindowDataset take(const WindowDataset& data,
                                 const std::vector<std::size_t>& indices);

}  // namespace smore
