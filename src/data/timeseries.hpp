#pragma once
// Raw multi-sensor time-series containers.
//
// A Window is one segmented sample: `channels` sensor streams of `steps`
// synchronized readings (Sec 4.1.2 of the paper describes the segmentation
// for each dataset: e.g., USC-HAD uses 1.26 s windows at 100 Hz with 50%
// overlap). A WindowDataset is the full segmented dataset, with per-window
// class label, subject id, and domain id (subject group).

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace smore {

/// One multi-sensor window: row-major [channel][timestep] matrix of signal
/// values plus its classification label and provenance (subject, domain).
class Window {
 public:
  Window() = default;

  /// Zero-filled window. Throws std::invalid_argument when either extent is 0.
  Window(std::size_t channels, std::size_t steps)
      : channels_(channels), steps_(steps), values_(channels * steps, 0.0f) {
    if (channels == 0 || steps == 0) {
      throw std::invalid_argument("Window: extents must be positive");
    }
  }

  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

  /// Signal stream of one sensor channel.
  [[nodiscard]] std::span<const float> channel(std::size_t c) const noexcept {
    return {values_.data() + c * steps_, steps_};
  }
  [[nodiscard]] std::span<float> channel(std::size_t c) noexcept {
    return {values_.data() + c * steps_, steps_};
  }

  [[nodiscard]] float at(std::size_t c, std::size_t t) const noexcept {
    return values_[c * steps_ + t];
  }
  void set(std::size_t c, std::size_t t, float v) noexcept {
    values_[c * steps_ + t] = v;
  }

  [[nodiscard]] int label() const noexcept { return label_; }
  [[nodiscard]] int subject() const noexcept { return subject_; }
  [[nodiscard]] int domain() const noexcept { return domain_; }

  void set_label(int label) noexcept { label_ = label; }
  void set_subject(int subject) noexcept { subject_ = subject; }
  void set_domain(int domain) noexcept { domain_ = domain; }

  [[nodiscard]] const std::vector<float>& values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::vector<float>& values() noexcept { return values_; }

 private:
  std::size_t channels_ = 0;
  std::size_t steps_ = 0;
  std::vector<float> values_;
  int label_ = -1;
  int subject_ = -1;
  int domain_ = -1;
};

/// A segmented multi-sensor dataset: homogeneous windows plus naming metadata.
/// Invariant: every window has the same channel count and step count.
class WindowDataset {
 public:
  WindowDataset() = default;

  /// `name` is a display string (e.g. "USC-HAD (synthetic)").
  WindowDataset(std::string name, std::size_t channels, std::size_t steps)
      : name_(std::move(name)), channels_(channels), steps_(steps) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t size() const noexcept { return windows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return windows_.empty(); }

  /// Append a window. Throws std::invalid_argument when its shape differs
  /// from the dataset shape.
  void add(Window w) {
    if (w.channels() != channels_ || w.steps() != steps_) {
      throw std::invalid_argument("WindowDataset::add: shape mismatch");
    }
    windows_.push_back(std::move(w));
  }

  [[nodiscard]] const Window& operator[](std::size_t i) const noexcept {
    return windows_[i];
  }
  [[nodiscard]] Window& operator[](std::size_t i) noexcept {
    return windows_[i];
  }

  [[nodiscard]] const std::vector<Window>& windows() const noexcept {
    return windows_;
  }

  /// Dense 0-based class count: max(label)+1.
  [[nodiscard]] int num_classes() const noexcept {
    int m = -1;
    for (const auto& w : windows_) m = w.label() > m ? w.label() : m;
    return m + 1;
  }

  /// Dense 0-based domain count: max(domain)+1.
  [[nodiscard]] int num_domains() const noexcept {
    int m = -1;
    for (const auto& w : windows_) m = w.domain() > m ? w.domain() : m;
    return m + 1;
  }

  /// Count of windows whose domain id equals `domain`.
  [[nodiscard]] std::size_t domain_size(int domain) const noexcept {
    std::size_t n = 0;
    for (const auto& w : windows_) n += (w.domain() == domain) ? 1 : 0;
    return n;
  }

 private:
  std::string name_;
  std::size_t channels_ = 0;
  std::size_t steps_ = 0;
  std::vector<Window> windows_;
};

}  // namespace smore
