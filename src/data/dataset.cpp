#include "data/dataset.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace smore {

Split lodo_split(const WindowDataset& data, int held_out_domain) {
  Split split;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i].domain() == held_out_domain) {
      split.test.push_back(i);
    } else {
      split.train.push_back(i);
    }
  }
  if (split.test.empty()) {
    throw std::invalid_argument("lodo_split: domain " +
                                std::to_string(held_out_domain) +
                                " has no windows");
  }
  return split;
}

std::vector<Split> lodo_folds(const WindowDataset& data) {
  const int domains = data.num_domains();
  std::vector<Split> folds;
  folds.reserve(static_cast<std::size_t>(domains));
  for (int d = 0; d < domains; ++d) folds.push_back(lodo_split(data, d));
  return folds;
}

std::vector<Split> kfold_splits(std::size_t n, int k, std::uint64_t seed) {
  if (k < 2) {
    throw std::invalid_argument("kfold_splits: k must be >= 2");
  }
  if (static_cast<std::size_t>(k) > n) {
    throw std::invalid_argument("kfold_splits: k exceeds dataset size");
  }
  Rng rng(seed);
  std::vector<std::size_t> order = rng.permutation(n);

  std::vector<Split> folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t fold = i % static_cast<std::size_t>(k);
    for (std::size_t f = 0; f < folds.size(); ++f) {
      if (f == fold) {
        folds[f].test.push_back(order[i]);
      } else {
        folds[f].train.push_back(order[i]);
      }
    }
  }
  for (auto& f : folds) {
    std::sort(f.train.begin(), f.train.end());
    std::sort(f.test.begin(), f.test.end());
  }
  return folds;
}

std::vector<std::size_t> stratified_subsample(const WindowDataset& data,
                                              double fraction,
                                              std::uint64_t seed) {
  if (fraction <= 0.0 || fraction > 1.0) {
    throw std::invalid_argument("stratified_subsample: fraction not in (0,1]");
  }
  if (fraction == 1.0) {
    std::vector<std::size_t> all(data.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  }
  // Group indices by (domain, label) cell, then keep a rounded share of each.
  std::map<std::pair<int, int>, std::vector<std::size_t>> cells;
  for (std::size_t i = 0; i < data.size(); ++i) {
    cells[{data[i].domain(), data[i].label()}].push_back(i);
  }
  Rng rng(seed);
  std::vector<std::size_t> keep;
  for (auto& [cell, indices] : cells) {
    rng.shuffle(indices);
    const auto quota = static_cast<std::size_t>(std::max(
        1.0, std::floor(fraction * static_cast<double>(indices.size()) + 0.5)));
    for (std::size_t i = 0; i < std::min(quota, indices.size()); ++i) {
      keep.push_back(indices[i]);
    }
  }
  std::sort(keep.begin(), keep.end());
  return keep;
}

WindowDataset take(const WindowDataset& data,
                   const std::vector<std::size_t>& indices) {
  WindowDataset out(data.name(), data.channels(), data.steps());
  for (const std::size_t i : indices) {
    if (i >= data.size()) {
      throw std::out_of_range("take: index out of range");
    }
    out.add(data[i]);
  }
  return out;
}

}  // namespace smore
