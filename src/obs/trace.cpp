#include "obs/trace.hpp"

#include <algorithm>

namespace smore::obs {

Tracer::Tracer(TracerConfig config)
    : config_(config),
      sampled_(config.ring_capacity),
      slow_(config.slow_ring_capacity) {}

void Tracer::record(TraceSpan span) noexcept {
  const std::uint64_t seq = observed_.fetch_add(1, std::memory_order_relaxed);
  span.id = seq;
  const double total_seconds = static_cast<double>(span.total_ns) * 1e-9;
  span.slow = total_seconds >= config_.slow_threshold_seconds ? 1 : 0;
  span.sampled =
      config_.sample_every > 0 && seq % config_.sample_every == 0 ? 1 : 0;
  if (span.slow) {
    // Slow spans go to the protected ring regardless of sampling, so fast
    // traffic wrapping the sampled ring never erases the tail.
    if (!slow_.record(span)) dropped_.fetch_add(1, std::memory_order_relaxed);
  } else if (span.sampled) {
    if (!sampled_.record(span)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<TraceSpan> Tracer::recent() const {
  std::vector<TraceSpan> out = sampled_.snapshot();
  const std::vector<TraceSpan> slow = slow_.snapshot();
  out.insert(out.end(), slow.begin(), slow.end());
  std::sort(out.begin(), out.end(),
            [](const TraceSpan& a, const TraceSpan& b) { return a.id < b.id; });
  return out;
}

std::vector<TraceSpan> Tracer::slowest(std::size_t n) const {
  std::vector<TraceSpan> out = recent();
  std::sort(out.begin(), out.end(), [](const TraceSpan& a, const TraceSpan& b) {
    return a.total_ns != b.total_ns ? a.total_ns > b.total_ns : a.id < b.id;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace smore::obs
