#pragma once
// Exporters: Prometheus text exposition and JSON snapshot (DESIGN.md §14).
//
// Both read the same pull-time views — MetricsRegistry::snapshot(), the
// tracer's slowest-N report, the event log's recent window — so every
// surface (fleet_top, BENCH_*.json embeds, a scraped file) shows identical
// numbers. There is no HTTP server in this process; the transport is a file
// written atomically (tmp + rename) that fleet_top tails and any scraper's
// textfile collector can pick up.

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace smore::obs {

/// Prometheus metric-name sanitation: [a-zA-Z_:][a-zA-Z0-9_:]*, every other
/// byte becomes '_' (leading digit gets a '_' prefix).
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Prometheus label-value escaping: backslash, double-quote, newline.
[[nodiscard]] std::string escape_label_value(std::string_view value);

/// Full text exposition: # HELP/# TYPE per family, histogram series as
/// cumulative `_bucket{le=...}` (non-empty boundaries + "+Inf"), `_sum`,
/// `_count`.
[[nodiscard]] std::string to_prometheus(const Telemetry& telemetry);

/// One JSON document: {"metrics": [...], "slowest_requests": [...],
/// "events": [...]} — the fleet_top wire format.
[[nodiscard]] JsonValue snapshot_json(const Telemetry& telemetry,
                                      std::size_t slowest_n = 16,
                                      std::size_t events_n = 64);

/// snapshot_json() pretty-printed.
[[nodiscard]] std::string snapshot_json_text(const Telemetry& telemetry,
                                             std::size_t slowest_n = 16,
                                             std::size_t events_n = 64);

/// Write `content` to `path` via same-directory tmp file + rename, so a
/// concurrent reader sees either the old or the new document, never a torn
/// one. Returns false on any I/O failure.
bool write_file_atomic(const std::string& path, const std::string& content);

}  // namespace smore::obs
