#pragma once
// EventLog: bounded structured ring of discrete fleet occurrences
// (DESIGN.md §14). Where metrics answer "how many / how fast", events answer
// "what happened, to whom, and why": snapshot publishes, registry loads and
// evictions, lifecycle merges/enrolls/evictions, and every shed decision
// with its reason. The serving invariant is one event per occurrence — a
// shed request, an evicted tenant, a merged pseudo-domain each emit exactly
// once, at the layer that made the decision.
//
// Events are flat PODs (fixed char fields, no heap) in a PodRing, so
// emission is lock-free and bounded; a flood of sheds can wrap the ring but
// never block a worker or grow memory.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "obs/ring.hpp"

namespace smore::obs {

enum class EventType : std::uint32_t {
  kSnapshotPublish = 0,  ///< a new model generation went live
  kShed,                 ///< a request was refused (reason = shed reason)
  kRegistryLoad,         ///< tenant artifact loaded (value = bytes)
  kRegistryLoadFailure,  ///< tenant artifact failed to load
  kRegistryEvict,        ///< tenant dropped from residency (value = bytes)
  kLifecycleEnroll,      ///< new pseudo-domain enrolled (value = domain id)
  kLifecycleMerge,       ///< cluster merged into a domain (value = domain id)
  kLifecycleEvict,       ///< domain evicted by the cap (value = domain id)
  kAdaptationShed,       ///< an adaptation round was dropped (value = samples)
};

[[nodiscard]] const char* to_string(EventType t) noexcept;

struct Event {
  std::uint64_t id = 0;    ///< monotone per log
  std::uint64_t t_ns = 0;  ///< since EventLog construction (steady clock)
  EventType type = EventType::kSnapshotPublish;
  std::uint32_t pad_ = 0;
  std::int64_t value = 0;  ///< type-specific payload (bytes, version, id)
  char scope[24] = {};     ///< tenant / plane the event concerns
  char reason[48] = {};
};

class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  /// Lock-free; truncates scope/reason to the fixed fields.
  void emit(EventType type, std::string_view scope, std::string_view reason,
            std::int64_t value = 0) noexcept;

  /// Total events emitted (monotone, independent of ring wrap).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return ids_.load(std::memory_order_relaxed);
  }

  /// Most recent `n` resident events, id ascending.
  [[nodiscard]] std::vector<Event> recent(std::size_t n) const;

 private:
  PodRing<Event> ring_;
  std::atomic<std::uint64_t> ids_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smore::obs
