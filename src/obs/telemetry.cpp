#include "obs/telemetry.hpp"

namespace smore::obs {

Telemetry::Telemetry(TelemetryConfig config)
    : config_(config),
      tracer_(config.trace),
      events_(config.event_capacity) {}

}  // namespace smore::obs
