#pragma once
// MetricsRegistry: process-wide named counters, gauges, and histograms with
// lock-free hot-path updates and pull-time merge (DESIGN.md §14).
//
// The serving stack previously kept a scatter of ad-hoc atomics and mutexed
// per-worker LatencyHistograms, each with its own snapshot logic. This layer
// gives every subsystem one vocabulary:
//
//   Counter    monotone uint64, relaxed fetch_add — the only write a request
//              ever pays for a count.
//   Gauge      last-value double (set/add), plus pull-time callback gauges
//              for values owned elsewhere (resident bytes, live domains).
//   Histogram  the log-bucket layout of util/latency.hpp re-expressed as
//              striped atomic buckets: record() is a relaxed fetch_add into
//              the recording thread's stripe, snapshot() merges stripes into
//              a plain LatencyHistogram. This is the torn-read fix — the old
//              pattern mutated a plain histogram while the stats path copied
//              it; here every word crossing threads is atomic.
//
// Identity: a metric is (name, sorted label set). Registration get-or-creates
// under a mutex and returns a handle that stays valid for the registry's
// lifetime; the hot path never touches the map again. Label values carry the
// fleet dimensions (tenant, shard, backend, kernel tier).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/latency.hpp"
#include "util/mutex.hpp"

namespace smore::obs {

/// Sorted-at-registration label pairs; part of a metric's identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter. value() is exact at quiesce and never torn.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value gauge (doubles; lock-free on every 64-bit target we build for).
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Concurrent log-bucket histogram: LatencyHistogram's bucket layout behind
/// striped atomics. One stripe suffices for per-tenant series; plane-level
/// histograms stripe by the worker count to keep hot buckets from
/// ping-ponging between cores. count is derived from the buckets at snapshot
/// time, so a snapshot's count always equals its bucket sum even mid-record.
class Histogram {
 public:
  explicit Histogram(std::size_t stripes = 1);

  void record(double seconds) noexcept;

  /// Merge all stripes into a plain histogram (the pull-time view).
  [[nodiscard]] LatencyHistogram snapshot() const;

  [[nodiscard]] std::size_t stripes() const noexcept {
    return stripes_.size();
  }

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, LatencyHistogram::kBuckets>
        counts{};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};  // valid only when the stripe has records
    std::atomic<double> max{0.0};
    std::atomic<std::uint64_t> has_records{0};
  };

  Stripe& stripe_of_thread() noexcept;

  std::vector<Stripe> stripes_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType t) noexcept;

/// Pull-time view of one metric series (what exporters consume).
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0.0;        ///< counter / gauge
  LatencyHistogram hist;     ///< histogram only
};

/// Named-metric owner. Handles are stable raw pointers owned by the
/// registry; the mutex guards only registration and snapshot.
class MetricsRegistry {
 public:
  /// Get-or-create. Throws std::invalid_argument when the same
  /// (name, labels) key was registered as a different type.
  Counter* counter(const std::string& name, Labels labels = {});
  Gauge* gauge(const std::string& name, Labels labels = {});
  Histogram* histogram(const std::string& name, Labels labels = {},
                       std::size_t stripes = 1);

  /// A metric whose value is computed at snapshot time — for quantities owned
  /// by another subsystem (cache residency, hit counts). Re-registering the
  /// same key replaces the callback. `type` may be kCounter when the callback
  /// reads a monotone count; kHistogram is not a callback type. The owner of
  /// the callback's captures MUST remove() the series before dying.
  void gauge_callback(const std::string& name, Labels labels,
                      std::function<double()> fn,
                      MetricType type = MetricType::kGauge);

  /// Drop a series. Mandatory for callback metrics whose captures are dying;
  /// handle-backed series normally live as long as the registry (their raw
  /// handles dangle after removal).
  void remove(const std::string& name, Labels labels);

  /// Pull-time merge of everything registered, sorted by (name, labels).
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

 private:
  struct Entry {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
    std::function<double()> callback;  // callback gauges only
  };
  using Key = std::pair<std::string, Labels>;

  mutable Mutex m_;
  std::map<Key, Entry> entries_ SMORE_GUARDED_BY(m_);
};

}  // namespace smore::obs
