#pragma once
// PodRing: bounded lock-free ring of trivially-copyable records with seqlock
// slots (DESIGN.md §14). The telemetry substrate for trace spans and events.
//
// Writers never block and never allocate: a slot is claimed with one
// fetch_add on the ticket counter, the payload is copied word-wise through
// relaxed atomic stores, and a per-slot sequence number (odd = mid-write)
// lets readers detect torn records and skip them. Readers are rare (stats
// pulls, exporters) and pay the full scan; the hot path pays ~sizeof(T)/8
// relaxed stores.
//
// Why word-wise atomics instead of the classic memcpy seqlock: the memcpy
// variant is a benign-but-real data race (the reader touches bytes the
// writer is mutating and discards them on sequence mismatch), which TSan
// rightly flags. Routing every payload word through std::atomic keeps the
// protocol identical and the ring TSan-clean, at no measurable cost for the
// <100-word records stored here.
//
// Loss model, by design: when the ring laps a slot whose writer has not
// finished (extreme contention), the late record is dropped and counted by
// the caller; a snapshot taken mid-write skips the torn slot. Telemetry
// must never stall serving.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace smore::obs {

template <typename T>
class PodRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodRing payloads are copied word-wise");
  static constexpr std::size_t kWords = (sizeof(T) + 7) / 8;

 public:
  explicit PodRing(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Records attempted (monotone; records kept at any instant <= capacity).
  [[nodiscard]] std::uint64_t attempted() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

  /// Copy `item` into the next slot. Returns false (record dropped) only
  /// when the ring wrapped onto a slot another writer is still filling.
  bool record(const T& item) noexcept {
    const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket % slots_.size()];
    std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if (seq & 1) return false;  // lapped a mid-write slot: drop, don't spin
    if (!slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      return false;
    }
    std::uint64_t words[kWords] = {};
    std::memcpy(words, &item, sizeof(T));
    for (std::size_t w = 0; w < kWords; ++w) {
      slot.words[w].store(words[w], std::memory_order_relaxed);
    }
    slot.seq.store(seq + 2, std::memory_order_release);
    return true;
  }

  /// Every completely-written record currently resident, slot order (callers
  /// sort by an id field inside T when order matters). Mid-write slots are
  /// skipped.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(slots_.size());
    std::uint64_t words[kWords];
    for (const Slot& slot : slots_) {
      const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before == 0 || (before & 1)) continue;  // empty or mid-write
      for (std::size_t w = 0; w < kWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      T item;
      std::memcpy(&item, words, sizeof(T));
      out.push_back(item);
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // even = stable, odd = being written
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace smore::obs
