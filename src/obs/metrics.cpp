#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace smore::obs {

Histogram::Histogram(std::size_t stripes)
    : stripes_(stripes > 0 ? stripes : 1) {}

Histogram::Stripe& Histogram::stripe_of_thread() noexcept {
  if (stripes_.size() == 1) return stripes_[0];
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return stripes_[h % stripes_.size()];
}

void Histogram::record(double seconds) noexcept {
  Stripe& s = stripe_of_thread();
  s.counts[LatencyHistogram::bucket_of(seconds)].fetch_add(
      1, std::memory_order_relaxed);
  const double clamped = seconds > 0.0 ? seconds : 0.0;
  double sum = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(sum, sum + clamped,
                                      std::memory_order_relaxed)) {
  }
  // First record of a stripe seeds min/max; later records CAS toward the
  // extremes. has_records is released last so a reader that sees it set also
  // sees a seeded min/max (acquire pairs in snapshot()).
  if (s.has_records.load(std::memory_order_relaxed) == 0) {
    s.min.store(seconds, std::memory_order_relaxed);
    s.max.store(seconds, std::memory_order_relaxed);
    s.has_records.store(1, std::memory_order_release);
  } else {
    double mn = s.min.load(std::memory_order_relaxed);
    while (seconds < mn && !s.min.compare_exchange_weak(
                               mn, seconds, std::memory_order_relaxed)) {
    }
    double mx = s.max.load(std::memory_order_relaxed);
    while (seconds > mx && !s.max.compare_exchange_weak(
                               mx, seconds, std::memory_order_relaxed)) {
    }
  }
}

LatencyHistogram Histogram::snapshot() const {
  std::array<std::uint64_t, LatencyHistogram::kBuckets> counts{};
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  bool any = false;
  for (const Stripe& s : stripes_) {
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      counts[b] += s.counts[b].load(std::memory_order_relaxed);
    }
    sum += s.sum.load(std::memory_order_relaxed);
    if (s.has_records.load(std::memory_order_acquire) != 0) {
      const double mn = s.min.load(std::memory_order_relaxed);
      const double mx = s.max.load(std::memory_order_relaxed);
      if (!any || mn < min) min = mn;
      if (!any || mx > max) max = mx;
      any = true;
    }
  }
  return LatencyHistogram::from_parts(counts, sum, min, max);
}

const char* to_string(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

namespace {

obs::Labels sorted(obs::Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

[[noreturn]] void type_clash(const std::string& name, MetricType want,
                             MetricType have) {
  throw std::invalid_argument("MetricsRegistry: metric '" + name +
                              "' already registered as " +
                              std::string(to_string(have)) + ", requested " +
                              to_string(want));
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name, Labels labels) {
  const MutexLock lock(m_);
  Entry& e = entries_[{name, sorted(std::move(labels))}];
  if (e.counter) return e.counter.get();
  if (e.gauge || e.hist || e.callback) {
    type_clash(name, MetricType::kCounter, e.type);
  }
  e.type = MetricType::kCounter;
  e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, Labels labels) {
  const MutexLock lock(m_);
  Entry& e = entries_[{name, sorted(std::move(labels))}];
  if (e.gauge) return e.gauge.get();
  if (e.counter || e.hist || e.callback) {
    type_clash(name, MetricType::kGauge, e.type);
  }
  e.type = MetricType::kGauge;
  e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name, Labels labels,
                                      std::size_t stripes) {
  const MutexLock lock(m_);
  Entry& e = entries_[{name, sorted(std::move(labels))}];
  if (e.hist) return e.hist.get();
  if (e.counter || e.gauge || e.callback) {
    type_clash(name, MetricType::kHistogram, e.type);
  }
  e.type = MetricType::kHistogram;
  e.hist = std::make_unique<Histogram>(stripes);
  return e.hist.get();
}

void MetricsRegistry::gauge_callback(const std::string& name, Labels labels,
                                     std::function<double()> fn,
                                     MetricType type) {
  const MutexLock lock(m_);
  Entry& e = entries_[{name, sorted(std::move(labels))}];
  if (e.counter || e.gauge || e.hist) {
    type_clash(name, type, e.type);
  }
  e.type = type == MetricType::kHistogram ? MetricType::kGauge : type;
  e.callback = std::move(fn);
}

void MetricsRegistry::remove(const std::string& name, Labels labels) {
  const MutexLock lock(m_);
  entries_.erase({name, sorted(std::move(labels))});
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  const MutexLock lock(m_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.type = e.type;
    if (e.counter) {
      s.value = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      s.value = e.gauge->value();
    } else if (e.callback) {
      s.value = e.callback();
    } else if (e.hist) {
      s.hist = e.hist->snapshot();
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already (name, labels)-sorted
}

}  // namespace smore::obs
