#pragma once
// Telemetry: the process hub bundling one MetricsRegistry, one Tracer, and
// one EventLog behind a shared_ptr (DESIGN.md §14).
//
// Every serving-layer config (ServerConfig, MultiTenantConfig,
// RegistryConfig) carries a `std::shared_ptr<obs::Telemetry>`; passing the
// SAME hub to the router and its registry gives one unified export surface
// (fleet_top, Prometheus). A null pointer means "private hub": the component
// builds its own, so stats views always work and unit tests never collide on
// metric names.
//
// Cost model: counters are always on — they back the public stats structs
// and cost one relaxed fetch_add. The `histograms` / `traces` / `events`
// switches gate everything else, and bench_telemetry_overhead measures
// all-on vs all-off (compiled in, switched off) against the ≤2% budget.

#include <memory>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace smore::obs {

struct TelemetryConfig {
  bool histograms = true;  ///< latency/queue/service histogram recording
  bool traces = true;      ///< tail-sampled span detail
  bool events = true;      ///< discrete-occurrence log
  TracerConfig trace;
  std::size_t event_capacity = 1024;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {});

  static std::shared_ptr<Telemetry> make(TelemetryConfig config = {}) {
    return std::make_shared<Telemetry>(config);
  }

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] Tracer& tracer() noexcept { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const noexcept { return tracer_; }
  [[nodiscard]] EventLog& events() noexcept { return events_; }
  [[nodiscard]] const EventLog& events() const noexcept { return events_; }

  [[nodiscard]] bool histograms_on() const noexcept {
    return config_.histograms;
  }
  [[nodiscard]] bool traces_on() const noexcept { return config_.traces; }
  [[nodiscard]] bool events_on() const noexcept { return config_.events; }

  /// Emit gated on the events switch — the call sites' one-liner.
  void emit(EventType type, std::string_view scope, std::string_view reason,
            std::int64_t value = 0) noexcept {
    if (config_.events) events_.emit(type, scope, reason, value);
  }

 private:
  TelemetryConfig config_;
  MetricsRegistry metrics_;
  Tracer tracer_;
  EventLog events_;
};

}  // namespace smore::obs
