#pragma once
// Per-request trace spans with always-on tail sampling (DESIGN.md §14).
//
// Every served request is timed at four boundaries — admission → batch start
// (queue wait) → encode done → predict done → fulfill — and those numbers
// feed the latency histograms unconditionally. Full span detail is KEPT for
// (a) every 1-in-sample_every request and (b) every request slower than
// slow_threshold_seconds. Sampled spans and slow spans live in separate
// bounded rings so a flood of fast traffic wrapping the sampled ring cannot
// evict the slow tail — the whole point of tail sampling is that the worst
// requests survive.
//
// The spans of one request are cut from the same four timestamps, so
// queue+encode+predict+fulfill == total exactly (tests assert ≥99% to allow
// ns rounding). A span is a flat POD (fixed-size tenant field, no heap) so
// the rings stay lock-free.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "obs/ring.hpp"

namespace smore::obs {

/// One fully-detailed request record. Times are nanoseconds; total_ns is
/// end-to-end (submit → fulfill) and equals the four phase spans summed.
struct TraceSpan {
  std::uint64_t id = 0;                ///< monotone per tracer
  std::uint64_t snapshot_version = 0;  ///< model generation that served it
  std::uint64_t queue_ns = 0;          ///< submit → batch start
  std::uint64_t encode_ns = 0;         ///< batch start → encode done (0 when
                                       ///< the plane takes pre-encoded HVs)
  std::uint64_t predict_ns = 0;        ///< encode done → predict done
  std::uint64_t fulfill_ns = 0;        ///< predict done → accounting/fulfill
  std::uint64_t total_ns = 0;
  std::uint32_t shard = 0;
  std::uint32_t batch_rows = 0;  ///< size of the batch it rode in
  std::int32_t label = -1;       ///< predicted class
  std::uint8_t ood = 0;
  std::uint8_t slow = 0;  ///< kept because it crossed the slow threshold
  std::uint8_t sampled = 0;
  std::uint8_t pad_ = 0;
  char tenant[24] = {};  ///< "" on the single-tenant plane

  void set_tenant(std::string_view t) noexcept {
    const std::size_t n = t.size() < sizeof(tenant) - 1
                              ? t.size()
                              : sizeof(tenant) - 1;
    std::memcpy(tenant, t.data(), n);
    tenant[n] = '\0';
  }
};

struct TracerConfig {
  std::size_t ring_capacity = 1024;      ///< sampled spans kept
  std::size_t slow_ring_capacity = 256;  ///< slow spans kept
  std::uint32_t sample_every = 64;       ///< 1-in-N full-detail sampling
  double slow_threshold_seconds = 0.025;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config);

  [[nodiscard]] const TracerConfig& config() const noexcept { return config_; }

  /// Decide whether this request's detail is kept, and record it if so.
  /// `span.total_ns` must be filled; id/slow/sampled are assigned here.
  /// Lock-free; one fetch_add when the span is not kept.
  void record(TraceSpan span) noexcept;

  /// Requests seen (kept or not) — "every request timestamps".
  [[nodiscard]] std::uint64_t observed() const noexcept {
    return observed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t kept_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The slowest-N recent requests across both rings, total_ns descending.
  [[nodiscard]] std::vector<TraceSpan> slowest(std::size_t n) const;

  /// Everything currently resident (sampled + slow), id ascending.
  [[nodiscard]] std::vector<TraceSpan> recent() const;

 private:
  TracerConfig config_;
  PodRing<TraceSpan> sampled_;
  PodRing<TraceSpan> slow_;
  std::atomic<std::uint64_t> observed_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace smore::obs
