#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace smore::obs {

namespace {
const JsonValue kNull{};
}

const JsonValue& JsonValue::at(std::size_t i) const noexcept {
  if (type_ != Type::kArray || i >= items_.size()) return kNull;
  return items_[i];
}

const JsonValue& JsonValue::at(std::string_view key) const noexcept {
  if (type_ == Type::kObject) {
    for (const auto& [k, v] : members_) {
      if (k == key) return v;
    }
  }
  return kNull;
}

bool JsonValue::has(std::string_view key) const noexcept {
  return type_ == Type::kObject && &at(key) != &kNull;
}

std::string JsonValue::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

bool is_digit(char c) noexcept { return c >= '0' && c <= '9'; }

void format_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    out += "null";
    return;
  }
  // Integers (the common case: counters, ns timings) print exactly.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out += buf;
}

void dump_rec(const JsonValue& v, std::string& out, int indent, int depth) {
  const auto pad = [&](int d) {
    if (indent > 0) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent) * d, ' ');
    }
  };
  switch (v.type()) {
    case JsonValue::Type::kNull: out += "null"; break;
    case JsonValue::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Type::kNumber: format_number(out, v.as_double()); break;
    case JsonValue::Type::kString:
      out += '"';
      out += JsonValue::escape(v.as_string());
      out += '"';
      break;
    case JsonValue::Type::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        dump_rec(item, out, indent, depth + 1);
      }
      if (!first) pad(depth);
      out += ']';
      break;
    }
    case JsonValue::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        out += '"';
        out += JsonValue::escape(key);
        out += "\":";
        if (indent > 0) out += ' ';
        dump_rec(member, out, indent, depth + 1);
      }
      if (!first) pad(depth);
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    std::optional<JsonValue> v = value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after document");
        v.reset();
      }
    }
    if (!v && error) *error = error_ + " at offset " + std::to_string(pos_);
    return v;
  }

 private:
  void fail(const char* what) {
    if (error_.empty()) error_ = what;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> value() {
    if (depth_ > 128) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == 'n') {
      if (literal("null")) return JsonValue{};
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 't') {
      if (literal("true")) return JsonValue{true};
      fail("bad literal");
      return std::nullopt;
    }
    if (c == 'f') {
      if (literal("false")) return JsonValue{false};
      fail("bad literal");
      return std::nullopt;
    }
    if (c == '"') return string_value();
    if (c == '[') return array_value();
    if (c == '{') return object_value();
    if (c == '-' || (c >= '0' && c <= '9')) return number_value();
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<JsonValue> number_value() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
      fail("bad number");
      return std::nullopt;
    }
    while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("bad number");
        return std::nullopt;
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !is_digit(text_[pos_])) {
        fail("bad number");
        return std::nullopt;
      }
      while (pos_ < text_.size() && is_digit(text_[pos_])) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    return JsonValue{std::strtod(token.c_str(), nullptr)};
  }

  std::optional<std::string> string_body() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("bad \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for anything this process emits; they decode as two 3-byte
          // sequences, which round-trips).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape"); return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> string_value() {
    std::optional<std::string> s = string_body();
    if (!s) return std::nullopt;
    return JsonValue{std::move(*s)};
  }

  std::optional<JsonValue> array_value() {
    ++pos_;  // '['
    ++depth_;
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return out;
    }
    while (true) {
      std::optional<JsonValue> item = value();
      if (!item) return std::nullopt;
      out.push_back(std::move(*item));
      if (consume(',')) continue;
      if (consume(']')) {
        --depth_;
        return out;
      }
      fail("expected ',' or ']'");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> object_value() {
    ++pos_;  // '{'
    ++depth_;
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return out;
    }
    while (true) {
      skip_ws();
      std::optional<std::string> key = string_body();
      if (!key) return std::nullopt;
      if (!consume(':')) {
        fail("expected ':'");
        return std::nullopt;
      }
      std::optional<JsonValue> member = value();
      if (!member) return std::nullopt;
      out.set(std::move(*key), std::move(*member));
      if (consume(',')) continue;
      if (consume('}')) {
        --depth_;
        return out;
      }
      fail("expected ',' or '}'");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_rec(*this, out, indent, 0);
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

}  // namespace smore::obs
