#pragma once
// Minimal JSON DOM: build, dump, parse (DESIGN.md §14).
//
// The exporters need to EMIT well-formed JSON and fleet_top needs to READ
// it back, with zero external dependencies. This is a small strict subset
// implementation: UTF-8 passthrough strings with standard escapes, doubles
// for all numbers (counters stay exact below 2^53 — far beyond any counter
// this process can reach), objects preserving insertion order. Building the
// snapshot through the DOM instead of string concatenation makes
// malformed-output bugs unrepresentable, and gives the "JSON snapshot
// round-trips through a parse check" test real teeth.

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smore::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}          // NOLINT
  JsonValue(double n) : type_(Type::kNumber), num_(n) {}       // NOLINT
  JsonValue(std::int64_t n)                                    // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(std::uint64_t n)                                   // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(int n) : type_(Type::kNumber), num_(n) {}          // NOLINT
  JsonValue(std::string s)                                     // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT

  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return type_ == Type::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return num_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

  [[nodiscard]] std::size_t size() const noexcept {
    return type_ == Type::kArray    ? items_.size()
           : type_ == Type::kObject ? members_.size()
                                    : 0;
  }

  /// Array element (empty static null when out of range / wrong type).
  [[nodiscard]] const JsonValue& at(std::size_t i) const noexcept;
  /// Object member (empty static null when absent / wrong type).
  [[nodiscard]] const JsonValue& at(std::string_view key) const noexcept;
  [[nodiscard]] bool has(std::string_view key) const noexcept;

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept {
    return items_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const noexcept {
    return members_;
  }

  void push_back(JsonValue v) {
    type_ = Type::kArray;
    items_.push_back(std::move(v));
  }
  void set(std::string key, JsonValue v) {
    type_ = Type::kObject;
    members_.emplace_back(std::move(key), std::move(v));
  }

  /// Serialize. indent=0 → compact one-line; >0 → pretty-printed.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete document; nullopt (+error message) on any
  /// syntax violation or trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  /// JSON string escaping for `s` (without surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace smore::obs
