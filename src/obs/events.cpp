#include "obs/events.hpp"

#include <algorithm>

namespace smore::obs {

const char* to_string(EventType t) noexcept {
  switch (t) {
    case EventType::kSnapshotPublish: return "snapshot-publish";
    case EventType::kShed: return "shed";
    case EventType::kRegistryLoad: return "registry-load";
    case EventType::kRegistryLoadFailure: return "registry-load-failure";
    case EventType::kRegistryEvict: return "registry-evict";
    case EventType::kLifecycleEnroll: return "lifecycle-enroll";
    case EventType::kLifecycleMerge: return "lifecycle-merge";
    case EventType::kLifecycleEvict: return "lifecycle-evict";
    case EventType::kAdaptationShed: return "adaptation-shed";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : ring_(capacity), start_(std::chrono::steady_clock::now()) {}

namespace {

void copy_field(char* dst, std::size_t cap, std::string_view src) noexcept {
  const std::size_t n = src.size() < cap - 1 ? src.size() : cap - 1;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

void EventLog::emit(EventType type, std::string_view scope,
                    std::string_view reason, std::int64_t value) noexcept {
  Event e;
  e.id = ids_.fetch_add(1, std::memory_order_relaxed);
  e.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  e.type = type;
  e.value = value;
  copy_field(e.scope, sizeof(e.scope), scope);
  copy_field(e.reason, sizeof(e.reason), reason);
  ring_.record(e);
}

std::vector<Event> EventLog::recent(std::size_t n) const {
  std::vector<Event> out = ring_.snapshot();
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.id < b.id; });
  if (out.size() > n) out.erase(out.begin(), out.end() - n);
  return out;
}

}  // namespace smore::obs
