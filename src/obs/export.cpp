#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

namespace smore::obs {

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (i == 0 && digit) out += '_';  // leading digit gets a '_' prefix
    out += (alpha || digit) ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 4);
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

namespace {

std::string format_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string render_labels(const Labels& labels, const char* extra_key,
                          const std::string& extra_value) {
  std::string out;
  bool first = true;
  for (const auto& [k, v] : labels) {
    out += first ? '{' : ',';
    first = false;
    out += sanitize_metric_name(k);
    out += "=\"";
    out += escape_label_value(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    out += first ? '{' : ',';
    first = false;
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  if (!first) out += '}';
  return out;
}

}  // namespace

std::string to_prometheus(const Telemetry& telemetry) {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : telemetry.metrics().snapshot()) {
    const std::string name = sanitize_metric_name(s.name);
    if (name != last_family) {
      out += "# TYPE " + name + ' ' + to_string(s.type) + '\n';
      last_family = name;
    }
    if (s.type == MetricType::kHistogram) {
      // Cumulative buckets at the non-empty boundaries (a valid exposition
      // need not list every le; 240 mostly-zero buckets per series would
      // drown the scrape).
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::uint64_t n = s.hist.bucket_count(b);
        if (n == 0) continue;
        cum += n;
        out += name + "_bucket" +
               render_labels(s.labels, "le",
                             format_double(LatencyHistogram::bucket_upper(b))) +
               ' ' + std::to_string(cum) + '\n';
      }
      out += name + "_bucket" + render_labels(s.labels, "le", "+Inf") + ' ' +
             std::to_string(s.hist.count()) + '\n';
      out += name + "_sum" + render_labels(s.labels, nullptr, "") + ' ' +
             format_double(s.hist.sum_seconds()) + '\n';
      out += name + "_count" + render_labels(s.labels, nullptr, "") + ' ' +
             std::to_string(s.hist.count()) + '\n';
    } else {
      out += name + render_labels(s.labels, nullptr, "") + ' ' +
             format_double(s.value) + '\n';
    }
  }
  return out;
}

JsonValue snapshot_json(const Telemetry& telemetry, std::size_t slowest_n,
                        std::size_t events_n) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "smore.telemetry.v1");
  doc.set("observed_requests", telemetry.tracer().observed());
  doc.set("events_emitted", telemetry.events().emitted());

  JsonValue metrics = JsonValue::array();
  for (const MetricSample& s : telemetry.metrics().snapshot()) {
    JsonValue m = JsonValue::object();
    m.set("name", s.name);
    m.set("type", to_string(s.type));
    JsonValue labels = JsonValue::object();
    for (const auto& [k, v] : s.labels) labels.set(k, v);
    m.set("labels", std::move(labels));
    if (s.type == MetricType::kHistogram) {
      m.set("count", s.hist.count());
      m.set("sum", s.hist.sum_seconds());
      m.set("mean", s.hist.mean_seconds());
      m.set("p50", s.hist.p50());
      m.set("p95", s.hist.p95());
      m.set("p99", s.hist.p99());
      m.set("max", s.hist.max_seconds());
      JsonValue buckets = JsonValue::array();
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::uint64_t n = s.hist.bucket_count(b);
        if (n == 0) continue;
        cum += n;
        JsonValue edge = JsonValue::array();
        edge.push_back(LatencyHistogram::bucket_upper(b));
        edge.push_back(cum);
        buckets.push_back(std::move(edge));
      }
      m.set("buckets", std::move(buckets));
    } else {
      m.set("value", s.value);
    }
    metrics.push_back(std::move(m));
  }
  doc.set("metrics", std::move(metrics));

  JsonValue slowest = JsonValue::array();
  for (const TraceSpan& t : telemetry.tracer().slowest(slowest_n)) {
    JsonValue span = JsonValue::object();
    span.set("id", t.id);
    span.set("tenant", std::string(t.tenant));
    span.set("shard", static_cast<std::uint64_t>(t.shard));
    span.set("batch_rows", static_cast<std::uint64_t>(t.batch_rows));
    span.set("label", t.label);
    span.set("ood", t.ood != 0);
    span.set("slow", t.slow != 0);
    span.set("snapshot_version", t.snapshot_version);
    span.set("total_ms", static_cast<double>(t.total_ns) * 1e-6);
    span.set("queue_ms", static_cast<double>(t.queue_ns) * 1e-6);
    span.set("encode_ms", static_cast<double>(t.encode_ns) * 1e-6);
    span.set("predict_ms", static_cast<double>(t.predict_ns) * 1e-6);
    span.set("fulfill_ms", static_cast<double>(t.fulfill_ns) * 1e-6);
    slowest.push_back(std::move(span));
  }
  doc.set("slowest_requests", std::move(slowest));

  JsonValue events = JsonValue::array();
  for (const Event& e : telemetry.events().recent(events_n)) {
    JsonValue event = JsonValue::object();
    event.set("id", e.id);
    event.set("t_ms", static_cast<double>(e.t_ns) * 1e-6);
    event.set("type", to_string(e.type));
    event.set("scope", std::string(e.scope));
    event.set("reason", std::string(e.reason));
    event.set("value", static_cast<double>(e.value));
    events.push_back(std::move(event));
  }
  doc.set("events", std::move(events));
  return doc;
}

std::string snapshot_json_text(const Telemetry& telemetry,
                               std::size_t slowest_n, std::size_t events_n) {
  return snapshot_json(telemetry, slowest_n, events_n).dump(2) + "\n";
}

bool write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace smore::obs
