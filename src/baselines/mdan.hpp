#pragma once
// MDANs: multiple-source domain adversarial networks (Zhao et al., ICLR 2018)
// — the second CNN-based DA baseline of the paper.
//
// Architecture: a shared feature extractor F, a label head C, and one binary
// domain discriminator D_k per source domain. Each D_k is fed through a
// gradient-reversal layer and learns to distinguish "source domain k" from
// "target domain" features; the reversed gradients push F toward features
// whose distribution is invariant between every source domain and the
// target. Training is transductive: it consumes *unlabeled* target windows
// (the standard multi-source DA setting — in LODO evaluation these are the
// held-out-domain windows without their labels).
//
// This implementation is the smoothed (soft-max combination) variant of the
// paper, reduced to a joint loss:
//     L = CE_label(C(F(x_src)), y_src) + μ · Σ_k CE_k(D_k(GRL(F(x))), d)
// with d = 1 for domain-k source rows and d = 0 for target rows.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/cnn_backbone.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace smore {

/// MDAN hyperparameters.
struct MdanConfig {
  BackboneConfig backbone;
  int num_classes = 2;
  int num_source_domains = 2;
  int epochs = 12;
  std::size_t batch_size = 32;   ///< source rows per step (plus as many target)
  float learning_rate = 1e-3f;   ///< Adam
  float mu = 0.1f;               ///< adversarial loss weight μ
  float grl_lambda = 1.0f;       ///< gradient-reversal strength λ
  std::size_t disc_hidden = 32;  ///< discriminator hidden width
  std::uint64_t seed = 0x3da2;
};

/// Per-epoch training diagnostics.
struct MdanEpochStats {
  double label_loss = 0.0;
  double domain_loss = 0.0;
  double train_accuracy = 0.0;
};

/// The MDAN classifier.
class MdanClassifier {
 public:
  explicit MdanClassifier(const MdanConfig& config);

  /// Adversarial training: labeled multi-domain source tensor + unlabeled
  /// target tensor. `src_domains` holds dense ids in [0, num_source_domains);
  /// LODO id gaps must be re-densified by the caller. Returns per-epoch stats.
  std::vector<MdanEpochStats> fit(const nn::Tensor& x_src,
                                  const std::vector<int>& y_src,
                                  const std::vector<int>& src_domains,
                                  const nn::Tensor& x_target);

  /// Predict labels (eval mode).
  [[nodiscard]] std::vector<int> predict(const nn::Tensor& x);

  /// Accuracy on a labeled set.
  [[nodiscard]] double evaluate(const nn::Tensor& x, const std::vector<int>& y);

  /// How well discriminator k separates source-k from target features —
  /// near 0.5 after training means the features became domain-invariant.
  [[nodiscard]] double discriminator_accuracy(int k, const nn::Tensor& x_src,
                                              const std::vector<int>& src_domains,
                                              const nn::Tensor& x_target);

  [[nodiscard]] std::size_t param_count();

 private:
  nn::Tensor features(const nn::Tensor& x, bool training);

  MdanConfig config_;
  nn::Sequential features_;
  nn::Sequential label_head_;
  std::vector<std::unique_ptr<nn::Sequential>> discriminators_;
};

}  // namespace smore
