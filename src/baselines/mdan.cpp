#include "baselines/mdan.hpp"

#include <algorithm>
#include <stdexcept>

namespace smore {

namespace {

nn::Tensor gather_batch_3d(const nn::Tensor& x,
                           const std::vector<std::size_t>& rows) {
  const std::size_t c = x.dim(1);
  const std::size_t t = x.dim(2);
  nn::Tensor out = nn::Tensor::cube(rows.size(), c, t);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::copy(x.data() + rows[i] * c * t, x.data() + (rows[i] + 1) * c * t,
              out.data() + i * c * t);
  }
  return out;
}

/// Stack two [B, C, T] tensors along the batch axis.
nn::Tensor concat_batch(const nn::Tensor& a, const nn::Tensor& b) {
  nn::Tensor out = nn::Tensor::cube(a.dim(0) + b.dim(0), a.dim(1), a.dim(2));
  std::copy(a.data(), a.data() + a.size(), out.data());
  std::copy(b.data(), b.data() + b.size(), out.data() + a.size());
  return out;
}

}  // namespace

MdanClassifier::MdanClassifier(const MdanConfig& config) : config_(config) {
  if (config.num_classes <= 0 || config.num_source_domains <= 0) {
    throw std::invalid_argument("Mdan: class/domain counts must be positive");
  }
  Rng rng(config.seed);
  build_feature_extractor(features_, config.backbone, rng);
  label_head_.emplace<nn::Dense>(config.backbone.conv2_filters,
                                 static_cast<std::size_t>(config.num_classes),
                                 rng);
  for (int k = 0; k < config.num_source_domains; ++k) {
    auto disc = std::make_unique<nn::Sequential>();
    disc->emplace<nn::GradReversal>(config.grl_lambda);
    disc->emplace<nn::Dense>(config.backbone.conv2_filters, config.disc_hidden,
                             rng);
    disc->emplace<nn::ReLU>();
    disc->emplace<nn::Dense>(config.disc_hidden, std::size_t{2}, rng);
    discriminators_.push_back(std::move(disc));
  }
}

nn::Tensor MdanClassifier::features(const nn::Tensor& x, bool training) {
  return features_.forward(x, training);
}

std::vector<MdanEpochStats> MdanClassifier::fit(
    const nn::Tensor& x_src, const std::vector<int>& y_src,
    const std::vector<int>& src_domains, const nn::Tensor& x_target) {
  if (x_src.rank() != 3 || x_src.dim(0) != y_src.size() ||
      y_src.size() != src_domains.size()) {
    throw std::invalid_argument("Mdan::fit: source shape mismatch");
  }
  if (x_target.rank() != 3 || x_target.dim(1) != x_src.dim(1) ||
      x_target.dim(2) != x_src.dim(2)) {
    throw std::invalid_argument("Mdan::fit: target shape mismatch");
  }
  const std::size_t n_src = x_src.dim(0);
  const std::size_t n_tgt = x_target.dim(0);
  const std::size_t batch = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.batch_size, n_src));

  // One optimizer over every trainable parameter.
  std::vector<nn::Param*> all_params = features_.params();
  for (nn::Param* p : label_head_.params()) all_params.push_back(p);
  for (auto& d : discriminators_) {
    for (nn::Param* p : d->params()) all_params.push_back(p);
  }
  nn::Adam optimizer(all_params, config_.learning_rate);

  Rng rng(config_.seed ^ 0xada);
  std::vector<std::size_t> src_order(n_src);
  for (std::size_t i = 0; i < n_src; ++i) src_order[i] = i;
  std::vector<std::size_t> tgt_order(n_tgt);
  for (std::size_t i = 0; i < n_tgt; ++i) tgt_order[i] = i;

  std::vector<MdanEpochStats> history;
  history.reserve(static_cast<std::size_t>(config_.epochs));

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(src_order);
    rng.shuffle(tgt_order);
    MdanEpochStats stats;
    std::size_t steps = 0;
    std::size_t tgt_cursor = 0;

    for (std::size_t lo = 0; lo < n_src; lo += batch) {
      const std::size_t hi = std::min(n_src, lo + batch);
      const std::size_t bs = hi - lo;

      // Assemble the joint batch: bs source rows followed by bs target rows
      // (cycled); a single forward pass through F keeps the caches coherent.
      std::vector<std::size_t> src_rows(src_order.begin() +
                                            static_cast<std::ptrdiff_t>(lo),
                                        src_order.begin() +
                                            static_cast<std::ptrdiff_t>(hi));
      std::vector<std::size_t> tgt_rows(bs);
      for (std::size_t i = 0; i < bs; ++i) {
        tgt_rows[i] = tgt_order[tgt_cursor];
        tgt_cursor = (tgt_cursor + 1) % n_tgt;
      }
      const nn::Tensor xb = concat_batch(gather_batch_3d(x_src, src_rows),
                                         gather_batch_3d(x_target, tgt_rows));

      const nn::Tensor f = features_.forward(xb, /*training=*/true);
      nn::Tensor grad_f(f.shape());

      // Label loss on the source half.
      std::vector<std::size_t> src_half(bs);
      for (std::size_t i = 0; i < bs; ++i) src_half[i] = i;
      const nn::Tensor f_src = gather_rows(f, src_half);
      std::vector<int> yb(bs);
      for (std::size_t i = 0; i < bs; ++i) yb[i] = y_src[src_rows[i]];
      const nn::Tensor logits = label_head_.forward(f_src, /*training=*/true);
      const nn::LossResult label_loss = nn::cross_entropy(logits, yb);
      stats.label_loss += label_loss.value;
      stats.train_accuracy += nn::logits_accuracy(logits, yb);
      scatter_add_rows(label_head_.backward(label_loss.grad), src_half, grad_f);

      // Adversarial loss per discriminator: rows of source domain k vs the
      // target half. The GradReversal inside each head flips the feature
      // gradient, so a plain scatter-add implements the minimax update.
      for (int k = 0; k < config_.num_source_domains; ++k) {
        std::vector<std::size_t> rows;
        std::vector<int> dom_labels;
        for (std::size_t i = 0; i < bs; ++i) {
          if (src_domains[src_rows[i]] == k) {
            rows.push_back(i);
            dom_labels.push_back(1);
          }
        }
        if (rows.empty()) continue;  // no domain-k rows in this batch
        for (std::size_t i = 0; i < bs; ++i) {
          rows.push_back(bs + i);  // target half
          dom_labels.push_back(0);
        }
        const nn::Tensor f_k = gather_rows(f, rows);
        const nn::Tensor d_logits =
            discriminators_[static_cast<std::size_t>(k)]->forward(
                f_k, /*training=*/true);
        nn::LossResult d_loss = nn::cross_entropy(d_logits, dom_labels);
        stats.domain_loss += d_loss.value;
        for (std::size_t i = 0; i < d_loss.grad.size(); ++i) {
          d_loss.grad[i] *= config_.mu;
        }
        scatter_add_rows(
            discriminators_[static_cast<std::size_t>(k)]->backward(d_loss.grad),
            rows, grad_f);
      }

      features_.backward(grad_f);
      optimizer.step();
      ++steps;
    }

    if (steps > 0) {
      stats.label_loss /= static_cast<double>(steps);
      stats.domain_loss /= static_cast<double>(steps);
      stats.train_accuracy /= static_cast<double>(steps);
    }
    history.push_back(stats);
  }
  return history;
}

std::vector<int> MdanClassifier::predict(const nn::Tensor& x) {
  const std::size_t n = x.dim(0);
  const std::size_t batch = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.batch_size * 2, n));
  std::vector<int> out;
  out.reserve(n);
  std::vector<std::size_t> rows;
  for (std::size_t lo = 0; lo < n; lo += batch) {
    const std::size_t hi = std::min(n, lo + batch);
    rows.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) rows[i - lo] = i;
    const nn::Tensor f =
        features_.forward(gather_batch_3d(x, rows), /*training=*/false);
    const nn::Tensor logits = label_head_.forward(f, /*training=*/false);
    for (std::size_t b = 0; b < hi - lo; ++b) {
      const float* row = logits.data() + b * logits.dim(1);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c) {
        if (row[c] > row[best]) best = c;
      }
      out.push_back(static_cast<int>(best));
    }
  }
  return out;
}

double MdanClassifier::evaluate(const nn::Tensor& x, const std::vector<int>& y) {
  const std::vector<int> pred = predict(x);
  if (pred.size() != y.size()) {
    throw std::invalid_argument("Mdan::evaluate: label arity mismatch");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == y[i] ? 1 : 0;
  }
  return y.empty() ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(y.size());
}

double MdanClassifier::discriminator_accuracy(
    int k, const nn::Tensor& x_src, const std::vector<int>& src_domains,
    const nn::Tensor& x_target) {
  if (k < 0 || k >= config_.num_source_domains) {
    throw std::invalid_argument("Mdan: discriminator index out of range");
  }
  std::vector<std::size_t> src_rows;
  for (std::size_t i = 0; i < src_domains.size(); ++i) {
    if (src_domains[i] == k) src_rows.push_back(i);
  }
  if (src_rows.empty() || x_target.dim(0) == 0) return 0.0;

  std::size_t correct = 0;
  std::size_t total = 0;
  auto score = [&](const nn::Tensor& x, const std::vector<std::size_t>& rows,
                   int domain_label) {
    const nn::Tensor f =
        features_.forward(gather_batch_3d(x, rows), /*training=*/false);
    const nn::Tensor logits =
        discriminators_[static_cast<std::size_t>(k)]->forward(
            f, /*training=*/false);
    for (std::size_t b = 0; b < rows.size(); ++b) {
      const float* row = logits.data() + b * 2;
      const int pred = row[1] > row[0] ? 1 : 0;
      correct += pred == domain_label ? 1 : 0;
      ++total;
    }
  };
  score(x_src, src_rows, 1);
  std::vector<std::size_t> tgt_rows(x_target.dim(0));
  for (std::size_t i = 0; i < tgt_rows.size(); ++i) tgt_rows[i] = i;
  score(x_target, tgt_rows, 0);
  return static_cast<double>(correct) / static_cast<double>(total);
}

std::size_t MdanClassifier::param_count() {
  std::size_t n = features_.param_count() + label_head_.param_count();
  for (auto& d : discriminators_) n += d->param_count();
  return n;
}

}  // namespace smore
