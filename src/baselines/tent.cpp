#include "baselines/tent.hpp"

#include <algorithm>
#include <stdexcept>

namespace smore {

namespace {

/// Slice rows [lo, hi) of a [B, C, T] tensor.
nn::Tensor slice_batch(const nn::Tensor& x, std::size_t lo, std::size_t hi) {
  const std::size_t c = x.dim(1);
  const std::size_t t = x.dim(2);
  nn::Tensor out = nn::Tensor::cube(hi - lo, c, t);
  std::copy(x.data() + lo * c * t, x.data() + hi * c * t, out.data());
  return out;
}

/// Gather rows by index of a [B, C, T] tensor.
nn::Tensor gather_batch(const nn::Tensor& x,
                        const std::vector<std::size_t>& rows, std::size_t lo,
                        std::size_t hi) {
  const std::size_t c = x.dim(1);
  const std::size_t t = x.dim(2);
  nn::Tensor out = nn::Tensor::cube(hi - lo, c, t);
  for (std::size_t i = lo; i < hi; ++i) {
    std::copy(x.data() + rows[i] * c * t, x.data() + (rows[i] + 1) * c * t,
              out.data() + (i - lo) * c * t);
  }
  return out;
}

}  // namespace

TentClassifier::TentClassifier(const TentConfig& config) : config_(config) {
  if (config.num_classes <= 0) {
    throw std::invalid_argument("Tent: num_classes must be positive");
  }
  Rng rng(config.seed);
  bn_layers_ = build_feature_extractor(net_, config.backbone, rng);
  net_.emplace<nn::Dense>(config.backbone.conv2_filters,
                          static_cast<std::size_t>(config.num_classes), rng);
}

nn::Tensor TentClassifier::forward_logits(const nn::Tensor& x, bool training) {
  return net_.forward(x, training);
}

std::vector<double> TentClassifier::fit(const nn::Tensor& x,
                                        const std::vector<int>& y) {
  if (x.rank() != 3 || x.dim(0) != y.size()) {
    throw std::invalid_argument("Tent::fit: shape/label mismatch");
  }
  const std::size_t n = x.dim(0);
  const std::size_t batch = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.batch_size, n));

  nn::Adam optimizer(net_.params(), config_.learning_rate);
  Rng rng(config_.seed ^ 0xf17);
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<double> history;
  history.reserve(static_cast<std::size_t>(config_.epochs));
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double correct = 0.0;
    for (std::size_t lo = 0; lo < n; lo += batch) {
      const std::size_t hi = std::min(n, lo + batch);
      const nn::Tensor xb = gather_batch(x, order, lo, hi);
      std::vector<int> yb;
      yb.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) yb.push_back(y[order[i]]);

      const nn::Tensor logits = forward_logits(xb, /*training=*/true);
      const nn::LossResult loss = nn::cross_entropy(logits, yb);
      correct += nn::logits_accuracy(logits, yb) * static_cast<double>(hi - lo);
      net_.backward(loss.grad);
      optimizer.step();
    }
    history.push_back(correct / static_cast<double>(n));
  }
  return history;
}

std::vector<int> TentClassifier::predict(const nn::Tensor& x) {
  const std::size_t n = x.dim(0);
  const std::size_t batch = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.adapt_batch_size, n));
  std::vector<int> out;
  out.reserve(n);
  for (std::size_t lo = 0; lo < n; lo += batch) {
    const std::size_t hi = std::min(n, lo + batch);
    const nn::Tensor logits =
        forward_logits(slice_batch(x, lo, hi), /*training=*/false);
    for (std::size_t b = 0; b < hi - lo; ++b) {
      const float* row = logits.data() + b * logits.dim(1);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c) {
        if (row[c] > row[best]) best = c;
      }
      out.push_back(static_cast<int>(best));
    }
  }
  return out;
}

double TentClassifier::evaluate(const nn::Tensor& x, const std::vector<int>& y) {
  const std::vector<int> pred = predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += pred[i] == y[i] ? 1 : 0;
  }
  return y.empty() ? 0.0
                   : static_cast<double>(correct) / static_cast<double>(y.size());
}

TentEvalStats TentClassifier::evaluate_adaptive(const nn::Tensor& x,
                                                const std::vector<int>& y) {
  if (x.rank() != 3 || x.dim(0) != y.size()) {
    throw std::invalid_argument("Tent::evaluate_adaptive: shape mismatch");
  }
  const std::size_t n = x.dim(0);
  const std::size_t batch = std::max<std::size_t>(
      1, std::min<std::size_t>(config_.adapt_batch_size, n));

  // TENT normalizes with test-batch statistics...
  for (nn::BatchNorm* bn : bn_layers_) bn->set_use_batch_stats_in_eval(true);
  // ...and optimizes only the BN affine parameters.
  std::vector<nn::Param*> affine;
  for (nn::BatchNorm* bn : bn_layers_) {
    affine.push_back(&bn->gamma());
    affine.push_back(&bn->beta());
  }
  nn::Adam optimizer(affine, config_.adapt_learning_rate);

  TentEvalStats stats;
  std::size_t correct = 0;
  double entropy_before = 0.0;
  double entropy_after = 0.0;
  std::size_t batches = 0;

  for (std::size_t lo = 0; lo < n; lo += batch) {
    const std::size_t hi = std::min(n, lo + batch);
    const nn::Tensor xb = slice_batch(x, lo, hi);

    // Adaptation: entropy descent on this batch (unlabeled).
    for (int step = 0; step < config_.adapt_steps; ++step) {
      const nn::Tensor logits = forward_logits(xb, /*training=*/false);
      const nn::LossResult ent = nn::entropy_loss(logits);
      if (step == 0) entropy_before += ent.value;
      // Zero every parameter gradient: backward fills conv/dense grads too,
      // but only the BN affine params are stepped.
      for (nn::Param* p : net_.params()) p->zero_grad();
      net_.backward(ent.grad);
      optimizer.step();
    }

    // Prediction with the adapted parameters.
    const nn::Tensor logits = forward_logits(xb, /*training=*/false);
    entropy_after += nn::entropy_loss(logits).value;
    ++batches;
    for (std::size_t b = 0; b < hi - lo; ++b) {
      const float* row = logits.data() + b * logits.dim(1);
      std::size_t best = 0;
      for (std::size_t c = 1; c < logits.dim(1); ++c) {
        if (row[c] > row[best]) best = c;
      }
      correct += static_cast<int>(best) == y[lo + b] ? 1 : 0;
    }
  }

  for (nn::BatchNorm* bn : bn_layers_) bn->set_use_batch_stats_in_eval(false);

  stats.accuracy = n == 0 ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(n);
  stats.mean_entropy_before = batches == 0 ? 0.0 : entropy_before / batches;
  stats.mean_entropy_after = batches == 0 ? 0.0 : entropy_after / batches;
  return stats;
}

}  // namespace smore
