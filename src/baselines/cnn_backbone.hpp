#pragma once
// Shared CNN backbone and data adapters for the DL-based DA baselines.
//
// Both TENT and MDANs run on the same small 1-D CNN feature extractor
// (two Conv-BN-ReLU blocks + global average pooling), which mirrors the
// compact CNNs used for wearable HAR and keeps the comparison about the
// *adaptation algorithm*, not the backbone capacity.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/timeseries.hpp"
#include "nn/network.hpp"

namespace smore {

/// Feature-extractor dimensions.
struct BackboneConfig {
  std::size_t in_channels = 6;   ///< sensor channel count of the dataset
  std::size_t conv1_filters = 32;
  std::size_t conv2_filters = 48;
  std::size_t kernel = 5;
  std::size_t conv2_stride = 2;  ///< temporal downsampling in block 2
};

/// Append Conv-BN-ReLU ×2 + GlobalAvgPool to `net`; output is
/// [B, conv2_filters]. Returns the two BatchNorm layers (TENT's handles).
std::vector<nn::BatchNorm*> build_feature_extractor(nn::Sequential& net,
                                                    const BackboneConfig& cfg,
                                                    Rng& rng);

/// Pack the selected windows into a [B, channels, steps] tensor.
[[nodiscard]] nn::Tensor windows_to_tensor(
    const WindowDataset& data, const std::vector<std::size_t>& indices);

/// Pack every window of `data`.
[[nodiscard]] nn::Tensor windows_to_tensor(const WindowDataset& data);

/// Labels of the selected windows.
[[nodiscard]] std::vector<int> labels_of(const WindowDataset& data,
                                         const std::vector<std::size_t>& indices);

/// Domain ids of the selected windows.
[[nodiscard]] std::vector<int> domains_of(
    const WindowDataset& data, const std::vector<std::size_t>& indices);

/// Gather rows of a [B, F] matrix into a new [|rows|, F] matrix.
[[nodiscard]] nn::Tensor gather_rows(const nn::Tensor& x,
                                     const std::vector<std::size_t>& rows);

/// grad_x[rows[i], :] += grad_rows[i, :] — the inverse of gather_rows.
void scatter_add_rows(const nn::Tensor& grad_rows,
                      const std::vector<std::size_t>& rows, nn::Tensor& grad_x);

}  // namespace smore
