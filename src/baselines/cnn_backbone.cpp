#include "baselines/cnn_backbone.hpp"

#include <stdexcept>

namespace smore {

std::vector<nn::BatchNorm*> build_feature_extractor(nn::Sequential& net,
                                                    const BackboneConfig& cfg,
                                                    Rng& rng) {
  std::vector<nn::BatchNorm*> bns;
  net.emplace<nn::Conv1D>(cfg.in_channels, cfg.conv1_filters, cfg.kernel,
                          std::size_t{1}, rng);
  bns.push_back(&net.emplace<nn::BatchNorm>(cfg.conv1_filters));
  net.emplace<nn::ReLU>();
  net.emplace<nn::Conv1D>(cfg.conv1_filters, cfg.conv2_filters, cfg.kernel,
                          cfg.conv2_stride, rng);
  bns.push_back(&net.emplace<nn::BatchNorm>(cfg.conv2_filters));
  net.emplace<nn::ReLU>();
  net.emplace<nn::GlobalAvgPool1D>();
  return bns;
}

nn::Tensor windows_to_tensor(const WindowDataset& data,
                             const std::vector<std::size_t>& indices) {
  if (indices.empty()) {
    throw std::invalid_argument("windows_to_tensor: no windows selected");
  }
  nn::Tensor x =
      nn::Tensor::cube(indices.size(), data.channels(), data.steps());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const Window& w = data[indices[i]];
    for (std::size_t c = 0; c < data.channels(); ++c) {
      const auto src = w.channel(c);
      float* dst = x.data() + (i * data.channels() + c) * data.steps();
      std::copy(src.begin(), src.end(), dst);
    }
  }
  return x;
}

nn::Tensor windows_to_tensor(const WindowDataset& data) {
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return windows_to_tensor(data, all);
}

std::vector<int> labels_of(const WindowDataset& data,
                           const std::vector<std::size_t>& indices) {
  std::vector<int> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(data[i].label());
  return out;
}

std::vector<int> domains_of(const WindowDataset& data,
                            const std::vector<std::size_t>& indices) {
  std::vector<int> out;
  out.reserve(indices.size());
  for (const std::size_t i : indices) out.push_back(data[i].domain());
  return out;
}

nn::Tensor gather_rows(const nn::Tensor& x,
                       const std::vector<std::size_t>& rows) {
  if (x.rank() != 2) {
    throw std::invalid_argument("gather_rows: expected a matrix");
  }
  const std::size_t cols = x.dim(1);
  nn::Tensor out = nn::Tensor::matrix(rows.size(), cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* src = x.data() + rows[i] * cols;
    std::copy(src, src + cols, out.data() + i * cols);
  }
  return out;
}

void scatter_add_rows(const nn::Tensor& grad_rows,
                      const std::vector<std::size_t>& rows,
                      nn::Tensor& grad_x) {
  if (grad_rows.rank() != 2 || grad_x.rank() != 2 ||
      grad_rows.dim(1) != grad_x.dim(1) || grad_rows.dim(0) != rows.size()) {
    throw std::invalid_argument("scatter_add_rows: shape mismatch");
  }
  const std::size_t cols = grad_x.dim(1);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const float* src = grad_rows.data() + i * cols;
    float* dst = grad_x.data() + rows[i] * cols;
    for (std::size_t c = 0; c < cols; ++c) dst[c] += src[c];
  }
}

}  // namespace smore
