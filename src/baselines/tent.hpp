#pragma once
// TENT: fully test-time adaptation by entropy minimization
// (Wang et al., ICLR 2021) — CNN-based DA baseline of the paper.
//
// Source phase: train the CNN backbone + linear head with cross-entropy on
// the pooled source domains. Test phase (the TENT part):
//   * normalization statistics come from the *test batch* (not the running
//     estimates);
//   * for each test batch, take gradient steps on the prediction-entropy
//     loss, updating ONLY the BatchNorm affine parameters (γ, β);
//   * adaptation is online: the model keeps its adapted state across batches.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "baselines/cnn_backbone.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

namespace smore {

/// TENT hyperparameters.
struct TentConfig {
  BackboneConfig backbone;
  int num_classes = 2;
  // source training
  int epochs = 12;
  std::size_t batch_size = 32;
  float learning_rate = 1e-3f;  ///< Adam, source phase
  // test-time adaptation
  float adapt_learning_rate = 1e-3f;  ///< Adam on BN affine params
  int adapt_steps = 1;                ///< entropy steps per test batch
  std::size_t adapt_batch_size = 64;
  std::uint64_t seed = 0x7e47;
};

/// The TENT classifier: a CNN that re-tunes its BatchNorm layers on
/// unlabeled test batches by minimizing prediction entropy.
struct TentEvalStats {
  double accuracy = 0.0;
  double mean_entropy_before = 0.0;  ///< entropy of unadapted predictions
  double mean_entropy_after = 0.0;   ///< entropy after adaptation steps
};

class TentClassifier {
 public:
  explicit TentClassifier(const TentConfig& config);

  /// Source training on pooled source-domain windows ([B, C, T] tensor +
  /// integer labels). Returns per-epoch training accuracy.
  std::vector<double> fit(const nn::Tensor& x, const std::vector<int>& y);

  /// Plain (no-adaptation) prediction with running BN statistics.
  [[nodiscard]] std::vector<int> predict(const nn::Tensor& x);

  /// TENT inference over the test set: batch-wise entropy minimization on BN
  /// affine parameters, online across batches. Labels are used only to score
  /// accuracy, never for adaptation.
  TentEvalStats evaluate_adaptive(const nn::Tensor& x,
                                  const std::vector<int>& y);

  /// Plain accuracy without adaptation (ablation reference).
  [[nodiscard]] double evaluate(const nn::Tensor& x, const std::vector<int>& y);

  /// Learnable scalar count (model-size reporting in the efficiency bench).
  [[nodiscard]] std::size_t param_count() { return net_.param_count(); }

 private:
  nn::Tensor forward_logits(const nn::Tensor& x, bool training);

  TentConfig config_;
  nn::Sequential net_;
  std::vector<nn::BatchNorm*> bn_layers_;
};

}  // namespace smore
