#include "hdc/item_memory.hpp"

#include <stdexcept>

namespace smore {

ItemMemory::ItemMemory(std::size_t dim, std::uint64_t seed)
    : dim_(dim), seed_(seed) {
  if (dim == 0) {
    throw std::invalid_argument("ItemMemory: dim must be positive");
  }
}

const Hypervector& ItemMemory::get(Kind kind, std::size_t sensor) {
  // Key layout: kind in the top bits, sensor below; collision-free for any
  // realistic sensor count.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 56) | static_cast<std::uint64_t>(sensor);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    Rng rng(Rng(seed_).fork(key)());
    Hypervector hv = kind == Kind::kThreshold
                         ? uniform_thresholds(dim_, rng)
                         : Hypervector::random_bipolar(dim_, rng);
    it = cache_.emplace(key, std::move(hv)).first;
  }
  return it->second;
}

Hypervector ItemMemory::uniform_thresholds(std::size_t dim, Rng& rng) {
  std::vector<float> v(dim);
  for (auto& x : v) x = rng.uniform_f(0.0f, 1.0f);
  return Hypervector(std::move(v));
}

const Hypervector& ItemMemory::signature(std::size_t sensor) {
  return get(Kind::kSignature, sensor);
}

const Hypervector& ItemMemory::base_low(std::size_t sensor) {
  return get(Kind::kLow, sensor);
}

const Hypervector& ItemMemory::base_high(std::size_t sensor) {
  return get(Kind::kHigh, sensor);
}

const Hypervector& ItemMemory::thresholds(std::size_t sensor) {
  return get(Kind::kThreshold, sensor);
}

void ItemMemory::prefetch(std::size_t n_sensors) {
  for (std::size_t s = 0; s < n_sensors; ++s) {
    (void)signature(s);
    (void)base_low(s);
    (void)base_high(s);
    (void)thresholds(s);
  }
}

}  // namespace smore
