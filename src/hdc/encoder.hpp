#pragma once
// Multi-sensor time-series HDC encoder (paper Sec 3.3, Figure 3).
//
// Pipeline per window, per sensor channel i:
//   1. Value quantization: each reading y_t is mapped to a level hypervector
//      by linear interpolation between the window-extremum base hypervectors,
//        L_t = H_min + (y_t - y_min)/(y_max - y_min) · (H_max - H_min),
//      exactly the paper's vector-quantization formula.
//   2. Temporal n-gram binding: consecutive readings are bound with graded
//      permutation, G_t = ρ^{n-1}(L_t) * ρ^{n-2}(L_{t+1}) * ... * L_{t+n-1}
//      (the paper's trigram example: ρρH_t1 * ρH_t2 * H_t3); all n-grams in
//      the window are bundled into the sensor hypervector H_i.
//   3. Spatial integration: per-sensor signatures bind provenance and the
//      result is bundled across sensors, H = Σ_i G_i * H_i.
//
// Base-vector policy (see DESIGN.md "ambiguity resolutions"): by default
// H_min/H_max are fixed per sensor (seeded once through the ItemMemory), which
// makes the encoding deterministic and similarity-preserving across windows.
// `per_window_random_base = true` reproduces the paper-literal reading where
// fresh random extremum hypervectors are drawn for every window; it is kept
// for the encoding ablation bench.
//
// Level policy: the paper's interpolation formula taken literally (every
// level vector a linear combination of the two anchors) makes the bundled
// n-gram encoding a function of the value sequence's lag-product sums, which
// are invariant under time reversal — the encoder would ignore temporal
// direction. The default therefore quantizes through per-coordinate flip
// thresholds (a standard HDC level item memory): coordinate i of the level
// for normalized value α is base_high[i] when α ≥ θ_i else base_low[i], with
// θ uniform on [0,1). Expected similarity to the anchors still varies
// linearly in α (the paper's "spectrum of similarity"), but levels are
// per-coordinate nonlinear, restoring direction sensitivity.
// `quantization_levels = 0` selects the paper-literal linear interpolation
// for the ablation bench; Q > 0 snaps α to a Q-point grid first.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "data/timeseries.hpp"
#include "hdc/encoder_base.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/item_memory.hpp"
#include "util/mutex.hpp"

namespace smore {

/// Tunable parameters of the multi-sensor encoder.
struct EncoderConfig {
  std::size_t dim = 4096;       ///< hyperdimensional size d
  std::size_t ngram = 3;        ///< temporal n-gram length (paper figure: 3)
  std::uint64_t seed = 0x5304e; ///< basis seed
  bool per_window_random_base = false;  ///< paper-literal ablation mode
  /// Value-quantization levels Q; 0 selects the paper-literal continuous
  /// linear interpolation (see the level-policy note above).
  std::size_t quantization_levels = 32;
  /// Use antipodal window anchors: H_max = -H_min instead of two independent
  /// random hypervectors. With independent anchors, every coordinate where
  /// the two agree (half of them in expectation) is constant across all
  /// levels, which injects a large value-independent DC component into every
  /// encoding — cosine similarities compress toward 1 and domain contrast
  /// drowns. Antipodal anchors make every coordinate value-sensitive (the
  /// classic L ... -L level-memory construction). Ablated in
  /// bench_ablation_encoding.
  bool antipodal_base = true;
  /// Temporal dilation δ of the n-gram: the gram at t binds timesteps
  /// {t, t+δ, t+2δ, ...}. Adjacent samples of a high-rate smooth signal are
  /// nearly identical, so δ=1 grams carry little temporal information; a
  /// dilation of a few samples probes lags where activity dynamics actually
  /// live. 0 = auto: max(1, steps/16) capped at 8. Swept in the encoding
  /// ablation bench. Ignored when `ngram_dilations` is non-empty.
  std::size_t ngram_dilation = 0;
  /// Multi-scale temporal encoding: when non-empty, the sensor hypervector
  /// bundles the n-gram sums at *each* listed dilation. A subject whose
  /// motion runs x% faster produces nearly the same grams at a
  /// correspondingly scaled dilation, so spanning an octave of scales buys
  /// tempo robustness — the dominant cross-subject shift in activity data —
  /// at proportional encode cost. Empty = single-scale (ngram_dilation).
  std::vector<std::size_t> ngram_dilations = {};
};

/// Reusable scratch buffers for the per-window encode paths. The batch path
/// pools one per worker block through ThreadPool::parallel_for_blocks, so no
/// worker allocates after warm-up; scalar callers pass their own.
struct EncodeScratch {
  std::vector<float> levels;      // T × d level hypervectors (reference path)
  std::vector<float> gram;        // d (reference path gram temporary)
  std::vector<float> sensor_acc;  // d
  // Per-window extremum bases, hoisted out of encode(): the paper-literal
  // per_window_random_base mode redraws them per (window, sensor) and the
  // antipodal fixed-base mode materializes H_max = -H_min — neither should
  // allocate per window.
  std::vector<float> lo_buf;  // d
  std::vector<float> hi_buf;  // d
  // Banked batch path: per-timestep pointers into the level bank.
  std::vector<const float*> level_rows;  // T
};

/// Encoder from raw multi-sensor windows to hypervectors. Immutable after
/// construction. Concurrency: encode calls are thread-safe once `prepare()`
/// has been invoked for the channel count in use. A single encode_batch call
/// prepares itself (serially, before its parallel region); CONCURRENT
/// encode_batch calls are safe only for channel counts already prepared —
/// growing the basis/level bank while another batch's workers read it would
/// invalidate their pointers, so call prepare(max_channels) first.
///
/// Batch path (encode_batch): for the default thresholded quantization with a
/// fixed basis, the Q distinct level hypervectors of every sensor are
/// precomputed once into a level bank, so per window the quantize step
/// reduces to T bank-row lookups and each n-gram runs as one fused
/// ops::ngram_axpy sweep (no level materialization, no gram temporary). The
/// ablation modes (per_window_random_base, quantization_levels < 2, grams
/// longer than ops::kNgramFusedMaxFactors) batch through the reference
/// per-window kernel instead. Both routes are bit-identical to encode().
class MultiSensorEncoder : public Encoder {
 public:
  /// Throws std::invalid_argument for dim == 0, ngram == 0.
  explicit MultiSensorEncoder(const EncoderConfig& config);

  /// Serialized-record type tag ("MSEN"), dispatched on by load_encoder.
  static constexpr std::uint32_t kTypeTag = 0x4e45534d;

  /// Persist config + seed (never the basis: it is reconstructed
  /// deterministically — see Encoder::save).
  void save(std::ostream& out) const override;

  /// Parse the config record written by save(), tag already consumed.
  /// Constructing from the result reproduces the saved encoder exactly.
  /// Throws std::runtime_error on corrupt input.
  [[nodiscard]] static EncoderConfig load_config(std::istream& in);

  [[nodiscard]] const EncoderConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t dim() const noexcept override {
    return config_.dim;
  }

  /// Materialized item-memory basis + level bank (see
  /// Encoder::footprint_bytes; takes the lazy-growth lock).
  [[nodiscard]] std::size_t footprint_bytes() const override;

  /// Pre-generate the basis (and, in the default mode, the level bank) for
  /// `channels` sensors — required before encoding from multiple threads
  /// (see the class concurrency note). Const: only warms caches.
  void prepare(std::size_t channels) const;

  /// Encode one window. `salt` perturbs the per-window random basis in
  /// per_window_random_base mode (pass the sample index); it is ignored in
  /// the default fixed-basis mode.
  [[nodiscard]] Hypervector encode(const Window& window,
                                   std::uint64_t salt = 0) const;

  /// Encode with caller-provided scratch. This is the reference per-window
  /// kernel: the batch path is pinned bit-identical to it (tests) and the
  /// encode benches use it as the pre-batching baseline.
  [[nodiscard]] Hypervector encode(const Window& window, EncodeScratch& scratch,
                                   std::uint64_t salt = 0) const;

  using Encoder::encode_batch;
  void encode_batch(const WindowDataset& dataset, HvMatrix& out,
                    bool parallel) const override;

 private:
  void encode_sensor(std::span<const float> signal, const float* base_lo,
                     const float* base_hi, const float* thresholds,
                     std::span<const std::size_t> dilations,
                     EncodeScratch& scratch) const;
  /// Reference per-window kernel writing into a zeroed d-float row.
  void encode_window_into(const Window& window,
                          std::span<const std::size_t> dilations, float* out,
                          EncodeScratch& scratch, std::uint64_t salt) const;
  /// Fast banked kernel (fixed basis, thresholded quantization) writing into
  /// a zeroed d-float row.
  void encode_window_banked(const Window& window,
                            std::span<const std::size_t> dilations, float* out,
                            EncodeScratch& scratch) const;
  /// Serialize lazy basis/bank growth (encode_batch calls this up front so
  /// the parallel region only reads).
  void ensure_basis(std::size_t channels) const;
  [[nodiscard]] bool bank_eligible() const noexcept;
  /// Temporal dilation set for a window of `steps` samples (config policy).
  [[nodiscard]] std::vector<std::size_t> resolve_dilations(
      std::size_t steps) const;

  EncoderConfig config_;
  // Phase contract, NOT a GUARDED_BY relationship (DESIGN.md §15): the three
  // cache members below only GROW under basis_mutex_ (ensure_basis), and the
  // parallel encode region reads them lock-free AFTER a prepare()/up-front
  // ensure_basis call for its channel count. Annotating them GUARDED_BY would
  // force the hot encode path to take the lock per window; the contract is
  // documented here and enforced by the class concurrency note instead.
  mutable ItemMemory memory_;  // lazily populated cache of basis vectors
  // Level bank: row s*Q + q holds level q of sensor s (see the class note).
  mutable HvMatrix level_bank_;
  mutable std::size_t bank_channels_ = 0;
  mutable Mutex basis_mutex_;  // serializes lazy basis/bank growth
};

}  // namespace smore
