#pragma once
// Low-level dense kernels for hyperdimensional computing.
//
// Everything in the HDC layer reduces to a handful of element-wise loops over
// contiguous float arrays. They are kept header-inline so the compiler can
// vectorize them at every call site; all higher-level operations
// (bundle / bind / permute / cosine, encoding, classifier updates) are built
// from these.
//
// Preconditions are asserted, not thrown: dimensional agreement is a class
// invariant of the callers (see Hypervector), so violations are programming
// errors, not runtime conditions.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/thread_pool.hpp"

namespace smore::ops {

/// Dot product over n contiguous floats (accumulated in double for
/// stability). Four independent accumulators break the loop-carried
/// dependency so the compiler can pipeline/vectorize the float->double
/// converts — this is the hottest kernel of HDC inference (every cosine is
/// one dot per class).
inline double dot(const float* a, const float* b, std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr);
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(a[i]) * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Euclidean norm.
inline double nrm2(const float* a, std::size_t n) noexcept {
  return std::sqrt(dot(a, a, n));
}

/// y += alpha * x
inline void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  assert(x != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// y = alpha * y
inline void scale(float alpha, float* y, std::size_t n) noexcept {
  assert(y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

/// out = a ⊙ b  (element-wise multiply: the HDC binding operation)
inline void hadamard(const float* a, const float* b, float* out,
                     std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

/// y = y ⊙ a  (in-place binding)
inline void hadamard_inplace(const float* a, float* y, std::size_t n) noexcept {
  assert(a != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= a[i];
}

/// out = ρ^k(src): circular right-shift by k positions. The paper's ρ moves
/// the last element to the front; ρ^k moves element i to (i + k) mod n.
/// `out` must not alias `src`.
inline void rotate(const float* src, std::size_t n, std::size_t k,
                   float* out) noexcept {
  assert(src != nullptr && out != nullptr && src != out);
  if (n == 0) return;
  k %= n;
  // out[(i + k) % n] = src[i]  ==  out[j] = src[(j + n - k) % n]
  const std::size_t split = n - k;
  for (std::size_t i = 0; i < split; ++i) out[i + k] = src[i];
  for (std::size_t i = split; i < n; ++i) out[i + k - n] = src[i];
}

/// y[j] *= src[(j - k) mod n]  for all j: in-place binding with the k-times
/// rotated source, without materializing the rotation. This is the hot inner
/// loop of the temporal n-gram encoder (Sec 3.3): binding ρ^k(H_t) into an
/// accumulator. Precondition: k < n.
inline void hadamard_rotated(const float* src, std::size_t n, std::size_t k,
                             float* y) noexcept {
  assert(src != nullptr && y != nullptr && k < n);
  // (ρ^k src)[j] = src[(j - k + n) mod n]; split at j == k to avoid the mod.
  const float* wrapped = src + (n - k);
  for (std::size_t j = 0; j < k; ++j) y[j] *= wrapped[j];
  for (std::size_t j = k; j < n; ++j) y[j] *= src[j - k];
}

/// Fused dot product and squared norms: one pass over both arrays computing
/// <a,b>, <a,a>, and <b,b> simultaneously. Each loaded element feeds three
/// accumulator chains, so cosine costs one memory sweep instead of the three
/// a naive nrm2(a) + nrm2(b) + dot(a,b) sequence would make.
inline void dot_and_norms(const float* a, const float* b, std::size_t n,
                          double& ab, double& aa, double& bb) noexcept {
  assert(a != nullptr && b != nullptr);
  double ab0 = 0.0, ab1 = 0.0;
  double aa0 = 0.0, aa1 = 0.0;
  double bb0 = 0.0, bb1 = 0.0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const double a0 = a[i], a1 = a[i + 1];
    const double b0 = b[i], b1 = b[i + 1];
    ab0 += a0 * b0;
    ab1 += a1 * b1;
    aa0 += a0 * a0;
    aa1 += a1 * a1;
    bb0 += b0 * b0;
    bb1 += b1 * b1;
  }
  for (; i < n; ++i) {
    const double ai = a[i], bi = b[i];
    ab0 += ai * bi;
    aa0 += ai * ai;
    bb0 += bi * bi;
  }
  ab = ab0 + ab1;
  aa = aa0 + aa1;
  bb = bb0 + bb1;
}

/// Cosine similarity; returns 0 when either vector is all-zero (the HDC
/// convention: the zero vector is "similar to nothing"). Single-pass: the
/// dot and both norms come from one fused sweep (see dot_and_norms).
inline double cosine(const float* a, const float* b, std::size_t n) noexcept {
  double ab = 0.0, aa = 0.0, bb = 0.0;
  dot_and_norms(a, b, n, ab, aa, bb);
  if (aa == 0.0 || bb == 0.0) return 0.0;
  return ab / std::sqrt(aa * bb);
}

/// out = (1-t)*a + t*b  (linear interpolation: the paper's value quantization)
inline void lerp(const float* a, const float* b, float t, float* out,
                 std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  const float s = 1.0f - t;
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i] + t * b[i];
}

// ---------------------------------------------------------------------------
// Batched similarity kernels.
//
// SMORE inference is one dot product per (query, prototype) pair — per class,
// per domain descriptor, per ensembled class vector. Computed one query at a
// time, every pair re-streams the query row and pays a call + allocation per
// query. The kernels below treat the whole problem as a
// [n_queries × n_prototypes] matrix product over row-major blocks:
//   * register blocking: dot_batch computes four prototype dots per sweep of
//     the query row, so each loaded query element feeds four FMA chains;
//   * cache blocking: the matrix drivers walk prototypes in panels small
//     enough to stay L2-resident across a whole tile of queries;
//   * thread blocking: query row tiles are distributed over the global
//     ThreadPool; outputs land in disjoint pre-sized slots, so the result is
//     bit-identical for any thread count.

/// Number of prototype rows per register block in dot_batch.
inline constexpr std::size_t kDotBlock = 4;
/// Prototype rows per cache panel in the matrix drivers. At d = 4096 floats a
/// panel is 8 × 16 KiB = 128 KiB — comfortably L2-resident while a tile of
/// queries streams against it.
inline constexpr std::size_t kPanelRows = 8;
/// Query rows per parallel work item (grain of the ThreadPool split).
inline constexpr std::size_t kRowTile = 64;

/// out[p] = <q, P_p> for the np row-major rows of P. Prototypes are processed
/// four at a time so one sweep of the query row feeds four independent
/// accumulator chains (the register-blocking step of the matrix kernels).
inline void dot_batch(const float* q, const float* prototypes, std::size_t np,
                      std::size_t dim, double* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  std::size_t p = 0;
  for (; p + kDotBlock <= np; p += kDotBlock) {
    const float* p0 = prototypes + (p + 0) * dim;
    const float* p1 = prototypes + (p + 1) * dim;
    const float* p2 = prototypes + (p + 2) * dim;
    const float* p3 = prototypes + (p + 3) * dim;
    // Two accumulators per prototype (even/odd elements): eight independent
    // FMA chains, enough to hide the fused-multiply-add latency.
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    double b0 = 0.0, b1 = 0.0, b2 = 0.0, b3 = 0.0;
    std::size_t j = 0;
    for (; j + 2 <= dim; j += 2) {
      const double qe = q[j];
      const double qo = q[j + 1];
      a0 += qe * p0[j];
      b0 += qo * p0[j + 1];
      a1 += qe * p1[j];
      b1 += qo * p1[j + 1];
      a2 += qe * p2[j];
      b2 += qo * p2[j + 1];
      a3 += qe * p3[j];
      b3 += qo * p3[j + 1];
    }
    for (; j < dim; ++j) {
      const double qj = q[j];
      a0 += qj * p0[j];
      a1 += qj * p1[j];
      a2 += qj * p2[j];
      a3 += qj * p3[j];
    }
    out[p + 0] = a0 + b0;
    out[p + 1] = a1 + b1;
    out[p + 2] = a2 + b2;
    out[p + 3] = a3 + b3;
  }
  for (; p < np; ++p) out[p] = dot(q, prototypes + p * dim, dim);
}

/// Squared Euclidean norm of each of the np row-major rows.
inline void nrm2_sq_rows(const float* rows, std::size_t np, std::size_t dim,
                         double* out) noexcept {
  assert(np == 0 || (rows != nullptr && out != nullptr));
  for (std::size_t p = 0; p < np; ++p) {
    const float* r = rows + p * dim;
    out[p] = dot(r, r, dim);
  }
}

namespace detail {

/// Serial core shared by the matrix drivers: dots of queries [q_begin, q_end)
/// against all np prototypes, written to out (row-major [nq × np], absolute
/// row indexing). Prototypes are walked in L2-resident panels in the outer
/// loop so each panel is re-used by every query of the tile.
inline void dot_matrix_tile(const float* queries, std::size_t q_begin,
                            std::size_t q_end, const float* prototypes,
                            std::size_t np, std::size_t dim,
                            double* out) noexcept {
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      dot_batch(queries + q * dim, panel_rows, panel, dim, out + q * np + p);
    }
  }
}

}  // namespace detail

/// Row-major [nq × np] matrix of raw dot products <Q_q, P_p>. `parallel`
/// splits the query rows into kRowTile-sized tiles over the global
/// ThreadPool; the tiles write disjoint output ranges, so results are
/// bit-identical for any thread count.
inline void dot_matrix(const float* queries, std::size_t nq,
                       const float* prototypes, std::size_t np,
                       std::size_t dim, double* out, bool parallel = true) {
  if (nq == 0 || np == 0) return;
  if (!parallel || nq <= kRowTile) {
    detail::dot_matrix_tile(queries, 0, nq, prototypes, np, dim, out);
    return;
  }
  const std::size_t tiles = (nq + kRowTile - 1) / kRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kRowTile;
    const std::size_t end = begin + kRowTile < nq ? begin + kRowTile : nq;
    detail::dot_matrix_tile(queries, begin, end, prototypes, np, dim, out);
  });
}

/// Row-major [nq × np] matrix of cosine similarities δ(Q_q, P_p), the batched
/// form of `cosine`: a cache-blocked GEMM-style kernel with a fused
/// single-pass norm per query row. Pairs involving a zero vector get
/// similarity 0 (the HDC convention). `p_norms_sq`, when non-null, must hold
/// the np squared prototype norms (classifiers cache these); pass nullptr to
/// have them computed here. Parallelized over query row tiles.
inline void similarity_matrix(const float* queries, std::size_t nq,
                              const float* prototypes, std::size_t np,
                              std::size_t dim, double* out,
                              const double* p_norms_sq = nullptr,
                              bool parallel = true) {
  if (nq == 0 || np == 0) return;
  std::vector<double> scratch;
  if (p_norms_sq == nullptr) {
    scratch.resize(np);
    nrm2_sq_rows(prototypes, np, dim, scratch.data());
    p_norms_sq = scratch.data();
  }

  const auto tile = [&](std::size_t q_begin, std::size_t q_end) {
    detail::dot_matrix_tile(queries, q_begin, q_end, prototypes, np, dim, out);
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const float* qrow = queries + q * dim;
      const double q_norm_sq = dot(qrow, qrow, dim);
      double* row = out + q * np;
      if (q_norm_sq == 0.0) {
        for (std::size_t p = 0; p < np; ++p) row[p] = 0.0;
        continue;
      }
      for (std::size_t p = 0; p < np; ++p) {
        const double denom_sq = q_norm_sq * p_norms_sq[p];
        row[p] = denom_sq > 0.0 ? row[p] / std::sqrt(denom_sq) : 0.0;
      }
    }
  };

  if (!parallel || nq <= kRowTile) {
    tile(0, nq);
    return;
  }
  const std::size_t tiles = (nq + kRowTile - 1) / kRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kRowTile;
    const std::size_t end = begin + kRowTile < nq ? begin + kRowTile : nq;
    tile(begin, end);
  });
}

// ---------------------------------------------------------------------------
// Batched encoding kernels.
//
// Window→hypervector encoding reduces to two dense shapes:
//   * the multi-sensor n-gram encoder binds rotated level hypervectors and
//     bundles the grams — per gram, the scalar pipeline is
//     rotate + (n-1)×hadamard_rotated + axpy: n+1 sweeps over d plus a gram
//     temporary. ngram_axpy fuses the whole gram into ONE sweep;
//   * the random-projection encoder is a [windows × features]·[features × D]
//     matrix product with a cos epilogue. project_cos_matrix reuses the
//     similarity engine's cache-blocked tile driver so the projection rows
//     stay L2-resident across a whole tile of windows.
// Both keep the exact arithmetic order of their scalar counterparts, so
// batched results are bit-identical to the per-window paths.

/// Maximum factor count the fused n-gram kernel accepts (the encoder falls
/// back to the multi-pass pipeline for longer grams; real configs use 2-5).
inline constexpr std::size_t kNgramFusedMaxFactors = 8;

/// acc[j] += weight * Π_p (ρ^{shifts[p]} levels[p])[j]  — the fused n-gram
/// bind-and-bundle. `levels[p]` is a d-float level hypervector and
/// `shifts[p]` its graded-permutation rotation (shifts[p] < d). The rotated
/// reads are resolved by splitting [0, d) at every wrap point, so each
/// segment is a straight multiply chain over n_factors fixed-offset streams —
/// vectorizable, no index arithmetic, no gram temporary. Products are formed
/// in ascending factor order, matching the rotate→hadamard→axpy pipeline
/// bit for bit.
inline void ngram_axpy(const float* const* levels, const std::size_t* shifts,
                       std::size_t n_factors, std::size_t d, float weight,
                       float* acc) noexcept {
  assert(levels != nullptr && shifts != nullptr && acc != nullptr);
  assert(n_factors >= 1 && n_factors <= kNgramFusedMaxFactors);

  // Segment boundaries: 0, every non-zero shift (its wrap point), d.
  std::size_t bounds[kNgramFusedMaxFactors + 2];
  std::size_t nb = 0;
  bounds[nb++] = 0;
  for (std::size_t p = 0; p < n_factors; ++p) {
    assert(shifts[p] < d);
    if (shifts[p] != 0) bounds[nb++] = shifts[p];
  }
  bounds[nb++] = d;
  // Insertion sort: nb <= n_factors + 2 <= 10, cheaper than std::sort here.
  for (std::size_t i = 1; i < nb; ++i) {
    const std::size_t v = bounds[i];
    std::size_t j = i;
    for (; j > 0 && bounds[j - 1] > v; --j) bounds[j] = bounds[j - 1];
    bounds[j] = v;
  }

  const float* ptr[kNgramFusedMaxFactors];
  for (std::size_t seg = 0; seg + 1 < nb; ++seg) {
    const std::size_t a = bounds[seg];
    const std::size_t b = bounds[seg + 1];
    if (a == b) continue;
    // Within [a, b) each factor reads from one fixed offset:
    // (ρ^k L)[j] = L[j - k] for j >= k, L[j + d - k] for j < k.
    for (std::size_t p = 0; p < n_factors; ++p) {
      ptr[p] = a >= shifts[p] ? levels[p] - shifts[p]
                              : levels[p] + (d - shifts[p]);
    }
    float* __restrict y = acc;
    switch (n_factors) {
      case 1: {
        const float* __restrict l0 = ptr[0];
        for (std::size_t j = a; j < b; ++j) y[j] += weight * l0[j];
        break;
      }
      case 2: {
        const float* __restrict l0 = ptr[0];
        const float* __restrict l1 = ptr[1];
        for (std::size_t j = a; j < b; ++j) y[j] += weight * (l0[j] * l1[j]);
        break;
      }
      case 3: {
        const float* __restrict l0 = ptr[0];
        const float* __restrict l1 = ptr[1];
        const float* __restrict l2 = ptr[2];
        for (std::size_t j = a; j < b; ++j) {
          y[j] += weight * ((l0[j] * l1[j]) * l2[j]);
        }
        break;
      }
      default: {
        for (std::size_t j = a; j < b; ++j) {
          float prod = ptr[0][j];
          for (std::size_t p = 1; p < n_factors; ++p) prod *= ptr[p][j];
          y[j] += weight * prod;
        }
        break;
      }
    }
  }
}

/// Fast double-precision cosine for the projection epilogue: Cody-Waite
/// range reduction to [-π/4, π/4] plus Taylor kernels evaluated by Horner.
/// Max absolute error ≈ 2e-14 — four orders of magnitude below the float
/// output resolution, so the encodings are unchanged at float precision —
/// and, unlike the libm call, it is branch-light and inlines, so the
/// epilogue loop pipelines instead of serializing on 41M function calls.
/// Precondition: |x| < ~1e9 (the projections are O(‖x‖·‖w‖), far smaller).
inline float cos_fast(double x) noexcept {
  constexpr double kTwoOverPi = 0.63661977236758134308;
  constexpr double kPio2Hi = 1.57079632679489655800e+00;
  constexpr double kPio2Lo = 6.12323399573676603587e-17;
  const double kd = std::round(x * kTwoOverPi);
  double r = x - kd * kPio2Hi;
  r -= kd * kPio2Lo;
  const double r2 = r * r;
  // Taylor to r^14 (cos) / r^13 (sin): next-term error < 1.1e-15 on the
  // reduced range.
  const double c =
      1.0 +
      r2 * (-1.0 / 2 +
            r2 * (1.0 / 24 +
                  r2 * (-1.0 / 720 +
                        r2 * (1.0 / 40320 +
                              r2 * (-1.0 / 3628800 +
                                    r2 * (1.0 / 479001600 +
                                          r2 * (-1.0 / 87178291200.0)))))));
  const double s =
      r * (1.0 +
           r2 * (-1.0 / 6 +
                 r2 * (1.0 / 120 +
                       r2 * (-1.0 / 5040 +
                             r2 * (1.0 / 362880 +
                                   r2 * (-1.0 / 39916800 +
                                         r2 * (1.0 / 6227020800.0)))))));
  switch (static_cast<long long>(kd) & 3) {
    case 0:
      return static_cast<float>(c);
    case 1:
      return static_cast<float>(-s);
    case 2:
      return static_cast<float>(-c);
    default:
      return static_cast<float>(s);
  }
}

/// Queries per tile of the projection kernel (bounds the accumulator block:
/// kProjQueryTile × kProjColBlock doubles = 32 KiB, L1-resident).
inline constexpr std::size_t kProjQueryTile = 8;
/// Output columns per block of the projection kernel (one W^T row segment of
/// 2 KiB streams against the whole query tile).
inline constexpr std::size_t kProjColBlock = 512;

/// out[q][j] = cos(bias[j] + <X_q, W_j>), row-major [nq × dp]: the batched
/// random-projection encode (flatten → project → cos). X is [nq × features]
/// row-major (flattened windows); `wt` is the TRANSPOSED projection, row-major
/// [features × dp], so the kernel runs feature-major: for each output-column
/// block, acc_q[j] starts at bias[j] and accumulates x_q[f] · W^T[f][j] over
/// f — broadcast-scalar FMA streams with no reduction dependency, exactly the
/// orientation this shape wants (many windows × small F × large D; the
/// row-dot orientation re-streams the whole projection per window). Blocking:
/// queries in tiles of kProjQueryTile share each streamed W^T row segment,
/// accumulators stay L1-resident, and the cos epilogue runs per block while
/// the accumulators are hot. Per-output summation order is fixed (bias, then
/// f ascending, in double), independent of all blocking — results are
/// bit-identical for any thread count and for the parallel flag.
inline void project_cos_matrix(const float* x, std::size_t nq, const float* wt,
                               std::size_t dp, std::size_t features,
                               const float* bias, float* out,
                               bool parallel = true) {
  if (nq == 0 || dp == 0) return;
  assert(x != nullptr && wt != nullptr && bias != nullptr && out != nullptr);
  const auto tile = [&](std::size_t q_begin, std::size_t q_end) {
    const std::size_t rows = q_end - q_begin;
    double acc[kProjQueryTile][kProjColBlock];
    for (std::size_t j0 = 0; j0 < dp; j0 += kProjColBlock) {
      const std::size_t jb = std::min(kProjColBlock, dp - j0);
      for (std::size_t q = 0; q < rows; ++q) {
        for (std::size_t j = 0; j < jb; ++j) {
          acc[q][j] = static_cast<double>(bias[j0 + j]);
        }
      }
      for (std::size_t f = 0; f < features; ++f) {
        const float* __restrict w_row = wt + f * dp + j0;
        for (std::size_t q = 0; q < rows; ++q) {
          const double xf = x[(q_begin + q) * features + f];
          double* __restrict a = acc[q];
          for (std::size_t j = 0; j < jb; ++j) {
            a[j] += xf * static_cast<double>(w_row[j]);
          }
        }
      }
      for (std::size_t q = 0; q < rows; ++q) {
        float* orow = out + (q_begin + q) * dp + j0;
        for (std::size_t j = 0; j < jb; ++j) {
          orow[j] = cos_fast(acc[q][j]);
        }
      }
    }
  };
  const std::size_t tiles = (nq + kProjQueryTile - 1) / kProjQueryTile;
  const auto run_tile = [&](std::size_t t) {
    const std::size_t begin = t * kProjQueryTile;
    const std::size_t end =
        begin + kProjQueryTile < nq ? begin + kProjQueryTile : nq;
    tile(begin, end);
  };
  if (!parallel || tiles == 1) {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
    return;
  }
  parallel_for(tiles, run_tile);
}

}  // namespace smore::ops
