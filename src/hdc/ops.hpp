#pragma once
// Low-level dense kernels for hyperdimensional computing.
//
// Two layers live here:
//
//  * Element-wise primitives (axpy, hadamard, rotate, lerp, ...): header-
//    inline loops the compiler vectorizes at every call site. With
//    -ffp-contract=off (project-wide) their float arithmetic is identical
//    under any per-TU arch flags.
//  * Reduction/matrix kernels (dot family, ngram_axpy, project_cos_matrix):
//    the hot kernels of encode and inference. Their entry points route
//    through the runtime CPU-dispatch table (hdc/dispatch.hpp): one fat
//    binary carries scalar/SSE2/AVX2/AVX-512/NEON variants and resolves the
//    fastest the host can execute at first use. Every variant is pinned
//    bit-identical to the canonical reference in
//    hdc/kernels/kernels_generic.hpp, so dispatch never changes results —
//    across hosts, tiers (SMORE_KERNEL=...), or thread counts.
//
// The matrix drivers keep the three-level blocking scheme (register blocks
// inside the dispatched tile kernels; L2-resident prototype panels; query
// row tiles over the global ThreadPool writing disjoint output slots).
//
// Preconditions are asserted, not thrown: dimensional agreement is a class
// invariant of the callers (see Hypervector), so violations are programming
// errors, not runtime conditions.

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"
#include "util/thread_pool.hpp"

namespace smore::ops {

// Blocking constants and the shared cos epilogue are defined once next to
// the canonical kernels; re-exported here for existing callers.
using smore::kern::cos_fast;
using smore::kern::kDotBlock;
using smore::kern::kNgramFusedMaxFactors;
using smore::kern::kPanelRows;
using smore::kern::kProjColBlock;
using smore::kern::kProjQueryTile;
using smore::kern::kRowTile;

/// Dot product over n contiguous floats, accumulated in double across the
/// canonical chain layout (kernels_generic.hpp) — the hottest kernel of HDC
/// inference (every cosine is one dot per class). Dispatched.
inline double dot(const float* a, const float* b, std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr);
  return kern::table().dot(a, b, n);
}

/// Euclidean norm.
inline double nrm2(const float* a, std::size_t n) noexcept {
  return std::sqrt(dot(a, a, n));
}

/// y += alpha * x
inline void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  assert(x != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// y = alpha * y
inline void scale(float alpha, float* y, std::size_t n) noexcept {
  assert(y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

/// out = a ⊙ b  (element-wise multiply: the HDC binding operation)
inline void hadamard(const float* a, const float* b, float* out,
                     std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

/// y = y ⊙ a  (in-place binding)
inline void hadamard_inplace(const float* a, float* y, std::size_t n) noexcept {
  assert(a != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= a[i];
}

/// out = ρ^k(src): circular right-shift by k positions. The paper's ρ moves
/// the last element to the front; ρ^k moves element i to (i + k) mod n.
/// `out` must not alias `src`.
inline void rotate(const float* src, std::size_t n, std::size_t k,
                   float* out) noexcept {
  assert(src != nullptr && out != nullptr && src != out);
  if (n == 0) return;
  k %= n;
  // out[(i + k) % n] = src[i]  ==  out[j] = src[(j + n - k) % n]
  const std::size_t split = n - k;
  for (std::size_t i = 0; i < split; ++i) out[i + k] = src[i];
  for (std::size_t i = split; i < n; ++i) out[i + k - n] = src[i];
}

/// y[j] *= src[(j - k) mod n]  for all j: in-place binding with the k-times
/// rotated source, without materializing the rotation. This is the hot inner
/// loop of the temporal n-gram encoder (Sec 3.3): binding ρ^k(H_t) into an
/// accumulator. Precondition: k < n.
inline void hadamard_rotated(const float* src, std::size_t n, std::size_t k,
                             float* y) noexcept {
  assert(src != nullptr && y != nullptr && k < n);
  // (ρ^k src)[j] = src[(j - k + n) mod n]; split at j == k to avoid the mod.
  const float* wrapped = src + (n - k);
  for (std::size_t j = 0; j < k; ++j) y[j] *= wrapped[j];
  for (std::size_t j = k; j < n; ++j) y[j] *= src[j - k];
}

/// Fused dot product and squared norms: one pass over both arrays computing
/// <a,b>, <a,a>, and <b,b> simultaneously. Each loaded element feeds three
/// accumulator families, so cosine costs one memory sweep instead of the
/// three a naive nrm2(a) + nrm2(b) + dot(a,b) sequence would make. The
/// chains match `dot` exactly, so the fused ab equals dot(a, b) bit for
/// bit. Dispatched.
inline void dot_and_norms(const float* a, const float* b, std::size_t n,
                          double& ab, double& aa, double& bb) noexcept {
  assert(a != nullptr && b != nullptr);
  kern::table().dot_and_norms(a, b, n, ab, aa, bb);
}

/// Cosine similarity; returns 0 when either vector is all-zero (the HDC
/// convention: the zero vector is "similar to nothing"). Single-pass: the
/// dot and both norms come from one fused sweep (see dot_and_norms).
inline double cosine(const float* a, const float* b, std::size_t n) noexcept {
  double ab = 0.0, aa = 0.0, bb = 0.0;
  dot_and_norms(a, b, n, ab, aa, bb);
  if (aa == 0.0 || bb == 0.0) return 0.0;
  return ab / std::sqrt(aa * bb);
}

/// out = (1-t)*a + t*b  (linear interpolation: the paper's value quantization)
inline void lerp(const float* a, const float* b, float t, float* out,
                 std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  const float s = 1.0f - t;
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i] + t * b[i];
}

// ---------------------------------------------------------------------------
// Batched similarity kernels.
//
// SMORE inference is one dot product per (query, prototype) pair — per class,
// per domain descriptor, per ensembled class vector. Computed one query at a
// time, every pair re-streams the query row and pays a call + allocation per
// query. The kernels below treat the whole problem as a
// [n_queries × n_prototypes] matrix product over row-major blocks:
//   * register blocking lives inside the dispatched tile kernel (each loaded
//     query element feeds kDotBlock prototype chains on tiers with the
//     registers for it);
//   * cache blocking: prototypes are walked in panels small enough to stay
//     L2-resident across a whole tile of queries;
//   * thread blocking: query row tiles are distributed over the global
//     ThreadPool; outputs land in disjoint pre-sized slots, so the result is
//     bit-identical for any thread count.

/// out[p] = <q, P_p> for the np row-major rows of P: a one-query tile of the
/// dispatched matrix kernel (register blocking included).
inline void dot_batch(const float* q, const float* prototypes, std::size_t np,
                      std::size_t dim, double* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  kern::table().dot_matrix_tile(q, 0, 1, prototypes, np, dim, out);
}

/// Squared Euclidean norm of each of the np row-major rows.
inline void nrm2_sq_rows(const float* rows, std::size_t np, std::size_t dim,
                         double* out) noexcept {
  assert(np == 0 || (rows != nullptr && out != nullptr));
  const auto dot_fn = kern::table().dot;
  for (std::size_t p = 0; p < np; ++p) {
    const float* r = rows + p * dim;
    out[p] = dot_fn(r, r, dim);
  }
}

namespace detail {

/// Serial core shared by the matrix drivers: dots of queries [q_begin, q_end)
/// against all np prototypes, written to out (row-major [nq × np], absolute
/// row indexing). Dispatched; see kernels_generic.hpp for the reference.
inline void dot_matrix_tile(const float* queries, std::size_t q_begin,
                            std::size_t q_end, const float* prototypes,
                            std::size_t np, std::size_t dim,
                            double* out) noexcept {
  kern::table().dot_matrix_tile(queries, q_begin, q_end, prototypes, np, dim,
                                out);
}

}  // namespace detail

/// Row-major [nq × np] matrix of raw dot products <Q_q, P_p>. `parallel`
/// splits the query rows into kRowTile-sized tiles over the global
/// ThreadPool; the tiles write disjoint output ranges, so results are
/// bit-identical for any thread count.
inline void dot_matrix(const float* queries, std::size_t nq,
                       const float* prototypes, std::size_t np,
                       std::size_t dim, double* out, bool parallel = true) {
  if (nq == 0 || np == 0) return;
  const auto& table = kern::table();
  if (!parallel || nq <= kRowTile) {
    table.dot_matrix_tile(queries, 0, nq, prototypes, np, dim, out);
    return;
  }
  const std::size_t tiles = (nq + kRowTile - 1) / kRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kRowTile;
    const std::size_t end = begin + kRowTile < nq ? begin + kRowTile : nq;
    table.dot_matrix_tile(queries, begin, end, prototypes, np, dim, out);
  });
}

/// Row-major [nq × np] matrix of cosine similarities δ(Q_q, P_p), the batched
/// form of `cosine`: a cache-blocked GEMM-style kernel with a fused
/// single-pass norm per query row. Pairs involving a zero vector get
/// similarity 0 (the HDC convention). `p_norms_sq`, when non-null, must hold
/// the np squared prototype norms (classifiers cache these); pass nullptr to
/// have them computed here. Parallelized over query row tiles.
inline void similarity_matrix(const float* queries, std::size_t nq,
                              const float* prototypes, std::size_t np,
                              std::size_t dim, double* out,
                              const double* p_norms_sq = nullptr,
                              bool parallel = true) {
  if (nq == 0 || np == 0) return;
  const auto& table = kern::table();
  std::vector<double> scratch;
  if (p_norms_sq == nullptr) {
    scratch.resize(np);
    nrm2_sq_rows(prototypes, np, dim, scratch.data());
    p_norms_sq = scratch.data();
  }

  const auto tile = [&](std::size_t q_begin, std::size_t q_end) {
    table.dot_matrix_tile(queries, q_begin, q_end, prototypes, np, dim, out);
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const float* qrow = queries + q * dim;
      const double q_norm_sq = table.dot(qrow, qrow, dim);
      double* row = out + q * np;
      if (q_norm_sq == 0.0) {
        for (std::size_t p = 0; p < np; ++p) row[p] = 0.0;
        continue;
      }
      for (std::size_t p = 0; p < np; ++p) {
        const double denom_sq = q_norm_sq * p_norms_sq[p];
        row[p] = denom_sq > 0.0 ? row[p] / std::sqrt(denom_sq) : 0.0;
      }
    }
  };

  if (!parallel || nq <= kRowTile) {
    tile(0, nq);
    return;
  }
  const std::size_t tiles = (nq + kRowTile - 1) / kRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kRowTile;
    const std::size_t end = begin + kRowTile < nq ? begin + kRowTile : nq;
    tile(begin, end);
  });
}

// ---------------------------------------------------------------------------
// Batched encoding kernels.
//
// Window→hypervector encoding reduces to two dense shapes:
//   * the multi-sensor n-gram encoder binds rotated level hypervectors and
//     bundles the grams — per gram, the scalar pipeline is
//     rotate + (n-1)×hadamard_rotated + axpy: n+1 sweeps over d plus a gram
//     temporary. ngram_axpy fuses the whole gram into ONE sweep;
//   * the random-projection encoder is a [windows × features]·[features × D]
//     matrix product with a cos epilogue. project_cos_matrix reuses the
//     similarity engine's cache-blocked tile driver so the projection rows
//     stay L2-resident across a whole tile of windows.
// Both keep the exact arithmetic order of their scalar counterparts, so
// batched results are bit-identical to the per-window paths.

/// acc[j] += weight * Π_p (ρ^{shifts[p]} levels[p])[j]  — the fused n-gram
/// bind-and-bundle (see kernels_generic.hpp for the reference and the
/// segment-splitting scheme). Dispatched: higher tiers recompile the
/// element-wise body at their vector width, bit-identical with contraction
/// off.
inline void ngram_axpy(const float* const* levels, const std::size_t* shifts,
                       std::size_t n_factors, std::size_t d, float weight,
                       float* acc) noexcept {
  assert(levels != nullptr && shifts != nullptr && acc != nullptr);
  assert(n_factors >= 1 && n_factors <= kNgramFusedMaxFactors);
  kern::table().ngram_axpy(levels, shifts, n_factors, d, weight, acc);
}

/// out[q][j] = cos(bias[j] + <X_q, W_j>), row-major [nq × dp]: the batched
/// random-projection encode (flatten → project → cos). X is [nq × features]
/// row-major (flattened windows); `wt` is the TRANSPOSED projection, row-major
/// [features × dp], so the kernel runs feature-major (see kernels_generic.hpp
/// for the blocking and the fixed per-output summation order). Queries run in
/// tiles of kProjQueryTile over the global ThreadPool; results are
/// bit-identical for any thread count and for the parallel flag.
inline void project_cos_matrix(const float* x, std::size_t nq, const float* wt,
                               std::size_t dp, std::size_t features,
                               const float* bias, float* out,
                               bool parallel = true) {
  if (nq == 0 || dp == 0) return;
  assert(x != nullptr && wt != nullptr && bias != nullptr && out != nullptr);
  const auto& table = kern::table();
  const std::size_t tiles = (nq + kProjQueryTile - 1) / kProjQueryTile;
  const auto run_tile = [&](std::size_t t) {
    const std::size_t begin = t * kProjQueryTile;
    const std::size_t end =
        begin + kProjQueryTile < nq ? begin + kProjQueryTile : nq;
    table.project_cos_tile(x, begin, end, wt, dp, features, bias, out);
  };
  if (!parallel || tiles == 1) {
    for (std::size_t t = 0; t < tiles; ++t) run_tile(t);
    return;
  }
  parallel_for(tiles, run_tile);
}

}  // namespace smore::ops
