#pragma once
// Low-level dense kernels for hyperdimensional computing.
//
// Everything in the HDC layer reduces to a handful of element-wise loops over
// contiguous float arrays. They are kept header-inline so the compiler can
// vectorize them at every call site; all higher-level operations
// (bundle / bind / permute / cosine, encoding, classifier updates) are built
// from these.
//
// Preconditions are asserted, not thrown: dimensional agreement is a class
// invariant of the callers (see Hypervector), so violations are programming
// errors, not runtime conditions.

#include <cassert>
#include <cmath>
#include <cstddef>

namespace smore::ops {

/// Dot product over n contiguous floats (accumulated in double for
/// stability). Four independent accumulators break the loop-carried
/// dependency so the compiler can pipeline/vectorize the float->double
/// converts — this is the hottest kernel of HDC inference (every cosine is
/// one dot per class).
inline double dot(const float* a, const float* b, std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr);
  double acc0 = 0.0;
  double acc1 = 0.0;
  double acc2 = 0.0;
  double acc3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += static_cast<double>(a[i]) * b[i];
    acc1 += static_cast<double>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<double>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<double>(a[i + 3]) * b[i + 3];
  }
  for (; i < n; ++i) acc0 += static_cast<double>(a[i]) * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Euclidean norm.
inline double nrm2(const float* a, std::size_t n) noexcept {
  return std::sqrt(dot(a, a, n));
}

/// y += alpha * x
inline void axpy(float alpha, const float* x, float* y, std::size_t n) noexcept {
  assert(x != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

/// y = alpha * y
inline void scale(float alpha, float* y, std::size_t n) noexcept {
  assert(y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

/// out = a ⊙ b  (element-wise multiply: the HDC binding operation)
inline void hadamard(const float* a, const float* b, float* out,
                     std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

/// y = y ⊙ a  (in-place binding)
inline void hadamard_inplace(const float* a, float* y, std::size_t n) noexcept {
  assert(a != nullptr && y != nullptr);
  for (std::size_t i = 0; i < n; ++i) y[i] *= a[i];
}

/// out = ρ^k(src): circular right-shift by k positions. The paper's ρ moves
/// the last element to the front; ρ^k moves element i to (i + k) mod n.
/// `out` must not alias `src`.
inline void rotate(const float* src, std::size_t n, std::size_t k,
                   float* out) noexcept {
  assert(src != nullptr && out != nullptr && src != out);
  if (n == 0) return;
  k %= n;
  // out[(i + k) % n] = src[i]  ==  out[j] = src[(j + n - k) % n]
  const std::size_t split = n - k;
  for (std::size_t i = 0; i < split; ++i) out[i + k] = src[i];
  for (std::size_t i = split; i < n; ++i) out[i + k - n] = src[i];
}

/// y[j] *= src[(j - k) mod n]  for all j: in-place binding with the k-times
/// rotated source, without materializing the rotation. This is the hot inner
/// loop of the temporal n-gram encoder (Sec 3.3): binding ρ^k(H_t) into an
/// accumulator. Precondition: k < n.
inline void hadamard_rotated(const float* src, std::size_t n, std::size_t k,
                             float* y) noexcept {
  assert(src != nullptr && y != nullptr && k < n);
  // (ρ^k src)[j] = src[(j - k + n) mod n]; split at j == k to avoid the mod.
  const float* wrapped = src + (n - k);
  for (std::size_t j = 0; j < k; ++j) y[j] *= wrapped[j];
  for (std::size_t j = k; j < n; ++j) y[j] *= src[j - k];
}

/// Cosine similarity; returns 0 when either vector is all-zero (the HDC
/// convention: the zero vector is "similar to nothing").
inline double cosine(const float* a, const float* b, std::size_t n) noexcept {
  const double na = nrm2(a, n);
  const double nb = nrm2(b, n);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot(a, b, n) / (na * nb);
}

/// out = (1-t)*a + t*b  (linear interpolation: the paper's value quantization)
inline void lerp(const float* a, const float* b, float t, float* out,
                 std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr && out != nullptr);
  const float s = 1.0f - t;
  for (std::size_t i = 0; i < n; ++i) out[i] = s * a[i] + t * b[i];
}

}  // namespace smore::ops
