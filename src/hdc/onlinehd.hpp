#pragma once
// OnlineHD-style hyperdimensional classifier (Hernandez-Cano et al., DATE'21).
//
// This is simultaneously:
//   * "BaselineHD" — the SOTA single-model HDC baseline of the paper [22]
//     (trained on all source domains pooled, no distribution-shift handling);
//   * the per-domain learner inside SMORE's domain-specific modeling
//     (paper Sec 3.4, Eq. 1-2).
//
// Training has two phases, mirroring the paper's description of "bundling
// data points by scaling a proper weight to each of them":
//   1. adaptive single-pass bootstrap: C_label += (1 - δ(H, C_label)) · H
//   2. iterative refinement: for each mispredicted sample (predicted class i,
//      true class j):
//         C_j ← C_j + η (1 - δ(H, C_j)) H
//         C_i ← C_i - η (1 - δ(H, C_i)) H            (Eq. 2)
// Samples that are already well represented contribute little (1 - δ ≈ 0),
// which prevents model saturation and speeds convergence.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/wide_counter.hpp"

namespace smore {

/// Hyperparameters of OnlineHD training.
struct OnlineHDConfig {
  float learning_rate = 0.035f;  ///< η in Eq. 2
  int epochs = 20;               ///< refinement iterations after the bootstrap
  bool shuffle = true;           ///< reshuffle sample order each epoch
  std::uint64_t seed = 0x0d1e;   ///< shuffle seed
};

/// Multi-class HDC classifier: one class hypervector per class, cosine
/// similarity argmax prediction. Class-vector norms are cached and kept
/// in sync by every update, so predictions cost one dot product per class.
///
/// Class banks accumulate in double wide counters (hdc/wide_counter.hpp)
/// mirrored to float for the similarity kernels: a model that lives through
/// unbounded continual bootstrap/refine updates keeps learning instead of
/// saturating float accumulation. Update decisions (δ, argmax) read the
/// float mirror, so quantization and serving behavior are unchanged.
///
/// Concurrency: const prediction methods are safe to call from multiple
/// threads on a model produced by fit() or load() (the packed batch cache is
/// warmed there). Updates (bootstrap/refine/set_class_vector) are not
/// synchronized against readers; after direct updates, make one prediction
/// call (or refit) before sharing the model across threads again.
class OnlineHDClassifier {
 public:
  /// Zero-initialized model. Throws std::invalid_argument when
  /// num_classes <= 0 or dim == 0.
  OnlineHDClassifier(int num_classes, std::size_t dim);

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(classes_.size());
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Full training: adaptive bootstrap pass + `config.epochs` refinement
  /// epochs over `train`. Returns per-epoch training accuracy (bootstrap
  /// excluded), useful for convergence studies (paper Fig. 1b).
  std::vector<double> fit(const HvDataset& train, const OnlineHDConfig& config);

  /// Adaptive bootstrap for a single sample (phase 1).
  void bootstrap(std::span<const float> hv, int label);

  /// One Eq.-2 refinement step for a single sample (phase 2); returns true
  /// when the sample was already classified correctly (no update applied).
  bool refine(std::span<const float> hv, int label, float learning_rate);

  /// Predicted class: argmax_c δ(hv, C_c). Thin wrapper over a batch of one.
  [[nodiscard]] int predict(std::span<const float> hv) const;

  /// Cosine similarity of `hv` to every class hypervector. Thin wrapper over
  /// a batch of one.
  [[nodiscard]] std::vector<double> similarities(std::span<const float> hv) const;

  /// Predicted class per query row: one blocked matrix kernel over the packed
  /// class vectors instead of a per-query similarity loop.
  [[nodiscard]] std::vector<int> predict_batch(HvView queries) const;

  /// Row-major [queries.rows × num_classes] cosine similarity matrix
  /// δ(Q_i, C_c), computed by ops::similarity_matrix against the packed class
  /// vectors with cached norms.
  [[nodiscard]] std::vector<double> similarities_batch(HvView queries) const;

  /// Fraction of `data` classified correctly (batched: one matrix kernel over
  /// the whole dataset).
  [[nodiscard]] double accuracy(const HvDataset& data) const;

  /// Class hypervector C_c (read-only).
  [[nodiscard]] const Hypervector& class_vector(int c) const;

  /// Overwrite class hypervector C_c (used by model ensembling; re-syncs the
  /// cached norm).
  void set_class_vector(int c, Hypervector hv);

  /// Binary serialization (dimension, class count, raw class vectors).
  void save(std::ostream& out) const;
  static OnlineHDClassifier load(std::istream& in);

  /// Rebuild the lazy batch cache now if it is stale. After this, const
  /// prediction methods are safe from any number of threads until the next
  /// update — the serving snapshot contract (DESIGN.md §9).
  void warm_cache() const { (void)packed(); }

 private:
  [[nodiscard]] double cosine_to_class(std::span<const float> hv, double hv_norm,
                                       int c) const;
  void refresh_norm(int c);
  /// C_c += weight · hv on the double master, then re-materialize the float
  /// mirror and its cached norm (the one write path of bootstrap/refine).
  void update_class(int c, double weight, std::span<const float> hv);
  /// Packed [num_classes × dim] class-vector block plus squared norms for the
  /// batch kernels; rebuilt lazily after any class-vector update.
  const HvMatrix& packed() const;

  std::size_t dim_;
  std::vector<Hypervector> classes_;     // float mirrors (query plane)
  std::vector<WideAccumulator> accum_;   // double masters (update plane)
  std::vector<double> norms_;  // cached ‖C_c‖, kept in sync with classes_
  // Batch-path caches: contiguous class matrix and squared norms, invalidated
  // by every update and repacked on the next batch call.
  mutable HvMatrix packed_;
  mutable std::vector<double> packed_norms_sq_;
  mutable bool packed_stale_ = true;
};

}  // namespace smore
