#pragma once
// Encoder: the common interface of every window→hypervector encoder.
//
// The encode layer is batch-first: the primitive operation is "encode this
// whole WindowDataset into one packed [n × dim] block", and the scalar calls
// are batches of one. This mirrors the batched similarity engine on the
// inference side — together they make the full train/adapt/infer pipeline run
// through blocked, multi-threaded matrix kernels with no per-window loops in
// any consumer layer.
//
// Contract for implementations of encode_batch:
//   * `out` is resized to [dataset.size() × dim()] and row i is the encoding
//     of window i. Encoders with per-window randomness use the row index as
//     the salt (matching the scalar `encode(window, salt = i)` convention).
//   * `parallel = false` must produce bit-identical rows to `parallel = true`
//     (benches time the single-thread kernels; tests pin the equivalence).
//   * Results are bit-identical for any thread count: rows are computed
//     independently and land in disjoint pre-sized slots.

#include <cstddef>
#include <iosfwd>
#include <memory>

#include "data/timeseries.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"

namespace smore {

/// Abstract window→hypervector encoder (batch-first; see the header note).
class Encoder {
 public:
  virtual ~Encoder() = default;

  /// Hyperdimensional output size d.
  [[nodiscard]] virtual std::size_t dim() const noexcept = 0;

  /// Resident bytes of the encoder's materialized state — basis vectors,
  /// level banks, projection matrices. Every basis is a deterministic
  /// function of (config, seed) built lazily on first use, so a freshly
  /// loaded encoder reports near zero and grows once it starts encoding:
  /// callers budgeting memory (serve/registry) get a point-in-time gauge,
  /// not a worst-case bound. Default: stateless.
  [[nodiscard]] virtual std::size_t footprint_bytes() const { return 0; }

  /// Encode every window of `dataset` into the rows of `out` (see the
  /// contract above). `parallel` gates the thread pool.
  virtual void encode_batch(const WindowDataset& dataset, HvMatrix& out,
                            bool parallel) const = 0;

  /// Parallel-by-default convenience overload.
  void encode_batch(const WindowDataset& dataset, HvMatrix& out) const {
    encode_batch(dataset, out, /*parallel=*/true);
  }

  /// Encode one window: a batch of one through encode_batch (salt 0).
  /// Throws std::invalid_argument for an empty window.
  [[nodiscard]] Hypervector encode_one(const Window& window) const;

  /// Encode a whole dataset, carrying labels and domains into the result.
  [[nodiscard]] HvDataset encode_dataset(const WindowDataset& dataset) const;

  /// Serialize this encoder: a 4-byte type tag followed by a versioned
  /// config+seed record. The basis itself is never stored — every encoder's
  /// basis is a deterministic function of (config, seed), so load_encoder
  /// reconstructs bit-identical encodings on any host at any thread count
  /// (pinned by the deterministic-reconstruction tests). This is what makes
  /// a Pipeline artifact self-describing and portable.
  virtual void save(std::ostream& out) const = 0;
};

/// Reconstruct an encoder written by Encoder::save: reads the type tag and
/// dispatches to the matching encoder's loader. Throws std::runtime_error on
/// an unknown tag or a corrupt record.
[[nodiscard]] std::unique_ptr<Encoder> load_encoder(std::istream& in);

}  // namespace smore
