#include "hdc/encoder_base.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hdc/encoder.hpp"
#include "hdc/projection_encoder.hpp"
#include "util/serial.hpp"

namespace smore {

Hypervector Encoder::encode_one(const Window& window) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("Encoder::encode_one: empty window");
  }
  WindowDataset one("encode_one", window.channels(), window.steps());
  one.add(window);
  HvMatrix block;
  encode_batch(one, block, /*parallel=*/false);
  Hypervector out(dim());
  const auto row = block.row(0);
  std::copy(row.begin(), row.end(), out.data());
  return out;
}

HvDataset Encoder::encode_dataset(const WindowDataset& dataset) const {
  HvMatrix block;
  encode_batch(dataset, block, /*parallel=*/true);
  std::vector<int> labels(dataset.size());
  std::vector<int> domains(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    labels[i] = dataset[i].label();
    domains[i] = dataset[i].domain();
  }
  return HvDataset::adopt(std::move(block), std::move(labels),
                          std::move(domains));
}

std::unique_ptr<Encoder> load_encoder(std::istream& in) {
  const auto tag = serial::read_pod<std::uint32_t>(in, "load_encoder");
  // Encoders hold synchronization members (mutex/once_flag) and are
  // immovable, so each branch parses the config record and constructs the
  // encoder in place.
  switch (tag) {
    case MultiSensorEncoder::kTypeTag:
      return std::make_unique<MultiSensorEncoder>(
          MultiSensorEncoder::load_config(in));
    case ProjectionEncoder::kTypeTag:
      return std::make_unique<ProjectionEncoder>(
          ProjectionEncoder::load_config(in));
    default:
      throw std::runtime_error("load_encoder: unknown encoder type tag");
  }
}

}  // namespace smore
