#include "hdc/encoder_base.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

namespace smore {

Hypervector Encoder::encode_one(const Window& window) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("Encoder::encode_one: empty window");
  }
  WindowDataset one("encode_one", window.channels(), window.steps());
  one.add(window);
  HvMatrix block;
  encode_batch(one, block, /*parallel=*/false);
  Hypervector out(dim());
  const auto row = block.row(0);
  std::copy(row.begin(), row.end(), out.data());
  return out;
}

HvDataset Encoder::encode_dataset(const WindowDataset& dataset) const {
  HvMatrix block;
  encode_batch(dataset, block, /*parallel=*/true);
  std::vector<int> labels(dataset.size());
  std::vector<int> domains(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    labels[i] = dataset[i].label();
    domains[i] = dataset[i].domain();
  }
  return HvDataset::adopt(std::move(block), std::move(labels),
                          std::move(domains));
}

}  // namespace smore
