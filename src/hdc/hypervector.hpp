#pragma once
// Hypervector: the basic value type of the HDC layer (Sec 3.1 of the paper).
//
// A hypervector is a dense real-valued vector of (typically thousands of)
// elements. Random base hypervectors are bipolar (+1/-1); bundling accumulates
// arbitrary reals, so the element type is float throughout.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "hdc/ops.hpp"
#include "util/rng.hpp"

namespace smore {

/// Dense real-valued hypervector supporting the four canonical HDC
/// operations: bundling (+), binding (*), permutation (ρ), and cosine
/// similarity (δ). Dimensional agreement between operands is an invariant;
/// mixed-dimension arithmetic throws std::invalid_argument.
class Hypervector {
 public:
  /// An empty (dimension-0) hypervector; useful as a placeholder.
  Hypervector() = default;

  /// Zero hypervector of the given dimension.
  explicit Hypervector(std::size_t dim) : v_(dim, 0.0f) {}

  /// Take ownership of raw values.
  explicit Hypervector(std::vector<float> values) : v_(std::move(values)) {}

  /// Random bipolar (+1/-1) hypervector: the paper's "randomly generated
  /// hypervector". Two random bipolar hypervectors of the same (large)
  /// dimension are nearly orthogonal with overwhelming probability.
  static Hypervector random_bipolar(std::size_t dim, Rng& rng) {
    std::vector<float> v(dim);
    for (auto& x : v) x = rng.bipolar();
    return Hypervector(std::move(v));
  }

  /// Random Gaussian hypervector (used by projection-style encoders).
  static Hypervector random_gaussian(std::size_t dim, Rng& rng) {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    return Hypervector(std::move(v));
  }

  [[nodiscard]] std::size_t dim() const noexcept { return v_.size(); }
  [[nodiscard]] bool empty() const noexcept { return v_.empty(); }

  [[nodiscard]] float* data() noexcept { return v_.data(); }
  [[nodiscard]] const float* data() const noexcept { return v_.data(); }
  [[nodiscard]] std::span<const float> span() const noexcept { return v_; }
  [[nodiscard]] std::span<float> span() noexcept { return v_; }

  float& operator[](std::size_t i) noexcept { return v_[i]; }
  float operator[](std::size_t i) const noexcept { return v_[i]; }

  /// Bundling: element-wise accumulation.
  Hypervector& operator+=(const Hypervector& other) {
    check_same_dim(other);
    ops::axpy(1.0f, other.data(), data(), dim());
    return *this;
  }

  Hypervector& operator-=(const Hypervector& other) {
    check_same_dim(other);
    ops::axpy(-1.0f, other.data(), data(), dim());
    return *this;
  }

  /// Binding: element-wise multiplication.
  Hypervector& operator*=(const Hypervector& other) {
    check_same_dim(other);
    ops::hadamard_inplace(other.data(), data(), dim());
    return *this;
  }

  Hypervector& operator*=(float scalar) noexcept {
    ops::scale(scalar, data(), dim());
    return *this;
  }

  /// this += alpha * other (the classifier update primitive, Eq. 2).
  void add_scaled(const Hypervector& other, float alpha) {
    check_same_dim(other);
    ops::axpy(alpha, other.data(), data(), dim());
  }

  /// Euclidean norm.
  [[nodiscard]] double norm() const noexcept { return ops::nrm2(data(), dim()); }

  /// Scale to unit norm; a zero vector stays zero.
  void normalize() noexcept {
    const double n = norm();
    if (n > 0.0) ops::scale(static_cast<float>(1.0 / n), data(), dim());
  }

  /// Set every element to zero.
  void clear() noexcept {
    for (auto& x : v_) x = 0.0f;
  }

  friend Hypervector operator+(Hypervector a, const Hypervector& b) {
    a += b;
    return a;
  }
  friend Hypervector operator-(Hypervector a, const Hypervector& b) {
    a -= b;
    return a;
  }
  friend Hypervector operator*(Hypervector a, const Hypervector& b) {
    a *= b;
    return a;
  }
  friend Hypervector operator*(Hypervector a, float s) {
    a *= s;
    return a;
  }
  friend Hypervector operator*(float s, Hypervector a) {
    a *= s;
    return a;
  }

  friend bool operator==(const Hypervector& a, const Hypervector& b) {
    return a.v_ == b.v_;
  }

 private:
  void check_same_dim(const Hypervector& other) const {
    if (dim() != other.dim()) {
      throw std::invalid_argument(
          "Hypervector: dimension mismatch (" + std::to_string(dim()) +
          " vs " + std::to_string(other.dim()) + ")");
    }
  }

  std::vector<float> v_;
};

/// Cosine similarity δ(a, b). Returns 0 for zero vectors.
/// Throws std::invalid_argument on dimension mismatch.
inline double cosine_similarity(const Hypervector& a, const Hypervector& b) {
  if (a.dim() != b.dim()) {
    throw std::invalid_argument("cosine_similarity: dimension mismatch");
  }
  return ops::cosine(a.data(), b.data(), a.dim());
}

/// Permutation ρ^k: circular shift by k positions (Sec 3.1). ρ moves the last
/// element to the front, so element i goes to (i + k) mod dim.
inline Hypervector permute(const Hypervector& h, std::size_t k = 1) {
  Hypervector out(h.dim());
  if (h.dim() != 0) ops::rotate(h.data(), h.dim(), k, out.data());
  return out;
}

/// Bind two hypervectors: H_bind = a * b (element-wise).
inline Hypervector bind(const Hypervector& a, const Hypervector& b) {
  Hypervector out = a;
  out *= b;
  return out;
}

/// Bundle a set of hypervectors: Σ_i hs[i].
/// Throws std::invalid_argument when `hs` is empty or dimensions disagree.
inline Hypervector bundle(std::span<const Hypervector> hs) {
  if (hs.empty()) {
    throw std::invalid_argument("bundle: empty input");
  }
  Hypervector out(hs.front().dim());
  for (const auto& h : hs) out += h;
  return out;
}

}  // namespace smore
