#pragma once
// DOMINO: domain-invariant hyperdimensional classification (Wang et al.,
// ICCAD 2023) — the HDC domain-generalization baseline of the paper (Sec 2.2).
//
// DOMINO "constantly discards and regenerates biased dimensions representing
// domain-variant information". Reproduction strategy (see DESIGN.md): the
// dataset is encoded once at a large pool dimension; DOMINO's model lives on
// an *active* subset of d* dimensions. Each regeneration round:
//   1. train the global model on the active dimensions;
//   2. build per-domain class prototypes and score every active dimension by
//      its cross-domain variance (high variance = domain-variant = biased);
//   3. discard the most biased dimensions and replace them with fresh, unseen
//      dimensions drawn from the pool (the "regeneration").
// Rounds continue until the total dimensionality it has consumed (initial d*
// plus all regenerated dimensions) reaches the fairness budget — the paper
// matches this total to SMORE's d = 8k while d* = 1k (Sec 4.1).
//
// This preserves the three behaviours the paper reports: domain
// generalization via dimension selection, notably longer training (many
// retraining rounds), and a compressed final model (d* dims) that infers
// slightly faster than full-dimension HDC models.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/hv_dataset.hpp"
#include "hdc/onlinehd.hpp"

namespace smore {

/// Hyperparameters of the DOMINO reproduction.
struct DominoConfig {
  std::size_t active_dim = 1024;   ///< d*: working model dimensionality
  std::size_t total_dim = 8192;    ///< budget: initial + regenerated dims
  double regen_fraction = 0.10;    ///< share of active dims replaced per round
  int inner_epochs = 4;            ///< refinement epochs per round
  float learning_rate = 0.035f;
  std::uint64_t seed = 0xd0177;
};

/// Domain-generalizing HDC classifier over a pre-encoded pool of dimensions.
class DominoClassifier {
 public:
  /// Throws std::invalid_argument when active_dim == 0, active_dim >
  /// total_dim, or regen_fraction outside (0, 1).
  DominoClassifier(int num_classes, const DominoConfig& config);

  [[nodiscard]] const DominoConfig& config() const noexcept { return config_; }

  /// Number of regeneration rounds `fit` will run (pool exhaustion schedule).
  [[nodiscard]] int planned_rounds() const noexcept;

  /// Train on `train`, whose dim() must be >= config.total_dim (the encoded
  /// pool). Returns the per-round training accuracy trace.
  std::vector<double> fit(const HvDataset& train);

  /// Predict from a full pool-dimension row (active dims are gathered
  /// internally).
  [[nodiscard]] int predict(std::span<const float> full_row) const;

  /// Fraction of `data` (pool-dimension rows) classified correctly.
  [[nodiscard]] double accuracy(const HvDataset& data) const;

  /// The active dimension indices of the final model (for inspection/tests).
  [[nodiscard]] const std::vector<std::size_t>& active_dims() const noexcept {
    return active_;
  }

  /// Total distinct pool dimensions consumed across all rounds.
  [[nodiscard]] std::size_t consumed_dims() const noexcept { return consumed_; }

 private:
  /// Copy the active dimensions of `data` into a compact [n × active_dim] set.
  [[nodiscard]] HvDataset gather(const HvDataset& data) const;

  /// Cross-domain variance score per active dimension (higher = more biased).
  [[nodiscard]] std::vector<double> bias_scores(const HvDataset& compact) const;

  int num_classes_;
  DominoConfig config_;
  std::vector<std::size_t> active_;  // indices into the pool
  std::size_t consumed_ = 0;
  OnlineHDClassifier model_;  // lives in compact active-dim space
};

}  // namespace smore
