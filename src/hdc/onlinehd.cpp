#include "hdc/onlinehd.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace smore {

OnlineHDClassifier::OnlineHDClassifier(int num_classes, std::size_t dim)
    : dim_(dim) {
  if (num_classes <= 0) {
    throw std::invalid_argument("OnlineHDClassifier: num_classes must be > 0");
  }
  if (dim == 0) {
    throw std::invalid_argument("OnlineHDClassifier: dim must be > 0");
  }
  classes_.assign(static_cast<std::size_t>(num_classes), Hypervector(dim));
  accum_.assign(static_cast<std::size_t>(num_classes), WideAccumulator(dim));
  norms_.assign(static_cast<std::size_t>(num_classes), 0.0);
}

double OnlineHDClassifier::cosine_to_class(std::span<const float> hv,
                                           double hv_norm, int c) const {
  const double cn = norms_[static_cast<std::size_t>(c)];
  if (hv_norm == 0.0 || cn == 0.0) return 0.0;
  return ops::dot(hv.data(), classes_[static_cast<std::size_t>(c)].data(),
                  dim_) /
         (hv_norm * cn);
}

void OnlineHDClassifier::refresh_norm(int c) {
  norms_[static_cast<std::size_t>(c)] =
      classes_[static_cast<std::size_t>(c)].norm();
  packed_stale_ = true;
}

const HvMatrix& OnlineHDClassifier::packed() const {
  if (packed_stale_) {
    packed_ = HvMatrix::pack(classes_);
    packed_norms_sq_.resize(norms_.size());
    for (std::size_t c = 0; c < norms_.size(); ++c) {
      packed_norms_sq_[c] = norms_[c] * norms_[c];
    }
    packed_stale_ = false;
  }
  return packed_;
}

void OnlineHDClassifier::bootstrap(std::span<const float> hv, int label) {
  if (hv.size() != dim_) {
    throw std::invalid_argument("bootstrap: dimension mismatch");
  }
  const double hv_norm = ops::nrm2(hv.data(), dim_);
  const double delta = cosine_to_class(hv, hv_norm, label);
  // The weight is float-rounded (as the float-only path used it), then the
  // update lands on the double master and re-materializes the float mirror.
  const float w = static_cast<float>(1.0 - delta);
  update_class(label, static_cast<double>(w), hv);
}

bool OnlineHDClassifier::refine(std::span<const float> hv, int label,
                                float learning_rate) {
  if (hv.size() != dim_) {
    throw std::invalid_argument("refine: dimension mismatch");
  }
  const double hv_norm = ops::nrm2(hv.data(), dim_);
  int best = 0;
  double best_sim = -2.0;
  for (int c = 0; c < num_classes(); ++c) {
    const double s = cosine_to_class(hv, hv_norm, c);
    if (s > best_sim) {
      best_sim = s;
      best = c;
    }
  }
  if (best == label) return true;

  const double delta_true = cosine_to_class(hv, hv_norm, label);
  const float w_true = learning_rate * static_cast<float>(1.0 - delta_true);
  update_class(label, static_cast<double>(w_true), hv);
  const float w_pred = learning_rate * static_cast<float>(1.0 - best_sim);
  update_class(best, -static_cast<double>(w_pred), hv);
  return false;
}

void OnlineHDClassifier::update_class(int c, double weight,
                                      std::span<const float> hv) {
  WideAccumulator& acc = accum_[static_cast<std::size_t>(c)];
  acc.axpy(weight, hv);
  acc.materialize(classes_[static_cast<std::size_t>(c)].data());
  refresh_norm(c);
}

std::vector<double> OnlineHDClassifier::fit(const HvDataset& train,
                                            const OnlineHDConfig& config) {
  if (train.dim() != dim_) {
    throw std::invalid_argument("fit: dataset dimension mismatch");
  }
  Rng rng(config.seed);
  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (const std::size_t i : order) bootstrap(train.row(i), train.label(i));

  std::vector<double> history;
  history.reserve(static_cast<std::size_t>(config.epochs));
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) rng.shuffle(order);
    std::size_t correct = 0;
    for (const std::size_t i : order) {
      correct += refine(train.row(i), train.label(i), config.learning_rate)
                     ? 1
                     : 0;
    }
    history.push_back(train.size() == 0
                          ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(train.size()));
  }
  // Warm the batch-path cache so a freshly trained model can be shared
  // across threads for const prediction without a lazy rebuild race.
  (void)packed();
  return history;
}

int OnlineHDClassifier::predict(std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("predict: dimension mismatch");
  }
  return predict_batch(HvView(hv)).front();
}

std::vector<double> OnlineHDClassifier::similarities(
    std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("similarities: dimension mismatch");
  }
  return similarities_batch(HvView(hv));
}

std::vector<int> OnlineHDClassifier::predict_batch(HvView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument("predict_batch: dimension mismatch");
  }
  const HvMatrix& classes = packed();
  const auto k = static_cast<std::size_t>(num_classes());
  // Raw dots suffice for the argmax: cosine divides every class score by the
  // same positive query norm, so only the per-class 1/‖C_c‖ factor matters.
  std::vector<double> dots(queries.rows * k);
  ops::dot_matrix(queries.data, queries.rows, classes.data(), k, dim_,
                  dots.data());
  std::vector<double> inv_norm(k);
  for (std::size_t c = 0; c < k; ++c) {
    inv_norm[c] = norms_[c] > 0.0 ? 1.0 / norms_[c] : 0.0;
  }
  std::vector<int> labels(queries.rows);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    const double* row = dots.data() + q * k;
    std::size_t best = 0;
    double best_score = row[0] * inv_norm[0];
    for (std::size_t c = 1; c < k; ++c) {
      const double s = row[c] * inv_norm[c];
      if (s > best_score) {
        best_score = s;
        best = c;
      }
    }
    labels[q] = static_cast<int>(best);
  }
  return labels;
}

std::vector<double> OnlineHDClassifier::similarities_batch(
    HvView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument("similarities_batch: dimension mismatch");
  }
  const HvMatrix& classes = packed();
  const auto k = static_cast<std::size_t>(num_classes());
  std::vector<double> sims(queries.rows * k);
  ops::similarity_matrix(queries.data, queries.rows, classes.data(), k, dim_,
                         sims.data(), packed_norms_sq_.data());
  return sims;
}

double OnlineHDClassifier::accuracy(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  const std::vector<int> labels = predict_batch(data.view());
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += labels[i] == data.label(i) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

const Hypervector& OnlineHDClassifier::class_vector(int c) const {
  return classes_.at(static_cast<std::size_t>(c));
}

void OnlineHDClassifier::set_class_vector(int c, Hypervector hv) {
  if (hv.dim() != dim_) {
    throw std::invalid_argument("set_class_vector: dimension mismatch");
  }
  classes_.at(static_cast<std::size_t>(c)) = std::move(hv);
  // The float value IS the new state: reset the wide counter to it exactly.
  accum_.at(static_cast<std::size_t>(c))
      .assign_from(classes_[static_cast<std::size_t>(c)].span());
  refresh_norm(c);
}

void OnlineHDClassifier::save(std::ostream& out) const {
  const std::uint64_t d = dim_;
  const std::uint64_t k = classes_.size();
  out.write(reinterpret_cast<const char*>(&d), sizeof(d));
  out.write(reinterpret_cast<const char*>(&k), sizeof(k));
  for (const auto& c : classes_) {
    out.write(reinterpret_cast<const char*>(c.data()),
              static_cast<std::streamsize>(sizeof(float) * dim_));
  }
}

OnlineHDClassifier OnlineHDClassifier::load(std::istream& in) {
  std::uint64_t d = 0;
  std::uint64_t k = 0;
  in.read(reinterpret_cast<char*>(&d), sizeof(d));
  in.read(reinterpret_cast<char*>(&k), sizeof(k));
  if (!in || d == 0 || k == 0) {
    throw std::runtime_error("OnlineHDClassifier::load: corrupt header");
  }
  OnlineHDClassifier model(static_cast<int>(k), static_cast<std::size_t>(d));
  for (std::uint64_t c = 0; c < k; ++c) {
    Hypervector hv(static_cast<std::size_t>(d));
    in.read(reinterpret_cast<char*>(hv.data()),
            static_cast<std::streamsize>(sizeof(float) * d));
    if (!in) {
      throw std::runtime_error("OnlineHDClassifier::load: truncated payload");
    }
    model.set_class_vector(static_cast<int>(c), std::move(hv));
  }
  (void)model.packed();  // warm the batch cache (see fit)
  return model;
}

}  // namespace smore
