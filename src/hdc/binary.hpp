#pragma once
// Binarized HDC inference (extension beyond the paper; see DESIGN.md §6).
//
// Edge HDC deployments commonly sign-quantize trained class hypervectors to
// single bits and replace cosine similarity with Hamming distance computed
// by XOR + popcount: a d=8192 model shrinks 32× (float -> bit) and a
// similarity query touches d/64 machine words instead of d floats. Accuracy
// typically drops by a small margin — quantified in
// bench_ablation_encoding's companion test and the edge example.
//
// BinaryModel quantizes any trained OnlineHDClassifier; BinaryVector is the
// packed bit representation of one hypervector.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/hv_dataset.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/onlinehd.hpp"

namespace smore {

/// A hypervector sign-quantized to packed bits (1 = positive).
class BinaryVector {
 public:
  BinaryVector() = default;

  /// Quantize a real hypervector: bit j = (v[j] >= 0).
  explicit BinaryVector(std::span<const float> values);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Bit j as 0/1.
  [[nodiscard]] int bit(std::size_t j) const noexcept {
    return static_cast<int>((words_[j >> 6] >> (j & 63)) & 1u);
  }

  /// Hamming distance to another vector of the same dimension.
  /// Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t hamming(const BinaryVector& other) const;

  /// Normalized similarity in [-1, 1]: 1 - 2·hamming/d (the binary analogue
  /// of cosine — equals the expected cosine of the underlying bipolar
  /// vectors).
  [[nodiscard]] double similarity(const BinaryVector& other) const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sign-quantized multi-class model: Hamming-distance argmin prediction.
class BinaryModel {
 public:
  /// Quantize every class vector of a trained classifier.
  explicit BinaryModel(const OnlineHDClassifier& model);

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(classes_.size());
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Model size in bytes (packed class vectors only).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept;

  /// Predict from a raw (float) query: the query is quantized on the fly.
  [[nodiscard]] int predict(std::span<const float> hv) const;

  /// Predict from an already-quantized query (hot path on device).
  [[nodiscard]] int predict(const BinaryVector& query) const;

  /// Fraction of `data` classified correctly.
  [[nodiscard]] double accuracy(const HvDataset& data) const;

 private:
  std::size_t dim_ = 0;
  std::vector<BinaryVector> classes_;
};

}  // namespace smore
