#pragma once
// Binarized HDC inference (extension beyond the paper; see DESIGN.md §8).
//
// Edge HDC deployments commonly sign-quantize trained class hypervectors to
// single bits and replace cosine similarity with Hamming distance computed
// by XOR + popcount: a d=8192 model shrinks 32× (float -> bit) and a
// similarity query touches d/64 machine words instead of d floats. Accuracy
// typically drops by a small margin — quantified in
// bench_ablation_encoding's companion test and the edge example.
//
// BinaryModel quantizes any trained OnlineHDClassifier into a packed
// BitMatrix and predicts through the blocked Hamming kernels
// (ops::hamming_matrix); scalar predict calls are batches of one.
// BinaryVector remains as the one-vector scalar reference — the equivalence
// tests pin the blocked kernels to its word-at-a-time loop bit for bit.
// For the quantized form of a full SMORE model (descriptors + per-domain
// class banks + the test-time ensemble), see core/binary_smore.hpp.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "hdc/bit_matrix.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"
#include "hdc/onlinehd.hpp"

namespace smore {

/// A hypervector sign-quantized to packed bits (1 = positive).
class BinaryVector {
 public:
  BinaryVector() = default;

  /// Quantize a real hypervector: bit j = (v[j] >= 0).
  explicit BinaryVector(std::span<const float> values);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Bit j as 0/1.
  [[nodiscard]] int bit(std::size_t j) const noexcept {
    return static_cast<int>((words_[j >> 6] >> (j & 63)) & 1u);
  }

  /// Hamming distance to another vector of the same dimension.
  /// Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::size_t hamming(const BinaryVector& other) const;

  /// Normalized similarity in [-1, 1]: 1 - 2·hamming/d (the binary analogue
  /// of cosine — equals the expected cosine of the underlying bipolar
  /// vectors).
  [[nodiscard]] double similarity(const BinaryVector& other) const;

  [[nodiscard]] const std::vector<std::uint64_t>& words() const noexcept {
    return words_;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Sign-quantized multi-class model: Hamming-distance argmin prediction over
/// a packed [num_classes × dim] BitMatrix, batch-first like its float
/// counterpart (OnlineHDClassifier::predict_batch).
class BinaryModel {
 public:
  /// Quantize every class vector of a trained classifier.
  explicit BinaryModel(const OnlineHDClassifier& model);

  [[nodiscard]] int num_classes() const noexcept {
    return static_cast<int>(classes_.rows());
  }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Model size in bytes (the packed class-vector block).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return classes_.bytes();
  }

  /// The packed class-vector block itself (footprint reports, serialization).
  [[nodiscard]] const BitMatrix& class_bits() const noexcept {
    return classes_;
  }

  /// Predict from a raw (float) query: the query is quantized on the fly.
  /// Thin wrapper over a batch of one.
  [[nodiscard]] int predict(std::span<const float> hv) const;

  /// Predict from an already-quantized query (scalar-reference path).
  [[nodiscard]] int predict(const BinaryVector& query) const;

  /// Hamming-argmin label per packed query row: one blocked XOR+popcount
  /// kernel over the class block instead of a per-query loop. Ties resolve
  /// to the lowest class index (matching scalar predict).
  /// Throws std::invalid_argument on dimension mismatch.
  [[nodiscard]] std::vector<int> predict_batch(BitView queries) const;

  /// Quantize a float query block (ops::sign_pack_matrix) and predict it.
  [[nodiscard]] std::vector<int> predict_batch(HvView queries) const;

  /// Accuracy of pre-packed queries against aligned labels — the hot
  /// evaluate path on device, where the query block is quantized once and
  /// scored many times. Throws std::invalid_argument on arity mismatch.
  [[nodiscard]] double evaluate(BitView queries,
                                std::span<const int> labels) const;

  /// Fraction of `data` classified correctly (quantize + batched predict).
  [[nodiscard]] double accuracy(const HvDataset& data) const;

 private:
  std::size_t dim_ = 0;
  BitMatrix classes_;
};

}  // namespace smore
