#include "hdc/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace smore {

MultiSensorEncoder::MultiSensorEncoder(const EncoderConfig& config)
    : config_(config), memory_(config.dim, config.seed) {
  if (config.dim == 0) {
    throw std::invalid_argument("MultiSensorEncoder: dim must be positive");
  }
  if (config.ngram == 0) {
    throw std::invalid_argument("MultiSensorEncoder: ngram must be positive");
  }
}

void MultiSensorEncoder::prepare(std::size_t channels) {
  memory_.prefetch(channels);
}

// Computes the sensor hypervector for one channel into scratch.sensor_acc:
//   sensor_acc = Σ_t ρ^{n-1}(L_t) * ρ^{n-2}(L_{t+1}) * ... * L_{t+n-1}
// where L_t interpolates between base_lo and base_hi by the normalized signal
// value. When the window is shorter than the n-gram, the single gram over the
// whole window (with correspondingly fewer factors) is used.
void MultiSensorEncoder::encode_sensor(std::span<const float> signal,
                                       const float* base_lo,
                                       const float* base_hi,
                                       const float* thresholds,
                                       EncodeScratch& scratch) const {
  const std::size_t d = config_.dim;
  const std::size_t steps = signal.size();
  const std::size_t q = config_.quantization_levels;
  // Resolve the temporal dilation set: explicit multi-scale list, explicit
  // single dilation, or auto (max(1, steps/16) capped at 8).
  std::vector<std::size_t> dilations = config_.ngram_dilations;
  if (dilations.empty()) {
    dilations.push_back(config_.ngram_dilation != 0
                            ? config_.ngram_dilation
                            : std::min<std::size_t>(
                                  8, std::max<std::size_t>(1, steps / 16)));
  }

  // 1. Value quantization: window min/max anchor the level spectrum.
  const auto [min_it, max_it] = std::minmax_element(signal.begin(), signal.end());
  const float vmin = *min_it;
  const float vmax = *max_it;
  const float inv_range = (vmax > vmin) ? 1.0f / (vmax - vmin) : 0.0f;

  scratch.levels.resize(steps * d);
  for (std::size_t t = 0; t < steps; ++t) {
    float alpha = (signal[t] - vmin) * inv_range;
    float* level = scratch.levels.data() + t * d;
    if (q == 0) {
      // Paper-literal continuous interpolation (ablation mode).
      ops::lerp(base_lo, base_hi, alpha, level, d);
    } else {
      if (q > 1) {  // snap to the Q-point grid
        alpha = std::round(alpha * static_cast<float>(q - 1)) /
                static_cast<float>(q - 1);
      }
      for (std::size_t i = 0; i < d; ++i) {
        level[i] = alpha >= thresholds[i] ? base_hi[i] : base_lo[i];
      }
    }
  }

  // 2. Temporal n-gram binding with graded permutation, bundled over t and
  //    over the dilation scales. The gram at (t, δ) binds timesteps
  //    {t, t+δ, ..., t+(n-1)δ}; each scale's n-gram count is normalized so
  //    no single scale dominates the bundle.
  scratch.gram.resize(d);
  scratch.sensor_acc.assign(d, 0.0f);
  for (std::size_t dilation : dilations) {
    // Clamp (n, δ) so one gram always fits: (n-1)·δ + 1 <= steps.
    std::size_t n = config_.ngram;
    while (n > 1 && (n - 1) * dilation + 1 > steps) {
      if (dilation > 1) {
        --dilation;
      } else {
        --n;
      }
    }
    const std::size_t span = (n - 1) * dilation;
    const std::size_t n_grams = steps - span;
    const float scale_w = 1.0f / static_cast<float>(n_grams);
    for (std::size_t t = 0; t < n_grams; ++t) {
      // gram = ρ^{n-1}(L_t)
      ops::rotate(scratch.levels.data() + t * d, d, n - 1, scratch.gram.data());
      // gram *= ρ^{n-1-p}(L_{t+pδ}) for p = 1..n-1
      for (std::size_t p = 1; p < n; ++p) {
        ops::hadamard_rotated(scratch.levels.data() + (t + p * dilation) * d,
                              d, n - 1 - p, scratch.gram.data());
      }
      ops::axpy(scale_w, scratch.gram.data(), scratch.sensor_acc.data(), d);
    }
  }
}

Hypervector MultiSensorEncoder::encode(const Window& window,
                                       std::uint64_t salt) const {
  EncodeScratch scratch;
  return encode(window, scratch, salt);
}

Hypervector MultiSensorEncoder::encode(const Window& window,
                                       EncodeScratch& scratch,
                                       std::uint64_t salt) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("encode: empty window");
  }
  const std::size_t d = config_.dim;
  Hypervector out(d);

  // Paper-literal mode: fresh extremum hypervectors per (window, sensor).
  std::vector<float> lo_buf;
  std::vector<float> hi_buf;
  Rng window_rng(Rng(config_.seed).fork(0x77a11d00 + salt)());

  for (std::size_t s = 0; s < window.channels(); ++s) {
    const float* lo = nullptr;
    const float* hi = nullptr;
    if (config_.per_window_random_base) {
      lo_buf.resize(d);
      hi_buf.resize(d);
      for (auto& x : lo_buf) x = window_rng.bipolar();
      if (config_.antipodal_base) {
        for (std::size_t j = 0; j < d; ++j) hi_buf[j] = -lo_buf[j];
      } else {
        for (auto& x : hi_buf) x = window_rng.bipolar();
      }
      lo = lo_buf.data();
      hi = hi_buf.data();
    } else {
      lo = memory_.base_low(s).data();
      if (config_.antipodal_base) {
        hi_buf.resize(d);
        for (std::size_t j = 0; j < d; ++j) hi_buf[j] = -lo[j];
        hi = hi_buf.data();
      } else {
        hi = memory_.base_high(s).data();
      }
    }
    const float* thresholds = memory_.thresholds(s).data();

    encode_sensor(window.channel(s), lo, hi, thresholds, scratch);

    // 3. Spatial integration: out += G_s * H_s.
    const float* sig = memory_.signature(s).data();
    float* acc = out.data();
    const float* sens = scratch.sensor_acc.data();
    for (std::size_t j = 0; j < d; ++j) acc[j] += sig[j] * sens[j];
  }
  return out;
}

HvDataset MultiSensorEncoder::encode_dataset(const WindowDataset& dataset) const {
  memory_.prefetch(dataset.channels());
  HvDataset out(dataset.size(), config_.dim);
  parallel_for(dataset.size(), [&](std::size_t i) {
    thread_local EncodeScratch scratch;
    const Hypervector hv = encode(dataset[i], scratch, i);
    std::copy(hv.data(), hv.data() + config_.dim, out.row(i).begin());
    out.set_label(i, dataset[i].label());
    out.set_domain(i, dataset[i].domain());
  });
  return out;
}

}  // namespace smore
