#include "hdc/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/serial.hpp"
#include "util/thread_pool.hpp"

namespace smore {

namespace {

constexpr std::uint32_t kMultiSensorRecordVersion = 1;
// Sanity bound on the serialized dilation-list length: real configs hold a
// handful of scales, so anything larger is a corrupt record — reject before
// allocating.
constexpr std::uint64_t kMaxSerializedDilations = 4096;

/// Clamp (n, δ) so one gram always fits the window: (n-1)·δ + 1 <= steps.
/// Shared by the reference and banked kernels so both resolve identically.
void clamp_gram(std::size_t steps, std::size_t& n, std::size_t& dilation) {
  while (n > 1 && (n - 1) * dilation + 1 > steps) {
    if (dilation > 1) {
      --dilation;
    } else {
      --n;
    }
  }
}

}  // namespace

MultiSensorEncoder::MultiSensorEncoder(const EncoderConfig& config)
    : config_(config), memory_(config.dim, config.seed) {
  if (config.dim == 0) {
    throw std::invalid_argument("MultiSensorEncoder: dim must be positive");
  }
  if (config.ngram == 0) {
    throw std::invalid_argument("MultiSensorEncoder: ngram must be positive");
  }
}

void MultiSensorEncoder::save(std::ostream& out) const {
  serial::write_pod(out, kTypeTag);
  serial::write_pod(out, kMultiSensorRecordVersion);
  serial::write_pod(out, static_cast<std::uint64_t>(config_.dim));
  serial::write_pod(out, static_cast<std::uint64_t>(config_.ngram));
  serial::write_pod(out, static_cast<std::uint64_t>(config_.seed));
  serial::write_pod(out,
                    static_cast<std::uint8_t>(config_.per_window_random_base));
  serial::write_pod(out, static_cast<std::uint8_t>(config_.antipodal_base));
  serial::write_pod(out,
                    static_cast<std::uint64_t>(config_.quantization_levels));
  serial::write_pod(out, static_cast<std::uint64_t>(config_.ngram_dilation));
  serial::write_pod(out,
                    static_cast<std::uint64_t>(config_.ngram_dilations.size()));
  for (const std::size_t d : config_.ngram_dilations) {
    serial::write_pod(out, static_cast<std::uint64_t>(d));
  }
}

EncoderConfig MultiSensorEncoder::load_config(std::istream& in) {
  constexpr const char* ctx = "MultiSensorEncoder::load_config";
  const auto version = serial::read_pod<std::uint32_t>(in, ctx);
  if (version != kMultiSensorRecordVersion) {
    throw std::runtime_error(
        "MultiSensorEncoder::load_config: unsupported record version");
  }
  EncoderConfig config;
  config.dim = static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  config.ngram =
      static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  config.seed = serial::read_pod<std::uint64_t>(in, ctx);
  config.per_window_random_base = serial::read_pod<std::uint8_t>(in, ctx) != 0;
  config.antipodal_base = serial::read_pod<std::uint8_t>(in, ctx) != 0;
  config.quantization_levels =
      static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  config.ngram_dilation =
      static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  const auto n_dilations = serial::read_pod<std::uint64_t>(in, ctx);
  if (config.dim == 0 || config.ngram == 0 ||
      n_dilations > kMaxSerializedDilations) {
    throw std::runtime_error(
        "MultiSensorEncoder::load_config: corrupt config record");
  }
  config.ngram_dilations.resize(static_cast<std::size_t>(n_dilations));
  for (auto& d : config.ngram_dilations) {
    d = static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  }
  return config;
}

bool MultiSensorEncoder::bank_eligible() const noexcept {
  // The bank enumerates the level spectrum, which only exists for the
  // thresholded quantization (Q >= 2) with a fixed basis; the fused gram
  // kernel additionally caps the factor count.
  return !config_.per_window_random_base && config_.quantization_levels >= 2 &&
         config_.ngram <= ops::kNgramFusedMaxFactors;
}

std::vector<std::size_t> MultiSensorEncoder::resolve_dilations(
    std::size_t steps) const {
  // Explicit multi-scale list, explicit single dilation, or auto
  // (max(1, steps/16) capped at 8).
  std::vector<std::size_t> dilations = config_.ngram_dilations;
  if (dilations.empty()) {
    dilations.push_back(config_.ngram_dilation != 0
                            ? config_.ngram_dilation
                            : std::min<std::size_t>(
                                  8, std::max<std::size_t>(1, steps / 16)));
  }
  return dilations;
}

void MultiSensorEncoder::ensure_basis(std::size_t channels) const {
  const MutexLock lock(basis_mutex_);
  memory_.prefetch(channels);
  if (!bank_eligible() || bank_channels_ >= channels) return;

  // Grow the level bank to `channels` sensors. Row s*Q + q is the level
  // hypervector of sensor s at grid point α_q = q/(Q-1): coordinate i takes
  // base_high[i] when α_q >= θ_i, else base_low[i] — exactly the comparison
  // the reference kernel makes against the snapped α, so bank rows and
  // reference levels are bit-identical.
  const std::size_t d = config_.dim;
  const std::size_t q_levels = config_.quantization_levels;
  HvMatrix grown(channels * q_levels, d);
  std::copy(level_bank_.data(),
            level_bank_.data() + bank_channels_ * q_levels * d, grown.data());
  std::vector<float> hi_store;
  for (std::size_t s = bank_channels_; s < channels; ++s) {
    const float* lo = memory_.base_low(s).data();
    const float* hi = nullptr;
    if (config_.antipodal_base) {
      hi_store.resize(d);
      for (std::size_t j = 0; j < d; ++j) hi_store[j] = -lo[j];
      hi = hi_store.data();
    } else {
      hi = memory_.base_high(s).data();
    }
    const float* thresholds = memory_.thresholds(s).data();
    for (std::size_t q = 0; q < q_levels; ++q) {
      const float alpha =
          static_cast<float>(q) / static_cast<float>(q_levels - 1);
      float* row = grown.data() + (s * q_levels + q) * d;
      for (std::size_t i = 0; i < d; ++i) {
        row[i] = alpha >= thresholds[i] ? hi[i] : lo[i];
      }
    }
  }
  level_bank_ = std::move(grown);
  bank_channels_ = channels;
}

void MultiSensorEncoder::prepare(std::size_t channels) const {
  ensure_basis(channels);
}

std::size_t MultiSensorEncoder::footprint_bytes() const {
  const MutexLock lock(basis_mutex_);
  return memory_.footprint_bytes() +
         level_bank_.rows() * level_bank_.dim() * sizeof(float);
}

// Computes the sensor hypervector for one channel into scratch.sensor_acc:
//   sensor_acc = Σ_t ρ^{n-1}(L_t) * ρ^{n-2}(L_{t+1}) * ... * L_{t+n-1}
// where L_t interpolates between base_lo and base_hi by the normalized signal
// value. When the window is shorter than the n-gram, the single gram over the
// whole window (with correspondingly fewer factors) is used.
void MultiSensorEncoder::encode_sensor(std::span<const float> signal,
                                       const float* base_lo,
                                       const float* base_hi,
                                       const float* thresholds,
                                       std::span<const std::size_t> dilations,
                                       EncodeScratch& scratch) const {
  const std::size_t d = config_.dim;
  const std::size_t steps = signal.size();
  const std::size_t q = config_.quantization_levels;

  // 1. Value quantization: window min/max anchor the level spectrum.
  const auto [min_it, max_it] = std::minmax_element(signal.begin(), signal.end());
  const float vmin = *min_it;
  const float vmax = *max_it;
  const float inv_range = (vmax > vmin) ? 1.0f / (vmax - vmin) : 0.0f;

  scratch.levels.resize(steps * d);
  for (std::size_t t = 0; t < steps; ++t) {
    float alpha = (signal[t] - vmin) * inv_range;
    float* level = scratch.levels.data() + t * d;
    if (q == 0) {
      // Paper-literal continuous interpolation (ablation mode).
      ops::lerp(base_lo, base_hi, alpha, level, d);
    } else {
      if (q > 1) {  // snap to the Q-point grid
        alpha = std::round(alpha * static_cast<float>(q - 1)) /
                static_cast<float>(q - 1);
      }
      for (std::size_t i = 0; i < d; ++i) {
        level[i] = alpha >= thresholds[i] ? base_hi[i] : base_lo[i];
      }
    }
  }

  // 2. Temporal n-gram binding with graded permutation, bundled over t and
  //    over the dilation scales. The gram at (t, δ) binds timesteps
  //    {t, t+δ, ..., t+(n-1)δ}; each scale's n-gram count is normalized so
  //    no single scale dominates the bundle.
  scratch.gram.resize(d);
  scratch.sensor_acc.assign(d, 0.0f);
  for (std::size_t dilation : dilations) {
    std::size_t n = config_.ngram;
    clamp_gram(steps, n, dilation);
    const std::size_t span = (n - 1) * dilation;
    const std::size_t n_grams = steps - span;
    const float scale_w = 1.0f / static_cast<float>(n_grams);
    for (std::size_t t = 0; t < n_grams; ++t) {
      // gram = ρ^{n-1}(L_t)
      ops::rotate(scratch.levels.data() + t * d, d, n - 1, scratch.gram.data());
      // gram *= ρ^{n-1-p}(L_{t+pδ}) for p = 1..n-1
      for (std::size_t p = 1; p < n; ++p) {
        ops::hadamard_rotated(scratch.levels.data() + (t + p * dilation) * d,
                              d, n - 1 - p, scratch.gram.data());
      }
      ops::axpy(scale_w, scratch.gram.data(), scratch.sensor_acc.data(), d);
    }
  }
}

void MultiSensorEncoder::encode_window_into(const Window& window,
                                            std::span<const std::size_t> dilations,
                                            float* out, EncodeScratch& scratch,
                                            std::uint64_t salt) const {
  const std::size_t d = config_.dim;

  // Paper-literal mode: fresh extremum hypervectors per (window, sensor).
  Rng window_rng(Rng(config_.seed).fork(0x77a11d00 + salt)());

  for (std::size_t s = 0; s < window.channels(); ++s) {
    const float* lo = nullptr;
    const float* hi = nullptr;
    if (config_.per_window_random_base) {
      scratch.lo_buf.resize(d);
      scratch.hi_buf.resize(d);
      for (auto& x : scratch.lo_buf) x = window_rng.bipolar();
      if (config_.antipodal_base) {
        for (std::size_t j = 0; j < d; ++j) {
          scratch.hi_buf[j] = -scratch.lo_buf[j];
        }
      } else {
        for (auto& x : scratch.hi_buf) x = window_rng.bipolar();
      }
      lo = scratch.lo_buf.data();
      hi = scratch.hi_buf.data();
    } else {
      lo = memory_.base_low(s).data();
      if (config_.antipodal_base) {
        scratch.hi_buf.resize(d);
        for (std::size_t j = 0; j < d; ++j) scratch.hi_buf[j] = -lo[j];
        hi = scratch.hi_buf.data();
      } else {
        hi = memory_.base_high(s).data();
      }
    }
    const float* thresholds = memory_.thresholds(s).data();

    encode_sensor(window.channel(s), lo, hi, thresholds, dilations, scratch);

    // 3. Spatial integration: out += G_s * H_s.
    const float* sig = memory_.signature(s).data();
    const float* sens = scratch.sensor_acc.data();
    for (std::size_t j = 0; j < d; ++j) out[j] += sig[j] * sens[j];
  }
}

// The banked fast path: per sensor, quantization reduces to T bank-row
// lookups (one round per timestep instead of d threshold comparisons) and
// each n-gram is one fused ngram_axpy sweep — no level materialization, no
// gram temporary. Arithmetic per coordinate is the exact sequence of the
// reference kernel, so rows are bit-identical to encode_window_into.
void MultiSensorEncoder::encode_window_banked(
    const Window& window, std::span<const std::size_t> dilations, float* out,
    EncodeScratch& scratch) const {
  const std::size_t d = config_.dim;
  const std::size_t steps = window.steps();
  const std::size_t q_levels = config_.quantization_levels;

  scratch.level_rows.resize(steps);
  for (std::size_t s = 0; s < window.channels(); ++s) {
    const std::span<const float> signal = window.channel(s);
    const float* bank = level_bank_.data() + s * q_levels * d;

    // 1. Value quantization → bank-row indices.
    const auto [min_it, max_it] =
        std::minmax_element(signal.begin(), signal.end());
    const float vmin = *min_it;
    const float vmax = *max_it;
    const float inv_range = (vmax > vmin) ? 1.0f / (vmax - vmin) : 0.0f;
    const float grid = static_cast<float>(q_levels - 1);
    for (std::size_t t = 0; t < steps; ++t) {
      const float alpha = (signal[t] - vmin) * inv_range;
      const auto idx = static_cast<std::size_t>(std::round(alpha * grid));
      scratch.level_rows[t] = bank + std::min(idx, q_levels - 1) * d;
    }

    // 2. Fused temporal n-gram binding.
    scratch.sensor_acc.assign(d, 0.0f);
    for (std::size_t dilation : dilations) {
      std::size_t n = config_.ngram;
      clamp_gram(steps, n, dilation);
      const std::size_t span = (n - 1) * dilation;
      const std::size_t n_grams = steps - span;
      const float scale_w = 1.0f / static_cast<float>(n_grams);
      const float* factors[ops::kNgramFusedMaxFactors];
      std::size_t shifts[ops::kNgramFusedMaxFactors];
      for (std::size_t p = 0; p < n; ++p) shifts[p] = (n - 1 - p) % d;
      for (std::size_t t = 0; t < n_grams; ++t) {
        for (std::size_t p = 0; p < n; ++p) {
          factors[p] = scratch.level_rows[t + p * dilation];
        }
        ops::ngram_axpy(factors, shifts, n, d, scale_w,
                        scratch.sensor_acc.data());
      }
    }

    // 3. Spatial integration: out += G_s * H_s.
    const float* sig = memory_.signature(s).data();
    const float* sens = scratch.sensor_acc.data();
    for (std::size_t j = 0; j < d; ++j) out[j] += sig[j] * sens[j];
  }
}

Hypervector MultiSensorEncoder::encode(const Window& window,
                                       std::uint64_t salt) const {
  EncodeScratch scratch;
  return encode(window, scratch, salt);
}

Hypervector MultiSensorEncoder::encode(const Window& window,
                                       EncodeScratch& scratch,
                                       std::uint64_t salt) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("encode: empty window");
  }
  Hypervector out(config_.dim);
  const std::vector<std::size_t> dilations = resolve_dilations(window.steps());
  encode_window_into(window, dilations, out.data(), scratch, salt);
  return out;
}

void MultiSensorEncoder::encode_batch(const WindowDataset& dataset,
                                      HvMatrix& out, bool parallel) const {
  out.resize(dataset.size(), config_.dim);
  if (dataset.empty()) return;
  ensure_basis(dataset.channels());

  const bool banked = bank_eligible();
  const std::vector<std::size_t> dilations = resolve_dilations(dataset.steps());
  const auto encode_rows = [&](std::size_t lo, std::size_t hi,
                               EncodeScratch& scratch) {
    for (std::size_t i = lo; i < hi; ++i) {
      float* row = out.row(i).data();
      if (banked) {
        encode_window_banked(dataset[i], dilations, row, scratch);
      } else {
        encode_window_into(dataset[i], dilations, row, scratch, i);
      }
    }
  };

  if (!parallel) {
    EncodeScratch scratch;
    encode_rows(0, dataset.size(), scratch);
    return;
  }
  // One scratch per worker block, pooled through the thread pool: workers
  // never allocate after their first window, and since every row is an
  // independent deterministic function of (window, i), the output is
  // bit-identical for any thread count.
  std::vector<EncodeScratch> pool(parallel_block_count(dataset.size()));
  parallel_for_blocks(dataset.size(),
                      [&](std::size_t block, std::size_t lo, std::size_t hi) {
                        encode_rows(lo, hi, pool[block]);
                      });
}

}  // namespace smore
