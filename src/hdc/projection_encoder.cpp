#include "hdc/projection_encoder.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "hdc/ops.hpp"
#include "util/rng.hpp"
#include "util/serial.hpp"
#include "util/thread_pool.hpp"

namespace smore {

namespace {
constexpr std::uint32_t kProjectionRecordVersion = 1;
}  // namespace

ProjectionEncoder::ProjectionEncoder(const ProjectionEncoderConfig& config)
    : config_(config) {
  if (config.dim == 0) {
    throw std::invalid_argument("ProjectionEncoder: dim must be positive");
  }
}

void ProjectionEncoder::save(std::ostream& out) const {
  serial::write_pod(out, kTypeTag);
  serial::write_pod(out, kProjectionRecordVersion);
  serial::write_pod(out, static_cast<std::uint64_t>(config_.dim));
  serial::write_pod(out, static_cast<std::uint64_t>(config_.seed));
}

ProjectionEncoderConfig ProjectionEncoder::load_config(std::istream& in) {
  constexpr const char* ctx = "ProjectionEncoder::load_config";
  const auto version = serial::read_pod<std::uint32_t>(in, ctx);
  if (version != kProjectionRecordVersion) {
    throw std::runtime_error(
        "ProjectionEncoder::load_config: unsupported record version");
  }
  ProjectionEncoderConfig config;
  config.dim = static_cast<std::size_t>(serial::read_pod<std::uint64_t>(in, ctx));
  config.seed = serial::read_pod<std::uint64_t>(in, ctx);
  if (config.dim == 0) {
    throw std::runtime_error(
        "ProjectionEncoder::load_config: corrupt config record");
  }
  return config;
}

void ProjectionEncoder::ensure_projection(std::size_t features) const {
  // call_once makes the lazy materialization safe when the first encode
  // arrives from worker threads (the pre-refactor code raced on
  // features_/weights_/bias_ there); losers of the race block until the
  // winner has fully initialized, then only read.
  std::call_once(init_once_, [&] {
    Rng rng(config_.seed);
    const double scale = 1.0 / std::sqrt(static_cast<double>(features));
    // Draw in the documented [d × F] row order (keeps the projection matrix
    // identical across versions), then store transposed [F × d] — the layout
    // the feature-major batch kernel streams.
    std::vector<float> row_major(config_.dim * features);
    for (auto& w : row_major) {
      w = static_cast<float>(rng.normal(0.0, scale));
    }
    weights_t_.resize(features * config_.dim);
    for (std::size_t j = 0; j < config_.dim; ++j) {
      for (std::size_t f = 0; f < features; ++f) {
        weights_t_[f * config_.dim + j] = row_major[j * features + f];
      }
    }
    bias_.resize(config_.dim);
    for (auto& b : bias_) {
      b = static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi));
    }
    // Last write: publishes "fully built" to lock-free footprint_bytes
    // readers (acquire side there) and to the mismatch check below.
    features_.store(features, std::memory_order_release);
  });
  if (features != features_.load(std::memory_order_acquire)) {
    throw std::invalid_argument(
        "ProjectionEncoder: window shape changed after first encode");
  }
}

Hypervector ProjectionEncoder::encode(const Window& window) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("ProjectionEncoder::encode: empty window");
  }
  const std::size_t features = window.channels() * window.steps();
  ensure_projection(features);

  // The window's values() buffer is already the flattened [channel][t] row:
  // a batch of one through the blocked kernel.
  Hypervector out(config_.dim);
  ops::project_cos_matrix(window.values().data(), 1, weights_t_.data(),
                          config_.dim, features, bias_.data(), out.data(),
                          /*parallel=*/false);
  return out;
}

void ProjectionEncoder::encode_batch(const WindowDataset& dataset,
                                     HvMatrix& out, bool parallel) const {
  out.resize(dataset.size(), config_.dim);
  if (dataset.empty()) return;
  const std::size_t features = dataset.channels() * dataset.steps();
  ensure_projection(features);

  // Pack the flattened windows into one contiguous [windows × F] block (the
  // kernel's query matrix); windows own their storage individually.
  std::vector<float> x(dataset.size() * features);
  const auto pack = [&](std::size_t i) {
    const std::vector<float>& values = dataset[i].values();
    std::copy(values.begin(), values.end(), x.begin() + i * features);
  };
  if (parallel) {
    parallel_for(dataset.size(), pack);
  } else {
    for (std::size_t i = 0; i < dataset.size(); ++i) pack(i);
  }

  ops::project_cos_matrix(x.data(), dataset.size(), weights_t_.data(),
                          config_.dim, features, bias_.data(), out.data(),
                          parallel);
}

}  // namespace smore
