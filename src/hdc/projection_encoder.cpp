#include "hdc/projection_encoder.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace smore {

ProjectionEncoder::ProjectionEncoder(const ProjectionEncoderConfig& config)
    : config_(config) {
  if (config.dim == 0) {
    throw std::invalid_argument("ProjectionEncoder: dim must be positive");
  }
}

void ProjectionEncoder::ensure_projection(std::size_t features) const {
  if (features_ != 0) {
    if (features != features_) {
      throw std::invalid_argument(
          "ProjectionEncoder: window shape changed after first encode");
    }
    return;
  }
  features_ = features;
  Rng rng(config_.seed);
  const double scale = 1.0 / std::sqrt(static_cast<double>(features));
  weights_.resize(config_.dim * features);
  for (auto& w : weights_) {
    w = static_cast<float>(rng.normal(0.0, scale));
  }
  bias_.resize(config_.dim);
  for (auto& b : bias_) {
    b = static_cast<float>(rng.uniform(0.0, 2.0 * std::numbers::pi));
  }
}

Hypervector ProjectionEncoder::encode(const Window& window) const {
  if (window.channels() == 0 || window.steps() == 0) {
    throw std::invalid_argument("ProjectionEncoder::encode: empty window");
  }
  const std::size_t features = window.channels() * window.steps();
  ensure_projection(features);

  // The window's values() buffer is already the flattened [channel][t] row.
  const float* x = window.values().data();
  Hypervector out(config_.dim);
  for (std::size_t j = 0; j < config_.dim; ++j) {
    const double acc =
        bias_[j] + ops::dot(weights_.data() + j * features, x, features);
    out[j] = static_cast<float>(std::cos(acc));
  }
  return out;
}

HvDataset ProjectionEncoder::encode_dataset(const WindowDataset& dataset) const {
  if (dataset.empty()) return HvDataset(config_.dim);
  ensure_projection(dataset.channels() * dataset.steps());
  HvDataset out(dataset.size(), config_.dim);
  parallel_for(dataset.size(), [&](std::size_t i) {
    const Hypervector hv = encode(dataset[i]);
    std::copy(hv.data(), hv.data() + config_.dim, out.row(i).begin());
    out.set_label(i, dataset[i].label());
    out.set_domain(i, dataset[i].domain());
  });
  return out;
}

}  // namespace smore
