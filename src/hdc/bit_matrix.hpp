#pragma once
// BitView / BitMatrix: contiguous row-major blocks of bit-packed
// hypervectors — the packed-binary analogue of HvView / HvMatrix
// (DESIGN.md §8).
//
// Each row is one sign-quantized hypervector: bit j = (v[j] >= 0), stored
// 64 bits per machine word, (dim + 63) / 64 words per row. A d = 8192 model
// shrinks 32× versus float rows, and a similarity query reduces to
// XOR + popcount over d/64 words (see ops_binary.hpp for the kernels).
//
// Invariant: the padding bits of every row — bits [dim, words_per_row·64) —
// are zero. All writers below and ops::sign_pack_* maintain it; the Hamming
// kernels rely on it so whole-word XOR+popcount equals the distance over the
// logical dim bits.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smore {

/// Non-owning view over a row-major [rows × words_per_row] block of packed
/// bit rows. The pointed-to storage must outlive the view; layout consistency
/// is a precondition maintained by the owning containers.
struct BitView {
  const std::uint64_t* data = nullptr;
  std::size_t rows = 0;
  std::size_t dim = 0;            ///< logical bits per row
  std::size_t words_per_row = 0;  ///< physical 64-bit words per row

  BitView() = default;
  BitView(const std::uint64_t* data_, std::size_t rows_, std::size_t dim_,
          std::size_t words_per_row_) noexcept
      : data(data_), rows(rows_), dim(dim_), words_per_row(words_per_row_) {}

  [[nodiscard]] bool empty() const noexcept { return rows == 0; }

  [[nodiscard]] const std::uint64_t* row(std::size_t i) const noexcept {
    return data + i * words_per_row;
  }

  /// Rows [first, first + count) as a sub-view (used for tiling).
  [[nodiscard]] BitView slice(std::size_t first,
                              std::size_t count) const noexcept {
    return {data + first * words_per_row, count, dim, words_per_row};
  }
};

/// Owning contiguous row-major block of bit-packed hypervectors.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Zero-initialized block of `rows` packed rows of `dim` bits each.
  BitMatrix(std::size_t rows, std::size_t dim)
      : rows_(rows), dim_(dim), words_(words_for(dim)),
        data_(rows * words_for(dim), 0) {}

  /// Packed words needed for one row of `dim` bits.
  [[nodiscard]] static constexpr std::size_t words_for(
      std::size_t dim) noexcept {
    return (dim + 63) / 64;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t words_per_row() const noexcept { return words_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  /// Packed storage footprint in bytes — the number every "how small is the
  /// quantized model/query block" report derives from.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return data_.size() * sizeof(std::uint64_t);
  }

  /// Re-shape to a zero-filled [rows × dim-bit] block (the sign_pack output
  /// contract: packers overwrite whole words of freshly zeroed rows).
  void resize(std::size_t rows, std::size_t dim) {
    rows_ = rows;
    dim_ = dim;
    words_ = words_for(dim);
    data_.assign(rows * words_, 0);
  }

  [[nodiscard]] std::uint64_t* data() noexcept { return data_.data(); }
  [[nodiscard]] const std::uint64_t* data() const noexcept {
    return data_.data();
  }

  [[nodiscard]] std::uint64_t* row(std::size_t i) noexcept {
    return data_.data() + i * words_;
  }
  [[nodiscard]] const std::uint64_t* row(std::size_t i) const noexcept {
    return data_.data() + i * words_;
  }

  /// Bit j of row i as 0/1.
  [[nodiscard]] int bit(std::size_t i, std::size_t j) const noexcept {
    return static_cast<int>((row(i)[j >> 6] >> (j & 63)) & 1u);
  }

  [[nodiscard]] BitView view() const noexcept {
    return {data_.data(), rows_, dim_, words_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> data_;
};

}  // namespace smore
