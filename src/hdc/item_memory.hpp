#pragma once
// Item memory: the deterministic source of all random base hypervectors used
// by the multi-sensor encoder (Sec 3.3).
//
// For every sensor channel i the encoder needs three seeded hypervectors:
//   * signature  G_i : binds "which sensor produced this" (spatial identity)
//   * base_low   H_min^i : represents the window minimum signal value
//   * base_high  H_max^i : represents the window maximum signal value
// All are bipolar and derived from a single 64-bit seed, so an encoder can be
// reconstructed exactly from (dim, seed) — a model file never needs to store
// the basis.

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "hdc/hypervector.hpp"
#include "util/rng.hpp"

namespace smore {

/// Lazily-generated, cached store of the per-sensor basis hypervectors.
/// Thread-compatibility: `prefetch()` everything first if sharing across
/// threads; lazy generation itself is not synchronized.
class ItemMemory {
 public:
  /// `dim` is the hyperdimensional size; `seed` fixes the whole basis.
  /// Throws std::invalid_argument when dim == 0.
  ItemMemory(std::size_t dim, std::uint64_t seed);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Sensor signature hypervector G_i (Sec 3.3, "spatially integrate").
  const Hypervector& signature(std::size_t sensor);

  /// Base hypervector representing the minimum value of a window.
  const Hypervector& base_low(std::size_t sensor);

  /// Base hypervector representing the maximum value of a window.
  const Hypervector& base_high(std::size_t sensor);

  /// Per-coordinate quantization thresholds in [0, 1) for the thresholded
  /// level encoding: coordinate i of a level vector takes base_high[i] when
  /// the normalized signal value reaches thresholds[i], else base_low[i].
  /// Uniformly distributed thresholds make the expected similarity to
  /// base_low/base_high vary linearly with the value — the paper's "spectrum
  /// of similarity" — while keeping levels per-coordinate nonlinear (see
  /// DESIGN.md on time-reversal invariance of the linear-interpolation
  /// reading).
  const Hypervector& thresholds(std::size_t sensor);

  /// Generate (and cache) the vectors for sensors [0, n) up front; required
  /// before concurrent read access from multiple threads.
  void prefetch(std::size_t n_sensors);

  /// Bytes of cached basis state (every cached hypervector is dim floats).
  [[nodiscard]] std::size_t footprint_bytes() const noexcept {
    return cache_.size() * dim_ * sizeof(float);
  }

 private:
  enum class Kind : std::uint64_t {
    kSignature = 1,
    kLow = 2,
    kHigh = 3,
    kThreshold = 4,
  };

  const Hypervector& get(Kind kind, std::size_t sensor);
  static Hypervector uniform_thresholds(std::size_t dim, Rng& rng);

  std::size_t dim_;
  std::uint64_t seed_;
  std::unordered_map<std::uint64_t, Hypervector> cache_;
};

}  // namespace smore
