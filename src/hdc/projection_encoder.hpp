#pragma once
// OnlineHD-style nonlinear random-projection encoder — the encoding used by
// "BaselineHD" [22] (Hernandez-Cano et al., DATE'21), the SOTA HDC baseline
// the paper compares against (Sec 4.1).
//
// Unlike SMORE's structure-aware multi-sensor encoder (Sec 3.3), OnlineHD
// flattens the raw window and maps it through a fixed random projection with
// a cosine nonlinearity:
//     z_j = cos(w_j · x + b_j),   w_j ~ N(0, 1/sqrt(F)),  b_j ~ U[0, 2π),
// where F = channels × steps. This pipeline has no built-in normalization
// against per-subject offset/gain drift, which is precisely why BaselineHD
// degrades under distribution shift in the paper's Figures 1(b) and 4 while
// SMORE's window-anchored value quantization does not.
//
// Batch path: encode_batch packs the flattened windows into one
// [windows × F] block and runs ops::project_cos_matrix — the cache-blocked
// feature-major [windows × F]·[F × D] kernel over the transposed projection,
// with the cos epilogue fused per output block. The scalar encode() is the
// same kernel on a batch of one, so scalar and batch are bit-identical.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>  // std::once_flag only; locks go through util/mutex.hpp
#include <vector>

#include "data/timeseries.hpp"
#include "hdc/encoder_base.hpp"
#include "hdc/hv_dataset.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/hypervector.hpp"

namespace smore {

/// Parameters of the random-projection encoder.
struct ProjectionEncoderConfig {
  std::size_t dim = 4096;        ///< hyperdimensional size d
  std::uint64_t seed = 0x09e14d; ///< projection seed
};

/// Fixed random projection from flattened windows to hyperspace.
/// The projection matrix is materialized on the first encode for the observed
/// input size (thread-safe via std::call_once) and is immutable afterwards
/// (same-shape windows only).
class ProjectionEncoder : public Encoder {
 public:
  /// Throws std::invalid_argument when dim == 0.
  explicit ProjectionEncoder(const ProjectionEncoderConfig& config);

  /// Serialized-record type tag ("PROJ"), dispatched on by load_encoder.
  static constexpr std::uint32_t kTypeTag = 0x4a4f5250;

  /// Persist config + seed; the projection matrix is re-materialized
  /// deterministically on the first encode (see Encoder::save).
  void save(std::ostream& out) const override;

  /// Parse the config record written by save(), tag already consumed.
  /// Throws std::runtime_error on corrupt input.
  [[nodiscard]] static ProjectionEncoderConfig load_config(std::istream& in);

  [[nodiscard]] const ProjectionEncoderConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::size_t dim() const noexcept override {
    return config_.dim;
  }

  /// Materialized projection matrix + bias (see Encoder::footprint_bytes).
  /// Safe from any thread at any time: 0 until the first encode has fully
  /// materialized the projection (features_ is the release-published "built"
  /// flag), (F + 1) · d floats afterwards. Computed from the published size,
  /// never by touching the vectors a concurrent first encode may be filling.
  [[nodiscard]] std::size_t footprint_bytes() const override {
    const std::size_t f = features_.load(std::memory_order_acquire);
    return f == 0 ? 0 : (f + 1) * config_.dim * sizeof(float);
  }

  /// Encode one window (flatten -> project -> cos): a batch of one through
  /// the blocked kernel. Throws std::invalid_argument when the window shape
  /// differs from the first one encoded.
  [[nodiscard]] Hypervector encode(const Window& window) const;

  using Encoder::encode_batch;
  void encode_batch(const WindowDataset& dataset, HvMatrix& out,
                    bool parallel) const override;

 private:
  void ensure_projection(std::size_t features) const;

  ProjectionEncoderConfig config_;
  mutable std::once_flag init_once_;  // guards first materialization
  /// Flattened input size F; 0 until materialized. The release store is the
  /// LAST write of the call_once lambda, so an acquire load observing F != 0
  /// proves weights_t_/bias_ are fully built (footprint_bytes relies on it).
  mutable std::atomic<std::size_t> features_{0};
  mutable std::vector<float> weights_t_;      // F × d row-major (transposed W)
  mutable std::vector<float> bias_;           // d
};

}  // namespace smore
