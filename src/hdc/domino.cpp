#include "hdc/domino.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace smore {

DominoClassifier::DominoClassifier(int num_classes, const DominoConfig& config)
    : num_classes_(num_classes),
      config_(config),
      model_(num_classes, config.active_dim) {
  if (config.active_dim == 0) {
    throw std::invalid_argument("Domino: active_dim must be positive");
  }
  if (config.active_dim > config.total_dim) {
    throw std::invalid_argument("Domino: active_dim must not exceed total_dim");
  }
  if (config.regen_fraction <= 0.0 || config.regen_fraction >= 1.0) {
    throw std::invalid_argument("Domino: regen_fraction must be in (0, 1)");
  }
  active_.resize(config.active_dim);
  std::iota(active_.begin(), active_.end(), 0);
  consumed_ = config.active_dim;
}

int DominoClassifier::planned_rounds() const noexcept {
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(config_.active_dim) * config_.regen_fraction));
  const std::size_t pool_left = config_.total_dim - config_.active_dim;
  // One final round after the pool is exhausted to retrain on the last set.
  return static_cast<int>((pool_left + per_round - 1) / per_round) + 1;
}

HvDataset DominoClassifier::gather(const HvDataset& data) const {
  HvDataset compact(data.size(), config_.active_dim);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto src = data.row(i);
    auto dst = compact.row(i);
    for (std::size_t j = 0; j < active_.size(); ++j) dst[j] = src[active_[j]];
    compact.set_label(i, data.label(i));
    compact.set_domain(i, data.domain(i));
  }
  return compact;
}

std::vector<double> DominoClassifier::bias_scores(
    const HvDataset& compact) const {
  const int domains = compact.num_domains();
  const int classes = num_classes_;
  const std::size_t d = config_.active_dim;

  // Per-(domain, class) prototype = normalized bundle of that cell's samples.
  std::vector<std::vector<float>> proto(
      static_cast<std::size_t>(domains) * classes, std::vector<float>(d, 0.0f));
  std::vector<std::size_t> counts(static_cast<std::size_t>(domains) * classes,
                                  0);
  for (std::size_t i = 0; i < compact.size(); ++i) {
    const std::size_t cell = static_cast<std::size_t>(compact.domain(i)) *
                                 static_cast<std::size_t>(classes) +
                             static_cast<std::size_t>(compact.label(i));
    ops::axpy(1.0f, compact.row(i).data(), proto[cell].data(), d);
    ++counts[cell];
  }
  for (std::size_t cell = 0; cell < proto.size(); ++cell) {
    const double n = ops::nrm2(proto[cell].data(), d);
    if (n > 0.0) {
      ops::scale(static_cast<float>(1.0 / n), proto[cell].data(), d);
    }
  }

  // score_j = Σ_c Var_domains(proto[domain, c][j]) over populated cells.
  std::vector<double> score(d, 0.0);
  for (int c = 0; c < classes; ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      double sum = 0.0;
      double sum_sq = 0.0;
      int populated = 0;
      for (int k = 0; k < domains; ++k) {
        const std::size_t cell = static_cast<std::size_t>(k) *
                                     static_cast<std::size_t>(classes) +
                                 static_cast<std::size_t>(c);
        if (counts[cell] == 0) continue;
        const double v = proto[cell][j];
        sum += v;
        sum_sq += v * v;
        ++populated;
      }
      if (populated > 1) {
        const double mean = sum / populated;
        score[j] += sum_sq / populated - mean * mean;
      }
    }
  }
  return score;
}

std::vector<double> DominoClassifier::fit(const HvDataset& train) {
  if (train.dim() < config_.total_dim) {
    throw std::invalid_argument(
        "Domino::fit: encoded pool narrower than total_dim");
  }
  const std::size_t per_round = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             static_cast<double>(config_.active_dim) * config_.regen_fraction));

  OnlineHDConfig inner;
  inner.learning_rate = config_.learning_rate;
  inner.epochs = config_.inner_epochs;
  inner.seed = config_.seed;

  std::vector<double> history;
  std::size_t pool_cursor = config_.active_dim;
  const int rounds = planned_rounds();
  history.reserve(static_cast<std::size_t>(rounds));

  for (int round = 0; round < rounds; ++round) {
    const HvDataset compact = gather(train);
    model_ = OnlineHDClassifier(num_classes_, config_.active_dim);
    const auto trace = model_.fit(compact, inner);
    history.push_back(trace.empty() ? 0.0 : trace.back());

    if (pool_cursor >= config_.total_dim) break;  // pool exhausted

    // Rank active dimensions by cross-domain bias, descending.
    const std::vector<double> score = bias_scores(compact);
    std::vector<std::size_t> order(active_.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return score[a] > score[b];
                     });

    const std::size_t replace =
        std::min(per_round, config_.total_dim - pool_cursor);
    for (std::size_t r = 0; r < replace; ++r) {
      active_[order[r]] = pool_cursor++;
    }
    consumed_ += replace;
  }
  return history;
}

int DominoClassifier::predict(std::span<const float> full_row) const {
  if (full_row.size() < config_.total_dim) {
    throw std::invalid_argument("Domino::predict: row narrower than pool");
  }
  std::vector<float> compact(config_.active_dim);
  for (std::size_t j = 0; j < active_.size(); ++j) {
    compact[j] = full_row[active_[j]];
  }
  return model_.predict(compact);
}

double DominoClassifier::accuracy(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += predict(data.row(i)) == data.label(i) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace smore
