#include "hdc/binary.hpp"

#include <bit>
#include <stdexcept>

namespace smore {

BinaryVector::BinaryVector(std::span<const float> values)
    : dim_(values.size()), words_((values.size() + 63) / 64, 0) {
  for (std::size_t j = 0; j < values.size(); ++j) {
    if (values[j] >= 0.0f) {
      words_[j >> 6] |= (std::uint64_t{1} << (j & 63));
    }
  }
}

std::size_t BinaryVector::hamming(const BinaryVector& other) const {
  if (dim_ != other.dim_) {
    throw std::invalid_argument("BinaryVector::hamming: dimension mismatch");
  }
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    distance += static_cast<std::size_t>(
        std::popcount(words_[w] ^ other.words_[w]));
  }
  return distance;
}

double BinaryVector::similarity(const BinaryVector& other) const {
  if (dim_ == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(hamming(other)) /
                   static_cast<double>(dim_);
}

BinaryModel::BinaryModel(const OnlineHDClassifier& model) : dim_(model.dim()) {
  classes_.reserve(static_cast<std::size_t>(model.num_classes()));
  for (int c = 0; c < model.num_classes(); ++c) {
    classes_.emplace_back(model.class_vector(c).span());
  }
}

std::size_t BinaryModel::footprint_bytes() const noexcept {
  std::size_t bytes = 0;
  for (const auto& c : classes_) bytes += c.words().size() * sizeof(std::uint64_t);
  return bytes;
}

int BinaryModel::predict(std::span<const float> hv) const {
  return predict(BinaryVector(hv));
}

int BinaryModel::predict(const BinaryVector& query) const {
  if (query.dim() != dim_) {
    throw std::invalid_argument("BinaryModel::predict: dimension mismatch");
  }
  int best = 0;
  std::size_t best_distance = dim_ + 1;
  for (int c = 0; c < num_classes(); ++c) {
    const std::size_t d = classes_[static_cast<std::size_t>(c)].hamming(query);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

double BinaryModel::accuracy(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    correct += predict(data.row(i)) == data.label(i) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace smore
