#include "hdc/binary.hpp"

#include <bit>
#include <stdexcept>

#include "hdc/ops_binary.hpp"

namespace smore {

BinaryVector::BinaryVector(std::span<const float> values)
    : dim_(values.size()), words_((values.size() + 63) / 64, 0) {
  for (std::size_t j = 0; j < values.size(); ++j) {
    if (values[j] >= 0.0f) {
      words_[j >> 6] |= (std::uint64_t{1} << (j & 63));
    }
  }
}

std::size_t BinaryVector::hamming(const BinaryVector& other) const {
  if (dim_ != other.dim_) {
    throw std::invalid_argument("BinaryVector::hamming: dimension mismatch");
  }
  std::size_t distance = 0;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    distance += static_cast<std::size_t>(
        std::popcount(words_[w] ^ other.words_[w]));
  }
  return distance;
}

double BinaryVector::similarity(const BinaryVector& other) const {
  if (dim_ == 0) return 0.0;
  return 1.0 - 2.0 * static_cast<double>(hamming(other)) /
                   static_cast<double>(dim_);
}

BinaryModel::BinaryModel(const OnlineHDClassifier& model)
    : dim_(model.dim()),
      classes_(static_cast<std::size_t>(model.num_classes()), model.dim()) {
  for (int c = 0; c < model.num_classes(); ++c) {
    ops::sign_pack_row(model.class_vector(c).data(), dim_,
                       classes_.row(static_cast<std::size_t>(c)));
  }
}

int BinaryModel::predict(std::span<const float> hv) const {
  if (hv.size() != dim_) {
    throw std::invalid_argument("BinaryModel::predict: dimension mismatch");
  }
  return predict_batch(HvView(hv)).at(0);
}

int BinaryModel::predict(const BinaryVector& query) const {
  if (query.dim() != dim_) {
    throw std::invalid_argument("BinaryModel::predict: dimension mismatch");
  }
  // Allocation-free argmin: the streaming on-device path predicts one
  // pre-packed window at a time, so it must not pay per-query heap traffic.
  const std::size_t nw = classes_.words_per_row();
  int best = 0;
  std::size_t best_distance = dim_ + 1;
  for (std::size_t c = 0; c < classes_.rows(); ++c) {
    const std::size_t d =
        ops::hamming_words(query.words().data(), classes_.row(c), nw);
    if (d < best_distance) {
      best_distance = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

std::vector<int> BinaryModel::predict_batch(BitView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_ ||
      queries.words_per_row != classes_.words_per_row()) {
    throw std::invalid_argument("BinaryModel::predict_batch: dim mismatch");
  }
  const std::size_t np = classes_.rows();
  std::vector<std::size_t> distances(queries.rows * np);
  ops::hamming_matrix(queries, classes_.view(), distances.data());
  std::vector<int> labels(queries.rows);
  for (std::size_t q = 0; q < queries.rows; ++q) {
    const std::size_t* row = distances.data() + q * np;
    int best = 0;
    std::size_t best_distance = dim_ + 1;
    for (std::size_t c = 0; c < np; ++c) {
      if (row[c] < best_distance) {
        best_distance = row[c];
        best = static_cast<int>(c);
      }
    }
    labels[q] = best;
  }
  return labels;
}

std::vector<int> BinaryModel::predict_batch(HvView queries) const {
  if (queries.rows == 0) return {};
  if (queries.dim != dim_) {
    throw std::invalid_argument("BinaryModel::predict_batch: dim mismatch");
  }
  return predict_batch(ops::sign_pack_matrix(queries).view());
}

double BinaryModel::evaluate(BitView queries,
                             std::span<const int> labels) const {
  if (labels.size() != queries.rows) {
    throw std::invalid_argument("BinaryModel::evaluate: label arity mismatch");
  }
  if (queries.rows == 0) return 0.0;
  const std::vector<int> predicted = predict_batch(queries);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    correct += predicted[i] == labels[i] ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(queries.rows);
}

double BinaryModel::accuracy(const HvDataset& data) const {
  if (data.empty()) return 0.0;
  return evaluate(ops::sign_pack_matrix(data.view()).view(), data.labels());
}

}  // namespace smore
