#pragma once
// Packed-binary kernels: sign quantization and blocked XOR+popcount Hamming
// similarity (DESIGN.md §5, §8).
//
// Edge HDC deployments sign-quantize trained models to packed bits and
// replace cosine with Hamming similarity: a similarity query then touches
// d/64 machine words instead of d floats. These kernels are the bit
// counterparts of ops.hpp's float engines and follow the same architecture:
//   * register blocking: hamming_batch computes four prototype distances per
//     sweep of the query row, so each loaded query word feeds four
//     XOR+popcount chains;
//   * cache blocking: the matrix drivers walk prototypes in panels that stay
//     L1/L2-resident across a whole tile of queries;
//   * thread blocking: query row tiles are distributed over the global
//     ThreadPool into disjoint pre-sized output slots. Distances are exact
//     integers, so results are bit-identical for any thread count and any
//     blocking — the kernels equal the scalar BinaryVector::hamming loop
//     word for word.
// Under -march=native the popcount loops auto-vectorize (AVX-512
// VPOPCNTDQ where available); the sign packer has an explicit AVX-512
// mask-compare path because the bit-scatter loop does not auto-vectorize.
//
// Precondition (asserted, not thrown): every packed row keeps its padding
// bits — bits [dim, words·64) — zero, the BitMatrix invariant. Whole-word
// XOR of two such rows has zero padding, so full-word popcounts equal the
// Hamming distance over the logical dim bits.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/bit_matrix.hpp"
#include "hdc/hv_matrix.hpp"
#include "util/thread_pool.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace smore::ops {

/// Prototype rows per register block in hamming_batch.
inline constexpr std::size_t kHammingBlock = 4;
/// Prototype rows per cache panel in the Hamming matrix drivers. At
/// d = 8192 bits a panel is 16 × 1 KiB = 16 KiB — L1-resident while a tile
/// of queries streams against it.
inline constexpr std::size_t kBitPanelRows = 16;
/// Query rows per parallel work item (grain of the ThreadPool split).
inline constexpr std::size_t kBitRowTile = 64;

/// Hamming distance between two packed rows of nw words (padding bits zero
/// in both). Two accumulator chains let the compiler pipeline/vectorize the
/// popcounts — this is the bit analogue of ops::dot.
inline std::size_t hamming_words(const std::uint64_t* a,
                                 const std::uint64_t* b,
                                 std::size_t nw) noexcept {
  assert(a != nullptr && b != nullptr);
  std::uint64_t acc0 = 0;
  std::uint64_t acc1 = 0;
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    acc0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
    acc1 += static_cast<std::uint64_t>(std::popcount(a[w + 1] ^ b[w + 1]));
  }
  if (w < nw) acc0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  return static_cast<std::size_t>(acc0 + acc1);
}

/// out[p] = hamming(q, P_p) for the np packed rows of P. Prototypes are
/// processed four at a time so one sweep of the query row feeds four
/// independent XOR+popcount chains (the register-blocking step of the
/// matrix drivers).
inline void hamming_batch(const std::uint64_t* q,
                          const std::uint64_t* prototypes, std::size_t np,
                          std::size_t nw, std::size_t* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  std::size_t p = 0;
  for (; p + kHammingBlock <= np; p += kHammingBlock) {
    const std::uint64_t* p0 = prototypes + (p + 0) * nw;
    const std::uint64_t* p1 = prototypes + (p + 1) * nw;
    const std::uint64_t* p2 = prototypes + (p + 2) * nw;
    const std::uint64_t* p3 = prototypes + (p + 3) * nw;
    std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      const std::uint64_t qw = q[w];
      a0 += static_cast<std::uint64_t>(std::popcount(qw ^ p0[w]));
      a1 += static_cast<std::uint64_t>(std::popcount(qw ^ p1[w]));
      a2 += static_cast<std::uint64_t>(std::popcount(qw ^ p2[w]));
      a3 += static_cast<std::uint64_t>(std::popcount(qw ^ p3[w]));
    }
    out[p + 0] = static_cast<std::size_t>(a0);
    out[p + 1] = static_cast<std::size_t>(a1);
    out[p + 2] = static_cast<std::size_t>(a2);
    out[p + 3] = static_cast<std::size_t>(a3);
  }
  for (; p < np; ++p) out[p] = hamming_words(q, prototypes + p * nw, nw);
}

namespace detail {

/// Serial core shared by the Hamming matrix drivers: distances of queries
/// [q_begin, q_end) against all np prototypes, written to out (row-major
/// [(q_end - q_begin) × np], tile-relative row indexing: query q lands in
/// row q - q_begin). Prototypes are walked in cache panels in the outer
/// loop so each panel is re-used by every query of the tile.
inline void hamming_matrix_tile(const std::uint64_t* queries,
                                std::size_t q_begin, std::size_t q_end,
                                const std::uint64_t* prototypes,
                                std::size_t np, std::size_t nw,
                                std::size_t* out) noexcept {
  for (std::size_t p = 0; p < np; p += kBitPanelRows) {
    const std::size_t panel =
        p + kBitPanelRows <= np ? kBitPanelRows : np - p;
    const std::uint64_t* panel_rows = prototypes + p * nw;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      hamming_batch(queries + q * nw, panel_rows, panel, nw,
                    out + (q - q_begin) * np + p);
    }
  }
}

}  // namespace detail

/// Row-major [nq × np] matrix of Hamming distances between packed query and
/// prototype rows of nw words each. `parallel` splits the query rows into
/// kBitRowTile-sized tiles over the global ThreadPool; tiles write disjoint
/// output ranges and distances are exact integers, so the result is
/// bit-identical for any thread count.
inline void hamming_matrix(const std::uint64_t* queries, std::size_t nq,
                           const std::uint64_t* prototypes, std::size_t np,
                           std::size_t nw, std::size_t* out,
                           bool parallel = true) {
  if (nq == 0 || np == 0) return;
  if (!parallel || nq <= kBitRowTile) {
    detail::hamming_matrix_tile(queries, 0, nq, prototypes, np, nw, out);
    return;
  }
  const std::size_t tiles = (nq + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end = begin + kBitRowTile < nq ? begin + kBitRowTile : nq;
    detail::hamming_matrix_tile(queries, begin, end, prototypes, np, nw,
                                out + begin * np);
  });
}

/// Convenience driver over views. Dimension agreement is a precondition.
inline void hamming_matrix(BitView queries, BitView prototypes,
                           std::size_t* out, bool parallel = true) {
  assert(queries.dim == prototypes.dim &&
         queries.words_per_row == prototypes.words_per_row);
  hamming_matrix(queries.data, queries.rows, prototypes.data, prototypes.rows,
                 queries.words_per_row, out, parallel);
}

/// Row-major [nq × np] matrix of normalized Hamming similarities
/// 1 - 2·hamming/d ∈ [-1, 1] — the binary analogue of cosine (it equals the
/// expected cosine of the underlying bipolar vectors) and the packed
/// counterpart of ops::similarity_matrix. Same tiling/threading as
/// hamming_matrix; the distance→similarity epilogue runs per tile while the
/// integer distances are hot.
inline void binary_similarity_matrix(const std::uint64_t* queries,
                                     std::size_t nq,
                                     const std::uint64_t* prototypes,
                                     std::size_t np, std::size_t nw,
                                     std::size_t dim, double* out,
                                     bool parallel = true) {
  if (nq == 0 || np == 0) return;
  const double scale = dim == 0 ? 0.0 : 2.0 / static_cast<double>(dim);
  const auto tile = [&](std::size_t q_begin, std::size_t q_end) {
    // Panelled distances for the whole tile first (prototype panels stay
    // L1-resident across the tile, as in hamming_matrix), then the
    // distance→similarity epilogue while the integers are hot.
    std::vector<std::size_t> dist((q_end - q_begin) * np);
    detail::hamming_matrix_tile(queries, q_begin, q_end, prototypes, np, nw,
                                dist.data());
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const std::size_t* drow = dist.data() + (q - q_begin) * np;
      double* row = out + q * np;
      for (std::size_t p = 0; p < np; ++p) {
        row[p] = 1.0 - scale * static_cast<double>(drow[p]);
      }
    }
  };
  if (!parallel || nq <= kBitRowTile) {
    tile(0, nq);
    return;
  }
  const std::size_t tiles = (nq + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end = begin + kBitRowTile < nq ? begin + kBitRowTile : nq;
    tile(begin, end);
  });
}

/// Convenience driver over views. Dimension agreement is a precondition.
inline void binary_similarity_matrix(BitView queries, BitView prototypes,
                                     double* out, bool parallel = true) {
  assert(queries.dim == prototypes.dim &&
         queries.words_per_row == prototypes.words_per_row);
  binary_similarity_matrix(queries.data, queries.rows, prototypes.data,
                           prototypes.rows, queries.words_per_row,
                           queries.dim, out, parallel);
}

/// Sign-quantize one float row into packed bits: bit j = (v[j] >= 0.0f),
/// exactly the BinaryVector predicate. Padding bits of the last word are
/// written zero. The AVX-512 path forms 16 mask bits per compare
/// (quantization is the dominant cost of the scalar binary path — the
/// bit-scatter loop runs ~15× slower); the portable path builds each word
/// from 64 branch-free shift-ORs.
inline void sign_pack_row(const float* v, std::size_t dim,
                          std::uint64_t* out) noexcept {
  assert(dim == 0 || (v != nullptr && out != nullptr));
  std::size_t j = 0;
#if defined(__AVX512F__)
  const __m512 zero = _mm512_setzero_ps();
  for (; j + 64 <= dim; j += 64) {
    const std::uint64_t m0 =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(v + j), zero, _CMP_GE_OQ);
    const std::uint64_t m1 =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(v + j + 16), zero, _CMP_GE_OQ);
    const std::uint64_t m2 =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(v + j + 32), zero, _CMP_GE_OQ);
    const std::uint64_t m3 =
        _mm512_cmp_ps_mask(_mm512_loadu_ps(v + j + 48), zero, _CMP_GE_OQ);
    out[j >> 6] = m0 | (m1 << 16) | (m2 << 32) | (m3 << 48);
  }
#else
  for (; j + 64 <= dim; j += 64) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 64; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;
  }
#endif
  if (j < dim) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; j + b < dim; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;  // padding bits stay zero
  }
}

/// Batch sign quantization: pack every float row of src into the
/// corresponding packed row of out (row-major, nw words per row).
/// Parallelized over row tiles; rows are independent, so the packing is
/// bit-identical for any thread count.
inline void sign_pack_matrix(const float* src, std::size_t rows,
                             std::size_t dim, std::uint64_t* out,
                             std::size_t nw, bool parallel = true) {
  assert(nw >= BitMatrix::words_for(dim));
  if (rows == 0) return;
  const auto tile = [&](std::size_t r_begin, std::size_t r_end) {
    for (std::size_t r = r_begin; r < r_end; ++r) {
      sign_pack_row(src + r * dim, dim, out + r * nw);
    }
  };
  if (!parallel || rows <= kBitRowTile) {
    tile(0, rows);
    return;
  }
  const std::size_t tiles = (rows + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end =
        begin + kBitRowTile < rows ? begin + kBitRowTile : rows;
    tile(begin, end);
  });
}

/// Quantize a whole float block into a packed BitMatrix (the HvView → bits
/// entry point of the binary backend).
inline BitMatrix sign_pack_matrix(HvView src, bool parallel = true) {
  BitMatrix out(src.rows, src.dim);
  sign_pack_matrix(src.data, src.rows, src.dim, out.data(),
                   out.words_per_row(), parallel);
  return out;
}

}  // namespace smore::ops
