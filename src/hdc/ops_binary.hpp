#pragma once
// Packed-binary kernels: sign quantization and blocked XOR+popcount Hamming
// similarity (DESIGN.md §5, §8).
//
// Edge HDC deployments sign-quantize trained models to packed bits and
// replace cosine with Hamming similarity: a similarity query then touches
// d/64 machine words instead of d floats. These kernels are the bit
// counterparts of ops.hpp's float engines and follow the same architecture:
// the entry points route through the runtime CPU-dispatch table
// (hdc/dispatch.hpp) — hardware POPCNT on any modern x86, 512-bit VPOPCNTQ
// where the CPU has AVX-512 VPOPCNTDQ, NEON VCNT on ARM, all selected at
// startup from one fat binary. (The AVX-512 sign packer used to sit behind a
// compile-time __AVX512F__ guard right here, which made -march=native
// binaries SIGILL on older hosts; runtime dispatch removes that trap.)
// Distances are exact integers, so every variant and any blocking or thread
// count produces identical results — the kernels equal the scalar
// BinaryVector::hamming loop word for word.
//
// Matrix drivers keep the three-level blocking scheme: register blocks
// inside the dispatched tile kernels, L1-resident prototype panels, query
// row tiles over the global ThreadPool into disjoint output slots.
//
// Precondition (asserted, not thrown): every packed row keeps its padding
// bits — bits [dim, words·64) — zero, the BitMatrix invariant. Whole-word
// XOR of two such rows has zero padding, so full-word popcounts equal the
// Hamming distance over the logical dim bits.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/bit_matrix.hpp"
#include "hdc/dispatch.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/kernels/kernels_generic.hpp"
#include "util/thread_pool.hpp"

namespace smore::ops {

// Blocking constants are defined once next to the canonical kernels;
// re-exported here for existing callers.
using smore::kern::kBitPanelRows;
using smore::kern::kBitRowTile;
using smore::kern::kHammingBlock;

/// Hamming distance between two packed rows of nw words (padding bits zero
/// in both) — the bit analogue of ops::dot. Single-pair reference helper;
/// the batched paths below are the dispatched ones.
inline std::size_t hamming_words(const std::uint64_t* a,
                                 const std::uint64_t* b,
                                 std::size_t nw) noexcept {
  assert(a != nullptr && b != nullptr);
  return kern::generic::hamming_words(a, b, nw);
}

/// out[p] = hamming(q, P_p) for the np packed rows of P (register-blocked:
/// each loaded query word feeds kHammingBlock XOR+popcount chains).
/// Dispatched.
inline void hamming_batch(const std::uint64_t* q,
                          const std::uint64_t* prototypes, std::size_t np,
                          std::size_t nw, std::size_t* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  kern::table().hamming_batch(q, prototypes, np, nw, out);
}

namespace detail {

/// Serial core shared by the Hamming matrix drivers: distances of queries
/// [q_begin, q_end) against all np prototypes, written to out (row-major
/// [(q_end - q_begin) × np], tile-relative row indexing). Dispatched; see
/// kernels_generic.hpp for the reference and the panel scheme.
inline void hamming_matrix_tile(const std::uint64_t* queries,
                                std::size_t q_begin, std::size_t q_end,
                                const std::uint64_t* prototypes,
                                std::size_t np, std::size_t nw,
                                std::size_t* out) noexcept {
  kern::table().hamming_matrix_tile(queries, q_begin, q_end, prototypes, np,
                                    nw, out);
}

}  // namespace detail

/// Row-major [nq × np] matrix of Hamming distances between packed query and
/// prototype rows of nw words each. `parallel` splits the query rows into
/// kBitRowTile-sized tiles over the global ThreadPool; tiles write disjoint
/// output ranges and distances are exact integers, so the result is
/// bit-identical for any thread count.
inline void hamming_matrix(const std::uint64_t* queries, std::size_t nq,
                           const std::uint64_t* prototypes, std::size_t np,
                           std::size_t nw, std::size_t* out,
                           bool parallel = true) {
  if (nq == 0 || np == 0) return;
  const auto& table = kern::table();
  if (!parallel || nq <= kBitRowTile) {
    table.hamming_matrix_tile(queries, 0, nq, prototypes, np, nw, out);
    return;
  }
  const std::size_t tiles = (nq + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end = begin + kBitRowTile < nq ? begin + kBitRowTile : nq;
    table.hamming_matrix_tile(queries, begin, end, prototypes, np, nw,
                              out + begin * np);
  });
}

/// Convenience driver over views. Dimension agreement is a precondition.
inline void hamming_matrix(BitView queries, BitView prototypes,
                           std::size_t* out, bool parallel = true) {
  assert(queries.dim == prototypes.dim &&
         queries.words_per_row == prototypes.words_per_row);
  hamming_matrix(queries.data, queries.rows, prototypes.data, prototypes.rows,
                 queries.words_per_row, out, parallel);
}

/// Row-major [nq × np] matrix of normalized Hamming similarities
/// 1 - 2·hamming/d ∈ [-1, 1] — the binary analogue of cosine (it equals the
/// expected cosine of the underlying bipolar vectors) and the packed
/// counterpart of ops::similarity_matrix. Same tiling/threading as
/// hamming_matrix; the distance→similarity epilogue runs per tile while the
/// integer distances are hot.
inline void binary_similarity_matrix(const std::uint64_t* queries,
                                     std::size_t nq,
                                     const std::uint64_t* prototypes,
                                     std::size_t np, std::size_t nw,
                                     std::size_t dim, double* out,
                                     bool parallel = true) {
  if (nq == 0 || np == 0) return;
  const auto& table = kern::table();
  const double scale = dim == 0 ? 0.0 : 2.0 / static_cast<double>(dim);
  const auto tile = [&](std::size_t q_begin, std::size_t q_end) {
    // Panelled distances for the whole tile first (prototype panels stay
    // L1-resident across the tile, as in hamming_matrix), then the
    // distance→similarity epilogue while the integers are hot.
    std::vector<std::size_t> dist((q_end - q_begin) * np);
    table.hamming_matrix_tile(queries, q_begin, q_end, prototypes, np, nw,
                              dist.data());
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const std::size_t* drow = dist.data() + (q - q_begin) * np;
      double* row = out + q * np;
      for (std::size_t p = 0; p < np; ++p) {
        row[p] = 1.0 - scale * static_cast<double>(drow[p]);
      }
    }
  };
  if (!parallel || nq <= kBitRowTile) {
    tile(0, nq);
    return;
  }
  const std::size_t tiles = (nq + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end = begin + kBitRowTile < nq ? begin + kBitRowTile : nq;
    tile(begin, end);
  });
}

/// Convenience driver over views. Dimension agreement is a precondition.
inline void binary_similarity_matrix(BitView queries, BitView prototypes,
                                     double* out, bool parallel = true) {
  assert(queries.dim == prototypes.dim &&
         queries.words_per_row == prototypes.words_per_row);
  binary_similarity_matrix(queries.data, queries.rows, prototypes.data,
                           prototypes.rows, queries.words_per_row,
                           queries.dim, out, parallel);
}

/// Sign-quantize one float row into packed bits: bit j = (v[j] >= 0.0f),
/// exactly the BinaryVector predicate. Padding bits of the last word are
/// written zero. Dispatched: vector-compare mask kernels where the host has
/// them (quantization is the dominant cost of the scalar binary path — the
/// bit-scatter loop runs ~15× slower than the AVX-512 mask form).
inline void sign_pack_row(const float* v, std::size_t dim,
                          std::uint64_t* out) noexcept {
  assert(dim == 0 || (v != nullptr && out != nullptr));
  kern::table().sign_pack_row(v, dim, out);
}

/// Batch sign quantization: pack every float row of src into the
/// corresponding packed row of out (row-major, nw words per row).
/// Parallelized over row tiles; rows are independent, so the packing is
/// bit-identical for any thread count.
inline void sign_pack_matrix(const float* src, std::size_t rows,
                             std::size_t dim, std::uint64_t* out,
                             std::size_t nw, bool parallel = true) {
  assert(nw >= BitMatrix::words_for(dim));
  if (rows == 0) return;
  const auto pack_fn = kern::table().sign_pack_row;
  const auto tile = [&](std::size_t r_begin, std::size_t r_end) {
    for (std::size_t r = r_begin; r < r_end; ++r) {
      pack_fn(src + r * dim, dim, out + r * nw);
    }
  };
  if (!parallel || rows <= kBitRowTile) {
    tile(0, rows);
    return;
  }
  const std::size_t tiles = (rows + kBitRowTile - 1) / kBitRowTile;
  parallel_for(tiles, [&](std::size_t t) {
    const std::size_t begin = t * kBitRowTile;
    const std::size_t end =
        begin + kBitRowTile < rows ? begin + kBitRowTile : rows;
    tile(begin, end);
  });
}

/// Quantize a whole float block into a packed BitMatrix (the HvView → bits
/// entry point of the binary backend).
inline BitMatrix sign_pack_matrix(HvView src, bool parallel = true) {
  BitMatrix out(src.rows, src.dim);
  sign_pack_matrix(src.data, src.rows, src.dim, out.data(),
                   out.words_per_row(), parallel);
  return out;
}

}  // namespace smore::ops
