// Kernel dispatch resolution (see dispatch.hpp). The variant TUs under
// src/hdc/kernels/ each export one register_<tier>() that overwrites the
// slots it implements; resolution walks the tier ladder from scalar upward,
// applying every tier the host supports (optionally capped by SMORE_KERNEL),
// so each slot ends at the fastest implemented variant and gaps fall back
// naturally. Which TUs exist is a build-time fact (SMORE_KERNELS_* macros
// from CMakeLists.txt); which apply is a run-time fact (cpu_features).

#include "hdc/dispatch.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.hpp"

namespace smore::kern {

// Registration hooks exported by the variant TUs. Scalar always exists and
// fills every slot; the others are compiled only when the toolchain and
// target architecture allow (CMake defines the matching macro).
void register_scalar(const CpuFeatures& f, KernelTable& t,
                     const char** variant);
#if defined(SMORE_KERNELS_SSE2)
void register_sse2(const CpuFeatures& f, KernelTable& t, const char** variant);
#endif
#if defined(SMORE_KERNELS_AVX2)
void register_avx2(const CpuFeatures& f, KernelTable& t, const char** variant);
#endif
#if defined(SMORE_KERNELS_AVX512)
void register_avx512(const CpuFeatures& f, KernelTable& t,
                     const char** variant);
#endif
#if defined(SMORE_KERNELS_AVX512VPOPCNT)
void register_avx512vpopcnt(const CpuFeatures& f, KernelTable& t,
                            const char** variant);
#endif
#if defined(SMORE_KERNELS_NEON)
void register_neon(const CpuFeatures& f, KernelTable& t, const char** variant);
#endif

namespace {

bool tier_supported_by(const CpuFeatures& f, IsaTier t) {
  if (!tier_compiled(t)) return false;
  switch (t) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kSse2:
      return f.sse2;
    case IsaTier::kAvx2:
      return f.avx2 && f.fma && f.popcnt;
    case IsaTier::kAvx512:
      // Must match the TU's compile flags exactly: -mavx512f -mavx512bw
      // -mavx512vl plus AVX2-class 256-bit loads and FMA (CMakeLists.txt).
      return f.avx512f && f.avx512bw && f.avx512vl && f.avx2 && f.fma &&
             f.popcnt;
    case IsaTier::kNeon:
      return f.neon;
  }
  return false;
}

/// Apply one tier's registrations (no-op if its TU is not compiled in).
void apply_tier(IsaTier t, const CpuFeatures& f, Dispatch& d) {
  const char** v = d.kernel_variant;
  switch (t) {
    case IsaTier::kScalar:
      register_scalar(f, d.table, v);
      break;
    case IsaTier::kSse2:
#if defined(SMORE_KERNELS_SSE2)
      register_sse2(f, d.table, v);
#endif
      break;
    case IsaTier::kAvx2:
#if defined(SMORE_KERNELS_AVX2)
      register_avx2(f, d.table, v);
#endif
      break;
    case IsaTier::kAvx512:
#if defined(SMORE_KERNELS_AVX512)
      register_avx512(f, d.table, v);
#endif
#if defined(SMORE_KERNELS_AVX512VPOPCNT)
      // VPOPCNTDQ is a separate CPUID bit (absent on Skylake-X class
      // hosts), so its Hamming kernels apply only when the CPU has it.
      if (f.avx512vpopcntdq) register_avx512vpopcnt(f, d.table, v);
#endif
      break;
    case IsaTier::kNeon:
#if defined(SMORE_KERNELS_NEON)
      register_neon(f, d.table, v);
#endif
      break;
  }
  d.tier = t;
}

Dispatch resolve() {
  Dispatch d;
  d.features = detect_cpu_features();

  IsaTier forced_tier = IsaTier::kScalar;
  const char* env = std::getenv("SMORE_KERNEL");
  if (env != nullptr && env[0] != '\0') {
    if (parse_tier(env, forced_tier)) {
      d.forced = true;
    } else if (std::strcmp(env, "auto") != 0) {
      std::fprintf(stderr,
                   "[smore] SMORE_KERNEL=%s not recognized "
                   "(scalar|sse2|avx2|avx512|neon|auto); using auto\n",
                   env);
    }
  }

  for (int t = 0; t < kNumTiers; ++t) {
    const auto tier = static_cast<IsaTier>(t);
    if (d.forced && tier > forced_tier) continue;
    if (!tier_supported_by(d.features, tier)) continue;
    apply_tier(tier, d.features, d);
  }
  d.clamped = d.forced && !tier_supported_by(d.features, forced_tier);
  if (d.clamped) {
    std::fprintf(stderr,
                 "[smore] SMORE_KERNEL=%s is not executable on this host "
                 "(compiled=%d); clamped to %s\n",
                 tier_name(forced_tier),
                 tier_compiled(forced_tier) ? 1 : 0, tier_name(d.tier));
  }
  return d;
}

// Resolved dispatches are interned (never freed) so references handed out
// by dispatch() stay valid across reinitialize_dispatch() and LeakSanitizer
// sees reachable memory. Bounded by the number of reinitialize calls.
Mutex g_mutex;
std::vector<std::unique_ptr<Dispatch>>& interned() {
  static std::vector<std::unique_ptr<Dispatch>> v;
  return v;
}
std::atomic<const Dispatch*> g_active{nullptr};

}  // namespace

const Dispatch& dispatch() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d != nullptr) return *d;
  return reinitialize_dispatch();
}

const Dispatch& reinitialize_dispatch() {
  const MutexLock lock(g_mutex);
  interned().push_back(std::make_unique<Dispatch>(resolve()));
  const Dispatch* d = interned().back().get();
  g_active.store(d, std::memory_order_release);
  return *d;
}

bool tier_compiled(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kSse2:
#if defined(SMORE_KERNELS_SSE2)
      return true;
#else
      return false;
#endif
    case IsaTier::kAvx2:
#if defined(SMORE_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
    case IsaTier::kAvx512:
#if defined(SMORE_KERNELS_AVX512)
      return true;
#else
      return false;
#endif
    case IsaTier::kNeon:
#if defined(SMORE_KERNELS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool tier_supported(IsaTier t) {
  return tier_supported_by(dispatch().features, t);
}

const char* tier_name(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kSse2:
      return "sse2";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
    case IsaTier::kNeon:
      return "neon";
  }
  return "?";
}

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kDot:
      return "dot";
    case Kernel::kDotAndNorms:
      return "dot_and_norms";
    case Kernel::kDotMatrixTile:
      return "dot_matrix_tile";
    case Kernel::kNgramAxpy:
      return "ngram_axpy";
    case Kernel::kProjectCosTile:
      return "project_cos_tile";
    case Kernel::kSignPackRow:
      return "sign_pack_row";
    case Kernel::kHammingBatch:
      return "hamming_batch";
    case Kernel::kHammingMatrixTile:
      return "hamming_matrix_tile";
  }
  return "?";
}

bool parse_tier(const char* s, IsaTier& out) {
  if (s == nullptr) return false;
  std::string lower;
  for (const char* p = s; *p != '\0'; ++p) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p)));
  }
  for (int t = 0; t < kNumTiers; ++t) {
    const auto tier = static_cast<IsaTier>(t);
    if (lower == tier_name(tier)) {
      out = tier;
      return true;
    }
  }
  return false;
}

}  // namespace smore::kern
