#pragma once
// HvView / HvMatrix: contiguous row-major blocks of hypervectors.
//
// The batched similarity engine (ops::similarity_matrix and the *_batch APIs
// built on it) operates on [rows × dim] float blocks rather than individual
// hypervectors. HvView is the non-owning currency every batch API accepts —
// an HvDataset, an HvMatrix, or a single hypervector (batch of one) all
// convert to it for free. HvMatrix owns such a block; classifiers use it to
// keep their prototypes (class vectors, domain descriptors) packed
// contiguously so one matrix kernel replaces a loop of per-vector dots.

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "hdc/hypervector.hpp"

namespace smore {

/// Non-owning view over a row-major [rows × dim] block of floats. The
/// pointed-to storage must outlive the view. A dimension-consistent span is a
/// precondition, not a runtime check: views are built by the owning
/// containers below, whose layout is an invariant.
struct HvView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t dim = 0;

  HvView() = default;
  HvView(const float* data_, std::size_t rows_, std::size_t dim_) noexcept
      : data(data_), rows(rows_), dim(dim_) {}

  /// Batch-of-one view over a raw hypervector span.
  explicit HvView(std::span<const float> hv) noexcept
      : data(hv.data()), rows(hv.empty() ? 0 : 1), dim(hv.size()) {}

  [[nodiscard]] bool empty() const noexcept { return rows == 0; }

  [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
    return {data + i * dim, dim};
  }

  /// Rows [first, first + count) as a sub-view (used for tiling).
  [[nodiscard]] HvView slice(std::size_t first, std::size_t count) const noexcept {
    return {data + first * dim, count, dim};
  }
};

/// Owning contiguous row-major [rows × dim] hypervector block.
class HvMatrix {
 public:
  HvMatrix() = default;

  /// Zero-initialized block.
  HvMatrix(std::size_t rows, std::size_t dim)
      : rows_(rows), dim_(dim), data_(rows * dim, 0.0f) {}

  /// Pack a set of equally-sized hypervectors into one contiguous block.
  /// Throws std::invalid_argument on dimension disagreement.
  static HvMatrix pack(std::span<const Hypervector> hvs) {
    HvMatrix out;
    if (hvs.empty()) return out;
    out.rows_ = hvs.size();
    out.dim_ = hvs.front().dim();
    out.data_.resize(out.rows_ * out.dim_);
    for (std::size_t i = 0; i < hvs.size(); ++i) {
      if (hvs[i].dim() != out.dim_) {
        throw std::invalid_argument("HvMatrix::pack: dimension mismatch");
      }
      const float* src = hvs[i].data();
      std::copy(src, src + out.dim_, out.data_.data() + i * out.dim_);
    }
    return out;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0; }

  /// Re-shape to a zero-filled [rows × dim] block (the batch-encode output
  /// contract: encoders accumulate into freshly zeroed rows).
  void resize(std::size_t rows, std::size_t dim) {
    rows_ = rows;
    dim_ = dim;
    data_.assign(rows * dim, 0.0f);
  }

  /// Move the backing storage out (the matrix becomes empty). Lets HvDataset
  /// adopt a batch-encode result without copying rows.
  [[nodiscard]] std::vector<float> release() noexcept {
    rows_ = 0;
    dim_ = 0;
    return std::move(data_);
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<float> row(std::size_t i) noexcept {
    return {data_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
    return {data_.data() + i * dim_, dim_};
  }

  /// Overwrite row i. Throws std::invalid_argument on dimension mismatch.
  void set_row(std::size_t i, std::span<const float> hv) {
    if (hv.size() != dim_) {
      throw std::invalid_argument("HvMatrix::set_row: dimension mismatch");
    }
    std::copy(hv.begin(), hv.end(), data_.data() + i * dim_);
  }

  [[nodiscard]] HvView view() const noexcept { return {data_.data(), rows_, dim_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::vector<float> data_;
};

}  // namespace smore
