#pragma once
// Deterministic online clustering of an adaptation round (DESIGN.md §13).
//
// The OOD side buffer of a streaming server is rarely ONE coherent
// distribution: a round can hold windows from several drifting subjects at
// once (abrupt + gradual drift overlapping). Enrolling the whole buffer as a
// single pseudo-domain smears unrelated distributions into one descriptor,
// which poisons both the OOD detector (δ to the blob is low for everything)
// and the ensemble weights. This module splits a round into k coherent
// pseudo-domains first.
//
// The algorithm is spherical k-means with farthest-first seeding, chosen for
// determinism rather than novelty: no RNG, no data-order sensitivity beyond
// the buffer order itself, so an adaptation round is exactly reproducible
// from its inputs (the same property every other layer of this codebase
// maintains). k is ADAPTIVE: seeds are added only while some row is farther
// than `split_threshold` from every existing seed, so a genuinely coherent
// round costs one cluster and no configuration tuning.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hdc/hv_matrix.hpp"

namespace smore {

/// Clustering knobs (defaults sized for adaptation rounds of 64-1024 rows).
struct ClusterConfig {
  std::size_t max_clusters = 4;     ///< hard cap on k per round
  std::size_t min_cluster_size = 8; ///< smaller clusters fold into neighbors
  int iterations = 3;               ///< Lloyd refinement passes
  /// Stop seeding once every row has cosine ≥ this to some seed: the round
  /// is considered covered. Lower = fewer, coarser clusters.
  double split_threshold = 0.90;
};

/// A partition of the input rows into k coherent groups.
struct Clustering {
  std::size_t k = 0;                      ///< clusters found (≤ max_clusters)
  std::vector<std::uint32_t> assignment;  ///< row → cluster index, size = rows
  HvMatrix centroids;                     ///< [k × dim] member means
  std::vector<std::size_t> sizes;         ///< members per cluster
};

/// Partition `rows` into at most `config.max_clusters` coherent groups.
/// Deterministic: same rows (in the same order) → same clustering, on any
/// machine (the cosine kernels are bit-identical across ISA variants).
/// Returns an empty Clustering for zero rows.
[[nodiscard]] Clustering cluster_rows(HvView rows, const ClusterConfig& config);

}  // namespace smore
