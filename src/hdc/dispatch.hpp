#pragma once
// Runtime CPU-dispatch layer for the hot kernels (DESIGN.md §11).
//
// One fat binary carries every SIMD variant the compiler could build
// (src/hdc/kernels/kernels_*.cpp, each compiled per-TU with explicit arch
// flags — never -march=native); at first use this layer detects the host
// CPU (util/cpu_features.hpp) and resolves ONE function pointer per kernel
// slot to the fastest variant the host can execute. ops.hpp / ops_binary.hpp
// route their public entry points through the resolved table, so every
// caller — float stack, packed stack, serving, benches — gets the fast path
// with no build-time arch choice and no SIGILL risk on older hosts.
//
// Every variant is pinned bit-identical to the scalar reference
// (kernels_generic.hpp documents why that is achievable; test_dispatch.cpp
// enforces it), so dispatch is purely a speed decision: results do not
// depend on the host, the tier, or the thread count.
//
// The environment variable SMORE_KERNEL forces a tier for testing/triage:
//   SMORE_KERNEL=scalar|sse2|avx2|avx512|neon|auto
// A forced tier caps the resolution ladder (kernels a tier does not
// implement fall back to the best lower tier, exactly as they would on a
// CPU of that generation). Forcing a tier the host cannot execute clamps to
// the best supported tier and flags `clamped`.
//
// This header is intentionally light (no intrinsics, no kernel includes) so
// ops.hpp can include it everywhere.

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.hpp"

namespace smore::kern {

/// Dispatch tiers, ordered by preference. On x86 the ladder is
/// scalar < sse2 < avx2 < avx512; on ARM it is scalar < neon. Higher tiers
/// overwrite the slots they implement; unimplemented slots keep the best
/// lower-tier variant.
enum class IsaTier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
  kNeon = 4,
};
inline constexpr int kNumTiers = 5;

/// Dispatched kernel slots (one function pointer each; see KernelTable).
enum class Kernel : int {
  kDot = 0,
  kDotAndNorms,
  kDotMatrixTile,
  kNgramAxpy,
  kProjectCosTile,
  kSignPackRow,
  kHammingBatch,
  kHammingMatrixTile,
};
inline constexpr std::size_t kNumKernels = 8;

/// Stable names for tools/logs ("dot", "ngram_axpy", ...).
const char* kernel_name(Kernel k);
/// Stable tier names ("scalar", "sse2", ...).
const char* tier_name(IsaTier t);
/// Parse a SMORE_KERNEL value; returns false for unknown strings ("auto"
/// and "" are not tiers and also return false).
bool parse_tier(const char* s, IsaTier& out);

/// The resolved per-kernel function pointers. Signatures mirror the
/// canonical references in kernels_generic.hpp, including each one's output
/// indexing convention (dot_matrix_tile absolute rows, hamming_matrix_tile
/// tile-relative rows).
struct KernelTable {
  double (*dot)(const float* a, const float* b, std::size_t n);
  void (*dot_and_norms)(const float* a, const float* b, std::size_t n,
                        double& ab, double& aa, double& bb);
  void (*dot_matrix_tile)(const float* queries, std::size_t q_begin,
                          std::size_t q_end, const float* prototypes,
                          std::size_t np, std::size_t dim, double* out);
  void (*ngram_axpy)(const float* const* levels, const std::size_t* shifts,
                     std::size_t n_factors, std::size_t d, float weight,
                     float* acc);
  void (*project_cos_tile)(const float* x, std::size_t q_begin,
                           std::size_t q_end, const float* wt, std::size_t dp,
                           std::size_t features, const float* bias,
                           float* out);
  void (*sign_pack_row)(const float* v, std::size_t dim, std::uint64_t* out);
  void (*hamming_batch)(const std::uint64_t* q, const std::uint64_t* prototypes,
                        std::size_t np, std::size_t nw, std::size_t* out);
  void (*hamming_matrix_tile)(const std::uint64_t* queries,
                              std::size_t q_begin, std::size_t q_end,
                              const std::uint64_t* prototypes, std::size_t np,
                              std::size_t nw, std::size_t* out);
};

/// The resolution result: the table plus everything a triage log wants.
struct Dispatch {
  KernelTable table;
  IsaTier tier = IsaTier::kScalar;  ///< highest tier that won any slot
  CpuFeatures features;             ///< detected host mask
  /// Winning variant name per kernel slot, indexed by Kernel. A tier that
  /// implements a slot with an extension records it verbatim (the AVX-512
  /// Hamming kernels report "avx512vpopcntdq").
  const char* kernel_variant[kNumKernels] = {};
  bool forced = false;   ///< SMORE_KERNEL named a tier
  bool clamped = false;  ///< the named tier exceeded host capability
};

/// The active dispatch, resolved once on first use (thread-safe). Reads
/// SMORE_KERNEL at resolution time.
const Dispatch& dispatch();

/// Re-resolve from the environment. Test/tool hook: callers must ensure no
/// kernel is concurrently executing. Previous Dispatch objects stay alive
/// (they are interned), so stale references remain valid.
const Dispatch& reinitialize_dispatch();

/// Was this tier's variant TU compiled into the binary? (scalar: always.)
bool tier_compiled(IsaTier t);
/// Compiled AND executable on this host's CPU.
bool tier_supported(IsaTier t);

/// The active kernel table — the one-liner the ops wrappers use.
inline const KernelTable& table() { return dispatch().table; }

}  // namespace smore::kern
