#pragma once
// HvDataset: a struct-of-arrays container of encoded hypervectors together
// with their class labels and domain ids. This is the common currency between
// the encoder, the HDC classifiers, and the SMORE core.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "hdc/hv_matrix.hpp"

namespace smore {

/// Row-major [n × dim] matrix of encoded samples plus per-row label/domain.
/// Invariants: data.size() == n*dim, labels.size() == domains.size() == n.
class HvDataset {
 public:
  HvDataset() = default;

  /// Empty dataset of the given hyperdimension.
  explicit HvDataset(std::size_t dim) : dim_(dim) {}

  /// Pre-size for `n` rows (rows remain zero until written).
  HvDataset(std::size_t n, std::size_t dim)
      : dim_(dim), data_(n * dim, 0.0f), labels_(n, 0), domains_(n, 0) {}

  /// Take ownership of a packed [n × dim] block plus aligned per-row
  /// metadata — the zero-copy handoff from Encoder::encode_batch. Throws
  /// std::invalid_argument when the metadata arity disagrees with the
  /// block's row count.
  static HvDataset adopt(HvMatrix&& block, std::vector<int> labels,
                         std::vector<int> domains) {
    if (labels.size() != block.rows() || domains.size() != block.rows()) {
      throw std::invalid_argument("HvDataset::adopt: metadata arity mismatch");
    }
    HvDataset out(block.dim());
    out.data_ = block.release();
    out.labels_ = std::move(labels);
    out.domains_ = std::move(domains);
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept { return labels_.size(); }
  [[nodiscard]] bool empty() const noexcept { return labels_.empty(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Append a row. Throws std::invalid_argument on dimension mismatch.
  void add(std::span<const float> hv, int label, int domain) {
    if (hv.size() != dim_) {
      throw std::invalid_argument("HvDataset::add: dimension mismatch");
    }
    data_.insert(data_.end(), hv.begin(), hv.end());
    labels_.push_back(label);
    domains_.push_back(domain);
  }

  [[nodiscard]] std::span<const float> row(std::size_t i) const noexcept {
    return {data_.data() + i * dim_, dim_};
  }
  [[nodiscard]] std::span<float> row(std::size_t i) noexcept {
    return {data_.data() + i * dim_, dim_};
  }

  /// Whole dataset as one row-major block — the input shape of the batched
  /// similarity engine (ops::similarity_matrix and the *_batch APIs).
  [[nodiscard]] HvView view() const noexcept {
    return {data_.data(), size(), dim_};
  }

  [[nodiscard]] int label(std::size_t i) const noexcept { return labels_[i]; }
  [[nodiscard]] int domain(std::size_t i) const noexcept { return domains_[i]; }

  void set_label(std::size_t i, int label) noexcept { labels_[i] = label; }
  void set_domain(std::size_t i, int domain) noexcept { domains_[i] = domain; }

  [[nodiscard]] const std::vector<int>& labels() const noexcept {
    return labels_;
  }
  [[nodiscard]] const std::vector<int>& domains() const noexcept {
    return domains_;
  }

  /// Number of distinct class labels, assuming labels are 0-based and dense:
  /// max(label)+1, or 0 when empty.
  [[nodiscard]] int num_classes() const noexcept {
    int m = -1;
    for (const int l : labels_) m = l > m ? l : m;
    return m + 1;
  }

  /// Number of distinct domains, assuming 0-based dense domain ids.
  [[nodiscard]] int num_domains() const noexcept {
    int m = -1;
    for (const int d : domains_) m = d > m ? d : m;
    return m + 1;
  }

  /// Copy the selected rows into a new dataset (e.g., one CV fold).
  [[nodiscard]] HvDataset select(std::span<const std::size_t> indices) const {
    HvDataset out(dim_);
    out.data_.reserve(indices.size() * dim_);
    out.labels_.reserve(indices.size());
    out.domains_.reserve(indices.size());
    for (const std::size_t i : indices) {
      if (i >= size()) {
        throw std::out_of_range("HvDataset::select: index out of range");
      }
      out.add(row(i), labels_[i], domains_[i]);
    }
    return out;
  }

  /// Mean over all rows (the dataset's "DC component"). Bundled n-gram
  /// encodings share a large common component that compresses every cosine
  /// similarity toward 1 and hides domain structure; subtracting the
  /// training-set mean before similarity computation restores contrast.
  /// Returns a zero vector when empty.
  [[nodiscard]] std::vector<float> mean_row() const {
    std::vector<float> mean(dim_, 0.0f);
    if (empty()) return mean;
    std::vector<double> acc(dim_, 0.0);
    for (std::size_t i = 0; i < size(); ++i) {
      const auto r = row(i);
      for (std::size_t j = 0; j < dim_; ++j) acc[j] += r[j];
    }
    const double inv = 1.0 / static_cast<double>(size());
    for (std::size_t j = 0; j < dim_; ++j) {
      mean[j] = static_cast<float>(acc[j] * inv);
    }
    return mean;
  }

  /// Subtract `center` (typically the training mean) from every row.
  /// Throws std::invalid_argument on dimension mismatch.
  void subtract(std::span<const float> center) {
    if (center.size() != dim_) {
      throw std::invalid_argument("HvDataset::subtract: dimension mismatch");
    }
    for (std::size_t i = 0; i < size(); ++i) {
      auto r = row(i);
      for (std::size_t j = 0; j < dim_; ++j) r[j] -= center[j];
    }
  }

  /// Row indices belonging to the given domain.
  [[nodiscard]] std::vector<std::size_t> indices_of_domain(int domain) const {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < size(); ++i) {
      if (domains_[i] == domain) idx.push_back(i);
    }
    return idx;
  }

  /// Row indices NOT in the given domain (the LODO training split).
  [[nodiscard]] std::vector<std::size_t> indices_excluding_domain(
      int domain) const {
    std::vector<std::size_t> idx;
    for (std::size_t i = 0; i < size(); ++i) {
      if (domains_[i] != domain) idx.push_back(i);
    }
    return idx;
  }

 private:
  std::size_t dim_ = 0;
  std::vector<float> data_;
  std::vector<int> labels_;
  std::vector<int> domains_;
};

}  // namespace smore
