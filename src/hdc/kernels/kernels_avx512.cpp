// AVX-512F tier (compiled with explicit -mavx512f -mavx512bw -mavx512vl
// -mavx2 -mfma -mpopcnt on a portable -march=x86-64 base — see
// CMakeLists.txt). The 8 canonical chains fill exactly one 8×double zmm
// register, which is what makes the chain count 8 in the first place: one
// VCVTPS2PD + one VFMADD231PD per 8 elements, with the fixed-tree lane
// reduction equal to reduce8() by construction. Products are exact
// (float-sourced doubles), so the FMA's single rounding matches the
// reference's mul-then-add.
//
// sign_pack_row is the 16-bit-mask kernel that used to sit behind a
// compile-time __AVX512F__ guard in ops_binary.hpp — the SIGILL migration
// trap this dispatch layer exists to remove. Hamming kernels are NOT here:
// they live in kernels_avx512vpopcnt.cpp so VPOPCNTDQ instructions cannot
// leak into functions this tier runs on CPUs without that extension
// (Skylake-X has AVX-512F but no VPOPCNTDQ).

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

// GCC 12 false positive (PR105593): unmasked AVX-512 intrinsics carry an
// undefined merge operand that -Wmaybe-uninitialized flags under -O3.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace smore::kern {

namespace {

/// Convert 8 floats to 8 doubles; lane k = chain k.
inline __m512d cvt8(const float* p) {
  return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}

double dot_avx512(const float* a, const float* b, std::size_t n) {
  __m512d acc = _mm512_setzero_pd();  // chains 0-7
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    acc = _mm512_fmadd_pd(cvt8(a + i), cvt8(b + i), acc);
  }
  double s[kDotChains];
  _mm512_storeu_pd(s, acc);
  for (; i < n; ++i) {
    s[i & (kDotChains - 1)] += static_cast<double>(a[i]) * b[i];
  }
  return reduce8(s);
}

void dot_and_norms_avx512(const float* a, const float* b, std::size_t n,
                          double& ab, double& aa, double& bb) {
  __m512d acc_ab = _mm512_setzero_pd();
  __m512d acc_aa = _mm512_setzero_pd();
  __m512d acc_bb = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    const __m512d av = cvt8(a + i);
    const __m512d bv = cvt8(b + i);
    acc_ab = _mm512_fmadd_pd(av, bv, acc_ab);
    acc_aa = _mm512_fmadd_pd(av, av, acc_aa);
    acc_bb = _mm512_fmadd_pd(bv, bv, acc_bb);
  }
  double sab[kDotChains], saa[kDotChains], sbb[kDotChains];
  _mm512_storeu_pd(sab, acc_ab);
  _mm512_storeu_pd(saa, acc_aa);
  _mm512_storeu_pd(sbb, acc_bb);
  for (; i < n; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sab[i & (kDotChains - 1)] += ai * bi;
    saa[i & (kDotChains - 1)] += ai * ai;
    sbb[i & (kDotChains - 1)] += bi * bi;
  }
  ab = reduce8(sab);
  aa = reduce8(saa);
  bb = reduce8(sbb);
}

/// kDotBlock prototypes per query sweep: four zmm accumulators share each
/// query load. Per-pair chain order is canonical; only scheduling changes.
void dot_block4_avx512(const float* q, const float* p0, const float* p1,
                       const float* p2, const float* p3, std::size_t dim,
                       double* out) {
  __m512d acc[kDotBlock] = {_mm512_setzero_pd(), _mm512_setzero_pd(),
                            _mm512_setzero_pd(), _mm512_setzero_pd()};
  const float* rows[kDotBlock] = {p0, p1, p2, p3};
  std::size_t i = 0;
  for (; i + kDotChains <= dim; i += kDotChains) {
    const __m512d qv = cvt8(q + i);
    for (std::size_t r = 0; r < kDotBlock; ++r) {
      acc[r] = _mm512_fmadd_pd(qv, cvt8(rows[r] + i), acc[r]);
    }
  }
  for (std::size_t r = 0; r < kDotBlock; ++r) {
    double s[kDotChains];
    _mm512_storeu_pd(s, acc[r]);
    for (std::size_t t = i; t < dim; ++t) {
      s[t & (kDotChains - 1)] += static_cast<double>(q[t]) * rows[r][t];
    }
    out[r] = reduce8(s);
  }
}

void dot_batch_avx512(const float* q, const float* prototypes, std::size_t np,
                      std::size_t dim, double* out) {
  std::size_t p = 0;
  for (; p + kDotBlock <= np; p += kDotBlock) {
    dot_block4_avx512(q, prototypes + (p + 0) * dim,
                      prototypes + (p + 1) * dim, prototypes + (p + 2) * dim,
                      prototypes + (p + 3) * dim, dim, out + p);
  }
  for (; p < np; ++p) out[p] = dot_avx512(q, prototypes + p * dim, dim);
}

void dot_matrix_tile_avx512(const float* queries, std::size_t q_begin,
                            std::size_t q_end, const float* prototypes,
                            std::size_t np, std::size_t dim, double* out) {
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      dot_batch_avx512(queries + q * dim, panel_rows, panel, dim,
                       out + q * np + p);
    }
  }
}

void ngram_axpy_avx512(const float* const* levels, const std::size_t* shifts,
                       std::size_t n_factors, std::size_t d, float weight,
                       float* acc) {
  generic::ngram_axpy(levels, shifts, n_factors, d, weight, acc);
}

void project_cos_tile_avx512(const float* x, std::size_t q_begin,
                             std::size_t q_end, const float* wt,
                             std::size_t dp, std::size_t features,
                             const float* bias, float* out) {
  generic::project_cos_tile(x, q_begin, q_end, wt, dp, features, bias, out);
}

void sign_pack_row_avx512(const float* v, std::size_t dim,
                          std::uint64_t* out) {
  // 16 mask bits per VCMPPS (GE ordered: NaN → 0, matching the scalar
  // comparison), four compares per output word.
  const __m512 zero = _mm512_setzero_ps();
  std::size_t j = 0;
  for (; j + 64 <= dim; j += 64) {
    std::uint64_t word = 0;
    for (int c = 0; c < 4; ++c) {
      const __mmask16 m = _mm512_cmp_ps_mask(
          _mm512_loadu_ps(v + j + 16 * c), zero, _CMP_GE_OQ);
      word |= static_cast<std::uint64_t>(m) << (16 * c);
    }
    out[j >> 6] = word;
  }
  if (j < dim) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; j + b < dim; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;  // padding bits stay zero
  }
}

}  // namespace

void register_avx512(const CpuFeatures& /*features*/, KernelTable& t,
                     const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.dot = dot_avx512;
  set(Kernel::kDot, "avx512");
  t.dot_and_norms = dot_and_norms_avx512;
  set(Kernel::kDotAndNorms, "avx512");
  t.dot_matrix_tile = dot_matrix_tile_avx512;
  set(Kernel::kDotMatrixTile, "avx512");
  t.ngram_axpy = ngram_axpy_avx512;
  set(Kernel::kNgramAxpy, "avx512");
  t.project_cos_tile = project_cos_tile_avx512;
  set(Kernel::kProjectCosTile, "avx512");
  t.sign_pack_row = sign_pack_row_avx512;
  set(Kernel::kSignPackRow, "avx512");
}

}  // namespace smore::kern

#else  // non-x86

namespace smore::kern {
void register_avx512(const CpuFeatures&, KernelTable&, const char**) {}
}  // namespace smore::kern

#endif
