// AVX-512 VPOPCNTDQ tier: the Hamming kernels only, in their own TU so
// VPOPCNTQ instructions cannot leak into functions the base AVX-512 tier
// runs on CPUs without this extension (it is a separate CPUID bit —
// Skylake-X lacks it; Ice Lake onward has it). dispatch.cpp applies this
// registration on top of register_avx512 only when the bit is present.
//
// Distances are exact integer popcount sums, so any accumulation order and
// width is identical to the scalar reference — dispatch here is purely a
// throughput decision: one VPOPCNTQ handles 8 words (512 bits) per cycle
// against scalar POPCNT's one word.

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

// GCC 12 false positive (PR105593): unmasked AVX-512 intrinsics carry an
// undefined merge operand that -Wmaybe-uninitialized flags under -O3.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

namespace smore::kern {

namespace {

/// XOR+popcount over nw packed words, 8 words per VPOPCNTQ.
inline std::uint64_t hamming_words_vp(const std::uint64_t* a,
                                      const std::uint64_t* b,
                                      std::size_t nw) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t w = 0;
  for (; w + 8 <= nw; w += 8) {
    const __m512i x = _mm512_xor_si512(_mm512_loadu_si512(a + w),
                                       _mm512_loadu_si512(b + w));
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
  }
  std::uint64_t total =
      static_cast<std::uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; w < nw; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

void hamming_batch_vp(const std::uint64_t* q, const std::uint64_t* prototypes,
                      std::size_t np, std::size_t nw, std::size_t* out) {
  std::size_t p = 0;
  for (; p + kHammingBlock <= np; p += kHammingBlock) {
    const std::uint64_t* p0 = prototypes + (p + 0) * nw;
    const std::uint64_t* p1 = prototypes + (p + 1) * nw;
    const std::uint64_t* p2 = prototypes + (p + 2) * nw;
    const std::uint64_t* p3 = prototypes + (p + 3) * nw;
    __m512i a0 = _mm512_setzero_si512();
    __m512i a1 = _mm512_setzero_si512();
    __m512i a2 = _mm512_setzero_si512();
    __m512i a3 = _mm512_setzero_si512();
    std::size_t w = 0;
    for (; w + 8 <= nw; w += 8) {
      const __m512i qv = _mm512_loadu_si512(q + w);
      a0 = _mm512_add_epi64(
          a0, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(p0 + w))));
      a1 = _mm512_add_epi64(
          a1, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(p1 + w))));
      a2 = _mm512_add_epi64(
          a2, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(p2 + w))));
      a3 = _mm512_add_epi64(
          a3, _mm512_popcnt_epi64(
                  _mm512_xor_si512(qv, _mm512_loadu_si512(p3 + w))));
    }
    std::uint64_t t0 = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a0));
    std::uint64_t t1 = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a1));
    std::uint64_t t2 = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a2));
    std::uint64_t t3 = static_cast<std::uint64_t>(_mm512_reduce_add_epi64(a3));
    for (; w < nw; ++w) {
      const std::uint64_t qw = q[w];
      t0 += static_cast<std::uint64_t>(std::popcount(qw ^ p0[w]));
      t1 += static_cast<std::uint64_t>(std::popcount(qw ^ p1[w]));
      t2 += static_cast<std::uint64_t>(std::popcount(qw ^ p2[w]));
      t3 += static_cast<std::uint64_t>(std::popcount(qw ^ p3[w]));
    }
    out[p + 0] = static_cast<std::size_t>(t0);
    out[p + 1] = static_cast<std::size_t>(t1);
    out[p + 2] = static_cast<std::size_t>(t2);
    out[p + 3] = static_cast<std::size_t>(t3);
  }
  for (; p < np; ++p) {
    out[p] = static_cast<std::size_t>(
        hamming_words_vp(q, prototypes + p * nw, nw));
  }
}

void hamming_matrix_tile_vp(const std::uint64_t* queries, std::size_t q_begin,
                            std::size_t q_end, const std::uint64_t* prototypes,
                            std::size_t np, std::size_t nw, std::size_t* out) {
  for (std::size_t p = 0; p < np; p += kBitPanelRows) {
    const std::size_t panel =
        p + kBitPanelRows <= np ? kBitPanelRows : np - p;
    const std::uint64_t* panel_rows = prototypes + p * nw;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      hamming_batch_vp(queries + q * nw, panel_rows, panel, nw,
                       out + (q - q_begin) * np + p);
    }
  }
}

}  // namespace

void register_avx512vpopcnt(const CpuFeatures& /*features*/, KernelTable& t,
                            const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.hamming_batch = hamming_batch_vp;
  set(Kernel::kHammingBatch, "avx512vpopcntdq");
  t.hamming_matrix_tile = hamming_matrix_tile_vp;
  set(Kernel::kHammingMatrixTile, "avx512vpopcntdq");
}

}  // namespace smore::kern

#else  // non-x86

namespace smore::kern {
void register_avx512vpopcnt(const CpuFeatures&, KernelTable&, const char**) {}
}  // namespace smore::kern

#endif
