// Scalar tier: registers the canonical reference implementations
// (kernels_generic.hpp) for every slot. This TU is compiled with explicit
// portable arch flags (see CMakeLists.txt) even when the rest of the build
// uses -march=native, so a binary migrated to an older host can always fall
// back to instructions that host executes. It is also the tier SMORE_KERNEL=
// scalar forces, which is how the equivalence suites pin every other
// variant.
//
// Each slot gets a file-static wrapper (not the generic symbol itself):
// the generic functions are force-inlined into these wrappers, giving this
// TU its own portable compilation of every kernel with internal linkage —
// no COMDAT copy from some -march=native TU can be substituted at link time.

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

namespace smore::kern {

namespace {

double dot_scalar(const float* a, const float* b, std::size_t n) {
  return generic::dot(a, b, n);
}

void dot_and_norms_scalar(const float* a, const float* b, std::size_t n,
                          double& ab, double& aa, double& bb) {
  generic::dot_and_norms(a, b, n, ab, aa, bb);
}

void dot_matrix_tile_scalar(const float* queries, std::size_t q_begin,
                            std::size_t q_end, const float* prototypes,
                            std::size_t np, std::size_t dim, double* out) {
  generic::dot_matrix_tile(queries, q_begin, q_end, prototypes, np, dim, out);
}

void ngram_axpy_scalar(const float* const* levels, const std::size_t* shifts,
                       std::size_t n_factors, std::size_t d, float weight,
                       float* acc) {
  generic::ngram_axpy(levels, shifts, n_factors, d, weight, acc);
}

void project_cos_tile_scalar(const float* x, std::size_t q_begin,
                             std::size_t q_end, const float* wt,
                             std::size_t dp, std::size_t features,
                             const float* bias, float* out) {
  generic::project_cos_tile(x, q_begin, q_end, wt, dp, features, bias, out);
}

void sign_pack_row_scalar(const float* v, std::size_t dim,
                          std::uint64_t* out) {
  generic::sign_pack_row(v, dim, out);
}

void hamming_batch_scalar(const std::uint64_t* q,
                          const std::uint64_t* prototypes, std::size_t np,
                          std::size_t nw, std::size_t* out) {
  generic::hamming_batch(q, prototypes, np, nw, out);
}

void hamming_matrix_tile_scalar(const std::uint64_t* queries,
                                std::size_t q_begin, std::size_t q_end,
                                const std::uint64_t* prototypes,
                                std::size_t np, std::size_t nw,
                                std::size_t* out) {
  generic::hamming_matrix_tile(queries, q_begin, q_end, prototypes, np, nw,
                               out);
}

}  // namespace

void register_scalar(const CpuFeatures& /*features*/, KernelTable& t,
                     const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.dot = dot_scalar;
  set(Kernel::kDot, "scalar");
  t.dot_and_norms = dot_and_norms_scalar;
  set(Kernel::kDotAndNorms, "scalar");
  t.dot_matrix_tile = dot_matrix_tile_scalar;
  set(Kernel::kDotMatrixTile, "scalar");
  t.ngram_axpy = ngram_axpy_scalar;
  set(Kernel::kNgramAxpy, "scalar");
  t.project_cos_tile = project_cos_tile_scalar;
  set(Kernel::kProjectCosTile, "scalar");
  t.sign_pack_row = sign_pack_row_scalar;
  set(Kernel::kSignPackRow, "scalar");
  t.hamming_batch = hamming_batch_scalar;
  set(Kernel::kHammingBatch, "scalar");
  t.hamming_matrix_tile = hamming_matrix_tile_scalar;
  set(Kernel::kHammingMatrixTile, "scalar");
}

}  // namespace smore::kern
