// SSE2 tier (x86-64 baseline, compiled with portable flags — see
// CMakeLists.txt). Covers the float dot family plus sign packing; everything
// else keeps the scalar registration. Every kernel reproduces the canonical
// chain order of kernels_generic.hpp exactly: the 8 accumulation chains map
// onto four 2×double registers (chain pair (2k, 2k+1) lives in xmm k), and
// SSE2 has no FMA, so each step is the same convert→multiply→add the scalar
// reference performs — bit-identical by construction, and pinned by
// tests/test_dispatch.cpp.

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <emmintrin.h>

namespace smore::kern {

namespace {

/// Convert 4 floats to 2 double pairs: lo = {p[0], p[1]}, hi = {p[2], p[3]}.
inline void cvt4(const float* p, __m128d& lo, __m128d& hi) {
  const __m128 v = _mm_loadu_ps(p);
  lo = _mm_cvtps_pd(v);
  hi = _mm_cvtps_pd(_mm_movehl_ps(v, v));
}

double dot_sse2(const float* a, const float* b, std::size_t n) {
  __m128d acc0 = _mm_setzero_pd();  // chains 0,1
  __m128d acc1 = _mm_setzero_pd();  // chains 2,3
  __m128d acc2 = _mm_setzero_pd();  // chains 4,5
  __m128d acc3 = _mm_setzero_pd();  // chains 6,7
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    __m128d a01, a23, a45, a67, b01, b23, b45, b67;
    cvt4(a + i, a01, a23);
    cvt4(a + i + 4, a45, a67);
    cvt4(b + i, b01, b23);
    cvt4(b + i + 4, b45, b67);
    acc0 = _mm_add_pd(acc0, _mm_mul_pd(a01, b01));
    acc1 = _mm_add_pd(acc1, _mm_mul_pd(a23, b23));
    acc2 = _mm_add_pd(acc2, _mm_mul_pd(a45, b45));
    acc3 = _mm_add_pd(acc3, _mm_mul_pd(a67, b67));
  }
  double s[kDotChains];
  _mm_storeu_pd(s + 0, acc0);
  _mm_storeu_pd(s + 2, acc1);
  _mm_storeu_pd(s + 4, acc2);
  _mm_storeu_pd(s + 6, acc3);
  for (; i < n; ++i) {
    s[i & (kDotChains - 1)] += static_cast<double>(a[i]) * b[i];
  }
  return reduce8(s);
}

void dot_and_norms_sse2(const float* a, const float* b, std::size_t n,
                        double& ab, double& aa, double& bb) {
  __m128d accab[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                      _mm_setzero_pd()};
  __m128d accaa[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                      _mm_setzero_pd()};
  __m128d accbb[4] = {_mm_setzero_pd(), _mm_setzero_pd(), _mm_setzero_pd(),
                      _mm_setzero_pd()};
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    __m128d av[4], bv[4];
    cvt4(a + i, av[0], av[1]);
    cvt4(a + i + 4, av[2], av[3]);
    cvt4(b + i, bv[0], bv[1]);
    cvt4(b + i + 4, bv[2], bv[3]);
    for (int k = 0; k < 4; ++k) {
      accab[k] = _mm_add_pd(accab[k], _mm_mul_pd(av[k], bv[k]));
      accaa[k] = _mm_add_pd(accaa[k], _mm_mul_pd(av[k], av[k]));
      accbb[k] = _mm_add_pd(accbb[k], _mm_mul_pd(bv[k], bv[k]));
    }
  }
  double sab[kDotChains], saa[kDotChains], sbb[kDotChains];
  for (int k = 0; k < 4; ++k) {
    _mm_storeu_pd(sab + 2 * k, accab[k]);
    _mm_storeu_pd(saa + 2 * k, accaa[k]);
    _mm_storeu_pd(sbb + 2 * k, accbb[k]);
  }
  for (; i < n; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sab[i & (kDotChains - 1)] += ai * bi;
    saa[i & (kDotChains - 1)] += ai * ai;
    sbb[i & (kDotChains - 1)] += bi * bi;
  }
  ab = reduce8(sab);
  aa = reduce8(saa);
  bb = reduce8(sbb);
}

void dot_matrix_tile_sse2(const float* queries, std::size_t q_begin,
                          std::size_t q_end, const float* prototypes,
                          std::size_t np, std::size_t dim, double* out) {
  // Same panel walk as the reference; SSE2 has too few registers for a
  // multi-prototype block on top of 4 accumulators, so each pair is one
  // dot_sse2 call. Blocking is scheduling-only either way.
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const float* qrow = queries + q * dim;
      double* orow = out + q * np + p;
      for (std::size_t r = 0; r < panel; ++r) {
        orow[r] = dot_sse2(qrow, panel_rows + r * dim, dim);
      }
    }
  }
}

void sign_pack_row_sse2(const float* v, std::size_t dim, std::uint64_t* out) {
  // bit j = (v[j] >= 0.0f): CMPGE (ordered, NaN → false, matching the
  // scalar comparison) + MOVMSKPS builds 4 bits per compare, 16 compares
  // per output word.
  const __m128 zero = _mm_setzero_ps();
  std::size_t j = 0;
  for (; j + 64 <= dim; j += 64) {
    std::uint64_t word = 0;
    for (int c = 0; c < 16; ++c) {
      const int m =
          _mm_movemask_ps(_mm_cmpge_ps(_mm_loadu_ps(v + j + 4 * c), zero));
      word |= static_cast<std::uint64_t>(m) << (4 * c);
    }
    out[j >> 6] = word;
  }
  if (j < dim) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; j + b < dim; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;  // padding bits stay zero
  }
}

}  // namespace

void register_sse2(const CpuFeatures& /*features*/, KernelTable& t,
                   const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.dot = dot_sse2;
  set(Kernel::kDot, "sse2");
  t.dot_and_norms = dot_and_norms_sse2;
  set(Kernel::kDotAndNorms, "sse2");
  t.dot_matrix_tile = dot_matrix_tile_sse2;
  set(Kernel::kDotMatrixTile, "sse2");
  t.sign_pack_row = sign_pack_row_sse2;
  set(Kernel::kSignPackRow, "sse2");
}

}  // namespace smore::kern

#else  // non-x86: TU compiled empty (CMake should exclude it anyway)

namespace smore::kern {
void register_sse2(const CpuFeatures&, KernelTable&, const char**) {}
}  // namespace smore::kern

#endif
