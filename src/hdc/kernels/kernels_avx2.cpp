// AVX2+FMA tier (Haswell 2013 onward; compiled with explicit -mavx2 -mfma
// -mpopcnt on a portable -march=x86-64 base — see CMakeLists.txt). Registers
// every slot:
//
//  - dot family: the 8 canonical chains map onto two 4×double registers
//    (chains 0-3 in ymm lo, 4-7 in ymm hi). Products are exact (float-
//    sourced doubles), so _mm256_fmadd_pd's single rounding equals the
//    reference's mul-then-add — bit-identical, and one instruction.
//  - dot_matrix_tile additionally register-blocks kDotBlock prototypes per
//    query sweep (pure scheduling: per-pair chain order is untouched).
//  - ngram_axpy / project_cos_tile: the generic element-wise bodies
//    force-inlined here so GCC auto-vectorizes them 8-wide; with
//    -ffp-contract=off that is bit-identical to scalar.
//  - sign_pack_row: 8 mask bits per VCMPPS/VMOVMSKPS (GE ordered, NaN → 0).
//  - hamming family: the generic bodies recompiled with hardware POPCNT
//    (std::popcount lowers to one instruction instead of a bit-trick chain).

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace smore::kern {

namespace {

/// Convert 8 floats to 2×4 doubles: lo = chains 0-3, hi = chains 4-7.
inline void cvt8(const float* p, __m256d& lo, __m256d& hi) {
  const __m256 v = _mm256_loadu_ps(p);
  lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

double dot_avx2(const float* a, const float* b, std::size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();  // chains 0-3
  __m256d acc_hi = _mm256_setzero_pd();  // chains 4-7
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    __m256d alo, ahi, blo, bhi;
    cvt8(a + i, alo, ahi);
    cvt8(b + i, blo, bhi);
    acc_lo = _mm256_fmadd_pd(alo, blo, acc_lo);
    acc_hi = _mm256_fmadd_pd(ahi, bhi, acc_hi);
  }
  double s[kDotChains];
  _mm256_storeu_pd(s + 0, acc_lo);
  _mm256_storeu_pd(s + 4, acc_hi);
  for (; i < n; ++i) {
    s[i & (kDotChains - 1)] += static_cast<double>(a[i]) * b[i];
  }
  return reduce8(s);
}

void dot_and_norms_avx2(const float* a, const float* b, std::size_t n,
                        double& ab, double& aa, double& bb) {
  __m256d ab_lo = _mm256_setzero_pd(), ab_hi = _mm256_setzero_pd();
  __m256d aa_lo = _mm256_setzero_pd(), aa_hi = _mm256_setzero_pd();
  __m256d bb_lo = _mm256_setzero_pd(), bb_hi = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    __m256d alo, ahi, blo, bhi;
    cvt8(a + i, alo, ahi);
    cvt8(b + i, blo, bhi);
    ab_lo = _mm256_fmadd_pd(alo, blo, ab_lo);
    ab_hi = _mm256_fmadd_pd(ahi, bhi, ab_hi);
    aa_lo = _mm256_fmadd_pd(alo, alo, aa_lo);
    aa_hi = _mm256_fmadd_pd(ahi, ahi, aa_hi);
    bb_lo = _mm256_fmadd_pd(blo, blo, bb_lo);
    bb_hi = _mm256_fmadd_pd(bhi, bhi, bb_hi);
  }
  double sab[kDotChains], saa[kDotChains], sbb[kDotChains];
  _mm256_storeu_pd(sab + 0, ab_lo);
  _mm256_storeu_pd(sab + 4, ab_hi);
  _mm256_storeu_pd(saa + 0, aa_lo);
  _mm256_storeu_pd(saa + 4, aa_hi);
  _mm256_storeu_pd(sbb + 0, bb_lo);
  _mm256_storeu_pd(sbb + 4, bb_hi);
  for (; i < n; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sab[i & (kDotChains - 1)] += ai * bi;
    saa[i & (kDotChains - 1)] += ai * ai;
    sbb[i & (kDotChains - 1)] += bi * bi;
  }
  ab = reduce8(sab);
  aa = reduce8(saa);
  bb = reduce8(sbb);
}

/// kDotBlock prototypes against one query in a single sweep: 4×2 accumulator
/// registers plus the shared query load. Each prototype's chains accumulate
/// in canonical order — the block only re-uses the query registers.
void dot_block4_avx2(const float* q, const float* p0, const float* p1,
                     const float* p2, const float* p3, std::size_t dim,
                     double* out) {
  __m256d acc[kDotBlock][2];
  for (std::size_t r = 0; r < kDotBlock; ++r) {
    acc[r][0] = _mm256_setzero_pd();
    acc[r][1] = _mm256_setzero_pd();
  }
  const float* rows[kDotBlock] = {p0, p1, p2, p3};
  std::size_t i = 0;
  for (; i + kDotChains <= dim; i += kDotChains) {
    __m256d qlo, qhi, plo, phi;
    cvt8(q + i, qlo, qhi);
    for (std::size_t r = 0; r < kDotBlock; ++r) {
      cvt8(rows[r] + i, plo, phi);
      acc[r][0] = _mm256_fmadd_pd(qlo, plo, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(qhi, phi, acc[r][1]);
    }
  }
  for (std::size_t r = 0; r < kDotBlock; ++r) {
    double s[kDotChains];
    _mm256_storeu_pd(s + 0, acc[r][0]);
    _mm256_storeu_pd(s + 4, acc[r][1]);
    for (std::size_t t = i; t < dim; ++t) {
      s[t & (kDotChains - 1)] += static_cast<double>(q[t]) * rows[r][t];
    }
    out[r] = reduce8(s);
  }
}

void dot_batch_avx2(const float* q, const float* prototypes, std::size_t np,
                    std::size_t dim, double* out) {
  std::size_t p = 0;
  for (; p + kDotBlock <= np; p += kDotBlock) {
    dot_block4_avx2(q, prototypes + (p + 0) * dim, prototypes + (p + 1) * dim,
                    prototypes + (p + 2) * dim, prototypes + (p + 3) * dim,
                    dim, out + p);
  }
  for (; p < np; ++p) out[p] = dot_avx2(q, prototypes + p * dim, dim);
}

void dot_matrix_tile_avx2(const float* queries, std::size_t q_begin,
                          std::size_t q_end, const float* prototypes,
                          std::size_t np, std::size_t dim, double* out) {
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      dot_batch_avx2(queries + q * dim, panel_rows, panel, dim,
                     out + q * np + p);
    }
  }
}

void ngram_axpy_avx2(const float* const* levels, const std::size_t* shifts,
                     std::size_t n_factors, std::size_t d, float weight,
                     float* acc) {
  generic::ngram_axpy(levels, shifts, n_factors, d, weight, acc);
}

void project_cos_tile_avx2(const float* x, std::size_t q_begin,
                           std::size_t q_end, const float* wt, std::size_t dp,
                           std::size_t features, const float* bias,
                           float* out) {
  generic::project_cos_tile(x, q_begin, q_end, wt, dp, features, bias, out);
}

void sign_pack_row_avx2(const float* v, std::size_t dim, std::uint64_t* out) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t j = 0;
  for (; j + 64 <= dim; j += 64) {
    std::uint64_t word = 0;
    for (int c = 0; c < 8; ++c) {
      const int m = _mm256_movemask_ps(
          _mm256_cmp_ps(_mm256_loadu_ps(v + j + 8 * c), zero, _CMP_GE_OQ));
      word |= static_cast<std::uint64_t>(static_cast<unsigned>(m))
              << (8 * c);
    }
    out[j >> 6] = word;
  }
  if (j < dim) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; j + b < dim; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;  // padding bits stay zero
  }
}

void hamming_batch_avx2(const std::uint64_t* q, const std::uint64_t* prototypes,
                        std::size_t np, std::size_t nw, std::size_t* out) {
  generic::hamming_batch(q, prototypes, np, nw, out);
}

void hamming_matrix_tile_avx2(const std::uint64_t* queries,
                              std::size_t q_begin, std::size_t q_end,
                              const std::uint64_t* prototypes, std::size_t np,
                              std::size_t nw, std::size_t* out) {
  generic::hamming_matrix_tile(queries, q_begin, q_end, prototypes, np, nw,
                               out);
}

}  // namespace

void register_avx2(const CpuFeatures& /*features*/, KernelTable& t,
                   const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.dot = dot_avx2;
  set(Kernel::kDot, "avx2");
  t.dot_and_norms = dot_and_norms_avx2;
  set(Kernel::kDotAndNorms, "avx2");
  t.dot_matrix_tile = dot_matrix_tile_avx2;
  set(Kernel::kDotMatrixTile, "avx2");
  t.ngram_axpy = ngram_axpy_avx2;
  set(Kernel::kNgramAxpy, "avx2");
  t.project_cos_tile = project_cos_tile_avx2;
  set(Kernel::kProjectCosTile, "avx2");
  t.sign_pack_row = sign_pack_row_avx2;
  set(Kernel::kSignPackRow, "avx2");
  t.hamming_batch = hamming_batch_avx2;
  set(Kernel::kHammingBatch, "avx2+popcnt");
  t.hamming_matrix_tile = hamming_matrix_tile_avx2;
  set(Kernel::kHammingMatrixTile, "avx2+popcnt");
}

}  // namespace smore::kern

#else  // non-x86

namespace smore::kern {
void register_avx2(const CpuFeatures&, KernelTable&, const char**) {}
}  // namespace smore::kern

#endif
