#pragma once
// Canonical portable implementations of the dispatched hot kernels
// (DESIGN.md §11). These functions are the SPEC: every SIMD variant in the
// sibling kernels_*.cpp TUs must reproduce their results bit for bit, and
// tests/test_dispatch.cpp pins each compiled-in variant to them.
//
// Bit-identity across ISA variants rests on three invariants:
//
//  1. **Canonical chain order.** Every float→double reduction accumulates
//     into kDotChains = 8 interleaved partial sums — chain k sums elements
//     i ≡ k (mod 8) in ascending i — and collapses them with the fixed tree
//     reduce8(). Eight chains map exactly onto one 8×double AVX-512 register
//     (two AVX2 registers, four SSE2 / NEON registers), so a SIMD variant is
//     a re-*packing* of the same additions, never a re-*association*.
//  2. **Exact products.** The doubles being accumulated are products of
//     float-sourced values: a 24-bit × 24-bit significand product fits in
//     53 bits, so the double multiply is exact and hardware FMA (one
//     rounding) equals mul-then-add (the multiply never rounds). Variants
//     may therefore use FMA freely *in double*; float-precision kernels
//     (ngram_axpy) must not introduce contraction, which the project-wide
//     -ffp-contract=off guarantees (see CMakeLists.txt).
//  3. **Scheduling-only blocking.** Register blocking over prototypes,
//     cache panels, and thread tiles reorder which (query, prototype) pair
//     is computed when — never the arithmetic inside a pair. Packed-path
//     distances are exact integers, so any evaluation order is identical.
//
// This header is self-contained over raw pointers (no repo types) so the
// per-ISA TUs can include it without dragging repo headers under exotic
// compile flags. ops.hpp re-exports the public names.

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>

// Force-inline: the per-ISA TUs register file-static wrappers around these
// functions, and the wrapper must receive its own copy compiled under that
// TU's arch flags. A plain `inline` body is a COMDAT symbol the linker
// deduplicates across TUs — which copy survives is unspecified, so a
// "recompiled under -mavx2" registration could silently resolve to baseline
// code (results would still be bit-identical; the speed would not).
#if defined(__GNUC__) || defined(__clang__)
#define SMORE_KERN_INLINE inline __attribute__((always_inline))
#else
#define SMORE_KERN_INLINE inline
#endif

namespace smore::kern {

// ---------------------------------------------------------------- contracts

/// Accumulator chains per float→double reduction (see header comment).
inline constexpr std::size_t kDotChains = 8;

/// Prototype rows per register block in the dot/hamming batch kernels.
inline constexpr std::size_t kDotBlock = 4;
/// Prototype rows per cache panel in the float matrix drivers. At d = 4096
/// floats a panel is 8 × 16 KiB = 128 KiB — comfortably L2-resident while a
/// tile of queries streams against it.
inline constexpr std::size_t kPanelRows = 8;
/// Query rows per parallel work item (grain of the ThreadPool split).
inline constexpr std::size_t kRowTile = 64;

/// Prototype rows per register block in hamming_batch.
inline constexpr std::size_t kHammingBlock = 4;
/// Prototype rows per cache panel in the Hamming matrix drivers. At
/// d = 8192 bits a panel is 16 × 1 KiB = 16 KiB — L1-resident while a tile
/// of queries streams against it.
inline constexpr std::size_t kBitPanelRows = 16;
/// Query rows per parallel work item (grain of the ThreadPool split).
inline constexpr std::size_t kBitRowTile = 64;

/// Maximum factor count the fused n-gram kernel accepts (the encoder falls
/// back to the multi-pass pipeline for longer grams; real configs use 2-5).
inline constexpr std::size_t kNgramFusedMaxFactors = 8;

/// Queries per tile of the projection kernel (bounds the accumulator block:
/// kProjQueryTile × kProjColBlock doubles = 32 KiB, L1-resident).
inline constexpr std::size_t kProjQueryTile = 8;
/// Output columns per block of the projection kernel (one W^T row segment of
/// 2 KiB streams against the whole query tile).
inline constexpr std::size_t kProjColBlock = 512;

/// The canonical collapse of the kDotChains partial sums: a fixed binary
/// tree, never a left fold, so it matches how SIMD variants reduce lanes.
SMORE_KERN_INLINE double reduce8(const double* s) noexcept {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

/// Fast double-precision cosine for the projection epilogue: Cody-Waite
/// range reduction to [-π/4, π/4] plus Taylor kernels evaluated by Horner.
/// Max absolute error ≈ 2e-14 — four orders of magnitude below the float
/// output resolution, so the encodings are unchanged at float precision —
/// and, unlike the libm call, it is branch-light and inlines, so the
/// epilogue loop pipelines instead of serializing on 41M function calls.
/// Precondition: |x| < ~1e9 (the projections are O(‖x‖·‖w‖), far smaller).
/// This is the single shared epilogue of every project_cos_tile variant —
/// per-ISA TUs recompile it but may not replace it, and with contraction
/// off its pure-double arithmetic is identical under any flags.
SMORE_KERN_INLINE float cos_fast(double x) noexcept {
  constexpr double kTwoOverPi = 0.63661977236758134308;
  constexpr double kPio2Hi = 1.57079632679489655800e+00;
  constexpr double kPio2Lo = 6.12323399573676603587e-17;
  const double kd = std::round(x * kTwoOverPi);
  double r = x - kd * kPio2Hi;
  r -= kd * kPio2Lo;
  const double r2 = r * r;
  // Taylor to r^14 (cos) / r^13 (sin): next-term error < 1.1e-15 on the
  // reduced range.
  const double c =
      1.0 +
      r2 * (-1.0 / 2 +
            r2 * (1.0 / 24 +
                  r2 * (-1.0 / 720 +
                        r2 * (1.0 / 40320 +
                              r2 * (-1.0 / 3628800 +
                                    r2 * (1.0 / 479001600 +
                                          r2 * (-1.0 / 87178291200.0)))))));
  const double s =
      r * (1.0 +
           r2 * (-1.0 / 6 +
                 r2 * (1.0 / 120 +
                       r2 * (-1.0 / 5040 +
                             r2 * (1.0 / 362880 +
                                   r2 * (-1.0 / 39916800 +
                                         r2 * (1.0 / 6227020800.0)))))));
  switch (static_cast<long long>(kd) & 3) {
    case 0:
      return static_cast<float>(c);
    case 1:
      return static_cast<float>(-s);
    case 2:
      return static_cast<float>(-c);
    default:
      return static_cast<float>(s);
  }
}

namespace generic {

// ------------------------------------------------------------ float kernels

/// Canonical dot product over n contiguous floats, accumulated in double
/// (exact products, see header) across kDotChains interleaved chains.
SMORE_KERN_INLINE double dot(const float* a, const float* b, std::size_t n) noexcept {
  assert(a != nullptr && b != nullptr);
  double s[kDotChains] = {};
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    for (std::size_t k = 0; k < kDotChains; ++k) {
      s[k] += static_cast<double>(a[i + k]) * b[i + k];
    }
  }
  for (; i < n; ++i) {
    s[i & (kDotChains - 1)] += static_cast<double>(a[i]) * b[i];
  }
  return reduce8(s);
}

/// Fused dot product and squared norms: one pass over both arrays computing
/// <a,b>, <a,a>, and <b,b> simultaneously in canonical chain order. Each
/// loaded element feeds three accumulator families, so cosine costs one
/// memory sweep instead of three.
SMORE_KERN_INLINE void dot_and_norms(const float* a, const float* b, std::size_t n,
                          double& ab, double& aa, double& bb) noexcept {
  assert(a != nullptr && b != nullptr);
  double sab[kDotChains] = {};
  double saa[kDotChains] = {};
  double sbb[kDotChains] = {};
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    for (std::size_t k = 0; k < kDotChains; ++k) {
      const double ai = a[i + k];
      const double bi = b[i + k];
      sab[k] += ai * bi;
      saa[k] += ai * ai;
      sbb[k] += bi * bi;
    }
  }
  for (; i < n; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sab[i & (kDotChains - 1)] += ai * bi;
    saa[i & (kDotChains - 1)] += ai * ai;
    sbb[i & (kDotChains - 1)] += bi * bi;
  }
  ab = reduce8(sab);
  aa = reduce8(saa);
  bb = reduce8(sbb);
}

/// out[p] = <q, P_p> for the np row-major rows of P. One canonical dot per
/// prototype: register blocking over prototypes is a variant concern (it is
/// pure scheduling), so the reference stays the obvious loop.
SMORE_KERN_INLINE void dot_batch(const float* q, const float* prototypes, std::size_t np,
                      std::size_t dim, double* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  for (std::size_t p = 0; p < np; ++p) {
    out[p] = dot(q, prototypes + p * dim, dim);
  }
}

/// Serial core shared by the float matrix drivers: dots of queries
/// [q_begin, q_end) against all np prototypes, written to out (row-major
/// [nq × np], ABSOLUTE row indexing: query q lands in row q). Prototypes are
/// walked in L2-resident panels in the outer loop so each panel is re-used
/// by every query of the tile.
SMORE_KERN_INLINE void dot_matrix_tile(const float* queries, std::size_t q_begin,
                            std::size_t q_end, const float* prototypes,
                            std::size_t np, std::size_t dim,
                            double* out) noexcept {
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      dot_batch(queries + q * dim, panel_rows, panel, dim, out + q * np + p);
    }
  }
}

/// acc[j] += weight * Π_p (ρ^{shifts[p]} levels[p])[j]  — the fused n-gram
/// bind-and-bundle. `levels[p]` is a d-float level hypervector and
/// `shifts[p]` its graded-permutation rotation (shifts[p] < d). The rotated
/// reads are resolved by splitting [0, d) at every wrap point, so each
/// segment is a straight multiply chain over n_factors fixed-offset streams —
/// vectorizable, no index arithmetic, no gram temporary. Products are formed
/// in ascending factor order, matching the rotate→hadamard→axpy pipeline
/// bit for bit. All arithmetic is element-wise float (no reductions), so any
/// vectorization is bit-identical as long as contraction stays off.
SMORE_KERN_INLINE void ngram_axpy(const float* const* levels, const std::size_t* shifts,
                       std::size_t n_factors, std::size_t d, float weight,
                       float* acc) noexcept {
  assert(levels != nullptr && shifts != nullptr && acc != nullptr);
  assert(n_factors >= 1 && n_factors <= kNgramFusedMaxFactors);

  // Segment boundaries: 0, every non-zero shift (its wrap point), d.
  std::size_t bounds[kNgramFusedMaxFactors + 2];
  std::size_t nb = 0;
  bounds[nb++] = 0;
  for (std::size_t p = 0; p < n_factors; ++p) {
    assert(shifts[p] < d);
    if (shifts[p] != 0) bounds[nb++] = shifts[p];
  }
  bounds[nb++] = d;
  // Insertion sort: nb <= n_factors + 2 <= 10, cheaper than std::sort here.
  for (std::size_t i = 1; i < nb; ++i) {
    const std::size_t v = bounds[i];
    std::size_t j = i;
    for (; j > 0 && bounds[j - 1] > v; --j) bounds[j] = bounds[j - 1];
    bounds[j] = v;
  }

  const float* ptr[kNgramFusedMaxFactors];
  for (std::size_t seg = 0; seg + 1 < nb; ++seg) {
    const std::size_t a = bounds[seg];
    const std::size_t b = bounds[seg + 1];
    if (a == b) continue;
    // Within [a, b) each factor reads from one fixed offset:
    // (ρ^k L)[j] = L[j - k] for j >= k, L[j + d - k] for j < k.
    for (std::size_t p = 0; p < n_factors; ++p) {
      ptr[p] = a >= shifts[p] ? levels[p] - shifts[p]
                              : levels[p] + (d - shifts[p]);
    }
    float* __restrict y = acc;
    switch (n_factors) {
      case 1: {
        const float* __restrict l0 = ptr[0];
        for (std::size_t j = a; j < b; ++j) y[j] += weight * l0[j];
        break;
      }
      case 2: {
        const float* __restrict l0 = ptr[0];
        const float* __restrict l1 = ptr[1];
        for (std::size_t j = a; j < b; ++j) y[j] += weight * (l0[j] * l1[j]);
        break;
      }
      case 3: {
        const float* __restrict l0 = ptr[0];
        const float* __restrict l1 = ptr[1];
        const float* __restrict l2 = ptr[2];
        for (std::size_t j = a; j < b; ++j) {
          y[j] += weight * ((l0[j] * l1[j]) * l2[j]);
        }
        break;
      }
      default: {
        for (std::size_t j = a; j < b; ++j) {
          float prod = ptr[0][j];
          for (std::size_t p = 1; p < n_factors; ++p) prod *= ptr[p][j];
          y[j] += weight * prod;
        }
        break;
      }
    }
  }
}

/// Serial core of the batched random-projection encode: queries
/// [q_begin, q_end) (at most kProjQueryTile of them) through
/// out[q][j] = cos(bias[j] + <X_q, W_j>). X is [nq × features] row-major;
/// `wt` is the TRANSPOSED projection, row-major [features × dp], so the
/// kernel runs feature-major: for each output-column block, acc_q[j] starts
/// at bias[j] and accumulates x_q[f] · W^T[f][j] over f — broadcast-scalar
/// streams with no reduction dependency (element-wise over j, so any vector
/// width is bit-identical). Per-output summation order is fixed (bias, then
/// f ascending, in double), independent of all blocking.
SMORE_KERN_INLINE void project_cos_tile(const float* x, std::size_t q_begin,
                             std::size_t q_end, const float* wt,
                             std::size_t dp, std::size_t features,
                             const float* bias, float* out) noexcept {
  assert(q_end - q_begin <= kProjQueryTile);
  const std::size_t rows = q_end - q_begin;
  double acc[kProjQueryTile][kProjColBlock];
  for (std::size_t j0 = 0; j0 < dp; j0 += kProjColBlock) {
    const std::size_t jb = std::min(kProjColBlock, dp - j0);
    for (std::size_t q = 0; q < rows; ++q) {
      for (std::size_t j = 0; j < jb; ++j) {
        acc[q][j] = static_cast<double>(bias[j0 + j]);
      }
    }
    for (std::size_t f = 0; f < features; ++f) {
      const float* __restrict w_row = wt + f * dp + j0;
      for (std::size_t q = 0; q < rows; ++q) {
        const double xf = x[(q_begin + q) * features + f];
        double* __restrict a = acc[q];
        for (std::size_t j = 0; j < jb; ++j) {
          a[j] += xf * static_cast<double>(w_row[j]);
        }
      }
    }
    for (std::size_t q = 0; q < rows; ++q) {
      float* orow = out + (q_begin + q) * dp + j0;
      for (std::size_t j = 0; j < jb; ++j) {
        orow[j] = cos_fast(acc[q][j]);
      }
    }
  }
}

// ----------------------------------------------------------- packed kernels

/// Hamming distance between two packed rows of nw words (padding bits zero
/// in both, the BitMatrix invariant). Two accumulator chains let the
/// compiler pipeline the popcounts. Distances are exact integers, so
/// variants may use any accumulation order.
SMORE_KERN_INLINE std::size_t hamming_words(const std::uint64_t* a,
                                 const std::uint64_t* b,
                                 std::size_t nw) noexcept {
  assert(a != nullptr && b != nullptr);
  std::uint64_t acc0 = 0;
  std::uint64_t acc1 = 0;
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    acc0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
    acc1 += static_cast<std::uint64_t>(std::popcount(a[w + 1] ^ b[w + 1]));
  }
  if (w < nw) acc0 += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  return static_cast<std::size_t>(acc0 + acc1);
}

/// out[p] = hamming(q, P_p) for the np packed rows of P. Prototypes are
/// processed four at a time so one sweep of the query row feeds four
/// independent XOR+popcount chains.
SMORE_KERN_INLINE void hamming_batch(const std::uint64_t* q,
                          const std::uint64_t* prototypes, std::size_t np,
                          std::size_t nw, std::size_t* out) noexcept {
  assert(q != nullptr && out != nullptr);
  assert(np == 0 || prototypes != nullptr);
  std::size_t p = 0;
  for (; p + kHammingBlock <= np; p += kHammingBlock) {
    const std::uint64_t* p0 = prototypes + (p + 0) * nw;
    const std::uint64_t* p1 = prototypes + (p + 1) * nw;
    const std::uint64_t* p2 = prototypes + (p + 2) * nw;
    const std::uint64_t* p3 = prototypes + (p + 3) * nw;
    std::uint64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
    for (std::size_t w = 0; w < nw; ++w) {
      const std::uint64_t qw = q[w];
      a0 += static_cast<std::uint64_t>(std::popcount(qw ^ p0[w]));
      a1 += static_cast<std::uint64_t>(std::popcount(qw ^ p1[w]));
      a2 += static_cast<std::uint64_t>(std::popcount(qw ^ p2[w]));
      a3 += static_cast<std::uint64_t>(std::popcount(qw ^ p3[w]));
    }
    out[p + 0] = static_cast<std::size_t>(a0);
    out[p + 1] = static_cast<std::size_t>(a1);
    out[p + 2] = static_cast<std::size_t>(a2);
    out[p + 3] = static_cast<std::size_t>(a3);
  }
  for (; p < np; ++p) out[p] = hamming_words(q, prototypes + p * nw, nw);
}

/// Serial core shared by the Hamming matrix drivers: distances of queries
/// [q_begin, q_end) against all np prototypes, written to out (row-major
/// [(q_end - q_begin) × np], TILE-RELATIVE row indexing: query q lands in
/// row q - q_begin). Prototypes are walked in cache panels in the outer
/// loop so each panel is re-used by every query of the tile.
SMORE_KERN_INLINE void hamming_matrix_tile(const std::uint64_t* queries,
                                std::size_t q_begin, std::size_t q_end,
                                const std::uint64_t* prototypes,
                                std::size_t np, std::size_t nw,
                                std::size_t* out) noexcept {
  for (std::size_t p = 0; p < np; p += kBitPanelRows) {
    const std::size_t panel =
        p + kBitPanelRows <= np ? kBitPanelRows : np - p;
    const std::uint64_t* panel_rows = prototypes + p * nw;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      hamming_batch(queries + q * nw, panel_rows, panel, nw,
                    out + (q - q_begin) * np + p);
    }
  }
}

/// Sign-quantize one float row into packed bits: bit j = (v[j] >= 0.0f),
/// exactly the BinaryVector predicate (NaN packs as 0, matching the scalar
/// comparison). Padding bits of the last word are written zero. Each word is
/// built from 64 branch-free shift-ORs; the SIMD variants form the same
/// mask bits with vector compares.
SMORE_KERN_INLINE void sign_pack_row(const float* v, std::size_t dim,
                          std::uint64_t* out) noexcept {
  assert(dim == 0 || (v != nullptr && out != nullptr));
  std::size_t j = 0;
  for (; j + 64 <= dim; j += 64) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 64; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;
  }
  if (j < dim) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; j + b < dim; ++b) {
      word |= static_cast<std::uint64_t>(v[j + b] >= 0.0f) << b;
    }
    out[j >> 6] = word;  // padding bits stay zero
  }
}

}  // namespace generic
}  // namespace smore::kern
