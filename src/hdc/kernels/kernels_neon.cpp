// NEON tier (AArch64; Advanced SIMD is architectural baseline there, so
// this TU needs no extra arch flags and CMake compiles it only for ARM
// targets). The 8 canonical chains map onto four 2×double registers (chain
// pair (2k, 2k+1) in register k); FMLA in double is exact-product FMA,
// equal to the reference's mul-then-add (see kernels_generic.hpp).
// Hamming uses VCNT (per-byte popcount) + the pairwise-add widening ladder.
// ngram_axpy / project_cos_tile are the generic element-wise bodies
// force-inlined here for NEON auto-vectorization — bit-identical with
// contraction off.

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace smore::kern {

namespace {

/// Convert 4 floats to 2 double pairs: lo = {p[0], p[1]}, hi = {p[2], p[3]}.
inline void cvt4(const float* p, float64x2_t& lo, float64x2_t& hi) {
  const float32x4_t v = vld1q_f32(p);
  lo = vcvt_f64_f32(vget_low_f32(v));
  hi = vcvt_high_f64_f32(v);
}

double dot_neon(const float* a, const float* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);  // chains 0,1
  float64x2_t acc1 = vdupq_n_f64(0.0);  // chains 2,3
  float64x2_t acc2 = vdupq_n_f64(0.0);  // chains 4,5
  float64x2_t acc3 = vdupq_n_f64(0.0);  // chains 6,7
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    float64x2_t a01, a23, a45, a67, b01, b23, b45, b67;
    cvt4(a + i, a01, a23);
    cvt4(a + i + 4, a45, a67);
    cvt4(b + i, b01, b23);
    cvt4(b + i + 4, b45, b67);
    acc0 = vfmaq_f64(acc0, a01, b01);
    acc1 = vfmaq_f64(acc1, a23, b23);
    acc2 = vfmaq_f64(acc2, a45, b45);
    acc3 = vfmaq_f64(acc3, a67, b67);
  }
  double s[kDotChains];
  vst1q_f64(s + 0, acc0);
  vst1q_f64(s + 2, acc1);
  vst1q_f64(s + 4, acc2);
  vst1q_f64(s + 6, acc3);
  for (; i < n; ++i) {
    s[i & (kDotChains - 1)] += static_cast<double>(a[i]) * b[i];
  }
  return reduce8(s);
}

void dot_and_norms_neon(const float* a, const float* b, std::size_t n,
                        double& ab, double& aa, double& bb) {
  float64x2_t accab[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                          vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  float64x2_t accaa[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                          vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  float64x2_t accbb[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                          vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
  std::size_t i = 0;
  for (; i + kDotChains <= n; i += kDotChains) {
    float64x2_t av[4], bv[4];
    cvt4(a + i, av[0], av[1]);
    cvt4(a + i + 4, av[2], av[3]);
    cvt4(b + i, bv[0], bv[1]);
    cvt4(b + i + 4, bv[2], bv[3]);
    for (int k = 0; k < 4; ++k) {
      accab[k] = vfmaq_f64(accab[k], av[k], bv[k]);
      accaa[k] = vfmaq_f64(accaa[k], av[k], av[k]);
      accbb[k] = vfmaq_f64(accbb[k], bv[k], bv[k]);
    }
  }
  double sab[kDotChains], saa[kDotChains], sbb[kDotChains];
  for (int k = 0; k < 4; ++k) {
    vst1q_f64(sab + 2 * k, accab[k]);
    vst1q_f64(saa + 2 * k, accaa[k]);
    vst1q_f64(sbb + 2 * k, accbb[k]);
  }
  for (; i < n; ++i) {
    const double ai = a[i];
    const double bi = b[i];
    sab[i & (kDotChains - 1)] += ai * bi;
    saa[i & (kDotChains - 1)] += ai * ai;
    sbb[i & (kDotChains - 1)] += bi * bi;
  }
  ab = reduce8(sab);
  aa = reduce8(saa);
  bb = reduce8(sbb);
}

void dot_matrix_tile_neon(const float* queries, std::size_t q_begin,
                          std::size_t q_end, const float* prototypes,
                          std::size_t np, std::size_t dim, double* out) {
  for (std::size_t p = 0; p < np; p += kPanelRows) {
    const std::size_t panel = p + kPanelRows <= np ? kPanelRows : np - p;
    const float* panel_rows = prototypes + p * dim;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      const float* qrow = queries + q * dim;
      double* orow = out + q * np + p;
      for (std::size_t r = 0; r < panel; ++r) {
        orow[r] = dot_neon(qrow, panel_rows + r * dim, dim);
      }
    }
  }
}

void ngram_axpy_neon(const float* const* levels, const std::size_t* shifts,
                     std::size_t n_factors, std::size_t d, float weight,
                     float* acc) {
  generic::ngram_axpy(levels, shifts, n_factors, d, weight, acc);
}

void project_cos_tile_neon(const float* x, std::size_t q_begin,
                           std::size_t q_end, const float* wt, std::size_t dp,
                           std::size_t features, const float* bias,
                           float* out) {
  generic::project_cos_tile(x, q_begin, q_end, wt, dp, features, bias, out);
}

/// XOR+popcount over nw packed words, 2 words (16 bytes) per VCNT.
inline std::uint64_t hamming_words_neon(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t nw) {
  uint64x2_t acc = vdupq_n_u64(0);
  std::size_t w = 0;
  for (; w + 2 <= nw; w += 2) {
    const uint8x16_t x = vreinterpretq_u8_u64(
        veorq_u64(vld1q_u64(a + w), vld1q_u64(b + w)));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(x)))));
  }
  std::uint64_t total = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  if (w < nw) {
    total += static_cast<std::uint64_t>(std::popcount(a[w] ^ b[w]));
  }
  return total;
}

void hamming_batch_neon(const std::uint64_t* q, const std::uint64_t* prototypes,
                        std::size_t np, std::size_t nw, std::size_t* out) {
  for (std::size_t p = 0; p < np; ++p) {
    out[p] = static_cast<std::size_t>(
        hamming_words_neon(q, prototypes + p * nw, nw));
  }
}

void hamming_matrix_tile_neon(const std::uint64_t* queries,
                              std::size_t q_begin, std::size_t q_end,
                              const std::uint64_t* prototypes, std::size_t np,
                              std::size_t nw, std::size_t* out) {
  for (std::size_t p = 0; p < np; p += kBitPanelRows) {
    const std::size_t panel =
        p + kBitPanelRows <= np ? kBitPanelRows : np - p;
    const std::uint64_t* panel_rows = prototypes + p * nw;
    for (std::size_t q = q_begin; q < q_end; ++q) {
      hamming_batch_neon(queries + q * nw, panel_rows, panel, nw,
                         out + (q - q_begin) * np + p);
    }
  }
}

}  // namespace

void register_neon(const CpuFeatures& /*features*/, KernelTable& t,
                   const char** variant) {
  const auto set = [variant](Kernel k, const char* name) {
    variant[static_cast<int>(k)] = name;
  };
  t.dot = dot_neon;
  set(Kernel::kDot, "neon");
  t.dot_and_norms = dot_and_norms_neon;
  set(Kernel::kDotAndNorms, "neon");
  t.dot_matrix_tile = dot_matrix_tile_neon;
  set(Kernel::kDotMatrixTile, "neon");
  t.ngram_axpy = ngram_axpy_neon;
  set(Kernel::kNgramAxpy, "neon");
  t.project_cos_tile = project_cos_tile_neon;
  set(Kernel::kProjectCosTile, "neon");
  t.hamming_batch = hamming_batch_neon;
  set(Kernel::kHammingBatch, "neon");
  t.hamming_matrix_tile = hamming_matrix_tile_neon;
  set(Kernel::kHammingMatrixTile, "neon");
}

}  // namespace smore::kern

#else  // non-AArch64

namespace smore::kern {
void register_neon(const CpuFeatures&, KernelTable&, const char**) {}
}  // namespace smore::kern

#endif
