#pragma once
// WideAccumulator: double-precision bundle accumulator with a float view.
//
// Bundling is the one HDC operation that RUNS FOREVER in a deployed system:
// every adaptation round keeps axpy-ing samples into the same descriptor and
// class-bank vectors. In float, that accumulation saturates — once a
// component exceeds 2^24, adding a small sample contribution rounds to
// nothing, so a long-lived domain silently stops learning and two merge
// orders produce different banks. The classic fix is a wide counter per
// dimension: accumulate in a wider type, expose a narrow mirror to the
// similarity kernels.
//
// Doubles are exactly that wide counter here. Encoder outputs are
// integer-valued floats (sums of ±1 n-gram components), and update weights
// are float-rounded before use, so every contribution is a double-exact
// product; double addition of integer-valued terms is exact (and
// order-independent) until 2^53 — about 10^9 bundles of typical magnitude
// past the point float drifts. The owner keeps a float mirror for the
// ops:: kernels (materialize()), so the read path is unchanged: wide
// counters cost memory (8 bytes/dim) and update bandwidth, never query time.

#include <cstddef>
#include <span>
#include <vector>

namespace smore {

/// One wide-counter vector: the double-precision master of a float bundle.
class WideAccumulator {
 public:
  WideAccumulator() = default;
  explicit WideAccumulator(std::size_t dim) : acc_(dim, 0.0) {}

  [[nodiscard]] std::size_t dim() const noexcept { return acc_.size(); }
  [[nodiscard]] bool empty() const noexcept { return acc_.empty(); }

  /// Raw counters (serialization and tests).
  [[nodiscard]] const double* data() const noexcept { return acc_.data(); }
  [[nodiscard]] double* data() noexcept { return acc_.data(); }

  /// acc += alpha · x. The master update of bootstrap/refine/absorb; alpha
  /// is the exact double value of the caller's float weight.
  void axpy(double alpha, std::span<const float> x) noexcept {
    double* a = acc_.data();
    const float* v = x.data();
    const std::size_t d = acc_.size();
    for (std::size_t i = 0; i < d; ++i) {
      a[i] += alpha * static_cast<double>(v[i]);
    }
  }

  /// acc += other (descriptor merge: bundling two domains is counter-wise
  /// addition, exact for integer-valued contents).
  void add(const WideAccumulator& other) noexcept {
    double* a = acc_.data();
    const double* b = other.acc_.data();
    const std::size_t d = acc_.size();
    for (std::size_t i = 0; i < d; ++i) a[i] += b[i];
  }

  /// Overwrite the master from a float vector (exact widening) — the
  /// load/set_class_vector path where the float value IS the state.
  void assign_from(std::span<const float> x) {
    acc_.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      acc_[i] = static_cast<double>(x[i]);
    }
  }

  /// Write the float mirror the similarity kernels consume.
  void materialize(float* out) const noexcept {
    const double* a = acc_.data();
    const std::size_t d = acc_.size();
    for (std::size_t i = 0; i < d; ++i) out[i] = static_cast<float>(a[i]);
  }

 private:
  std::vector<double> acc_;
};

}  // namespace smore
