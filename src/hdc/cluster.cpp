#include "hdc/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "hdc/ops.hpp"

namespace smore {

namespace {

/// Row-major [rows × k] cosine similarities of every row to every centroid.
std::vector<double> sims_to_centroids(HvView rows, const HvMatrix& centroids) {
  std::vector<double> sims(rows.rows * centroids.rows());
  ops::similarity_matrix(rows.data, rows.rows, centroids.data(),
                         centroids.rows(), centroids.dim(), sims.data());
  return sims;
}

/// Mean of each cluster's members (double accumulation, so member order
/// cannot perturb the centroid). Empty clusters keep their previous centroid.
void recompute_centroids(HvView rows,
                         const std::vector<std::uint32_t>& assignment,
                         std::size_t k, HvMatrix& centroids,
                         std::vector<std::size_t>& sizes) {
  const std::size_t d = rows.dim;
  std::vector<double> acc(k * d, 0.0);
  sizes.assign(k, 0);
  for (std::size_t i = 0; i < rows.rows; ++i) {
    const std::uint32_t c = assignment[i];
    double* dst = acc.data() + static_cast<std::size_t>(c) * d;
    const float* src = rows.row(i).data();
    for (std::size_t j = 0; j < d; ++j) dst[j] += src[j];
    ++sizes[c];
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (sizes[c] == 0) continue;
    const double inv = 1.0 / static_cast<double>(sizes[c]);
    const double* src = acc.data() + c * d;
    float* dst = centroids.row(c).data();
    for (std::size_t j = 0; j < d; ++j) {
      dst[j] = static_cast<float>(src[j] * inv);
    }
  }
}

}  // namespace

Clustering cluster_rows(HvView rows, const ClusterConfig& config) {
  Clustering out;
  if (rows.rows == 0) return out;
  if (rows.dim == 0) {
    throw std::invalid_argument("cluster_rows: zero-dimensional rows");
  }
  const std::size_t k_max =
      std::min(std::max<std::size_t>(1, config.max_clusters), rows.rows);

  // Farthest-first seeding: start from row 0, then repeatedly promote the
  // row least covered by the current seeds — but only while that row is
  // genuinely far (cosine < split_threshold), so k adapts to the round.
  std::vector<std::size_t> seeds{0};
  std::vector<double> coverage(rows.rows,
                               -2.0);  // max cosine to any seed so far
  while (seeds.size() < k_max) {
    const auto last = rows.row(seeds.back());
    std::vector<double> sims(rows.rows);
    ops::similarity_matrix(rows.data, rows.rows, last.data(), 1, rows.dim,
                           sims.data());
    std::size_t farthest = 0;
    double farthest_cov = 2.0;
    for (std::size_t i = 0; i < rows.rows; ++i) {
      if (sims[i] > coverage[i]) coverage[i] = sims[i];
      if (coverage[i] < farthest_cov) {
        farthest_cov = coverage[i];
        farthest = i;
      }
    }
    if (farthest_cov >= config.split_threshold) break;  // round is covered
    seeds.push_back(farthest);
  }

  std::size_t k = seeds.size();
  HvMatrix centroids(k, rows.dim);
  for (std::size_t c = 0; c < k; ++c) {
    centroids.set_row(c, rows.row(seeds[c]));
  }

  // Lloyd refinement on cosine similarity.
  std::vector<std::uint32_t> assignment(rows.rows, 0);
  std::vector<std::size_t> sizes(k, 0);
  const int iters = std::max(1, config.iterations);
  for (int it = 0; it < iters; ++it) {
    const std::vector<double> sims = sims_to_centroids(rows, centroids);
    for (std::size_t i = 0; i < rows.rows; ++i) {
      const double* row = sims.data() + i * k;
      std::size_t best = 0;
      for (std::size_t c = 1; c < k; ++c) {
        if (row[c] > row[best]) best = c;
      }
      assignment[i] = static_cast<std::uint32_t>(best);
    }
    recompute_centroids(rows, assignment, k, centroids, sizes);
  }

  // Fold undersized clusters into their nearest survivor: a handful of
  // stragglers does not deserve its own pseudo-domain (and would immediately
  // become eviction fodder). Smallest cluster first, one at a time, so two
  // small clusters can still merge into each other's survivor.
  for (;;) {
    if (k <= 1) break;
    std::size_t victim = k;
    for (std::size_t c = 0; c < k; ++c) {
      if (sizes[c] >= config.min_cluster_size) continue;
      if (victim == k || sizes[c] < sizes[victim]) victim = c;
    }
    if (victim == k) break;  // every cluster is big enough
    const std::vector<double> sims = sims_to_centroids(rows, centroids);
    for (std::size_t i = 0; i < rows.rows; ++i) {
      if (assignment[i] != victim) continue;
      const double* row = sims.data() + i * k;
      std::size_t best = k;
      for (std::size_t c = 0; c < k; ++c) {
        if (c == victim) continue;
        if (best == k || row[c] > row[best]) best = c;
      }
      assignment[i] = static_cast<std::uint32_t>(best);
    }
    // Compact: drop the victim's centroid slot, shift assignments down.
    HvMatrix compact(k - 1, rows.dim);
    for (std::size_t c = 0, w = 0; c < k; ++c) {
      if (c == victim) continue;
      compact.set_row(w++, centroids.row(c));
    }
    centroids = std::move(compact);
    for (auto& a : assignment) {
      if (a > victim) --a;
    }
    --k;
    recompute_centroids(rows, assignment, k, centroids, sizes);
  }

  out.k = k;
  out.assignment = std::move(assignment);
  out.centroids = std::move(centroids);
  out.sizes = std::move(sizes);
  return out;
}

}  // namespace smore
