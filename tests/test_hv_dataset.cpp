// Unit tests for the HvDataset container.

#include "hdc/hv_dataset.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smore {
namespace {

HvDataset small() {
  HvDataset d(2);
  const std::vector<float> r0{1.0f, 2.0f};
  const std::vector<float> r1{3.0f, 4.0f};
  const std::vector<float> r2{5.0f, 6.0f};
  d.add(r0, 0, 0);
  d.add(r1, 1, 0);
  d.add(r2, 1, 2);
  return d;
}

TEST(HvDataset, SizeAndDim) {
  const HvDataset d = small();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.dim(), 2u);
  EXPECT_FALSE(d.empty());
}

TEST(HvDataset, RowAccess) {
  const HvDataset d = small();
  EXPECT_FLOAT_EQ(d.row(1)[0], 3.0f);
  EXPECT_FLOAT_EQ(d.row(2)[1], 6.0f);
}

TEST(HvDataset, LabelsAndDomains) {
  const HvDataset d = small();
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.domain(2), 2);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_EQ(d.num_domains(), 3);  // dense ids: max(domain)+1
}

TEST(HvDataset, AddRejectsWrongDim) {
  HvDataset d(3);
  const std::vector<float> bad{1.0f};
  EXPECT_THROW(d.add(bad, 0, 0), std::invalid_argument);
}

TEST(HvDataset, SelectCopiesRows) {
  const HvDataset d = small();
  const std::vector<std::size_t> idx{2, 0};
  const HvDataset s = d.select(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_FLOAT_EQ(s.row(0)[0], 5.0f);
  EXPECT_EQ(s.domain(0), 2);
  EXPECT_FLOAT_EQ(s.row(1)[0], 1.0f);
}

TEST(HvDataset, SelectOutOfRangeThrows) {
  const HvDataset d = small();
  const std::vector<std::size_t> idx{5};
  EXPECT_THROW(d.select(idx), std::out_of_range);
}

TEST(HvDataset, DomainIndexHelpers) {
  const HvDataset d = small();
  const auto in0 = d.indices_of_domain(0);
  ASSERT_EQ(in0.size(), 2u);
  EXPECT_EQ(in0[0], 0u);
  EXPECT_EQ(in0[1], 1u);
  const auto not2 = d.indices_excluding_domain(2);
  ASSERT_EQ(not2.size(), 2u);
  EXPECT_EQ(not2[1], 1u);
}

TEST(HvDataset, PreSizedConstructionWritable) {
  HvDataset d(4, 3);
  EXPECT_EQ(d.size(), 4u);
  auto row = d.row(2);
  row[0] = 9.0f;
  d.set_label(2, 5);
  d.set_domain(2, 1);
  EXPECT_FLOAT_EQ(d.row(2)[0], 9.0f);
  EXPECT_EQ(d.label(2), 5);
  EXPECT_EQ(d.domain(2), 1);
}

TEST(HvDataset, EmptyDatasetCounts) {
  HvDataset d(8);
  EXPECT_EQ(d.num_classes(), 0);
  EXPECT_EQ(d.num_domains(), 0);
  EXPECT_TRUE(d.empty());
}

}  // namespace
}  // namespace smore
