// Unit tests for the CSV writer and the CLI flag parser.

#include "util/cli.hpp"
#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace smore {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() / "smore_csv_test.csv";

  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.row({"1", "2"});
    csv.row({"x", "y"});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\nx,y\n");
}

TEST_F(CsvTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"v"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  EXPECT_EQ(read_file(path_), "v\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvTest, RowValuesFormatsNumbers) {
  {
    CsvWriter csv(path_, {"name", "x", "n"});
    csv.row_values("abc", 1.5, 42);
  }
  EXPECT_EQ(read_file(path_), "name,x,n\nabc,1.5,42\n");
}

TEST_F(CsvTest, ArityMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST_F(CsvTest, CreatesParentDirectories) {
  const auto nested =
      std::filesystem::temp_directory_path() / "smore_csv_nested" / "x.csv";
  {
    CsvWriter csv(nested, {"a"});
    csv.row({"1"});
  }
  EXPECT_TRUE(std::filesystem::exists(nested));
  std::filesystem::remove_all(nested.parent_path());
}

TEST(Cli, DefaultsAreReturned) {
  CliParser cli("test");
  cli.flag_int("n", 5, "count").flag_double("x", 1.5, "value");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("n"), 5);
  EXPECT_DOUBLE_EQ(cli.get_double("x"), 1.5);
}

TEST(Cli, EqualsSyntax) {
  CliParser cli("test");
  cli.flag_int("n", 5, "count");
  const char* argv[] = {"prog", "--n=9"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("n"), 9);
}

TEST(Cli, SpaceSyntax) {
  CliParser cli("test");
  cli.flag_string("name", "a", "name");
  const char* argv[] = {"prog", "--name", "hello"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.get_string("name"), "hello");
}

TEST(Cli, BareBooleanFlagTurnsOn) {
  CliParser cli("test");
  cli.flag_bool("full", false, "run full scale");
  const char* argv[] = {"prog", "--full"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.get_bool("full"));
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("test");
  cli.flag_int("n", 5, "count");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MalformedNumberFails) {
  CliParser cli("test");
  cli.flag_int("n", 5, "count");
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalseAndLists) {
  CliParser cli("summary text");
  cli.flag_int("n", 5, "the count flag");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  const std::string help = cli.help_text();
  EXPECT_NE(help.find("summary text"), std::string::npos);
  EXPECT_NE(help.find("--n"), std::string::npos);
  EXPECT_NE(help.find("the count flag"), std::string::npos);
}

TEST(Cli, DoubleParses) {
  CliParser cli("test");
  cli.flag_double("scale", 0.15, "scale");
  const char* argv[] = {"prog", "--scale=0.4"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.4);
}

TEST(Cli, BoolExplicitValues) {
  CliParser cli("test");
  cli.flag_bool("x", true, "x");
  const char* argv[] = {"prog", "--x=false"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(cli.get_bool("x"));
}

}  // namespace
}  // namespace smore
