// Unit tests for domain descriptors (Sec 3.5.1): membership similarity,
// id ordering, incremental absorption.

#include "core/domain_descriptor.hpp"

#include <gtest/gtest.h>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(DomainDescriptor, EmptyTrainingSetThrows) {
  EXPECT_THROW(DomainDescriptorBank{HvDataset(16)}, std::invalid_argument);
}

TEST(DomainDescriptor, OneDescriptorPerDomain) {
  const HvDataset data = separable_hv_dataset(2, 3, 10, 128);
  const DomainDescriptorBank bank(data);
  EXPECT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank.dim(), 128u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(bank.domain_id(k), static_cast<int>(k));
    EXPECT_EQ(bank.sample_count(k), 20u);  // 2 classes × 10
  }
}

TEST(DomainDescriptor, DescriptorIsBundleOfDomainRows) {
  const HvDataset data = separable_hv_dataset(2, 2, 5, 64);
  const DomainDescriptorBank bank(data);
  // The bank accumulates in double wide counters and mirrors to float, so
  // the reference bundle is the float cast of the exact double sum.
  std::vector<double> acc(64, 0.0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.domain(i) == 1) {
      const auto row = data.row(i);
      for (std::size_t j = 0; j < 64; ++j) acc[j] += row[j];
    }
  }
  Hypervector expected(64);
  for (std::size_t j = 0; j < 64; ++j) {
    expected[j] = static_cast<float>(acc[j]);
  }
  EXPECT_EQ(bank.descriptor(1), expected);
}

TEST(DomainDescriptor, MembersMoreSimilarThanOutsiders) {
  // The core Sec 3.5.1 property: U_k is cosine-similar to its own samples
  // and much less similar to samples of other (skewed) domains.
  const HvDataset data = separable_hv_dataset(3, 3, 20, 2048, 0.3, 1.2);
  const DomainDescriptorBank bank(data);
  double own = 0.0;
  double other = 0.0;
  std::size_t n_own = 0;
  std::size_t n_other = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto sims = bank.similarities(data.row(i));
    for (std::size_t k = 0; k < bank.size(); ++k) {
      if (bank.domain_id(k) == data.domain(i)) {
        own += sims[k];
        ++n_own;
      } else {
        other += sims[k];
        ++n_other;
      }
    }
  }
  EXPECT_GT(own / n_own, other / n_other + 0.1);
}

TEST(DomainDescriptor, IdsSortedRegardlessOfInsertionOrder) {
  HvDataset data(8);
  const std::vector<float> row(8, 1.0f);
  data.add(row, 0, 5);
  data.add(row, 0, 1);
  data.add(row, 0, 3);
  const DomainDescriptorBank bank(data);
  ASSERT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank.domain_id(0), 1);
  EXPECT_EQ(bank.domain_id(1), 3);
  EXPECT_EQ(bank.domain_id(2), 5);
}

TEST(DomainDescriptor, LodoGapIdsPreserved) {
  // LODO training sets miss one domain id; positions must still map back to
  // original ids.
  const HvDataset all = separable_hv_dataset(2, 4, 5, 64);
  const auto idx = all.indices_excluding_domain(2);
  const DomainDescriptorBank bank(all.select(idx));
  ASSERT_EQ(bank.size(), 3u);
  EXPECT_EQ(bank.domain_id(0), 0);
  EXPECT_EQ(bank.domain_id(1), 1);
  EXPECT_EQ(bank.domain_id(2), 3);  // id 2 held out
}

TEST(DomainDescriptor, AbsorbIncrementalMatchesBatch) {
  const HvDataset data = separable_hv_dataset(2, 2, 8, 64);
  const DomainDescriptorBank batch(data);
  DomainDescriptorBank streaming;
  for (std::size_t i = 0; i < data.size(); ++i) {
    streaming.absorb(data.row(i), data.domain(i));
  }
  ASSERT_EQ(streaming.size(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    EXPECT_EQ(streaming.descriptor(k), batch.descriptor(k));
  }
}

TEST(DomainDescriptor, AbsorbDimMismatchThrows) {
  DomainDescriptorBank bank;
  const std::vector<float> a(8, 1.0f);
  const std::vector<float> b(16, 1.0f);
  bank.absorb(a, 0);
  EXPECT_THROW(bank.absorb(b, 0), std::invalid_argument);
}

TEST(DomainDescriptor, SimilaritiesDimMismatchThrows) {
  const HvDataset data = separable_hv_dataset(2, 2, 4, 64);
  const DomainDescriptorBank bank(data);
  const std::vector<float> bad(32, 0.0f);
  EXPECT_THROW(bank.similarities(bad), std::invalid_argument);
}

}  // namespace
}  // namespace smore
