// Unit tests for stream segmentation (Sec 4.1.2 windowing rules).

#include "data/windowing.hpp"

#include <gtest/gtest.h>

namespace smore {
namespace {

MultiChannelStream ramp_stream(std::size_t channels, std::size_t steps) {
  MultiChannelStream s(channels, steps);
  for (std::size_t c = 0; c < channels; ++c) {
    auto ch = s.channel(c);
    for (std::size_t t = 0; t < steps; ++t) {
      ch[t] = static_cast<float>(c * 1000 + t);
    }
  }
  s.set_label(7);
  s.set_subject(2);
  s.set_domain(1);
  return s;
}

TEST(Windowing, HopNonOverlapping) {
  EXPECT_EQ(hop_of({100, 0.0}), 100u);
}

TEST(Windowing, HopHalfOverlap) {
  EXPECT_EQ(hop_of({100, 0.5}), 50u);
}

TEST(Windowing, HopNeverZero) {
  EXPECT_EQ(hop_of({2, 0.9}), 1u);  // rounds to 0.2 -> clamps to 1
}

TEST(Windowing, InvalidConfigThrows) {
  EXPECT_THROW((void)hop_of({0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)hop_of({10, 1.0}), std::invalid_argument);
  EXPECT_THROW((void)hop_of({10, -0.1}), std::invalid_argument);
}

TEST(Windowing, WindowCountFormula) {
  EXPECT_EQ(window_count(100, {100, 0.0}), 1u);
  EXPECT_EQ(window_count(99, {100, 0.0}), 0u);
  EXPECT_EQ(window_count(300, {100, 0.0}), 3u);
  EXPECT_EQ(window_count(300, {100, 0.5}), 5u);
}

TEST(Windowing, StepsForWindowsInvertsCount) {
  for (const double overlap : {0.0, 0.5, 0.25}) {
    const SegmentationConfig cfg{64, overlap};
    for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{33}}) {
      const std::size_t steps = steps_for_windows(n, cfg);
      EXPECT_EQ(window_count(steps, cfg), n)
          << "overlap=" << overlap << " n=" << n;
      // Minimality: one step fewer loses a window.
      EXPECT_EQ(window_count(steps - 1, cfg), n - 1);
    }
  }
}

TEST(Windowing, SegmentCopiesValuesAndMetadata) {
  const auto stream = ramp_stream(2, 10);
  const auto windows = segment(stream, {4, 0.5});
  ASSERT_EQ(windows.size(), 4u);  // hop 2: starts 0,2,4,6
  EXPECT_FLOAT_EQ(windows[0].at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(windows[1].at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(windows[3].at(1, 3), 1009.0f);
  for (const auto& w : windows) {
    EXPECT_EQ(w.label(), 7);
    EXPECT_EQ(w.subject(), 2);
    EXPECT_EQ(w.domain(), 1);
  }
}

TEST(Windowing, OverlappingWindowsShareSamples) {
  const auto stream = ramp_stream(1, 12);
  const auto windows = segment(stream, {8, 0.5});
  ASSERT_EQ(windows.size(), 2u);
  // Second window starts at hop=4; its first 4 values repeat window 1's tail.
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(windows[1].at(0, t), windows[0].at(0, t + 4));
  }
}

TEST(Windowing, StreamShorterThanWindowYieldsNothing) {
  const auto stream = ramp_stream(1, 5);
  EXPECT_TRUE(segment(stream, {16, 0.0}).empty());
}

TEST(Windowing, StreamRejectsZeroExtents) {
  EXPECT_THROW(MultiChannelStream(0, 5), std::invalid_argument);
  EXPECT_THROW(MultiChannelStream(2, 0), std::invalid_argument);
}

TEST(WindowType, ShapeAndAccess) {
  Window w(3, 4);
  EXPECT_EQ(w.channels(), 3u);
  EXPECT_EQ(w.steps(), 4u);
  w.set(2, 3, 1.5f);
  EXPECT_FLOAT_EQ(w.at(2, 3), 1.5f);
  EXPECT_FLOAT_EQ(w.channel(2)[3], 1.5f);
}

TEST(WindowType, RejectsZeroExtents) {
  EXPECT_THROW(Window(0, 4), std::invalid_argument);
  EXPECT_THROW(Window(4, 0), std::invalid_argument);
}

TEST(WindowDatasetType, ShapeEnforced) {
  WindowDataset ds("x", 2, 8);
  ds.add(Window(2, 8));
  EXPECT_THROW(ds.add(Window(2, 9)), std::invalid_argument);
  EXPECT_THROW(ds.add(Window(3, 8)), std::invalid_argument);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(WindowDatasetType, CountsClassesAndDomains) {
  WindowDataset ds("x", 1, 4);
  Window a(1, 4);
  a.set_label(0);
  a.set_domain(0);
  Window b(1, 4);
  b.set_label(4);
  b.set_domain(2);
  ds.add(a);
  ds.add(b);
  EXPECT_EQ(ds.num_classes(), 5);
  EXPECT_EQ(ds.num_domains(), 3);
  EXPECT_EQ(ds.domain_size(2), 1u);
  EXPECT_EQ(ds.domain_size(1), 0u);
}

}  // namespace
}  // namespace smore
