// Unit tests for the OnlineHD classifier (BaselineHD / SMORE's per-domain
// learner): Eq. 1-2 semantics, convergence on separable data, serialization.

#include "hdc/onlinehd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(OnlineHD, RejectsBadConstruction) {
  EXPECT_THROW(OnlineHDClassifier(0, 16), std::invalid_argument);
  EXPECT_THROW(OnlineHDClassifier(-2, 16), std::invalid_argument);
  EXPECT_THROW(OnlineHDClassifier(3, 0), std::invalid_argument);
}

TEST(OnlineHD, BootstrapPullsClassVectorTowardSample) {
  OnlineHDClassifier model(2, 64);
  std::vector<float> hv(64, 0.0f);
  hv[0] = 1.0f;
  hv[1] = -1.0f;
  model.bootstrap(hv, 1);
  EXPECT_GT(model.class_vector(1)[0], 0.9f);
  EXPECT_LT(model.class_vector(1)[1], -0.9f);
  // Untouched class stays zero.
  EXPECT_DOUBLE_EQ(model.class_vector(0).norm(), 0.0);
}

TEST(OnlineHD, BootstrapAdaptiveWeightShrinks) {
  // Second identical sample adds (1 - δ) ≈ 0: norm barely changes.
  OnlineHDClassifier model(1, 64);
  std::vector<float> hv(64, 1.0f);
  model.bootstrap(hv, 0);
  const double n1 = model.class_vector(0).norm();
  model.bootstrap(hv, 0);
  const double n2 = model.class_vector(0).norm();
  EXPECT_NEAR(n2, n1, 1e-3 * n1);
}

TEST(OnlineHD, RefineCorrectSampleIsNoop) {
  OnlineHDClassifier model(2, 32);
  std::vector<float> hv(32, 0.0f);
  hv[0] = 1.0f;
  model.bootstrap(hv, 0);
  const Hypervector before = model.class_vector(0);
  EXPECT_TRUE(model.refine(hv, 0, 0.1f));  // already correct
  EXPECT_EQ(model.class_vector(0), before);
}

TEST(OnlineHD, RefineMispredictionMovesBothClasses) {
  // Eq. 2: true class reinforced, wrongly-predicted class repelled.
  OnlineHDClassifier model(2, 32);
  std::vector<float> hv(32, 0.0f);
  hv[0] = 1.0f;
  model.bootstrap(hv, 0);  // class 0 owns the pattern
  const double sim_before = model.similarities(hv)[1];
  EXPECT_FALSE(model.refine(hv, 1, 0.5f));  // label says class 1
  const auto sims = model.similarities(hv);
  EXPECT_GT(sims[1], sim_before);  // pulled toward class 1
}

TEST(OnlineHD, FitLearnsSeparableData) {
  const HvDataset data = separable_hv_dataset(4, 1, 40, 512, 0.5);
  OnlineHDClassifier model(4, 512);
  OnlineHDConfig cfg;
  cfg.epochs = 10;
  model.fit(data, cfg);
  EXPECT_GT(model.accuracy(data), 0.95);
}

TEST(OnlineHD, FitHistoryConverges) {
  const HvDataset data = separable_hv_dataset(3, 1, 30, 256, 0.5);
  OnlineHDClassifier model(3, 256);
  OnlineHDConfig cfg;
  cfg.epochs = 8;
  const auto history = model.fit(data, cfg);
  ASSERT_EQ(history.size(), 8u);
  EXPECT_GT(history.back(), history.front() - 0.05);
  EXPECT_GT(history.back(), 0.9);
}

TEST(OnlineHD, FitDimensionMismatchThrows) {
  const HvDataset data = separable_hv_dataset(2, 1, 5, 64);
  OnlineHDClassifier model(2, 128);
  EXPECT_THROW(model.fit(data, {}), std::invalid_argument);
}

TEST(OnlineHD, PredictUnseenSimilarPattern) {
  // Generalization: class prototypes classify noisy variants.
  const HvDataset train = separable_hv_dataset(3, 1, 50, 512, 0.4, 0.0, 1);
  const HvDataset test = separable_hv_dataset(3, 1, 20, 512, 0.4, 0.0, 2);
  OnlineHDClassifier model(3, 512);
  OnlineHDConfig cfg;
  cfg.epochs = 10;
  model.fit(train, cfg);
  // Same prototypes (same base seed inside helper) — wait: different seeds
  // produce different prototypes, so regenerate with the train seed and use
  // fresh noise only. separable_hv_dataset draws prototypes from `seed`, so
  // seed 1 vs 2 differ entirely; instead test on train-noise level data from
  // the same seed by re-sampling:
  const HvDataset retest = separable_hv_dataset(3, 1, 20, 512, 0.6, 0.0, 1);
  EXPECT_GT(model.accuracy(retest), 0.9);
  (void)test;
}

TEST(OnlineHD, SimilaritiesSizeAndRange) {
  const HvDataset data = separable_hv_dataset(5, 1, 10, 128);
  OnlineHDClassifier model(5, 128);
  model.fit(data, {});
  const auto sims = model.similarities(data.row(0));
  ASSERT_EQ(sims.size(), 5u);
  for (const double s : sims) {
    EXPECT_GE(s, -1.0001);
    EXPECT_LE(s, 1.0001);
  }
}

TEST(OnlineHD, DeterministicGivenSeed) {
  const HvDataset data = separable_hv_dataset(3, 1, 20, 128);
  OnlineHDConfig cfg;
  cfg.epochs = 5;
  cfg.seed = 42;
  OnlineHDClassifier m1(3, 128);
  OnlineHDClassifier m2(3, 128);
  const auto h1 = m1.fit(data, cfg);
  const auto h2 = m2.fit(data, cfg);
  EXPECT_EQ(h1, h2);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(m1.class_vector(c), m2.class_vector(c));
  }
}

TEST(OnlineHD, SaveLoadRoundTrip) {
  const HvDataset data = separable_hv_dataset(3, 1, 20, 128);
  OnlineHDClassifier model(3, 128);
  model.fit(data, {});
  std::stringstream buffer;
  model.save(buffer);
  const OnlineHDClassifier loaded = OnlineHDClassifier::load(buffer);
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.dim(), 128u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(loaded.predict(data.row(i)), model.predict(data.row(i)));
  }
}

TEST(OnlineHD, LoadCorruptHeaderThrows) {
  std::stringstream buffer;
  buffer.write("xx", 2);
  EXPECT_THROW(OnlineHDClassifier::load(buffer), std::runtime_error);
}

TEST(OnlineHD, SetClassVectorUpdatesPrediction) {
  OnlineHDClassifier model(2, 16);
  Hypervector proto(16);
  proto[3] = 1.0f;
  model.set_class_vector(1, proto);
  std::vector<float> query(16, 0.0f);
  query[3] = 2.0f;
  EXPECT_EQ(model.predict(query), 1);
}

TEST(OnlineHD, AccuracyOnEmptyDatasetIsZero) {
  OnlineHDClassifier model(2, 16);
  EXPECT_DOUBLE_EQ(model.accuracy(HvDataset(16)), 0.0);
}

}  // namespace
}  // namespace smore
