// Observability-layer tests (DESIGN.md §14): metrics registry identity and
// handle semantics, concurrent histogram correctness under simultaneous
// record/snapshot (the torn-read regression), exporter formats (Prometheus
// line-by-line, JSON round-trip), trace-ring tail retention across wrap,
// the one-event-per-occurrence serving contract, and span/latency coverage
// through a live server.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "serve/registry.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/telemetry.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using obs::EventType;
using obs::JsonValue;

// ---------------------------------------------------------------- registry

TEST(MetricsRegistry, GetOrCreateReturnsStableHandles) {
  obs::MetricsRegistry m;
  obs::Counter* a = m.counter("requests_total", {{"plane", "server"}});
  obs::Counter* b = m.counter("requests_total", {{"plane", "server"}});
  EXPECT_EQ(a, b);  // same identity → same handle
  a->add(3);
  EXPECT_EQ(b->value(), 3u);

  // Different labels → different series.
  obs::Counter* c = m.counter("requests_total", {{"plane", "fleet"}});
  EXPECT_NE(a, c);
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitIdentity) {
  obs::MetricsRegistry m;
  obs::Counter* a =
      m.counter("shed_total", {{"plane", "fleet"}, {"reason", "queue-full"}});
  obs::Counter* b =
      m.counter("shed_total", {{"reason", "queue-full"}, {"plane", "fleet"}});
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  obs::MetricsRegistry m;
  (void)m.counter("x_total");
  EXPECT_THROW((void)m.gauge("x_total"), std::invalid_argument);
  EXPECT_THROW((void)m.histogram("x_total"), std::invalid_argument);
}

TEST(MetricsRegistry, CallbackGaugeAndTypedCallbackCounter) {
  obs::MetricsRegistry m;
  double live = 7.0;
  m.gauge_callback("live_value", {}, [&live] { return live; });
  std::uint64_t hits = 41;
  m.gauge_callback(
      "hits_total", {}, [&hits] { return static_cast<double>(hits); },
      obs::MetricType::kCounter);

  live = 9.0;
  ++hits;
  bool saw_gauge = false, saw_counter = false;
  for (const obs::MetricSample& s : m.snapshot()) {
    if (s.name == "live_value") {
      saw_gauge = true;
      EXPECT_EQ(s.type, obs::MetricType::kGauge);
      EXPECT_DOUBLE_EQ(s.value, 9.0);
    }
    if (s.name == "hits_total") {
      saw_counter = true;
      EXPECT_EQ(s.type, obs::MetricType::kCounter);  // exported as a counter
      EXPECT_DOUBLE_EQ(s.value, 42.0);
    }
  }
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_counter);

  // remove() drops the series — the contract that lets a callback's owner
  // die before the hub does.
  m.remove("live_value", {});
  m.remove("hits_total", {});
  EXPECT_TRUE(m.snapshot().empty());
}

// --------------------------------------------------------------- histogram

// The torn-read regression: the old pattern mutated a plain histogram under
// a mutex the stats path could miss. The concurrent histogram must deliver
// internally consistent snapshots WHILE records land, and exact totals at
// quiesce (merge-under-concurrent-record stress).
TEST(ConcurrentHistogram, SnapshotConsistentUnderConcurrentRecord) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerWriter = 20000;
  obs::Histogram h(kWriters);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&h, w] {
      for (std::size_t i = 0; i < kPerWriter; ++i) {
        // Distinct magnitudes per writer so bucket traffic is spread.
        h.record(1e-4 * static_cast<double>(w + 1));
      }
    });
  }

  // Reader races the writers: every snapshot must be self-consistent —
  // count equals the bucket sum (mid-record), mean within the recorded
  // value range, count monotone across snapshots.
  std::uint64_t last_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const LatencyHistogram snap = h.snapshot();
    std::uint64_t bucket_sum = 0;
    for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
      bucket_sum += snap.bucket_count(b);
    }
    EXPECT_EQ(snap.count(), bucket_sum);
    EXPECT_GE(snap.count(), last_count);
    last_count = snap.count();
    if (snap.count() > 0) {
      EXPECT_GE(snap.mean_seconds(), 0.9e-4);
      EXPECT_LE(snap.mean_seconds(), 1.1e-4 * kWriters);
    }
    if (snap.count() == kWriters * kPerWriter) break;
    std::this_thread::yield();
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);

  const LatencyHistogram final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count(), kWriters * kPerWriter);
  EXPECT_NEAR(final_snap.min_seconds(), 1e-4, 1e-9);
  EXPECT_NEAR(final_snap.max_seconds(), 1e-4 * kWriters, 1e-9);
  EXPECT_NEAR(final_snap.sum_seconds(),
              kPerWriter * 1e-4 * (1.0 + 2.0 + 3.0 + 4.0), 1e-6);
}

TEST(ConcurrentHistogram, SnapshotsMergeLikePlainHistograms) {
  obs::Histogram a(2), b(3);
  for (int i = 0; i < 100; ++i) a.record(1e-3);
  for (int i = 0; i < 50; ++i) b.record(4e-3);
  LatencyHistogram merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.count(), 150u);
  EXPECT_NEAR(merged.min_seconds(), 1e-3, 1e-9);
  EXPECT_NEAR(merged.max_seconds(), 4e-3, 1e-9);
  EXPECT_NEAR(merged.sum_seconds(), 0.1 + 0.2, 1e-9);
}

// --------------------------------------------------------------- exporters

TEST(PrometheusExport, LineByLine) {
  obs::TelemetryConfig tc;
  tc.events = false;
  obs::Telemetry hub(tc);
  hub.metrics()
      .counter("smore_requests_total", {{"plane", "server"}})
      ->add(17);
  hub.metrics().gauge("smore_live_domains")->set(3.0);
  obs::Histogram* h = hub.metrics().histogram("smore_latency_seconds");
  h->record(1e-3);
  h->record(1e-3);

  const std::string text = obs::to_prometheus(hub);
  std::istringstream in(text);
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  // Families are sorted by name: latency histogram, live_domains gauge,
  // requests counter. One TYPE line per family, then its series.
  ASSERT_EQ(lines.size(), 9u);
  EXPECT_EQ(lines[0], "# TYPE smore_latency_seconds histogram");
  const double upper =
      LatencyHistogram::bucket_upper(LatencyHistogram::bucket_of(1e-3));
  char bucket_line[128];
  std::snprintf(bucket_line, sizeof(bucket_line),
                "smore_latency_seconds_bucket{le=\"%.9g\"} 2", upper);
  EXPECT_EQ(lines[1], bucket_line);
  EXPECT_EQ(lines[2], "smore_latency_seconds_bucket{le=\"+Inf\"} 2");
  EXPECT_EQ(lines[3], "smore_latency_seconds_sum 0.002");
  EXPECT_EQ(lines[4], "smore_latency_seconds_count 2");
  EXPECT_EQ(lines[5], "# TYPE smore_live_domains gauge");
  EXPECT_EQ(lines[6], "smore_live_domains 3");
  EXPECT_EQ(lines[7], "# TYPE smore_requests_total counter");
  EXPECT_EQ(lines[8], "smore_requests_total{plane=\"server\"} 17");
}

TEST(PrometheusExport, SanitizesNamesAndEscapesLabelValues) {
  EXPECT_EQ(obs::sanitize_metric_name("9lives-total"), "_9lives_total");
  EXPECT_EQ(obs::sanitize_metric_name("ok:name_0"), "ok:name_0");
  EXPECT_EQ(obs::escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

  obs::Telemetry hub;
  hub.metrics().counter("weird metric", {{"k", "v\"q\""}})->add(1);
  const std::string text = obs::to_prometheus(hub);
  EXPECT_NE(text.find("weird_metric{k=\"v\\\"q\\\"\"} 1"), std::string::npos);
}

TEST(JsonExport, RoundTripsThroughParse) {
  obs::Telemetry hub;
  hub.metrics().counter("smore_requests_total", {{"plane", "server"}})->add(5);
  hub.metrics().histogram("smore_latency_seconds")->record(2e-3);
  hub.emit(EventType::kSnapshotPublish, "server", "operator", 7);
  obs::TraceSpan span;
  span.total_ns = 1000;
  span.predict_ns = 1000;
  span.set_tenant("alpha");
  hub.tracer().record(span);

  const std::string text = obs::snapshot_json_text(hub);
  std::string error;
  const std::optional<JsonValue> doc = JsonValue::parse(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->at("schema").as_string(), "smore.telemetry.v1");
  EXPECT_DOUBLE_EQ(doc->at("observed_requests").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(doc->at("events_emitted").as_double(), 1.0);

  bool saw_counter = false, saw_hist = false;
  for (const JsonValue& m : doc->at("metrics").items()) {
    if (m.at("name").as_string() == "smore_requests_total") {
      saw_counter = true;
      EXPECT_EQ(m.at("labels").at("plane").as_string(), "server");
      EXPECT_DOUBLE_EQ(m.at("value").as_double(), 5.0);
    }
    if (m.at("name").as_string() == "smore_latency_seconds") {
      saw_hist = true;
      EXPECT_DOUBLE_EQ(m.at("count").as_double(), 1.0);
      EXPECT_DOUBLE_EQ(m.at("sum").as_double(), 2e-3);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
  ASSERT_EQ(doc->at("events").size(), 1u);
  EXPECT_EQ(doc->at("events").at(0).at("type").as_string(),
            "snapshot-publish");
  EXPECT_EQ(doc->at("events").at(0).at("reason").as_string(), "operator");
  ASSERT_EQ(doc->at("slowest_requests").size(), 1u);
  EXPECT_EQ(doc->at("slowest_requests").at(0).at("tenant").as_string(),
            "alpha");

  // Parse → dump → parse is stable (the DOM does not lose structure).
  const std::optional<JsonValue> again = JsonValue::parse(doc->dump(2));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->at("metrics").size(), doc->at("metrics").size());
}

// ------------------------------------------------------------------- trace

TEST(Tracer, RingWrapKeepsSlowTail) {
  obs::TracerConfig tc;
  tc.ring_capacity = 32;
  tc.slow_ring_capacity = 8;
  tc.sample_every = 1;  // keep every span → guaranteed wrap below
  tc.slow_threshold_seconds = 1e-3;
  obs::Tracer tracer(tc);

  // A few slow spans first, then a flood of fast spans large enough to wrap
  // the sampled ring many times over.
  for (int i = 0; i < 4; ++i) {
    obs::TraceSpan s;
    s.total_ns = 5'000'000 + i;  // 5 ms ≫ threshold
    tracer.record(s);
  }
  for (int i = 0; i < 1000; ++i) {
    obs::TraceSpan s;
    s.total_ns = 1000;  // 1 µs, fast
    tracer.record(s);
  }
  EXPECT_EQ(tracer.observed(), 1004u);

  const std::vector<obs::TraceSpan> slowest = tracer.slowest(4);
  ASSERT_EQ(slowest.size(), 4u);
  for (const obs::TraceSpan& s : slowest) {
    EXPECT_GE(s.total_ns, 5'000'000u) << "fast flood evicted the slow tail";
    EXPECT_NE(s.slow, 0);
  }
  // slowest() is total_ns descending.
  for (std::size_t i = 1; i < slowest.size(); ++i) {
    EXPECT_GE(slowest[i - 1].total_ns, slowest[i].total_ns);
  }
}

TEST(EventLog, BoundedRingKeepsMostRecent) {
  obs::EventLog log(8);
  for (int i = 0; i < 20; ++i) {
    log.emit(EventType::kShed, "server", "queue-full", i);
  }
  EXPECT_EQ(log.emitted(), 20u);
  const std::vector<obs::Event> recent = log.recent(8);
  ASSERT_EQ(recent.size(), 8u);
  EXPECT_EQ(recent.front().value, 12);  // oldest resident
  EXPECT_EQ(recent.back().value, 19);   // newest
  for (std::size_t i = 1; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].id, recent[i - 1].id + 1);
  }
}

// ------------------------------------------------- serving events contract

/// Count events of one type (and optional reason) currently resident.
std::size_t count_events(const obs::Telemetry& hub, EventType type,
                         std::string_view reason = {}) {
  std::size_t n = 0;
  for (const obs::Event& e : hub.events().recent(1024)) {
    if (e.type != type) continue;
    if (!reason.empty() && reason != e.reason) continue;
    ++n;
  }
  return n;
}

class ObsServingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    windows_ = generate_dataset(testing::tiny_spec());
    EncoderConfig ec;
    ec.dim = 128;
    pipeline_ = std::make_unique<Pipeline>(
        std::make_shared<const MultiSensorEncoder>(ec),
        windows_.num_classes());
    pipeline_->fit(windows_);
    pipeline_->quantize();
    pipeline_->calibrate(windows_, 0.08);
    queries_ = pipeline_->encode(windows_);
  }

  [[nodiscard]] std::vector<float> query(std::size_t i) const {
    const auto row = queries_.row(i);
    return {row.begin(), row.end()};
  }

  [[nodiscard]] std::string artifact() const {
    std::ostringstream buffer(std::ios::binary);
    pipeline_->save(buffer);
    return buffer.str();
  }

  WindowDataset windows_;
  std::unique_ptr<Pipeline> pipeline_;
  HvDataset queries_{128};
};

TEST_F(ObsServingTest, ServerEmitsExactlyOnePublishEventPerGeneration) {
  const auto hub = obs::Telemetry::make();
  ServerConfig cfg;
  cfg.telemetry = hub;
  InferenceServer server(*pipeline_, cfg);
  EXPECT_EQ(count_events(*hub, EventType::kSnapshotPublish, "boot"), 1u);

  ASSERT_TRUE(server.publish(ModelSnapshot::make(*pipeline_, 2)));
  EXPECT_EQ(count_events(*hub, EventType::kSnapshotPublish, "operator"), 1u);
  // A stale publish loses the CAS and must NOT emit.
  EXPECT_FALSE(server.publish(ModelSnapshot::make(*pipeline_, 2)));
  EXPECT_EQ(count_events(*hub, EventType::kSnapshotPublish), 2u);
}

TEST_F(ObsServingTest, ShedEmitsExactlyOneEventWithReason) {
  const auto hub = obs::Telemetry::make();
  ServerConfig cfg;
  cfg.telemetry = hub;
  InferenceServer server(*pipeline_, cfg);
  server.shutdown();
  ServeStatus reason = ServeStatus::kOk;
  EXPECT_FALSE(server.try_submit(query(0), &reason).has_value());
  EXPECT_EQ(reason, ServeStatus::kShuttingDown);
  EXPECT_EQ(count_events(*hub, EventType::kShed, "shutting-down"), 1u);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(ObsServingTest, RegistryEmitsLoadEvictAndFailureEvents) {
  const auto hub = obs::Telemetry::make();
  const std::string bytes = artifact();
  RegistryConfig rc;
  rc.telemetry = hub;
  ModelRegistry registry(
      [bytes](const std::string& tenant) {
        if (tenant == "bad") throw std::runtime_error("corrupt artifact");
        std::istringstream in(bytes, std::ios::binary);
        return ModelSnapshot::from_artifact(in, 1);
      },
      rc);

  (void)registry.acquire("a");
  (void)registry.acquire("a");  // hit: no second load event
  EXPECT_EQ(count_events(*hub, EventType::kRegistryLoad), 1u);
  EXPECT_THROW((void)registry.acquire("bad"), std::runtime_error);
  EXPECT_EQ(count_events(*hub, EventType::kRegistryLoadFailure), 1u);
  EXPECT_TRUE(registry.evict("a"));
  EXPECT_FALSE(registry.evict("a"));  // already cold: no event
  EXPECT_EQ(count_events(*hub, EventType::kRegistryEvict, "operator"), 1u);

  // The registry's callback metrics feed the same hub the caller passed.
  bool saw = false;
  for (const obs::MetricSample& s : hub->metrics().snapshot()) {
    if (s.name == "smore_registry_loads_total") {
      saw = true;
      EXPECT_DOUBLE_EQ(s.value, 1.0);
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(ObsServingTest, RegistryDtorUnregistersCallbackMetrics) {
  const auto hub = obs::Telemetry::make();
  {
    RegistryConfig rc;
    rc.telemetry = hub;
    const std::string bytes = artifact();
    ModelRegistry registry(
        [bytes](const std::string&) {
          std::istringstream in(bytes, std::ios::binary);
          return ModelSnapshot::from_artifact(in, 1);
        },
        rc);
    (void)registry.acquire("a");
  }
  // The registry died before the hub: its callbacks must be gone, and a
  // snapshot must not touch freed memory (crash/ASan test).
  for (const obs::MetricSample& s : hub->metrics().snapshot()) {
    EXPECT_EQ(s.name.rfind("smore_registry_", 0), std::string::npos)
        << s.name << " dangled past ~ModelRegistry";
  }
}

TEST_F(ObsServingTest, ByteBudgetEvictionEmitsOneEventPerVictim) {
  const auto hub = obs::Telemetry::make();
  const std::string bytes = artifact();
  RegistryConfig rc;
  rc.telemetry = hub;
  rc.byte_budget = 1;  // every second tenant evicts the first
  ModelRegistry registry(
      [bytes](const std::string&) {
        std::istringstream in(bytes, std::ios::binary);
        return ModelSnapshot::from_artifact(in, 1);
      },
      rc);
  (void)registry.acquire("a");
  (void)registry.acquire("b");  // budget exceeded → evicts "a"
  EXPECT_EQ(count_events(*hub, EventType::kRegistryEvict, "byte-budget"), 1u);
  EXPECT_EQ(registry.stats().evictions, 1u);
}

TEST_F(ObsServingTest, StatsAreAViewOverTheSharedHub) {
  const auto hub = obs::Telemetry::make();
  ServerConfig cfg;
  cfg.telemetry = hub;
  InferenceServer server(*pipeline_, cfg);
  const std::size_t n = queries_.size();
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < n; ++i) futures.push_back(server.submit(query(i)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.latency.count, n);

  // The exporter reads the SAME series stats() reads.
  const std::string prom = obs::to_prometheus(*hub);
  EXPECT_NE(prom.find("smore_requests_completed_total{plane=\"server\"} " +
                      std::to_string(n)),
            std::string::npos);
  EXPECT_NE(prom.find("smore_kernel_tier_info"), std::string::npos);
  EXPECT_NE(prom.find("smore_snapshot_version{plane=\"server\"}"),
            std::string::npos);
}

TEST_F(ObsServingTest, SpansCoverEndToEndLatency) {
  const auto hub = [&] {
    obs::TelemetryConfig tc;
    tc.trace.sample_every = 1;  // keep every span
    tc.trace.ring_capacity = 4096;
    return obs::Telemetry::make(tc);
  }();
  ServerConfig cfg;
  cfg.telemetry = hub;
  InferenceServer server(*pipeline_, cfg);
  const std::size_t n = queries_.size();
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < n; ++i) futures.push_back(server.submit(query(i)));
  double max_latency = 0.0;
  for (auto& f : futures) {
    max_latency = std::max(max_latency, f.get().latency_seconds);
  }
  server.shutdown();

  const std::vector<obs::TraceSpan> spans = hub->tracer().recent();
  ASSERT_EQ(spans.size(), n);  // sample_every=1, no wrap
  for (const obs::TraceSpan& s : spans) {
    // The phases are cut from the same four timestamps, so their sum IS the
    // total (≥99% allows only ns-cast rounding), and totals are bounded by
    // the slowest observed end-to-end latency.
    const std::uint64_t phase_sum =
        s.queue_ns + s.encode_ns + s.predict_ns + s.fulfill_ns;
    EXPECT_EQ(phase_sum, s.total_ns);
    EXPECT_GE(static_cast<double>(phase_sum),
              0.99 * static_cast<double>(s.total_ns));
    EXPECT_LE(static_cast<double>(s.total_ns) * 1e-9, max_latency + 1e-3);
    EXPECT_GT(s.predict_ns, 0u);  // predict can never be free
  }
}

TEST_F(ObsServingTest, RouterSharesOneHubWithRegistryAndExports) {
  const auto hub = obs::Telemetry::make();
  const std::string bytes = artifact();
  RegistryConfig rc;
  rc.telemetry = hub;
  auto registry = std::make_shared<ModelRegistry>(
      [bytes](const std::string&) {
        std::istringstream in(bytes, std::ios::binary);
        return ModelSnapshot::from_artifact(in, 1);
      },
      rc);
  MultiTenantConfig mc;
  mc.num_shards = 2;
  mc.telemetry = hub;
  MultiTenantServer server(registry, mc);

  const std::size_t n = queries_.size();
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(server.submit(i % 2 == 0 ? "a" : "b", query(i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);

  const MultiTenantStats s = server.stats();
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.registry.loads, 2u);

  // One export surface shows the router AND the registry.
  const std::string prom = obs::to_prometheus(*hub);
  EXPECT_NE(prom.find("smore_requests_completed_total{plane=\"fleet\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("smore_registry_loads_total 2"), std::string::npos);
  EXPECT_NE(prom.find("smore_tenant_completed_total{tenant=\"a\"}"),
            std::string::npos);

  // tenant_stats() is a view over the same {tenant=...} series.
  const auto per_tenant = server.tenant_stats();
  ASSERT_EQ(per_tenant.size(), 2u);
  EXPECT_EQ(per_tenant[0].submitted + per_tenant[1].submitted, n);
  EXPECT_GT(per_tenant[0].latency.count(), 0u);
}

TEST_F(ObsServingTest, WriteTelemetryProducesParsableSnapshot) {
  const std::string bytes = artifact();
  auto registry = std::make_shared<ModelRegistry>(
      [bytes](const std::string&) {
        std::istringstream in(bytes, std::ios::binary);
        return ModelSnapshot::from_artifact(in, 1);
      });
  MultiTenantConfig mc;
  mc.telemetry = registry->telemetry();  // share the registry's private hub
  MultiTenantServer server(registry, mc);
  (void)server.submit("a", query(0)).get();

  const std::string path = ::testing::TempDir() + "smore_obs_snapshot.json";
  ASSERT_TRUE(server.write_telemetry(path));
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const std::optional<JsonValue> doc = JsonValue::parse(buffer.str(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->at("schema").as_string(), "smore.telemetry.v1");
  EXPECT_GT(doc->at("metrics").size(), 0u);
}

TEST_F(ObsServingTest, DisabledSwitchesKeepCountersButSkipDetail) {
  obs::TelemetryConfig tc;
  tc.histograms = false;
  tc.traces = false;
  tc.events = false;
  const auto hub = obs::Telemetry::make(tc);
  ServerConfig cfg;
  cfg.telemetry = hub;
  InferenceServer server(*pipeline_, cfg);
  std::vector<std::future<ServeResult>> futures;
  for (std::size_t i = 0; i < 8; ++i) futures.push_back(server.submit(query(i)));
  for (auto& f : futures) EXPECT_EQ(f.get().status, ServeStatus::kOk);

  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 8u);        // counters always on
  EXPECT_EQ(s.latency.count, 0u);    // histograms off → empty view
  EXPECT_EQ(hub->tracer().observed(), 0u);
  EXPECT_EQ(hub->events().emitted(), 0u);
}

}  // namespace
}  // namespace smore
