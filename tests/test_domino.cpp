// Unit tests for the DOMINO domain-generalization baseline: configuration
// invariants, pool-regeneration schedule, bias-driven dimension selection,
// and learning behaviour on skewed multi-domain data.

#include "hdc/domino.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

DominoConfig small_config() {
  DominoConfig cfg;
  cfg.active_dim = 64;
  cfg.total_dim = 256;
  cfg.regen_fraction = 0.25;
  cfg.inner_epochs = 3;
  return cfg;
}

TEST(Domino, RejectsBadConfig) {
  DominoConfig cfg = small_config();
  cfg.active_dim = 0;
  EXPECT_THROW(DominoClassifier(2, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.active_dim = 512;  // > total
  EXPECT_THROW(DominoClassifier(2, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.regen_fraction = 0.0;
  EXPECT_THROW(DominoClassifier(2, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.regen_fraction = 1.0;
  EXPECT_THROW(DominoClassifier(2, cfg), std::invalid_argument);
}

TEST(Domino, PlannedRoundsCoverPool) {
  const DominoConfig cfg = small_config();
  DominoClassifier model(2, cfg);
  // (256-64)/16 = 12 regeneration rounds + 1 final retrain.
  EXPECT_EQ(model.planned_rounds(), 13);
}

TEST(Domino, FitRequiresPoolWidth) {
  DominoClassifier model(2, small_config());
  const HvDataset narrow = separable_hv_dataset(2, 2, 10, 128);  // < total_dim
  EXPECT_THROW(model.fit(narrow), std::invalid_argument);
}

TEST(Domino, ConsumesExactlyTotalDim) {
  DominoClassifier model(2, small_config());
  const HvDataset data = separable_hv_dataset(2, 2, 20, 256, 0.4, 0.5);
  model.fit(data);
  EXPECT_EQ(model.consumed_dims(), 256u);  // fairness budget exhausted
}

TEST(Domino, ActiveDimsAreDistinctAndInPool) {
  DominoClassifier model(3, small_config());
  const HvDataset data = separable_hv_dataset(3, 2, 15, 256, 0.4, 0.5);
  model.fit(data);
  const auto& active = model.active_dims();
  ASSERT_EQ(active.size(), 64u);
  const std::set<std::size_t> uniq(active.begin(), active.end());
  EXPECT_EQ(uniq.size(), active.size());
  EXPECT_LT(*std::max_element(active.begin(), active.end()), 256u);
}

TEST(Domino, LearnsSeparableMultiDomainData) {
  DominoClassifier model(3, small_config());
  const HvDataset data = separable_hv_dataset(3, 3, 25, 256, 0.4, 0.4);
  const auto history = model.fit(data);
  EXPECT_EQ(static_cast<int>(history.size()), model.planned_rounds());
  EXPECT_GT(model.accuracy(data), 0.85);
}

TEST(Domino, PredictRejectsNarrowRow) {
  DominoClassifier model(2, small_config());
  const HvDataset data = separable_hv_dataset(2, 2, 10, 256, 0.4, 0.3);
  model.fit(data);
  std::vector<float> narrow(64, 0.0f);
  EXPECT_THROW((void)model.predict(narrow), std::invalid_argument);
}

TEST(Domino, GeneralizesToHeldOutDomainBetterThanChance) {
  // Train on domains 0-1 of a skewed 3-domain set, test on domain 2: the
  // bias-dimension regeneration should keep accuracy clearly above chance.
  const HvDataset all = separable_hv_dataset(4, 3, 30, 256, 0.35, 0.8);
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (all.domain(i) == 2 ? test_idx : train_idx).push_back(i);
  }
  DominoClassifier model(4, small_config());
  model.fit(all.select(train_idx));
  const double acc = model.accuracy(all.select(test_idx));
  EXPECT_GT(acc, 0.5);  // chance = 0.25
}

TEST(Domino, FinalModelUsesActiveDimOnly) {
  // Inference touches only d* dims: verify by zeroing every inactive pool
  // dimension of a query — the prediction must not change.
  DominoClassifier model(3, small_config());
  const HvDataset data = separable_hv_dataset(3, 2, 20, 256, 0.4, 0.4);
  model.fit(data);
  const auto& active = model.active_dims();
  std::vector<float> query(data.row(0).begin(), data.row(0).end());
  const int before = model.predict(query);
  std::set<std::size_t> active_set(active.begin(), active.end());
  for (std::size_t j = 0; j < query.size(); ++j) {
    if (active_set.find(j) == active_set.end()) query[j] = 0.0f;
  }
  EXPECT_EQ(model.predict(query), before);
}

}  // namespace
}  // namespace smore
