// Unit tests for the low-level HDC kernels (ops.hpp) and the Hypervector
// class, pinning the Sec 3.1 algebra: bundling membership, binding
// near-orthogonality and reversibility, permutation orthogonality.

#include "hdc/hypervector.hpp"
#include "hdc/ops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace smore {
namespace {

constexpr std::size_t kDim = 4096;

TEST(Ops, DotAndNorm) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(ops::dot(a, b, 3), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(ops::nrm2(a, 3), std::sqrt(14.0));
}

TEST(Ops, AxpyAccumulates) {
  const float x[] = {1.0f, 2.0f};
  float y[] = {10.0f, 20.0f};
  ops::axpy(0.5f, x, y, 2);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[1], 21.0f);
}

TEST(Ops, RotateMovesLastToFront) {
  // The paper's ρ: single shift moves the final element to position 0.
  const float src[] = {1.0f, 2.0f, 3.0f, 4.0f};
  float dst[4];
  ops::rotate(src, 4, 1, dst);
  EXPECT_FLOAT_EQ(dst[0], 4.0f);
  EXPECT_FLOAT_EQ(dst[1], 1.0f);
  EXPECT_FLOAT_EQ(dst[2], 2.0f);
  EXPECT_FLOAT_EQ(dst[3], 3.0f);
}

TEST(Ops, RotateByZeroCopies) {
  const float src[] = {1.0f, 2.0f, 3.0f};
  float dst[3];
  ops::rotate(src, 3, 0, dst);
  EXPECT_FLOAT_EQ(dst[0], 1.0f);
  EXPECT_FLOAT_EQ(dst[2], 3.0f);
}

TEST(Ops, RotateFullCycleIsIdentity) {
  const float src[] = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  float dst[5];
  ops::rotate(src, 5, 5, dst);
  for (int i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(dst[i], src[i]);
}

TEST(Ops, HadamardRotatedMatchesExplicitRotation) {
  Rng rng(1);
  std::vector<float> src(64);
  std::vector<float> acc(64);
  for (auto& v : src) v = rng.uniform_f(-2.0f, 2.0f);
  for (auto& v : acc) v = rng.uniform_f(-2.0f, 2.0f);

  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{17}}) {
    std::vector<float> rotated(64);
    ops::rotate(src.data(), 64, k, rotated.data());
    std::vector<float> expected = acc;
    ops::hadamard_inplace(rotated.data(), expected.data(), 64);

    std::vector<float> actual = acc;
    ops::hadamard_rotated(src.data(), 64, k, actual.data());
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_FLOAT_EQ(actual[i], expected[i]) << "k=" << k << " i=" << i;
    }
  }
}

TEST(Ops, CosineOfZeroVectorIsZero) {
  const float z[] = {0.0f, 0.0f};
  const float a[] = {1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(ops::cosine(z, a, 2), 0.0);
}

TEST(Ops, CosineOfSelfIsOne) {
  const float a[] = {1.0f, -2.0f, 3.0f};
  EXPECT_NEAR(ops::cosine(a, a, 3), 1.0, 1e-12);
}

TEST(Ops, LerpEndpointsAndMidpoint) {
  const float a[] = {0.0f, 10.0f};
  const float b[] = {1.0f, 20.0f};
  float out[2];
  ops::lerp(a, b, 0.0f, out, 2);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  ops::lerp(a, b, 1.0f, out, 2);
  EXPECT_FLOAT_EQ(out[1], 20.0f);
  ops::lerp(a, b, 0.5f, out, 2);
  EXPECT_FLOAT_EQ(out[1], 15.0f);
}

// ----- Hypervector algebra (Sec 3.1 properties) -----

TEST(Hypervector, RandomBipolarNearlyOrthogonal) {
  Rng rng(2);
  const auto a = Hypervector::random_bipolar(kDim, rng);
  const auto b = Hypervector::random_bipolar(kDim, rng);
  EXPECT_NEAR(cosine_similarity(a, b), 0.0, 0.08);
}

TEST(Hypervector, BundleRemembersMembers) {
  // δ(H_bundle, H1) >> 0 while δ(H_bundle, H3) ≈ 0 for H3 not in the bundle.
  Rng rng(3);
  const auto h1 = Hypervector::random_bipolar(kDim, rng);
  const auto h2 = Hypervector::random_bipolar(kDim, rng);
  const auto h3 = Hypervector::random_bipolar(kDim, rng);
  const Hypervector bundled = h1 + h2;
  EXPECT_GT(cosine_similarity(bundled, h1), 0.5);
  EXPECT_GT(cosine_similarity(bundled, h2), 0.5);
  EXPECT_NEAR(cosine_similarity(bundled, h3), 0.0, 0.08);
}

TEST(Hypervector, BindNearlyOrthogonalToOperands) {
  Rng rng(4);
  const auto h1 = Hypervector::random_bipolar(kDim, rng);
  const auto h2 = Hypervector::random_bipolar(kDim, rng);
  const Hypervector bound = bind(h1, h2);
  EXPECT_NEAR(cosine_similarity(bound, h1), 0.0, 0.08);
  EXPECT_NEAR(cosine_similarity(bound, h2), 0.0, 0.08);
}

TEST(Hypervector, BindIsReversible) {
  // H_bind * H1 == H2 for bipolar H1 (self-inverse binding).
  Rng rng(5);
  const auto h1 = Hypervector::random_bipolar(kDim, rng);
  const auto h2 = Hypervector::random_bipolar(kDim, rng);
  const Hypervector recovered = bind(bind(h1, h2), h1);
  EXPECT_NEAR(cosine_similarity(recovered, h2), 1.0, 1e-6);
}

TEST(Hypervector, PermutationNearlyOrthogonal) {
  Rng rng(6);
  const auto h = Hypervector::random_bipolar(kDim, rng);
  EXPECT_NEAR(cosine_similarity(permute(h), h), 0.0, 0.08);
}

TEST(Hypervector, PermutationComposesAndInverts) {
  Rng rng(7);
  const auto h = Hypervector::random_bipolar(kDim, rng);
  const auto twice = permute(permute(h));
  EXPECT_EQ(twice, permute(h, 2));
  EXPECT_EQ(permute(h, kDim), h);  // full cycle
}

TEST(Hypervector, DimensionMismatchThrows) {
  Hypervector a(8);
  Hypervector b(16);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
  EXPECT_THROW(cosine_similarity(a, b), std::invalid_argument);
}

TEST(Hypervector, NormalizeMakesUnitNorm) {
  Rng rng(8);
  auto h = Hypervector::random_bipolar(256, rng);
  h *= 3.7f;
  h.normalize();
  EXPECT_NEAR(h.norm(), 1.0, 1e-6);
}

TEST(Hypervector, NormalizeZeroStaysZero) {
  Hypervector z(16);
  z.normalize();
  EXPECT_DOUBLE_EQ(z.norm(), 0.0);
}

TEST(Hypervector, AddScaled) {
  Hypervector a(4);
  Hypervector b(4);
  for (std::size_t i = 0; i < 4; ++i) b[i] = static_cast<float>(i);
  a.add_scaled(b, 2.0f);
  EXPECT_FLOAT_EQ(a[3], 6.0f);
}

TEST(Hypervector, BundleSpanThrowsOnEmpty) {
  std::vector<Hypervector> empty;
  EXPECT_THROW(bundle(empty), std::invalid_argument);
}

TEST(Hypervector, BundleSpanSumsAll) {
  std::vector<Hypervector> hs(3, Hypervector(2));
  hs[0][0] = 1.0f;
  hs[1][0] = 2.0f;
  hs[2][1] = 5.0f;
  const Hypervector sum = bundle(hs);
  EXPECT_FLOAT_EQ(sum[0], 3.0f);
  EXPECT_FLOAT_EQ(sum[1], 5.0f);
}

TEST(Hypervector, ScalarMultiply) {
  Hypervector a(2);
  a[0] = 1.0f;
  a[1] = -2.0f;
  const Hypervector b = a * 2.0f;
  EXPECT_FLOAT_EQ(b[0], 2.0f);
  EXPECT_FLOAT_EQ(b[1], -4.0f);
}

}  // namespace
}  // namespace smore
