// Unit tests for losses, optimizers, and end-to-end Sequential training.

#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace smore::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits = Tensor::matrix(2, 3);
  logits.at(0, 0) = 1.0f;
  logits.at(0, 1) = 2.0f;
  logits.at(0, 2) = 3.0f;
  logits.at(1, 0) = -10.0f;
  logits.at(1, 2) = 10.0f;
  const Tensor p = softmax(logits);
  for (std::size_t b = 0; b < 2; ++b) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 3; ++c) sum += p.at(b, c);
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
  EXPECT_GT(p.at(1, 2), 0.99f);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits = Tensor::matrix(1, 2);
  logits.at(0, 0) = 1000.0f;
  logits.at(0, 1) = 999.0f;
  const Tensor p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0) + p.at(0, 1), 1.0, 1e-6);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits = Tensor::matrix(1, 3);
  logits.at(0, 1) = 50.0f;
  const LossResult r = cross_entropy(logits, {1});
  EXPECT_NEAR(r.value, 0.0, 1e-6);
}

TEST(CrossEntropy, UniformPredictionLogC) {
  const Tensor logits = Tensor::matrix(1, 4);  // all-zero -> uniform
  const LossResult r = cross_entropy(logits, {2});
  EXPECT_NEAR(r.value, std::log(4.0), 1e-6);
}

TEST(CrossEntropy, GradientIsSoftmaxMinusOneHot) {
  Tensor logits = Tensor::matrix(1, 3);
  logits.at(0, 0) = 0.5f;
  logits.at(0, 1) = -0.3f;
  const Tensor p = softmax(logits);
  const LossResult r = cross_entropy(logits, {0});
  EXPECT_NEAR(r.grad.at(0, 0), p.at(0, 0) - 1.0f, 1e-6);
  EXPECT_NEAR(r.grad.at(0, 1), p.at(0, 1), 1e-6);
}

TEST(CrossEntropy, ValidatesLabels) {
  const Tensor logits = Tensor::matrix(1, 3);
  EXPECT_THROW(cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {-1}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(EntropyLoss, UniformIsMaximal) {
  const Tensor uniform = Tensor::matrix(1, 4);
  Tensor peaked = Tensor::matrix(1, 4);
  peaked.at(0, 0) = 20.0f;
  EXPECT_NEAR(entropy_loss(uniform).value, std::log(4.0), 1e-6);
  EXPECT_LT(entropy_loss(peaked).value, 0.01);
}

TEST(EntropyLoss, GradientMatchesNumerical) {
  Rng rng(3);
  Tensor logits = Tensor::matrix(2, 3);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits[i] = rng.uniform_f(-1.0f, 1.0f);
  }
  const LossResult r = entropy_loss(logits);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const double hi = entropy_loss(logits).value * 2.0;  // value is mean
    logits[i] = saved - eps;
    const double lo = entropy_loss(logits).value * 2.0;
    logits[i] = saved;
    const double numeric = (hi - lo) / (2.0 * eps) / 2.0;
    EXPECT_NEAR(r.grad[i], numeric, 5e-3) << "logit " << i;
  }
}

TEST(LogitsAccuracy, CountsArgmaxHits) {
  Tensor logits = Tensor::matrix(2, 2);
  logits.at(0, 1) = 1.0f;  // pred 1
  logits.at(1, 0) = 1.0f;  // pred 0
  EXPECT_DOUBLE_EQ(logits_accuracy(logits, {1, 1}), 0.5);
}

TEST(Sgd, DescendsQuadratic) {
  // minimize f(w) = 0.5*(w-3)^2 by feeding grad = (w-3).
  Param w({1});
  Sgd opt({&w}, 0.1f, 0.0f);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = w.value[0] - 3.0f;
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Param w({1});
    w.value[0] = 10.0f;
    Sgd opt({&w}, 0.01f, momentum);
    for (int i = 0; i < 50; ++i) {
      w.grad[0] = w.value[0];
      opt.step();
    }
    return std::abs(w.value[0]);
  };
  EXPECT_LT(run(0.9f), run(0.0f));
}

TEST(Sgd, StepClearsGradient) {
  Param w({2});
  Sgd opt({&w}, 0.1f);
  w.grad.fill(1.0f);
  opt.step();
  EXPECT_FLOAT_EQ(w.grad[0], 0.0f);
}

TEST(Sgd, RejectsNonPositiveLr) {
  Param w({1});
  EXPECT_THROW(Sgd({&w}, 0.0f), std::invalid_argument);
}

TEST(Adam, DescendsQuadratic) {
  Param w({1});
  w.value[0] = -4.0f;
  Adam opt({&w}, 0.05f);
  for (int i = 0; i < 500; ++i) {
    w.grad[0] = w.value[0] - 1.0f;
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 1.0f, 1e-2);
}

TEST(Adam, HandlesSparseDirections) {
  // Adam's per-coordinate scaling should move a rarely-updated coordinate.
  Param w({2});
  Adam opt({&w}, 0.01f);
  for (int i = 0; i < 1000; ++i) {
    w.grad[0] = w.value[0] - 1.0f;
    w.grad[1] = (i % 10 == 0) ? (w.value[1] - 1.0f) : 0.0f;
    opt.step();
  }
  EXPECT_NEAR(w.value[0], 1.0f, 0.1f);
  EXPECT_GT(w.value[1], 0.1f);
}

TEST(Sequential, LearnsXor) {
  // Classic nonlinear sanity check: 2-16-2 MLP must fit XOR exactly.
  Rng rng(5);
  Sequential net;
  net.emplace<Dense>(2, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 2, rng);

  Tensor x = Tensor::matrix(4, 2);
  x.at(0, 0) = 0.0f; x.at(0, 1) = 0.0f;
  x.at(1, 0) = 0.0f; x.at(1, 1) = 1.0f;
  x.at(2, 0) = 1.0f; x.at(2, 1) = 0.0f;
  x.at(3, 0) = 1.0f; x.at(3, 1) = 1.0f;
  const std::vector<int> y{0, 1, 1, 0};

  Adam opt(net.params(), 0.01f);
  for (int epoch = 0; epoch < 500; ++epoch) {
    const Tensor logits = net.forward(x, true);
    const LossResult loss = cross_entropy(logits, y);
    net.backward(loss.grad);
    opt.step();
  }
  EXPECT_DOUBLE_EQ(logits_accuracy(net.forward(x, false), y), 1.0);
}

TEST(Sequential, ParamCollectionCoversAllLayers) {
  Rng rng(6);
  Sequential net;
  net.emplace<Dense>(4, 8, rng);       // W + b
  net.emplace<BatchNorm>(8);           // γ + β
  net.emplace<ReLU>();                 // none
  net.emplace<Dense>(8, 2, rng);       // W + b
  EXPECT_EQ(net.params().size(), 6u);
  EXPECT_EQ(net.param_count(), 4u * 8 + 8 + 8 + 8 + 8u * 2 + 2);
}

TEST(Sequential, BatchNormLayerDiscovery) {
  Rng rng(7);
  Sequential net;
  net.emplace<Dense>(2, 4, rng);
  net.emplace<BatchNorm>(4);
  net.emplace<ReLU>();
  net.emplace<BatchNorm>(4);
  EXPECT_EQ(net.batch_norm_layers().size(), 2u);
}

}  // namespace
}  // namespace smore::nn
