// Unit tests for the OnlineHD-style random-projection encoder (BaselineHD's
// pipeline): determinism, bounded features, shape discipline, similarity
// behaviour, and its characteristic *sensitivity to offset shift* — the
// fragility that motivates the paper's comparison.

#include "hdc/projection_encoder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstddef>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "data/synthetic.hpp"
#include "hdc/hypervector.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

Window make_window(std::size_t channels, std::size_t steps, float base) {
  Window w(channels, steps);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t t = 0; t < steps; ++t) {
      w.set(c, t,
            base + std::sin(0.3f * static_cast<float>(t) +
                            static_cast<float>(c)));
    }
  }
  w.set_label(1);
  w.set_domain(2);
  return w;
}

ProjectionEncoderConfig small_config() {
  ProjectionEncoderConfig cfg;
  cfg.dim = 1024;
  cfg.seed = 5;
  return cfg;
}

TEST(ProjectionEncoder, RejectsZeroDim) {
  ProjectionEncoderConfig cfg;
  cfg.dim = 0;
  EXPECT_THROW(ProjectionEncoder{cfg}, std::invalid_argument);
}

TEST(ProjectionEncoder, FeaturesAreCosineBounded) {
  const ProjectionEncoder enc(small_config());
  const auto hv = enc.encode(make_window(2, 32, 0.0f));
  EXPECT_EQ(hv.dim(), 1024u);
  for (std::size_t j = 0; j < hv.dim(); ++j) {
    EXPECT_GE(hv[j], -1.0f);
    EXPECT_LE(hv[j], 1.0f);
  }
}

TEST(ProjectionEncoder, Deterministic) {
  const ProjectionEncoder a(small_config());
  const ProjectionEncoder b(small_config());
  const Window w = make_window(2, 32, 0.0f);
  EXPECT_EQ(a.encode(w), a.encode(w));
  EXPECT_EQ(a.encode(w), b.encode(w));
}

TEST(ProjectionEncoder, SeedChangesProjection) {
  ProjectionEncoderConfig cfg = small_config();
  const ProjectionEncoder a(cfg);
  cfg.seed = 6;
  const ProjectionEncoder b(cfg);
  const Window w = make_window(2, 32, 0.0f);
  EXPECT_NE(a.encode(w), b.encode(w));
}

TEST(ProjectionEncoder, ShapeDiscipline) {
  const ProjectionEncoder enc(small_config());
  (void)enc.encode(make_window(2, 32, 0.0f));
  EXPECT_THROW((void)enc.encode(make_window(3, 32, 0.0f)),
               std::invalid_argument);
  EXPECT_THROW((void)enc.encode(Window{}), std::invalid_argument);
}

TEST(ProjectionEncoder, SimilarInputsSimilarCodes) {
  const ProjectionEncoder enc(small_config());
  const auto base = enc.encode(make_window(2, 32, 0.0f));
  Window nearby = make_window(2, 32, 0.0f);
  nearby.set(0, 5, nearby.at(0, 5) + 0.05f);
  Window far = make_window(2, 32, 0.0f);
  for (std::size_t t = 0; t < 32; ++t) {
    far.set(0, t, std::cos(1.7f * static_cast<float>(t)));
  }
  EXPECT_GT(cosine_similarity(base, enc.encode(nearby)),
            cosine_similarity(base, enc.encode(far)));
}

TEST(ProjectionEncoder, OffsetShiftMovesCodes) {
  // The defining weakness vs the Sec 3.3 encoder: a constant input offset
  // (per-subject sensor bias) substantially changes the code. The temporal
  // encoder is exactly invariant to this.
  const ProjectionEncoder enc(small_config());
  const auto a = enc.encode(make_window(2, 32, 0.0f));
  const auto b = enc.encode(make_window(2, 32, 1.5f));
  EXPECT_LT(cosine_similarity(a, b), 0.7);
}

TEST(ProjectionEncoder, EncodeDatasetAlignsMetadata) {
  const SyntheticSpec spec = tiny_spec(2, 2, 2, 16, 8);
  const WindowDataset raw = generate_dataset(spec);
  const ProjectionEncoder enc(small_config());
  const HvDataset encoded = enc.encode_dataset(raw);
  ASSERT_EQ(encoded.size(), raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(encoded.label(i), raw[i].label());
    EXPECT_EQ(encoded.domain(i), raw[i].domain());
  }
  const auto direct = enc.encode(raw[0]);
  for (std::size_t j = 0; j < direct.dim(); ++j) {
    EXPECT_FLOAT_EQ(encoded.row(0)[j], direct[j]);
  }
}

TEST(ProjectionEncoder, EmptyDatasetYieldsEmpty) {
  const ProjectionEncoder enc(small_config());
  const HvDataset encoded = enc.encode_dataset(WindowDataset("e", 2, 8));
  EXPECT_TRUE(encoded.empty());
  EXPECT_EQ(encoded.dim(), 1024u);
}

TEST(HvDatasetCentering, MeanAndSubtract) {
  HvDataset d(2);
  const std::vector<float> r0{1.0f, 4.0f};
  const std::vector<float> r1{3.0f, 0.0f};
  d.add(r0, 0, 0);
  d.add(r1, 1, 0);
  const auto mean = d.mean_row();
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 2.0f);
  d.subtract(mean);
  EXPECT_FLOAT_EQ(d.row(0)[0], -1.0f);
  EXPECT_FLOAT_EQ(d.row(1)[1], -2.0f);
  const std::vector<float> bad(3, 0.0f);
  EXPECT_THROW(d.subtract(bad), std::invalid_argument);
}

TEST(ProjectionEncoder, FootprintSafeDuringConcurrentFirstEncode) {
  // Regression: footprint_bytes() used to read weights_t_/bias_ while a
  // concurrent first encode was still materializing them inside call_once.
  // It now keys off the release-published feature count: 0 before the
  // projection is fully built, the exact (F + 1) · d footprint afterwards —
  // never a torn intermediate, from any thread, at any time.
  const ProjectionEncoderConfig cfg = small_config();
  const std::size_t features = 2 * 32;
  const std::size_t full = (features + 1) * cfg.dim * sizeof(float);
  for (int round = 0; round < 8; ++round) {
    const ProjectionEncoder enc(cfg);
    EXPECT_EQ(enc.footprint_bytes(), 0u);
    std::atomic<bool> stop{false};
    std::atomic<bool> bad{false};
    std::thread probe([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t fp = enc.footprint_bytes();
        if (fp != 0 && fp != full) bad.store(true, std::memory_order_relaxed);
      }
    });
    std::vector<std::thread> encoders;
    for (int t = 0; t < 4; ++t) {
      encoders.emplace_back(
          [&] { (void)enc.encode(make_window(2, 32, 0.0f)); });
    }
    for (auto& t : encoders) t.join();
    stop.store(true, std::memory_order_relaxed);
    probe.join();
    EXPECT_FALSE(bad.load());
    EXPECT_EQ(enc.footprint_bytes(), full);
  }
}

TEST(ProjectionEncoder, DeterministicReconstructionFromSerializedConfig) {
  // The projection matrix is lazily drawn from the seed, so an encoder
  // rebuilt from its serialized record must produce bit-identical batch
  // encodings at any thread count.
  ProjectionEncoderConfig cfg;
  cfg.dim = 512;
  cfg.seed = 0xabcd;
  const ProjectionEncoder original(cfg);

  std::stringstream buffer;
  original.save(buffer);
  const std::unique_ptr<Encoder> rebuilt = load_encoder(buffer);
  const auto* typed = dynamic_cast<const ProjectionEncoder*>(rebuilt.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->config().dim, cfg.dim);
  EXPECT_EQ(typed->config().seed, cfg.seed);

  const WindowDataset windows = generate_dataset(tiny_spec());
  HvMatrix ref;
  original.encode_batch(windows, ref, /*parallel=*/false);
  for (const bool parallel : {false, true}) {
    HvMatrix out;
    rebuilt->encode_batch(windows, out, parallel);
    ASSERT_EQ(out.rows(), ref.rows());
    for (std::size_t i = 0; i < ref.rows(); ++i) {
      const auto a = ref.row(i);
      const auto b = out.row(i);
      for (std::size_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a[j], b[j]) << "row " << i << " coord " << j;
      }
    }
  }
}

}  // namespace
}  // namespace smore
