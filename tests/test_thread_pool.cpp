// Unit tests for the thread pool and parallel_for wrapper.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace smore {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, SingleIteration) {
  ThreadPool pool(2);
  int value = 0;
  pool.parallel_for(1, [&](std::size_t i) { value = static_cast<int>(i) + 41; });
  EXPECT_EQ(value, 41);
}

TEST(ThreadPool, ResultsIndependentOfThreadCount) {
  // Deterministic partitioning: out[i] depends only on i.
  std::vector<double> out1(1000);
  std::vector<double> out4(1000);
  {
    ThreadPool pool(1);
    pool.parallel_for(out1.size(),
                      [&](std::size_t i) { out1[i] = static_cast<double>(i) * i; });
  }
  {
    ThreadPool pool(4);
    pool.parallel_for(out4.size(),
                      [&](std::size_t i) { out4[i] = static_cast<double>(i) * i; });
  }
  EXPECT_EQ(out1, out4);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 10 * (99 * 100 / 2));
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ParallelFor, FreeFunctionCoversRange) {
  std::vector<int> hits(512, 0);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 512);
}

TEST(ThreadPool, BodyExceptionPropagatesToCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) {
                            throw std::runtime_error("injected failure");
                          }
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed batch.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 16);
}

}  // namespace
}  // namespace smore
