// Unit tests for the ItemMemory basis store.

#include "hdc/item_memory.hpp"

#include <gtest/gtest.h>

#include "hdc/hypervector.hpp"

namespace smore {
namespace {

TEST(ItemMemory, RejectsZeroDim) {
  EXPECT_THROW(ItemMemory(0, 1), std::invalid_argument);
}

TEST(ItemMemory, VectorsAreBipolar) {
  ItemMemory mem(512, 7);
  const auto& sig = mem.signature(0);
  for (std::size_t i = 0; i < sig.dim(); ++i) {
    EXPECT_TRUE(sig[i] == 1.0f || sig[i] == -1.0f);
  }
}

TEST(ItemMemory, DeterministicAcrossInstances) {
  ItemMemory a(256, 99);
  ItemMemory b(256, 99);
  EXPECT_EQ(a.signature(3), b.signature(3));
  EXPECT_EQ(a.base_low(3), b.base_low(3));
  EXPECT_EQ(a.base_high(3), b.base_high(3));
}

TEST(ItemMemory, DifferentSeedsDiffer) {
  ItemMemory a(256, 1);
  ItemMemory b(256, 2);
  EXPECT_NE(a.signature(0), b.signature(0));
}

TEST(ItemMemory, RolesAreIndependent) {
  // signature / base_low / base_high of the same sensor must be mutually
  // nearly orthogonal, otherwise spatial binding would alias value encoding.
  ItemMemory mem(4096, 5);
  EXPECT_NEAR(cosine_similarity(mem.signature(0), mem.base_low(0)), 0.0, 0.08);
  EXPECT_NEAR(cosine_similarity(mem.base_low(0), mem.base_high(0)), 0.0, 0.08);
  EXPECT_NEAR(cosine_similarity(mem.signature(0), mem.base_high(0)), 0.0, 0.08);
}

TEST(ItemMemory, SensorsAreIndependent) {
  ItemMemory mem(4096, 5);
  EXPECT_NEAR(cosine_similarity(mem.signature(0), mem.signature(1)), 0.0, 0.08);
  EXPECT_NEAR(cosine_similarity(mem.base_low(0), mem.base_low(1)), 0.0, 0.08);
}

TEST(ItemMemory, CachedReferenceStable) {
  ItemMemory mem(64, 5);
  const Hypervector& first = mem.signature(2);
  const Hypervector copy = first;
  (void)mem.signature(7);  // new generation must not invalidate values
  EXPECT_EQ(mem.signature(2), copy);
}

TEST(ItemMemory, PrefetchCoversSensors) {
  ItemMemory mem(64, 5);
  mem.prefetch(4);
  // After prefetch, lookups are cache hits; equality with fresh instance
  // proves prefetch generated identical content.
  ItemMemory fresh(64, 5);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(mem.signature(s), fresh.signature(s));
  }
}

TEST(ItemMemory, ReportsDimAndSeed) {
  ItemMemory mem(128, 77);
  EXPECT_EQ(mem.dim(), 128u);
  EXPECT_EQ(mem.seed(), 77u);
  EXPECT_EQ(mem.signature(0).dim(), 128u);
}

}  // namespace
}  // namespace smore
