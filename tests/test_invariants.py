#!/usr/bin/env python3
"""Self-test for tools/check_invariants.py (DESIGN.md §15).

Two halves, so a lint rule can never silently rot into a no-op:
  1. the live tree must pass (exit 0), and
  2. every seeded-violation fixture under tools/lint_fixtures/ must FAIL,
     with the expected rule id (from the fixture directory's leading letter)
     present in the linter's output.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINTER = REPO / "tools" / "check_invariants.py"
FIXTURES = REPO / "tools" / "lint_fixtures"


def run_linter(root: Path):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root)],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def main():
    failures = []

    code, output = run_linter(REPO)
    if code != 0:
        failures.append(f"live tree: expected clean, got exit {code}:\n"
                        f"{output}")

    fixtures = sorted(p for p in FIXTURES.iterdir() if p.is_dir())
    if len(fixtures) < 5:
        failures.append(f"expected >= 5 fixtures (one per rule), found "
                        f"{len(fixtures)}")
    seen_rules = set()
    for fixture in fixtures:
        expected_rule = f"INV-{fixture.name[0].upper()}"
        seen_rules.add(expected_rule)
        code, output = run_linter(fixture)
        if code == 0:
            failures.append(f"{fixture.name}: expected a violation, linter "
                            "was clean")
        elif expected_rule not in output:
            failures.append(f"{fixture.name}: expected {expected_rule} in "
                            f"output, got:\n{output}")
    missing = {"INV-A", "INV-B", "INV-C", "INV-D", "INV-E"} - seen_rules
    if missing:
        failures.append(f"rules with no fixture: {sorted(missing)}")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        return 1
    print(f"ok: live tree clean, {len(fixtures)} fixtures each rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
