// Serialization round-trip tests: OnlineHD models (covered in
// test_onlinehd), descriptor banks, the full SMORE model, the packed
// BinarySmoreModel, and the Pipeline artifact container — a deployed
// edge/serving model must reload bit-identically without retraining (the
// server boots snapshots from disk), and a corrupt artifact must be
// rejected without unbounded allocations.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "core/binary_smore.hpp"
#include "core/domain_descriptor.hpp"
#include "core/pipeline.hpp"
#include "core/smore.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(DescriptorSerialization, RoundTripPreservesEverything) {
  const HvDataset data = separable_hv_dataset(3, 4, 8, 128);
  const DomainDescriptorBank bank(data);
  std::stringstream buffer;
  bank.save(buffer);
  const DomainDescriptorBank loaded = DomainDescriptorBank::load(buffer);
  ASSERT_EQ(loaded.size(), bank.size());
  for (std::size_t k = 0; k < bank.size(); ++k) {
    EXPECT_EQ(loaded.domain_id(k), bank.domain_id(k));
    EXPECT_EQ(loaded.sample_count(k), bank.sample_count(k));
    EXPECT_EQ(loaded.descriptor(k), bank.descriptor(k));
  }
  // Similarities must be identical.
  const auto s1 = bank.similarities(data.row(0));
  const auto s2 = loaded.similarities(data.row(0));
  EXPECT_EQ(s1, s2);
}

TEST(DescriptorSerialization, EmptyBankRoundTrips) {
  DomainDescriptorBank bank;
  std::stringstream buffer;
  bank.save(buffer);
  EXPECT_EQ(DomainDescriptorBank::load(buffer).size(), 0u);
}

TEST(DescriptorSerialization, CorruptStreamThrows) {
  std::stringstream buffer;
  buffer.write("junk", 4);
  EXPECT_THROW(DomainDescriptorBank::load(buffer), std::runtime_error);
}

class SmoreSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = separable_hv_dataset(3, 3, 20, 256, 0.4, 0.5);
    SmoreConfig cfg;
    cfg.delta_star = 0.42;
    cfg.weight_mode = WeightMode::kSoftmax;
    model_ = std::make_unique<SmoreModel>(3, 256, cfg);
    model_->fit(data_);
  }

  HvDataset data_{256};
  std::unique_ptr<SmoreModel> model_;
};

TEST_F(SmoreSerializationTest, RoundTripPredictsIdentically) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.dim(), 256u);
  EXPECT_EQ(loaded.num_domains(), 3u);
  EXPECT_DOUBLE_EQ(loaded.config().delta_star, 0.42);
  EXPECT_EQ(loaded.config().weight_mode, WeightMode::kSoftmax);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const SmorePrediction a = model_->predict_detail(data_.row(i));
    const SmorePrediction b = loaded.predict_detail(data_.row(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.is_ood, b.is_ood);
    EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  }
}

TEST_F(SmoreSerializationTest, AccuracyPreserved) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_DOUBLE_EQ(loaded.accuracy(data_), model_->accuracy(data_));
}

TEST_F(SmoreSerializationTest, UntrainedSaveThrows) {
  SmoreModel fresh(2, 64);
  std::stringstream buffer;
  EXPECT_THROW(fresh.save(buffer), std::logic_error);
}

TEST_F(SmoreSerializationTest, BadMagicThrows) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXX", 16);
  EXPECT_THROW(SmoreModel::load(buffer), std::runtime_error);
}

TEST_F(SmoreSerializationTest, TruncatedPayloadThrows) {
  std::stringstream buffer;
  model_->save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(SmoreModel::load(truncated), std::runtime_error);
}

TEST_F(SmoreSerializationTest, BinaryModelRoundTripsBitIdentically) {
  const BinarySmoreModel packed(*model_);
  std::stringstream buffer;
  packed.save(buffer);
  const BinarySmoreModel loaded = BinarySmoreModel::load(buffer);
  EXPECT_EQ(loaded.num_classes(), packed.num_classes());
  EXPECT_EQ(loaded.dim(), packed.dim());
  EXPECT_EQ(loaded.num_domains(), packed.num_domains());
  EXPECT_DOUBLE_EQ(loaded.delta_star(), packed.delta_star());
  EXPECT_EQ(loaded.footprint_bytes(), packed.footprint_bytes());
  // Every packed word must survive: descriptors and class banks.
  const BitMatrix& d1 = packed.descriptor_bits();
  const BitMatrix& d2 = loaded.descriptor_bits();
  ASSERT_EQ(d1.rows(), d2.rows());
  for (std::size_t r = 0; r < d1.rows(); ++r) {
    for (std::size_t w = 0; w < d1.words_per_row(); ++w) {
      ASSERT_EQ(d1.row(r)[w], d2.row(r)[w]);
    }
  }
  const BitMatrix& c1 = packed.class_bank_bits();
  const BitMatrix& c2 = loaded.class_bank_bits();
  ASSERT_EQ(c1.rows(), c2.rows());
  for (std::size_t r = 0; r < c1.rows(); ++r) {
    for (std::size_t w = 0; w < c1.words_per_row(); ++w) {
      ASSERT_EQ(c1.row(r)[w], c2.row(r)[w]);
    }
  }
  // And therefore predictions are identical.
  const std::vector<int> a = packed.predict_batch(data_.view());
  const std::vector<int> b = loaded.predict_batch(data_.view());
  EXPECT_EQ(a, b);
}

TEST_F(SmoreSerializationTest, BinaryModelCorruptStreamThrows) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXX", 16);
  EXPECT_THROW(BinarySmoreModel::load(buffer), std::runtime_error);
}

TEST_F(SmoreSerializationTest, BinaryModelTruncatedPayloadThrows) {
  const BinarySmoreModel packed(*model_);
  std::stringstream buffer;
  packed.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(BinarySmoreModel::load(truncated), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Pipeline artifact container (DESIGN.md §10): header + encoder section +
// model section + optional packed section.

class PipelineSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    windows_ = generate_dataset(testing::tiny_spec());
    EncoderConfig ec;
    ec.dim = 192;  // not a multiple of 64: exercises packed-row padding
    pipeline_ = std::make_unique<Pipeline>(
        std::make_shared<const MultiSensorEncoder>(ec),
        windows_.num_classes());
    pipeline_->fit(windows_);
    pipeline_->quantize();
    pipeline_->calibrate(windows_, 0.08);  // both scales, after quantize
  }

  [[nodiscard]] std::string artifact() const {
    std::stringstream buffer;
    pipeline_->save(buffer);
    return buffer.str();
  }

  /// Expect each per-query output of one batched Algorithm 1 pass to be
  /// bit-identical between two pipelines, on the given backend.
  void expect_identical(const Pipeline& a, const Pipeline& b,
                        ServeBackend backend) const {
    const SmoreBatchResult ra = a.predict_batch_full(windows_, backend);
    const SmoreBatchResult rb = b.predict_batch_full(windows_, backend);
    ASSERT_EQ(ra.labels.size(), rb.labels.size());
    EXPECT_EQ(ra.labels, rb.labels);
    EXPECT_EQ(ra.ood, rb.ood);
    EXPECT_EQ(ra.num_domains, rb.num_domains);
    for (std::size_t i = 0; i < ra.labels.size(); ++i) {
      EXPECT_DOUBLE_EQ(ra.max_similarity[i], rb.max_similarity[i]) << i;
    }
    for (std::size_t i = 0; i < ra.weights.size(); ++i) {
      EXPECT_DOUBLE_EQ(ra.weights[i], rb.weights[i]) << i;
    }
  }

  WindowDataset windows_;
  std::unique_ptr<Pipeline> pipeline_;
};

TEST_F(PipelineSerializationTest, RoundTripIsBitIdenticalOnBothBackends) {
  std::stringstream buffer;
  pipeline_->save(buffer);
  const Pipeline loaded = Pipeline::load(buffer);
  EXPECT_EQ(loaded.dim(), pipeline_->dim());
  EXPECT_EQ(loaded.num_classes(), pipeline_->num_classes());
  EXPECT_EQ(loaded.num_domains(), pipeline_->num_domains());
  ASSERT_TRUE(loaded.quantized());
  EXPECT_DOUBLE_EQ(loaded.model().config().delta_star,
                   pipeline_->model().config().delta_star);
  EXPECT_DOUBLE_EQ(loaded.packed()->delta_star(),
                   pipeline_->packed()->delta_star());
  expect_identical(*pipeline_, loaded, ServeBackend::kFloat);
  expect_identical(*pipeline_, loaded, ServeBackend::kPacked);
}

TEST_F(PipelineSerializationTest, UnquantizedArtifactHasNoPackedSection) {
  Pipeline plain(pipeline_->encoder_ptr(), windows_.num_classes());
  plain.fit(windows_);
  std::stringstream buffer;
  plain.save(buffer);
  const Pipeline loaded = Pipeline::load(buffer);
  EXPECT_FALSE(loaded.quantized());
  expect_identical(plain, loaded, ServeBackend::kFloat);
}

TEST_F(PipelineSerializationTest, TruncatedHeaderThrows) {
  const std::string full = artifact();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{3},
                                 std::size_t{7}, std::size_t{11}}) {
    std::stringstream truncated(full.substr(0, keep));
    EXPECT_THROW(Pipeline::load(truncated), std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST_F(PipelineSerializationTest, GarbledMagicThrows) {
  std::string full = artifact();
  full[0] = 'X';
  std::stringstream garbled(full);
  EXPECT_THROW(Pipeline::load(garbled), std::runtime_error);
}

TEST_F(PipelineSerializationTest, ImplausibleSectionCountThrows) {
  std::string full = artifact();
  const std::uint32_t bogus = 0x7fffffff;
  std::memcpy(full.data() + 8, &bogus, sizeof(bogus));  // section-count field
  std::stringstream garbled(full);
  EXPECT_THROW(Pipeline::load(garbled), std::runtime_error);
}

TEST_F(PipelineSerializationTest, OversizedSectionLengthIsRejected) {
  // Blow up the first section's declared length. The loader must reject via
  // the consumed-vs-declared check (or EOF) — it never allocates memory
  // proportional to the declared length, so a 2^60-byte claim is safe.
  std::string full = artifact();
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(full.data() + 12 + 4, &huge, sizeof(huge));
  std::stringstream garbled(full);
  EXPECT_THROW(Pipeline::load(garbled), std::runtime_error);
}

TEST_F(PipelineSerializationTest, UndersizedSectionLengthIsRejected) {
  std::string full = artifact();
  const std::uint64_t tiny = 1;
  std::memcpy(full.data() + 12 + 4, &tiny, sizeof(tiny));
  std::stringstream garbled(full);
  EXPECT_THROW(Pipeline::load(garbled), std::runtime_error);
}

TEST_F(PipelineSerializationTest, TruncatedPayloadThrows) {
  const std::string full = artifact();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(Pipeline::load(truncated), std::runtime_error);
}

TEST_F(PipelineSerializationTest, UnknownSectionIsSkipped) {
  // Forward compatibility: a newer writer may append sections this reader
  // does not know. Rebuild the artifact with an extra trailing section and
  // expect a clean load.
  std::string full = artifact();
  const std::uint32_t count = 4;
  std::memcpy(full.data() + 8, &count, sizeof(count));
  const std::uint32_t unknown_id = 99;
  const std::string payload = "future-section-payload";
  const std::uint64_t length = payload.size();
  full.append(reinterpret_cast<const char*>(&unknown_id), sizeof(unknown_id));
  full.append(reinterpret_cast<const char*>(&length), sizeof(length));
  full.append(payload);
  std::stringstream extended(full);
  const Pipeline loaded = Pipeline::load(extended);
  expect_identical(*pipeline_, loaded, ServeBackend::kPacked);
}

TEST_F(PipelineSerializationTest, UnderstatedSectionCountThrows) {
  // A quantized artifact's count corrupted from 3 to 2 must NOT load as a
  // float-only pipeline (silently dropping the packed section and its
  // calibration) — trailing bytes after the declared sections are rejected.
  std::string full = artifact();
  const std::uint32_t count = 2;
  std::memcpy(full.data() + 8, &count, sizeof(count));
  std::stringstream garbled(full);
  EXPECT_THROW(Pipeline::load(garbled), std::runtime_error);
}

TEST_F(PipelineSerializationTest, SaveRejectsAStaleQuantization) {
  // Mutating the float model after quantize() (here: absorbing a new
  // domain) must not persist an artifact whose two backends disagree.
  const HvDataset encoded = pipeline_->encode(windows_);
  pipeline_->model().absorb_labeled(encoded.row(0), encoded.label(0),
                                    /*domain_id=*/999);
  std::stringstream buffer;
  EXPECT_THROW(pipeline_->save(buffer), std::logic_error);
  pipeline_->quantize();               // refresh the weights…
  pipeline_->calibrate(windows_, 0.08);  // …and the discarded calibration
  std::stringstream ok;
  pipeline_->save(ok);
  EXPECT_TRUE(Pipeline::load(ok).quantized());
}

TEST_F(PipelineSerializationTest, MissingModelSectionThrows) {
  // Header claims one section (the encoder) and the stream ends there: a
  // structurally valid but incomplete artifact must be rejected.
  std::string full = artifact();
  // Keep header + first section only, patch count to 1.
  std::uint64_t first_len = 0;
  std::memcpy(&first_len, full.data() + 12 + 4, sizeof(first_len));
  std::string clipped = full.substr(0, 12 + 4 + 8 + first_len);
  const std::uint32_t count = 1;
  std::memcpy(clipped.data() + 8, &count, sizeof(count));
  std::stringstream incomplete(clipped);
  EXPECT_THROW(Pipeline::load(incomplete), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Pipeline::probe — the cheap artifact open (header + section table only).

TEST_F(PipelineSerializationTest, ProbeReportsSectionsAndSizes) {
  const std::string full = artifact();
  std::stringstream in(full);
  const ArtifactInfo info = Pipeline::probe(in);
  EXPECT_EQ(info.format_version, 1u);
  ASSERT_EQ(info.sections.size(), 3u);  // encoder, model, packed
  EXPECT_TRUE(info.has_section(1));
  EXPECT_TRUE(info.has_section(2));
  EXPECT_TRUE(info.has_packed());
  // Declared payloads + header (12 B) + 3 section headers (12 B each) must
  // tile the artifact exactly.
  EXPECT_EQ(info.payload_bytes + 12 + 3 * 12, full.size());
}

TEST_F(PipelineSerializationTest, ProbeUnquantizedArtifactHasNoPacked) {
  Pipeline plain(pipeline_->encoder_ptr(), windows_.num_classes());
  plain.fit(windows_);
  std::stringstream buffer;
  plain.save(buffer);
  const ArtifactInfo info = Pipeline::probe(buffer);
  EXPECT_EQ(info.sections.size(), 2u);
  EXPECT_FALSE(info.has_packed());
}

TEST_F(PipelineSerializationTest, ProbeRejectsWhatLoadRejects) {
  const std::string full = artifact();
  {
    std::string garbled = full;
    garbled[0] = 'X';  // magic
    std::stringstream in(garbled);
    EXPECT_THROW(Pipeline::probe(in), std::runtime_error);
  }
  {
    std::stringstream truncated(full.substr(0, full.size() / 2));
    EXPECT_THROW(Pipeline::probe(truncated), std::runtime_error);
  }
  {
    std::string garbled = full;
    const std::uint32_t count = 2;  // understate: trailing packed section
    std::memcpy(garbled.data() + 8, &count, sizeof(count));
    std::stringstream in(garbled);
    EXPECT_THROW(Pipeline::probe(in), std::runtime_error);
  }
}

}  // namespace
}  // namespace smore
