// Serialization round-trip tests: OnlineHD models (covered in
// test_onlinehd), descriptor banks, the full SMORE model, and the packed
// BinarySmoreModel — a deployed edge/serving model must reload
// bit-identically without retraining (the server boots snapshots from disk).

#include <gtest/gtest.h>

#include <sstream>

#include "core/binary_smore.hpp"
#include "core/domain_descriptor.hpp"
#include "core/smore.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(DescriptorSerialization, RoundTripPreservesEverything) {
  const HvDataset data = separable_hv_dataset(3, 4, 8, 128);
  const DomainDescriptorBank bank(data);
  std::stringstream buffer;
  bank.save(buffer);
  const DomainDescriptorBank loaded = DomainDescriptorBank::load(buffer);
  ASSERT_EQ(loaded.size(), bank.size());
  for (std::size_t k = 0; k < bank.size(); ++k) {
    EXPECT_EQ(loaded.domain_id(k), bank.domain_id(k));
    EXPECT_EQ(loaded.sample_count(k), bank.sample_count(k));
    EXPECT_EQ(loaded.descriptor(k), bank.descriptor(k));
  }
  // Similarities must be identical.
  const auto s1 = bank.similarities(data.row(0));
  const auto s2 = loaded.similarities(data.row(0));
  EXPECT_EQ(s1, s2);
}

TEST(DescriptorSerialization, EmptyBankRoundTrips) {
  DomainDescriptorBank bank;
  std::stringstream buffer;
  bank.save(buffer);
  EXPECT_EQ(DomainDescriptorBank::load(buffer).size(), 0u);
}

TEST(DescriptorSerialization, CorruptStreamThrows) {
  std::stringstream buffer;
  buffer.write("junk", 4);
  EXPECT_THROW(DomainDescriptorBank::load(buffer), std::runtime_error);
}

class SmoreSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = separable_hv_dataset(3, 3, 20, 256, 0.4, 0.5);
    SmoreConfig cfg;
    cfg.delta_star = 0.42;
    cfg.weight_mode = WeightMode::kSoftmax;
    model_ = std::make_unique<SmoreModel>(3, 256, cfg);
    model_->fit(data_);
  }

  HvDataset data_{256};
  std::unique_ptr<SmoreModel> model_;
};

TEST_F(SmoreSerializationTest, RoundTripPredictsIdentically) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.dim(), 256u);
  EXPECT_EQ(loaded.num_domains(), 3u);
  EXPECT_DOUBLE_EQ(loaded.config().delta_star, 0.42);
  EXPECT_EQ(loaded.config().weight_mode, WeightMode::kSoftmax);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const SmorePrediction a = model_->predict_detail(data_.row(i));
    const SmorePrediction b = loaded.predict_detail(data_.row(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.is_ood, b.is_ood);
    EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  }
}

TEST_F(SmoreSerializationTest, AccuracyPreserved) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_DOUBLE_EQ(loaded.accuracy(data_), model_->accuracy(data_));
}

TEST_F(SmoreSerializationTest, UntrainedSaveThrows) {
  SmoreModel fresh(2, 64);
  std::stringstream buffer;
  EXPECT_THROW(fresh.save(buffer), std::logic_error);
}

TEST_F(SmoreSerializationTest, BadMagicThrows) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXX", 16);
  EXPECT_THROW(SmoreModel::load(buffer), std::runtime_error);
}

TEST_F(SmoreSerializationTest, TruncatedPayloadThrows) {
  std::stringstream buffer;
  model_->save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(SmoreModel::load(truncated), std::runtime_error);
}

TEST_F(SmoreSerializationTest, BinaryModelRoundTripsBitIdentically) {
  const BinarySmoreModel packed(*model_);
  std::stringstream buffer;
  packed.save(buffer);
  const BinarySmoreModel loaded = BinarySmoreModel::load(buffer);
  EXPECT_EQ(loaded.num_classes(), packed.num_classes());
  EXPECT_EQ(loaded.dim(), packed.dim());
  EXPECT_EQ(loaded.num_domains(), packed.num_domains());
  EXPECT_DOUBLE_EQ(loaded.delta_star(), packed.delta_star());
  EXPECT_EQ(loaded.footprint_bytes(), packed.footprint_bytes());
  // Every packed word must survive: descriptors and class banks.
  const BitMatrix& d1 = packed.descriptor_bits();
  const BitMatrix& d2 = loaded.descriptor_bits();
  ASSERT_EQ(d1.rows(), d2.rows());
  for (std::size_t r = 0; r < d1.rows(); ++r) {
    for (std::size_t w = 0; w < d1.words_per_row(); ++w) {
      ASSERT_EQ(d1.row(r)[w], d2.row(r)[w]);
    }
  }
  const BitMatrix& c1 = packed.class_bank_bits();
  const BitMatrix& c2 = loaded.class_bank_bits();
  ASSERT_EQ(c1.rows(), c2.rows());
  for (std::size_t r = 0; r < c1.rows(); ++r) {
    for (std::size_t w = 0; w < c1.words_per_row(); ++w) {
      ASSERT_EQ(c1.row(r)[w], c2.row(r)[w]);
    }
  }
  // And therefore predictions are identical.
  const std::vector<int> a = packed.predict_batch(data_.view());
  const std::vector<int> b = loaded.predict_batch(data_.view());
  EXPECT_EQ(a, b);
}

TEST_F(SmoreSerializationTest, BinaryModelCorruptStreamThrows) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXX", 16);
  EXPECT_THROW(BinarySmoreModel::load(buffer), std::runtime_error);
}

TEST_F(SmoreSerializationTest, BinaryModelTruncatedPayloadThrows) {
  const BinarySmoreModel packed(*model_);
  std::stringstream buffer;
  packed.save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(BinarySmoreModel::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace smore
