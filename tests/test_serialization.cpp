// Serialization round-trip tests: OnlineHD models (covered in
// test_onlinehd), descriptor banks, and the full SMORE model — a deployed
// edge model must reload bit-identically without retraining.

#include <gtest/gtest.h>

#include <sstream>

#include "core/domain_descriptor.hpp"
#include "core/smore.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;

TEST(DescriptorSerialization, RoundTripPreservesEverything) {
  const HvDataset data = separable_hv_dataset(3, 4, 8, 128);
  const DomainDescriptorBank bank(data);
  std::stringstream buffer;
  bank.save(buffer);
  const DomainDescriptorBank loaded = DomainDescriptorBank::load(buffer);
  ASSERT_EQ(loaded.size(), bank.size());
  for (std::size_t k = 0; k < bank.size(); ++k) {
    EXPECT_EQ(loaded.domain_id(k), bank.domain_id(k));
    EXPECT_EQ(loaded.sample_count(k), bank.sample_count(k));
    EXPECT_EQ(loaded.descriptor(k), bank.descriptor(k));
  }
  // Similarities must be identical.
  const auto s1 = bank.similarities(data.row(0));
  const auto s2 = loaded.similarities(data.row(0));
  EXPECT_EQ(s1, s2);
}

TEST(DescriptorSerialization, EmptyBankRoundTrips) {
  DomainDescriptorBank bank;
  std::stringstream buffer;
  bank.save(buffer);
  EXPECT_EQ(DomainDescriptorBank::load(buffer).size(), 0u);
}

TEST(DescriptorSerialization, CorruptStreamThrows) {
  std::stringstream buffer;
  buffer.write("junk", 4);
  EXPECT_THROW(DomainDescriptorBank::load(buffer), std::runtime_error);
}

class SmoreSerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = separable_hv_dataset(3, 3, 20, 256, 0.4, 0.5);
    SmoreConfig cfg;
    cfg.delta_star = 0.42;
    cfg.weight_mode = WeightMode::kSoftmax;
    model_ = std::make_unique<SmoreModel>(3, 256, cfg);
    model_->fit(data_);
  }

  HvDataset data_{256};
  std::unique_ptr<SmoreModel> model_;
};

TEST_F(SmoreSerializationTest, RoundTripPredictsIdentically) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_EQ(loaded.num_classes(), 3);
  EXPECT_EQ(loaded.dim(), 256u);
  EXPECT_EQ(loaded.num_domains(), 3u);
  EXPECT_DOUBLE_EQ(loaded.config().delta_star, 0.42);
  EXPECT_EQ(loaded.config().weight_mode, WeightMode::kSoftmax);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const SmorePrediction a = model_->predict_detail(data_.row(i));
    const SmorePrediction b = loaded.predict_detail(data_.row(i));
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.is_ood, b.is_ood);
    EXPECT_DOUBLE_EQ(a.max_similarity, b.max_similarity);
  }
}

TEST_F(SmoreSerializationTest, AccuracyPreserved) {
  std::stringstream buffer;
  model_->save(buffer);
  const SmoreModel loaded = SmoreModel::load(buffer);
  EXPECT_DOUBLE_EQ(loaded.accuracy(data_), model_->accuracy(data_));
}

TEST_F(SmoreSerializationTest, UntrainedSaveThrows) {
  SmoreModel fresh(2, 64);
  std::stringstream buffer;
  EXPECT_THROW(fresh.save(buffer), std::logic_error);
}

TEST_F(SmoreSerializationTest, BadMagicThrows) {
  std::stringstream buffer;
  buffer.write("XXXXXXXXXXXXXXXX", 16);
  EXPECT_THROW(SmoreModel::load(buffer), std::runtime_error);
}

TEST_F(SmoreSerializationTest, TruncatedPayloadThrows) {
  std::stringstream buffer;
  model_->save(buffer);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(SmoreModel::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace smore
