// Dispatch-layer equivalence suite (DESIGN.md §11): every compiled-in,
// host-executable kernel variant must be BIT-identical to the canonical
// scalar reference in kernels_generic.hpp — at ragged dimensions (vector
// tails), at every blocking boundary, serial and parallel. The tests force
// each tier via SMORE_KERNEL + reinitialize_dispatch() and compare the
// public ops:: entry points (which route through the table) against the
// generic:: reference called directly.
//
// Also pinned: the resolution semantics themselves — forced-tier capping
// with fallback, clamping when a tier is not executable, unknown values
// falling back to auto, and variant bookkeeping.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "hdc/dispatch.hpp"
#include "hdc/kernels/kernels_generic.hpp"
#include "hdc/ops.hpp"
#include "hdc/ops_binary.hpp"

namespace {

using smore::kern::IsaTier;

/// Save/restore SMORE_KERNEL around every test so a failing test cannot
/// leak a forced tier into the rest of the binary's tests.
class KernelEnvGuard : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* v = std::getenv("SMORE_KERNEL");
    had_ = v != nullptr;
    if (had_) saved_ = v;
  }
  void TearDown() override {
    if (had_) {
      ::setenv("SMORE_KERNEL", saved_.c_str(), 1);
    } else {
      ::unsetenv("SMORE_KERNEL");
    }
    smore::kern::reinitialize_dispatch();
  }

 private:
  bool had_ = false;
  std::string saved_;
};

void force_tier(IsaTier t) {
  ::setenv("SMORE_KERNEL", smore::kern::tier_name(t), 1);
  const auto& d = smore::kern::reinitialize_dispatch();
  ASSERT_TRUE(d.forced);
  ASSERT_FALSE(d.clamped);
  ASSERT_EQ(d.tier, t);
}

std::vector<IsaTier> executable_tiers() {
  std::vector<IsaTier> tiers;
  for (int t = 0; t < smore::kern::kNumTiers; ++t) {
    const auto tier = static_cast<IsaTier>(t);
    if (smore::kern::tier_supported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// Bit-level equality: catches -0.0 vs +0.0 and last-ulp drift that
/// EXPECT_DOUBLE_EQ would wave through.
::testing::AssertionResult BitsEq(double a, double b) {
  if (std::memcmp(&a, &b, sizeof a) == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (delta " << a - b << ")";
}
::testing::AssertionResult BitsEqF(float a, float b) {
  if (std::memcmp(&a, &b, sizeof a) == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (delta " << a - b << ")";
}

std::vector<float> random_floats(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (auto& x : v) x = dist(rng);
  if (n > 2) v[n / 2] = 0.0f;  // exercise the ==0 sign-pack boundary
  return v;
}

std::vector<std::uint64_t> random_words(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng();
  return v;
}

// Ragged sizes straddling every boundary: chain count (8), pack word (64),
// panel (8 rows), row tile (64), plus a large-odd size.
constexpr std::size_t kDims[] = {1, 7, 63, 64, 65, 127, 192, 1000};

using DispatchEquivalence = KernelEnvGuard;
using DispatchSemantics = KernelEnvGuard;

TEST_F(DispatchEquivalence, DotFamilyMatchesScalarBitwise) {
  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);
    for (const std::size_t dim : kDims) {
      SCOPED_TRACE(dim);
      const auto a = random_floats(dim, 1);
      const auto b = random_floats(dim, 2);
      EXPECT_TRUE(BitsEq(smore::kern::generic::dot(a.data(), b.data(), dim),
                         smore::ops::dot(a.data(), b.data(), dim)));

      double ab_ref, aa_ref, bb_ref, ab, aa, bb;
      smore::kern::generic::dot_and_norms(a.data(), b.data(), dim, ab_ref,
                                          aa_ref, bb_ref);
      smore::ops::dot_and_norms(a.data(), b.data(), dim, ab, aa, bb);
      EXPECT_TRUE(BitsEq(ab_ref, ab));
      EXPECT_TRUE(BitsEq(aa_ref, aa));
      EXPECT_TRUE(BitsEq(bb_ref, bb));
      // The fused dot must equal the plain dot (shared chain contract).
      EXPECT_TRUE(BitsEq(smore::ops::dot(a.data(), b.data(), dim), ab));
    }
  }
}

TEST_F(DispatchEquivalence, DotBatchAndMatrixMatchScalarBitwise) {
  constexpr std::size_t kDim = 193;  // odd: every variant runs its tail
  constexpr std::size_t kNp = 13;    // ragged vs kDotBlock=4 and panels
  constexpr std::size_t kNq = 130;   // 3 thread tiles (kRowTile=64)
  const auto protos = random_floats(kNp * kDim, 3);
  const auto queries = random_floats(kNq * kDim, 4);

  std::vector<double> ref(kNq * kNp);
  smore::kern::generic::dot_matrix_tile(queries.data(), 0, kNq, protos.data(),
                                        kNp, kDim, ref.data());

  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);

    std::vector<double> batch(kNp);
    smore::ops::dot_batch(queries.data(), protos.data(), kNp, kDim,
                          batch.data());
    for (std::size_t p = 0; p < kNp; ++p) {
      EXPECT_TRUE(BitsEq(ref[p], batch[p])) << "p=" << p;
    }

    for (const bool parallel : {false, true}) {
      std::vector<double> out(kNq * kNp, -1.0);
      smore::ops::dot_matrix(queries.data(), kNq, protos.data(), kNp, kDim,
                             out.data(), parallel);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(BitsEq(ref[i], out[i]))
            << "i=" << i << " parallel=" << parallel;
      }
    }
  }
}

TEST_F(DispatchEquivalence, SimilarityMatrixMatchesScalarBitwise) {
  constexpr std::size_t kDim = 127;
  constexpr std::size_t kNp = 9;
  constexpr std::size_t kNq = 70;  // one full + one partial thread tile
  const auto protos = random_floats(kNp * kDim, 5);
  auto queries = random_floats(kNq * kDim, 6);
  // A zero query row pins the zero-vector convention per tier.
  std::fill_n(queries.begin() + 2 * kDim, kDim, 0.0f);

  std::vector<double> ref;
  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);
    for (const bool parallel : {false, true}) {
      std::vector<double> out(kNq * kNp, -2.0);
      smore::ops::similarity_matrix(queries.data(), kNq, protos.data(), kNp,
                                    kDim, out.data(), nullptr, parallel);
      if (ref.empty()) {
        ref = out;  // first executable tier is scalar: the reference
        continue;
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(BitsEq(ref[i], out[i]))
            << "i=" << i << " parallel=" << parallel;
      }
    }
  }
}

TEST_F(DispatchEquivalence, NgramAxpyMatchesScalarBitwise) {
  constexpr std::size_t kD = 250;
  for (const std::size_t n_factors : {std::size_t{1}, std::size_t{2},
                                      std::size_t{3}, std::size_t{5}}) {
    SCOPED_TRACE(n_factors);
    std::vector<std::vector<float>> levels_store;
    std::vector<const float*> levels;
    std::vector<std::size_t> shifts;
    for (std::size_t p = 0; p < n_factors; ++p) {
      levels_store.push_back(random_floats(kD, 10 + static_cast<unsigned>(p)));
      levels.push_back(levels_store.back().data());
      shifts.push_back((p * 37) % kD);  // includes shift 0
    }
    auto ref = random_floats(kD, 20);
    smore::kern::generic::ngram_axpy(levels.data(), shifts.data(), n_factors,
                                     kD, 0.75f, ref.data());

    for (const auto tier : executable_tiers()) {
      SCOPED_TRACE(smore::kern::tier_name(tier));
      force_tier(tier);
      auto acc = random_floats(kD, 20);  // same seed: same starting state
      smore::ops::ngram_axpy(levels.data(), shifts.data(), n_factors, kD,
                             0.75f, acc.data());
      for (std::size_t j = 0; j < kD; ++j) {
        ASSERT_TRUE(BitsEqF(ref[j], acc[j])) << "j=" << j;
      }
    }
  }
}

TEST_F(DispatchEquivalence, ProjectCosMatrixMatchesScalarBitwise) {
  constexpr std::size_t kNq = 19;       // 3 ragged query tiles (tile=8)
  constexpr std::size_t kFeatures = 37;
  constexpr std::size_t kDp = 700;      // ragged vs kProjColBlock=512
  const auto x = random_floats(kNq * kFeatures, 30);
  const auto wt = random_floats(kFeatures * kDp, 31);
  const auto bias = random_floats(kDp, 32);

  std::vector<float> ref(kNq * kDp);
  for (std::size_t q = 0; q < kNq; q += smore::ops::kProjQueryTile) {
    const std::size_t end = std::min(q + smore::ops::kProjQueryTile, kNq);
    smore::kern::generic::project_cos_tile(x.data(), q, end, wt.data(), kDp,
                                           kFeatures, bias.data(), ref.data());
  }

  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);
    for (const bool parallel : {false, true}) {
      std::vector<float> out(kNq * kDp, -3.0f);
      smore::ops::project_cos_matrix(x.data(), kNq, wt.data(), kDp, kFeatures,
                                     bias.data(), out.data(), parallel);
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(BitsEqF(ref[i], out[i]))
            << "i=" << i << " parallel=" << parallel;
      }
    }
  }
}

TEST_F(DispatchEquivalence, SignPackMatchesScalarBitwise) {
  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);
    for (const std::size_t dim : kDims) {
      SCOPED_TRACE(dim);
      auto v = random_floats(dim, 40);
      v[0] = std::numeric_limits<float>::quiet_NaN();  // NaN packs as 0
      if (dim > 3) v[3] = -0.0f;                       // -0.0f >= 0.0f: 1
      const std::size_t nw = (dim + 63) / 64;
      std::vector<std::uint64_t> ref(nw, ~0ull), out(nw, ~0ull);
      smore::kern::generic::sign_pack_row(v.data(), dim, ref.data());
      smore::ops::sign_pack_row(v.data(), dim, out.data());
      EXPECT_EQ(ref, out);
    }
    // Batch driver, serial and parallel (130 rows: 3 row tiles).
    constexpr std::size_t kRows = 130, kDim = 100;
    const auto block = random_floats(kRows * kDim, 41);
    const std::size_t nw = (kDim + 63) / 64;
    std::vector<std::uint64_t> ref(kRows * nw, ~0ull);
    for (std::size_t r = 0; r < kRows; ++r) {
      smore::kern::generic::sign_pack_row(block.data() + r * kDim, kDim,
                                          ref.data() + r * nw);
    }
    for (const bool parallel : {false, true}) {
      std::vector<std::uint64_t> out(kRows * nw, ~0ull);
      smore::ops::sign_pack_matrix(block.data(), kRows, kDim, out.data(), nw,
                                   parallel);
      EXPECT_EQ(ref, out) << "parallel=" << parallel;
    }
  }
}

TEST_F(DispatchEquivalence, HammingFamilyMatchesScalarBitwise) {
  constexpr std::size_t kNw = 19;  // ragged vs the 8-word VPOPCNTQ chunk
  constexpr std::size_t kNp = 13;  // ragged vs kHammingBlock=4 and panels
  constexpr std::size_t kNq = 130;
  const auto protos = random_words(kNp * kNw, 50);
  const auto queries = random_words(kNq * kNw, 51);

  std::vector<std::size_t> ref(kNq * kNp);
  smore::kern::generic::hamming_matrix_tile(queries.data(), 0, kNq,
                                            protos.data(), kNp, kNw,
                                            ref.data());

  for (const auto tier : executable_tiers()) {
    SCOPED_TRACE(smore::kern::tier_name(tier));
    force_tier(tier);

    std::vector<std::size_t> batch(kNp);
    smore::ops::hamming_batch(queries.data(), protos.data(), kNp, kNw,
                              batch.data());
    for (std::size_t p = 0; p < kNp; ++p) EXPECT_EQ(ref[p], batch[p]);

    for (const bool parallel : {false, true}) {
      std::vector<std::size_t> out(kNq * kNp, 9999);
      smore::ops::hamming_matrix(queries.data(), kNq, protos.data(), kNp, kNw,
                                 out.data(), parallel);
      ASSERT_EQ(ref, out) << "parallel=" << parallel;

      std::vector<double> sim(kNq * kNp);
      smore::ops::binary_similarity_matrix(queries.data(), kNq, protos.data(),
                                           kNp, kNw, kNw * 64 - 3, sim.data(),
                                           parallel);
      for (std::size_t i = 0; i < sim.size(); ++i) {
        const double expect =
            1.0 - 2.0 / static_cast<double>(kNw * 64 - 3) *
                      static_cast<double>(ref[i]);
        ASSERT_TRUE(BitsEq(expect, sim[i])) << "i=" << i;
      }
    }
  }
}

TEST_F(DispatchSemantics, ForcedTierCapsLadderWithFallback) {
  for (const auto tier : executable_tiers()) {
    force_tier(tier);
    const auto& d = smore::kern::dispatch();
    EXPECT_EQ(d.tier, tier);
    // Every slot must be filled — tiers that skip a kernel fall back to a
    // lower variant, never to a null pointer.
    EXPECT_NE(d.table.dot, nullptr);
    EXPECT_NE(d.table.dot_and_norms, nullptr);
    EXPECT_NE(d.table.dot_matrix_tile, nullptr);
    EXPECT_NE(d.table.ngram_axpy, nullptr);
    EXPECT_NE(d.table.project_cos_tile, nullptr);
    EXPECT_NE(d.table.sign_pack_row, nullptr);
    EXPECT_NE(d.table.hamming_batch, nullptr);
    EXPECT_NE(d.table.hamming_matrix_tile, nullptr);
    for (std::size_t k = 0; k < smore::kern::kNumKernels; ++k) {
      EXPECT_NE(d.kernel_variant[k], nullptr) << "slot " << k;
    }
  }
}

TEST_F(DispatchSemantics, UnknownValueFallsBackToAuto) {
  ::setenv("SMORE_KERNEL", "warp9", 1);
  const auto& d = smore::kern::reinitialize_dispatch();
  EXPECT_FALSE(d.forced);
  EXPECT_FALSE(d.clamped);

  ::unsetenv("SMORE_KERNEL");
  const auto& auto_d = smore::kern::reinitialize_dispatch();
  EXPECT_EQ(d.tier, auto_d.tier);
}

TEST_F(DispatchSemantics, UnexecutableForcedTierClamps) {
  // Find a tier this binary cannot execute (on x86 that is neon; on ARM,
  // any x86 tier). If every tier is somehow executable, there is nothing
  // to clamp — skip.
  for (int t = smore::kern::kNumTiers - 1; t >= 0; --t) {
    const auto tier = static_cast<IsaTier>(t);
    if (smore::kern::tier_supported(tier)) continue;
    ::setenv("SMORE_KERNEL", smore::kern::tier_name(tier), 1);
    const auto& d = smore::kern::reinitialize_dispatch();
    EXPECT_TRUE(d.forced);
    EXPECT_TRUE(d.clamped);
    // Clamped resolution still lands on a fully working table.
    EXPECT_NE(d.table.dot, nullptr);
    const auto a = random_floats(100, 60), b = random_floats(100, 61);
    EXPECT_TRUE(BitsEq(smore::kern::generic::dot(a.data(), b.data(), 100),
                       smore::ops::dot(a.data(), b.data(), 100)));
    return;
  }
  GTEST_SKIP() << "every compiled tier is executable on this host";
}

TEST_F(DispatchSemantics, ScalarTierAlwaysExecutable) {
  EXPECT_TRUE(smore::kern::tier_compiled(IsaTier::kScalar));
  EXPECT_TRUE(smore::kern::tier_supported(IsaTier::kScalar));
}

}  // namespace
