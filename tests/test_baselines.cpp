// Unit tests for the CNN DA baselines: TENT (entropy minimization on BN
// affine params) and MDANs (multi-source adversarial training).

#include "baselines/mdan.hpp"
#include "baselines/tent.hpp"

#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "data/normalize.hpp"
#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

/// Small normalized LODO problem shared by the CNN baseline tests.
struct CnnFixtureData {
  nn::Tensor x_train{std::vector<std::size_t>{1, 1, 1}};
  nn::Tensor x_test{std::vector<std::size_t>{1, 1, 1}};
  std::vector<int> y_train;
  std::vector<int> y_test;
  std::vector<int> train_domains;
  int classes = 0;
  std::size_t channels = 0;
};

CnnFixtureData make_lodo_problem() {
  SyntheticSpec spec = tiny_spec(3, 3, 2, 24, 36, 0xbead);
  spec.domain_shift = 1.0;
  const WindowDataset raw = generate_dataset(spec);
  const Split fold = lodo_split(raw, 2);

  ChannelNormalizer norm;
  norm.fit(raw, fold.train);
  const WindowDataset data = norm.transform(raw);

  CnnFixtureData out;
  out.x_train = windows_to_tensor(data, fold.train);
  out.x_test = windows_to_tensor(data, fold.test);
  out.y_train = labels_of(data, fold.train);
  out.y_test = labels_of(data, fold.test);
  out.train_domains = domains_of(data, fold.train);
  out.classes = raw.num_classes();
  out.channels = raw.channels();
  return out;
}

TentConfig tent_config(const CnnFixtureData& d) {
  TentConfig cfg;
  cfg.backbone.in_channels = d.channels;
  cfg.backbone.conv1_filters = 12;
  cfg.backbone.conv2_filters = 16;
  cfg.num_classes = d.classes;
  cfg.epochs = 20;
  cfg.batch_size = 16;
  cfg.learning_rate = 3e-3f;
  cfg.seed = 3;
  return cfg;
}

TEST(Tent, RejectsBadConfig) {
  TentConfig cfg;
  cfg.num_classes = 0;
  EXPECT_THROW(TentClassifier{cfg}, std::invalid_argument);
}

TEST(Tent, SourceTrainingConverges) {
  const CnnFixtureData d = make_lodo_problem();
  TentClassifier model(tent_config(d));
  const auto history = model.fit(d.x_train, d.y_train);
  ASSERT_EQ(history.size(), 20u);
  EXPECT_GT(history.back(), 0.6);
  EXPECT_GT(history.back(), history.front());
}

TEST(Tent, FitValidatesShapes) {
  const CnnFixtureData d = make_lodo_problem();
  TentClassifier model(tent_config(d));
  std::vector<int> bad_labels(d.y_train.size() + 1, 0);
  EXPECT_THROW(model.fit(d.x_train, bad_labels), std::invalid_argument);
}

TEST(Tent, AdaptationReducesEntropy) {
  // The defining TENT behaviour: post-adaptation prediction entropy on the
  // shifted test batches is lower than before adaptation.
  const CnnFixtureData d = make_lodo_problem();
  TentClassifier model(tent_config(d));
  model.fit(d.x_train, d.y_train);
  const TentEvalStats stats = model.evaluate_adaptive(d.x_test, d.y_test);
  EXPECT_LT(stats.mean_entropy_after, stats.mean_entropy_before + 1e-9);
  EXPECT_GT(stats.accuracy, 1.0 / d.classes);  // beats chance on shifted data
}

TEST(Tent, PredictAndEvaluateConsistent) {
  const CnnFixtureData d = make_lodo_problem();
  TentClassifier model(tent_config(d));
  model.fit(d.x_train, d.y_train);
  const auto preds = model.predict(d.x_train);
  ASSERT_EQ(preds.size(), d.y_train.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    acc += preds[i] == d.y_train[i] ? 1.0 : 0.0;
  }
  acc /= static_cast<double>(preds.size());
  EXPECT_NEAR(model.evaluate(d.x_train, d.y_train), acc, 1e-12);
}

TEST(Tent, ParamCountPositive) {
  const CnnFixtureData d = make_lodo_problem();
  TentClassifier model(tent_config(d));
  EXPECT_GT(model.param_count(), 100u);
}

MdanConfig mdan_config(const CnnFixtureData& d) {
  MdanConfig cfg;
  cfg.backbone.in_channels = d.channels;
  cfg.backbone.conv1_filters = 8;
  cfg.backbone.conv2_filters = 12;
  cfg.num_classes = d.classes;
  cfg.num_source_domains = 2;  // LODO on 3 domains leaves 2 sources
  cfg.epochs = 20;
  cfg.batch_size = 16;
  cfg.learning_rate = 3e-3f;
  cfg.seed = 4;
  return cfg;
}

TEST(Mdan, RejectsBadConfig) {
  MdanConfig cfg;
  cfg.num_classes = 0;
  EXPECT_THROW(MdanClassifier{cfg}, std::invalid_argument);
  cfg.num_classes = 2;
  cfg.num_source_domains = 0;
  EXPECT_THROW(MdanClassifier{cfg}, std::invalid_argument);
}

TEST(Mdan, FitValidatesShapes) {
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier model(mdan_config(d));
  std::vector<int> bad(d.y_train.size() - 1, 0);
  EXPECT_THROW(model.fit(d.x_train, bad, d.train_domains, d.x_test),
               std::invalid_argument);
}

TEST(Mdan, AdversarialTrainingLearnsLabels) {
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier model(mdan_config(d));
  const auto history =
      model.fit(d.x_train, d.y_train, d.train_domains, d.x_test);
  ASSERT_EQ(history.size(), 20u);
  EXPECT_GT(history.back().train_accuracy, 0.6);
  EXPECT_LT(history.back().label_loss, history.front().label_loss);
}

TEST(Mdan, BeatsChanceOnHeldOutDomain) {
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier model(mdan_config(d));
  model.fit(d.x_train, d.y_train, d.train_domains, d.x_test);
  EXPECT_GT(model.evaluate(d.x_test, d.y_test), 1.0 / d.classes);
}

TEST(Mdan, GradientReversalSuppressesDiscriminators) {
  // After adversarial training the discriminators should be notably worse
  // than a perfect separator (domain-invariant features); sanity bound only,
  // tiny nets can stay above 0.5.
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier model(mdan_config(d));
  model.fit(d.x_train, d.y_train, d.train_domains, d.x_test);
  const double disc0 =
      model.discriminator_accuracy(0, d.x_train, d.train_domains, d.x_test);
  EXPECT_LT(disc0, 0.995);
  EXPECT_THROW(
      (void)model.discriminator_accuracy(9, d.x_train, d.train_domains, d.x_test),
      std::invalid_argument);
}

TEST(Mdan, PredictShape) {
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier model(mdan_config(d));
  model.fit(d.x_train, d.y_train, d.train_domains, d.x_test);
  EXPECT_EQ(model.predict(d.x_test).size(), d.y_test.size());
}

TEST(Mdan, ParamCountIncludesDiscriminators) {
  const CnnFixtureData d = make_lodo_problem();
  MdanClassifier with2(mdan_config(d));
  MdanConfig cfg3 = mdan_config(d);
  cfg3.num_source_domains = 3;
  MdanClassifier with3(cfg3);
  EXPECT_GT(with3.param_count(), with2.param_count());
}

}  // namespace
}  // namespace smore
