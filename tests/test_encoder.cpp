// Unit & property tests for the multi-sensor time-series encoder (Sec 3.3):
// determinism, similarity preservation, temporal order sensitivity, sensor
// separation, and the paper-literal per-window-random ablation mode.

#include "hdc/encoder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <numbers>
#include <sstream>
#include <string>

#include "data/timeseries.hpp"
#include "hdc/hypervector.hpp"

namespace smore {
namespace {

Window sine_window(std::size_t channels, std::size_t steps, double freq,
                   double phase = 0.0, double amp = 1.0, int label = 0) {
  Window w(channels, steps);
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t t = 0; t < steps; ++t) {
      const double x = static_cast<double>(t) / static_cast<double>(steps);
      w.set(c, t,
            static_cast<float>(
                amp * std::sin(2.0 * std::numbers::pi * freq * x + phase +
                               0.7 * static_cast<double>(c))));
    }
  }
  w.set_label(label);
  w.set_domain(0);
  return w;
}

EncoderConfig small_config() {
  EncoderConfig cfg;
  cfg.dim = 2048;
  cfg.ngram = 3;
  cfg.seed = 11;
  return cfg;
}

TEST(Encoder, RejectsInvalidConfig) {
  EncoderConfig cfg = small_config();
  cfg.dim = 0;
  EXPECT_THROW(MultiSensorEncoder{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.ngram = 0;
  EXPECT_THROW(MultiSensorEncoder{cfg}, std::invalid_argument);
}

TEST(Encoder, OutputDimMatchesConfig) {
  const MultiSensorEncoder enc(small_config());
  const auto hv = enc.encode(sine_window(2, 32, 2.0));
  EXPECT_EQ(hv.dim(), 2048u);
}

TEST(Encoder, DeterministicAcrossCallsAndInstances) {
  const MultiSensorEncoder enc1(small_config());
  const MultiSensorEncoder enc2(small_config());
  const Window w = sine_window(2, 32, 2.0);
  EXPECT_EQ(enc1.encode(w), enc1.encode(w));
  EXPECT_EQ(enc1.encode(w), enc2.encode(w));
}

TEST(Encoder, SeedChangesEncoding) {
  EncoderConfig cfg = small_config();
  const MultiSensorEncoder enc1(cfg);
  cfg.seed = 12;
  const MultiSensorEncoder enc2(cfg);
  const Window w = sine_window(2, 32, 2.0);
  EXPECT_NE(enc1.encode(w), enc2.encode(w));
}

TEST(Encoder, IdenticalWindowsMaximallySimilar) {
  const MultiSensorEncoder enc(small_config());
  const Window w = sine_window(3, 48, 1.5);
  EXPECT_NEAR(cosine_similarity(enc.encode(w), enc.encode(w)), 1.0, 1e-9);
}

TEST(Encoder, SimilarWindowsMoreSimilarThanDifferentOnes) {
  // Small phase perturbation of the same signal must stay closer than a
  // different-frequency signal: the similarity-preservation property the
  // whole SMORE pipeline rests on.
  const MultiSensorEncoder enc(small_config());
  const auto base = enc.encode(sine_window(2, 48, 1.5));
  const auto near = enc.encode(sine_window(2, 48, 1.5, /*phase=*/0.12));
  const auto far = enc.encode(sine_window(2, 48, 4.9, /*phase=*/1.0));
  EXPECT_GT(cosine_similarity(base, near), cosine_similarity(base, far) + 0.05);
}

TEST(Encoder, AmplitudeInvarianceViaWindowMinMax) {
  // Window min/max anchoring makes pure rescaling (gain shift) invisible —
  // the value-quantization levels are relative to the window extremes.
  const MultiSensorEncoder enc(small_config());
  const auto a = enc.encode(sine_window(2, 48, 2.0, 0.0, /*amp=*/1.0));
  const auto b = enc.encode(sine_window(2, 48, 2.0, 0.0, /*amp=*/3.0));
  EXPECT_NEAR(cosine_similarity(a, b), 1.0, 1e-5);
}

TEST(Encoder, TemporalOrderMatters) {
  // Permutation-bound n-grams encode order: scrambling the window must
  // change the encoding substantially. Time *reversal* is the hardest case —
  // lag-k product statistics are nearly symmetric under reversal, so the
  // remaining sensitivity comes only from odd higher-order terms; we pin it
  // as measurably below identity. (The paper-literal linear-interpolation
  // levels are *exactly* reversal-invariant; see the encoder header note —
  // the default thresholded quantization restores this sensitivity.)
  const MultiSensorEncoder enc(small_config());
  Window fwd(1, 32);
  Window rev(1, 32);
  Window shuffled(1, 32);
  Rng rng(5);
  std::vector<float> vals(32);
  for (auto& v : vals) v = rng.uniform_f(-1.0f, 1.0f);
  std::vector<float> scrambled = vals;
  rng.shuffle(scrambled);
  for (std::size_t t = 0; t < 32; ++t) {
    fwd.set(0, t, vals[t]);
    rev.set(0, t, vals[31 - t]);
    shuffled.set(0, t, scrambled[t]);
  }
  const auto h_fwd = enc.encode(fwd);
  const double sim_rev = cosine_similarity(h_fwd, enc.encode(rev));
  const double sim_shuffled = cosine_similarity(h_fwd, enc.encode(shuffled));
  // Graded order sensitivity: identical > reversed > fully shuffled. The
  // absolute similarities stay high (bundling keeps a large order-invariant
  // component), but the ordering is strict and discriminative.
  EXPECT_LT(sim_rev, 0.995);
  EXPECT_LT(sim_shuffled, sim_rev - 0.005);
}

TEST(Encoder, LinearInterpolationModeIsReversalInvariant) {
  // Documented property of the paper-literal continuous levels (ablation
  // mode): the bundled n-gram encoding cannot distinguish a window from its
  // time reversal (gap-multiset invariance of lag products).
  EncoderConfig cfg = small_config();
  cfg.quantization_levels = 0;
  cfg.antipodal_base = false;  // paper-literal pairing (independent anchors)
  const MultiSensorEncoder enc(cfg);
  Window fwd(1, 32);
  Window rev(1, 32);
  Rng rng(6);
  for (std::size_t t = 0; t < 32; ++t) {
    const float v = rng.uniform_f(-1.0f, 1.0f);
    fwd.set(0, t, v);
    rev.set(0, 31 - t, v);
  }
  EXPECT_GT(cosine_similarity(enc.encode(fwd), enc.encode(rev)), 0.99);
}

TEST(Encoder, ConstantWindowEncodesWithoutNan) {
  // Flat signal: vmax == vmin, inv_range = 0 — must not divide by zero.
  const MultiSensorEncoder enc(small_config());
  Window w(2, 16);
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t t = 0; t < 16; ++t) w.set(c, t, 3.5f);
  }
  const auto hv = enc.encode(w);
  for (std::size_t i = 0; i < hv.dim(); ++i) {
    EXPECT_TRUE(std::isfinite(hv[i]));
  }
  EXPECT_GT(hv.norm(), 0.0);
}

TEST(Encoder, WindowShorterThanNgramStillEncodes) {
  EncoderConfig cfg = small_config();
  cfg.ngram = 8;
  const MultiSensorEncoder enc(cfg);
  const auto hv = enc.encode(sine_window(1, 4, 1.0));  // steps < ngram
  EXPECT_GT(hv.norm(), 0.0);
}

TEST(Encoder, EmptyWindowThrows) {
  const MultiSensorEncoder enc(small_config());
  Window w;  // default: 0 channels
  EXPECT_THROW(enc.encode(w), std::invalid_argument);
}

TEST(Encoder, SensorsContributeIndependently) {
  // Swapping which sensor carries the signal must change the encoding:
  // the signature binding separates channels.
  const MultiSensorEncoder enc(small_config());
  Window a(2, 32);
  Window b(2, 32);
  for (std::size_t t = 0; t < 32; ++t) {
    const float v = std::sin(0.4f * static_cast<float>(t));
    a.set(0, t, v);
    a.set(1, t, 0.5f);  // flat
    b.set(0, t, 0.5f);
    b.set(1, t, v);
  }
  EXPECT_LT(cosine_similarity(enc.encode(a), enc.encode(b)), 0.8);
}

TEST(Encoder, EncodeDatasetAlignsMetadata) {
  const MultiSensorEncoder enc(small_config());
  WindowDataset ds("t", 2, 32);
  Window w0 = sine_window(2, 32, 1.0);
  w0.set_label(3);
  w0.set_domain(1);
  Window w1 = sine_window(2, 32, 2.0);
  w1.set_label(1);
  w1.set_domain(2);
  ds.add(w0);
  ds.add(w1);
  const HvDataset encoded = enc.encode_dataset(ds);
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(encoded.label(0), 3);
  EXPECT_EQ(encoded.domain(0), 1);
  EXPECT_EQ(encoded.label(1), 1);
  EXPECT_EQ(encoded.domain(1), 2);
  // Rows equal the single-window encodings.
  const auto hv0 = enc.encode(ds[0], 0);
  for (std::size_t j = 0; j < hv0.dim(); ++j) {
    EXPECT_FLOAT_EQ(encoded.row(0)[j], hv0[j]);
  }
}

TEST(Encoder, PerWindowRandomBaseBreaksCrossWindowSimilarity) {
  // The paper-literal ablation mode: identical signals in different windows
  // get (nearly) unrelated encodings because the extremum hypervectors are
  // redrawn per window (salt-dependent).
  EncoderConfig cfg = small_config();
  cfg.per_window_random_base = true;
  const MultiSensorEncoder enc(cfg);
  const Window w = sine_window(2, 32, 2.0);
  const auto a = enc.encode(w, /*salt=*/1);
  const auto b = enc.encode(w, /*salt=*/2);
  EXPECT_LT(cosine_similarity(a, b), 0.5);
  // Same salt still deterministic.
  EXPECT_EQ(a, enc.encode(w, 1));
}

TEST(Encoder, ScratchReuseMatchesFreshScratch) {
  const MultiSensorEncoder enc(small_config());
  EncodeScratch scratch;
  const Window w1 = sine_window(2, 32, 1.0);
  const Window w2 = sine_window(2, 32, 3.0);
  (void)enc.encode(w1, scratch);  // warm the buffers
  const auto reused = enc.encode(w2, scratch);
  EXPECT_EQ(reused, enc.encode(w2));
}

TEST(Encoder, AntipodalFlagChangesEncoding) {
  EncoderConfig a = small_config();
  EncoderConfig b = small_config();
  b.antipodal_base = false;
  const Window w = sine_window(2, 32, 2.0);
  EXPECT_NE(MultiSensorEncoder(a).encode(w), MultiSensorEncoder(b).encode(w));
}

TEST(Encoder, QuantizationSnapsToGrid) {
  // Q=2 snaps every value to one of the two anchors: a window whose values
  // are perturbed within the same half still encodes identically.
  EncoderConfig cfg = small_config();
  cfg.quantization_levels = 2;
  const MultiSensorEncoder enc(cfg);
  Window a(1, 8);
  Window b(1, 8);
  const float va[] = {0.0f, 0.9f, 0.1f, 1.0f, 0.2f, 0.8f, 0.0f, 1.0f};
  const float vb[] = {0.0f, 0.7f, 0.3f, 1.0f, 0.4f, 0.6f, 0.0f, 1.0f};
  for (std::size_t t = 0; t < 8; ++t) {
    a.set(0, t, va[t]);
    b.set(0, t, vb[t]);
  }
  EXPECT_EQ(enc.encode(a), enc.encode(b));
}

TEST(Encoder, MultiScaleDilationDeterministicAndDistinct) {
  EncoderConfig single = small_config();
  single.ngram_dilation = 4;
  EncoderConfig multi = small_config();
  multi.ngram_dilations = {2, 4, 8};
  const MultiSensorEncoder enc_s(single);
  const MultiSensorEncoder enc_m(multi);
  const Window w = sine_window(2, 48, 1.5);
  const auto hm = enc_m.encode(w);
  EXPECT_EQ(hm, enc_m.encode(w));  // deterministic
  EXPECT_NE(hm, enc_s.encode(w));  // scales actually contribute
  for (std::size_t j = 0; j < hm.dim(); ++j) {
    ASSERT_TRUE(std::isfinite(hm[j]));
  }
}

TEST(Encoder, MultiScaleStillSimilarityPreserving) {
  EncoderConfig cfg = small_config();
  cfg.ngram_dilations = {2, 4, 8};
  const MultiSensorEncoder enc(cfg);
  const auto base = enc.encode(sine_window(2, 48, 1.5));
  const auto near = enc.encode(sine_window(2, 48, 1.5, 0.12));
  const auto far = enc.encode(sine_window(2, 48, 4.9, 1.0));
  EXPECT_GT(cosine_similarity(base, near), cosine_similarity(base, far));
}

TEST(Encoder, DilationLargerThanWindowClampsGracefully) {
  EncoderConfig cfg = small_config();
  cfg.ngram_dilation = 100;  // larger than the window
  const MultiSensorEncoder enc(cfg);
  const auto hv = enc.encode(sine_window(1, 12, 1.0));
  EXPECT_GT(hv.norm(), 0.0);
}

TEST(Encoder, DeterministicReconstructionFromSerializedConfig) {
  // Artifact portability: an encoder rebuilt from its serialized config+seed
  // on any host must produce bit-identical basis-derived encodings for any
  // thread count. Exercise a non-default config so every field round-trips.
  EncoderConfig cfg = small_config();
  cfg.quantization_levels = 16;
  cfg.ngram_dilations = {1, 3, 5};
  const MultiSensorEncoder original(cfg);

  std::stringstream buffer;
  original.save(buffer);
  const std::unique_ptr<Encoder> rebuilt = load_encoder(buffer);
  ASSERT_NE(rebuilt, nullptr);
  const auto* typed = dynamic_cast<const MultiSensorEncoder*>(rebuilt.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->config().dim, cfg.dim);
  EXPECT_EQ(typed->config().ngram, cfg.ngram);
  EXPECT_EQ(typed->config().seed, cfg.seed);
  EXPECT_EQ(typed->config().quantization_levels, cfg.quantization_levels);
  EXPECT_EQ(typed->config().antipodal_base, cfg.antipodal_base);
  EXPECT_EQ(typed->config().ngram_dilations, cfg.ngram_dilations);

  WindowDataset windows("roundtrip", 3, 24);
  for (int i = 0; i < 12; ++i) {
    windows.add(sine_window(3, 24, 1.0 + 0.25 * i, 0.1 * i));
  }
  HvMatrix ref;
  original.encode_batch(windows, ref, /*parallel=*/false);
  for (const bool parallel : {false, true}) {
    HvMatrix out;
    rebuilt->encode_batch(windows, out, parallel);
    ASSERT_EQ(out.rows(), ref.rows());
    for (std::size_t i = 0; i < ref.rows(); ++i) {
      const auto a = ref.row(i);
      const auto b = out.row(i);
      for (std::size_t j = 0; j < a.size(); ++j) {
        ASSERT_EQ(a[j], b[j]) << "row " << i << " coord " << j
                              << " parallel=" << parallel;
      }
    }
  }
}

TEST(Encoder, CorruptSerializedRecordThrows) {
  const MultiSensorEncoder enc(small_config());
  std::stringstream buffer;
  enc.save(buffer);
  const std::string full = buffer.str();
  // Truncation at every prefix of the record must throw, never crash.
  for (std::size_t keep = 0; keep < full.size(); keep += 7) {
    std::stringstream truncated(full.substr(0, keep));
    EXPECT_THROW((void)load_encoder(truncated), std::runtime_error)
        << "kept " << keep;
  }
  // Unknown tag.
  std::string bad = full;
  bad[0] = 'Z';
  std::stringstream unknown(bad);
  EXPECT_THROW((void)load_encoder(unknown), std::runtime_error);
  // Absurd dilation count (the record's last field here) is rejected before
  // any allocation.
  std::string garbled = full;
  const std::uint64_t huge = std::uint64_t{1} << 60;
  std::memcpy(garbled.data() + garbled.size() - sizeof(huge), &huge,
              sizeof(huge));
  std::stringstream oversized(garbled);
  EXPECT_THROW((void)load_encoder(oversized), std::runtime_error);
}

TEST(Encoder, NgramOneIsOrderInsensitiveForPermutedValues) {
  // With n=1 no permutation happens, so a window and its reverse bundle the
  // same level vectors — encodings must be identical.
  EncoderConfig cfg = small_config();
  cfg.ngram = 1;
  const MultiSensorEncoder enc(cfg);
  Window fwd(1, 16);
  Window rev(1, 16);
  for (std::size_t t = 0; t < 16; ++t) {
    const float v = static_cast<float>(t);
    fwd.set(0, t, v);
    rev.set(0, 15 - t, v);
  }
  EXPECT_NEAR(cosine_similarity(enc.encode(fwd), enc.encode(rev)), 1.0, 1e-6);
}

}  // namespace
}  // namespace smore
