#pragma once
// Shared fixtures/helpers for the test suite: tiny synthetic specs, linearly
// separable encoded datasets, and numerical gradient checking for layers.

#include <cmath>
#include <functional>
#include <vector>

#include "data/synthetic.hpp"
#include "hdc/hv_dataset.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace smore::testing {

/// Tiny synthetic spec (fast to generate/encode) with `domains` domains of
/// one subject each.
inline SyntheticSpec tiny_spec(int activities = 3, int domains = 3,
                               std::size_t channels = 2,
                               std::size_t window_steps = 24,
                               std::size_t windows_per_domain = 30,
                               std::uint64_t seed = 0x7e57) {
  SyntheticSpec spec;
  spec.name = "tiny";
  spec.activities = activities;
  spec.subjects = domains;
  spec.subject_to_domain.resize(static_cast<std::size_t>(domains));
  for (int s = 0; s < domains; ++s) {
    spec.subject_to_domain[static_cast<std::size_t>(s)] = s;
  }
  spec.channels = channels;
  spec.window_steps = window_steps;
  spec.overlap = 0.0;
  spec.sample_rate_hz = 25.0;
  spec.domain_counts.assign(static_cast<std::size_t>(domains),
                            windows_per_domain);
  spec.seed = seed;
  return spec;
}

/// Linearly separable encoded dataset: class c of domain d clusters around a
/// distinct random bipolar prototype with small perturbations. `domain_skew`
/// rotates each domain's prototypes slightly, creating a controllable
/// distribution shift in hyperspace without the encoder in the loop.
inline HvDataset separable_hv_dataset(int classes, int domains,
                                      std::size_t per_cell, std::size_t dim,
                                      double noise = 0.4,
                                      double domain_skew = 0.0,
                                      std::uint64_t seed = 0xfeed) {
  Rng rng(seed);
  std::vector<std::vector<float>> prototypes;
  for (int c = 0; c < classes; ++c) {
    std::vector<float> p(dim);
    for (auto& x : p) x = rng.bipolar();
    prototypes.push_back(std::move(p));
  }
  // Per-domain skew directions.
  std::vector<std::vector<float>> skew;
  for (int d = 0; d < domains; ++d) {
    std::vector<float> s(dim);
    for (auto& x : s) x = rng.bipolar();
    skew.push_back(std::move(s));
  }

  HvDataset data(dim);
  std::vector<float> row(dim);
  for (int d = 0; d < domains; ++d) {
    for (int c = 0; c < classes; ++c) {
      for (std::size_t i = 0; i < per_cell; ++i) {
        for (std::size_t j = 0; j < dim; ++j) {
          row[j] = prototypes[static_cast<std::size_t>(c)][j] +
                   static_cast<float>(domain_skew) *
                       skew[static_cast<std::size_t>(d)][j] +
                   static_cast<float>(rng.normal(0.0, noise));
        }
        data.add(row, c, d);
      }
    }
  }
  return data;
}

/// Central-difference numerical gradient of `f` w.r.t. `x[i]`.
inline double numerical_grad(const std::function<double()>& f, float& x,
                             float eps = 1e-3f) {
  const float saved = x;
  x = saved + eps;
  const double hi = f();
  x = saved - eps;
  const double lo = f();
  x = saved;
  return (hi - lo) / (2.0 * static_cast<double>(eps));
}

}  // namespace smore::testing
