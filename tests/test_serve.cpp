// Serving-runtime tests: the micro-batching scheduler must be a correctness
// no-op — any (max_batch, max_delay_us, producer-count) schedule returns
// exactly what one direct batched call returns — and the snapshot swap must
// never drop or corrupt an in-flight request.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/binary_smore.hpp"
#include "core/pipeline.hpp"
#include "core/smore.hpp"
#include "data/synthetic.hpp"
#include "hdc/encoder.hpp"
#include "hdc/ops_binary.hpp"
#include "serve/server.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace smore {
namespace {

using testing::separable_hv_dataset;
using testing::tiny_spec;

constexpr std::size_t kDim = 128;
constexpr int kClasses = 4;
constexpr int kDomains = 3;

/// Train a small model and build a query mix of in-distribution rows and
/// OOD noise rows, shared by every scheduler test.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    train_ = separable_hv_dataset(kClasses, kDomains, 20, kDim, 0.4, 0.5);
    model_ = std::make_unique<SmoreModel>(kClasses, kDim);
    model_->fit(train_);
    model_->calibrate_delta_star(train_, 0.05);

    Rng rng(0xbeef);
    queries_ = HvMatrix(160, kDim);
    for (std::size_t i = 0; i < queries_.rows(); ++i) {
      if (i % 4 == 3) {  // every 4th row: pure noise (OOD territory)
        for (std::size_t j = 0; j < kDim; ++j) {
          queries_.row(i)[j] = static_cast<float>(rng.normal());
        }
      } else {
        queries_.set_row(i, train_.row(i % train_.size()));
      }
    }
  }

  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot(
      bool quantize = false, std::uint64_t version = 1) const {
    return ModelSnapshot::make(model_->clone(), quantize, version);
  }

  /// Submit every query row from `producers` striped threads and compare
  /// each response against the reference SmoreBatchResult row.
  void expect_matches_reference(InferenceServer& server,
                                const SmoreBatchResult& ref,
                                std::size_t producers) const {
    const std::size_t n = queries_.rows();
    std::vector<std::future<ServeResult>> futures(n);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t i = p; i < n; i += producers) {
          const auto row = queries_.row(i);
          futures[i] = server.submit({row.begin(), row.end()});
        }
      });
    }
    for (auto& t : threads) t.join();
    const std::size_t k = ref.num_domains;
    for (std::size_t i = 0; i < n; ++i) {
      const ServeResult r = futures[i].get();
      EXPECT_EQ(r.status, ServeStatus::kOk) << "row " << i;
      EXPECT_EQ(r.label, ref.labels[i]) << "row " << i;
      EXPECT_EQ(r.is_ood, ref.ood[i] != 0) << "row " << i;
      EXPECT_DOUBLE_EQ(r.max_similarity, ref.max_similarity[i]) << "row " << i;
      ASSERT_EQ(r.weights.size(), k);
      for (std::size_t d = 0; d < k; ++d) {
        EXPECT_DOUBLE_EQ(r.weights[d], ref.weights[i * k + d])
            << "row " << i << " domain " << d;
      }
      EXPECT_GE(r.latency_seconds, 0.0);
    }
  }

  HvDataset train_{kDim};
  std::unique_ptr<SmoreModel> model_;
  HvMatrix queries_;
};

TEST_F(ServeTest, SchedulerIsEquivalentToDirectBatchedCall) {
  const auto snap = snapshot();
  const SmoreBatchResult ref = snap->model->predict_batch_full(queries_.view());
  for (const std::size_t max_batch : {std::size_t{1}, std::size_t{7},
                                      std::size_t{32}}) {
    for (const std::uint32_t delay_us : {0u, 200u}) {
      for (const std::size_t producers : {std::size_t{1}, std::size_t{4}}) {
        ServerConfig cfg;
        cfg.max_batch = max_batch;
        cfg.max_delay_us = delay_us;
        cfg.num_workers = 2;
        cfg.queue_capacity = 64;
        InferenceServer server(snap, nullptr, cfg);
        SCOPED_TRACE(::testing::Message()
                     << "max_batch=" << max_batch << " delay=" << delay_us
                     << " producers=" << producers);
        expect_matches_reference(server, ref, producers);
        server.shutdown();
        const ServerStats stats = server.stats();
        EXPECT_EQ(stats.submitted, queries_.rows());
        EXPECT_EQ(stats.completed, queries_.rows());
        EXPECT_EQ(stats.batched_rows, queries_.rows());
        EXPECT_GE(stats.mean_batch_fill, 1.0);
        EXPECT_EQ(stats.latency.count, queries_.rows());
      }
    }
  }
}

TEST_F(ServeTest, PackedBackendMatchesDirectPackedCall) {
  // A quantized snapshot serves through its packed backend; the server
  // itself never selects a representation.
  const auto snap = snapshot(/*quantize=*/true);
  ASSERT_EQ(snap->backend->kind(), ServeBackend::kPacked);
  const SmoreBatchResult ref =
      snap->packed->predict_batch_full(queries_.view());
  ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.max_delay_us = 100;
  InferenceServer server(snap, nullptr, cfg);
  expect_matches_reference(server, ref, 4);
}

TEST_F(ServeTest, SnapshotInstallsTheMatchingBackend) {
  const auto float_snap = snapshot(/*quantize=*/false);
  ASSERT_NE(float_snap->backend, nullptr);
  EXPECT_EQ(float_snap->backend->kind(), ServeBackend::kFloat);
  EXPECT_STREQ(float_snap->backend->name(), "float");
  EXPECT_EQ(float_snap->backend->dim(), kDim);
  EXPECT_EQ(float_snap->backend->num_domains(),
            static_cast<std::size_t>(kDomains));
  EXPECT_EQ(float_snap->backend->footprint_bytes(),
            float_snap->model->footprint_bytes());

  const auto packed_snap = snapshot(/*quantize=*/true);
  ASSERT_NE(packed_snap->backend, nullptr);
  EXPECT_EQ(packed_snap->backend->kind(), ServeBackend::kPacked);
  EXPECT_STREQ(packed_snap->backend->name(), "packed");
  EXPECT_EQ(packed_snap->backend->footprint_bytes(),
            packed_snap->packed->footprint_bytes());
  // Both answer through the same interface call.
  const SmoreBatchResult a =
      float_snap->backend->predict_batch_full(queries_.view());
  const SmoreBatchResult b =
      packed_snap->backend->predict_batch_full(queries_.view());
  EXPECT_EQ(a.labels, float_snap->model->predict_batch(queries_.view()));
  EXPECT_EQ(b.labels, packed_snap->packed->predict_batch(queries_.view()));
}

TEST_F(ServeTest, WindowRequestsAreEncodedInBatch) {
  // End-to-end: raw windows in, labels out, against the encoder's own
  // batch encoding + a direct predict. The server takes SHARED ownership of
  // the encoder: the submitting side drops its reference mid-test and the
  // requests must still encode (no "encoder must outlive the server"
  // contract).
  const WindowDataset raw = generate_dataset(tiny_spec());
  EncoderConfig ec;
  ec.dim = kDim;
  auto encoder = std::make_shared<const MultiSensorEncoder>(ec);
  const HvDataset encoded = encoder->encode_dataset(raw);
  SmoreModel window_model(raw.num_classes(), kDim);
  window_model.fit(encoded);
  const auto snap = ModelSnapshot::make(window_model.clone(), false, 1);
  const std::vector<int> ref = snap->model->predict_batch(encoded.view());

  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 200;
  InferenceServer server(snap, encoder, cfg);
  encoder.reset();  // the server's shared ownership keeps it alive
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    futures.push_back(server.submit(raw[i]));
  }
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(futures[i].get().label, ref[i]) << "window " << i;
  }
}

TEST_F(ServeTest, MixedWindowShapesCoalesceIntoIndependentGroups) {
  // Windows of different shapes can land in one micro-batch (e.g. two
  // sensor products sharing a server). Each shape is encoded as its own
  // group; no request depends on its batch-mates' shapes.
  const WindowDataset raw_a = generate_dataset(tiny_spec());
  const WindowDataset raw_b =
      generate_dataset(tiny_spec(3, 3, 2, 48));  // different step count
  EncoderConfig ec;
  ec.dim = kDim;
  const auto encoder = std::make_shared<const MultiSensorEncoder>(ec);
  const HvDataset enc_a = encoder->encode_dataset(raw_a);
  const HvDataset enc_b = encoder->encode_dataset(raw_b);
  SmoreModel window_model(raw_a.num_classes(), kDim);
  window_model.fit(enc_a);
  const auto snap = ModelSnapshot::make(window_model.clone(), false, 1);
  const std::vector<int> ref_a = snap->model->predict_batch(enc_a.view());
  const std::vector<int> ref_b = snap->model->predict_batch(enc_b.view());

  ServerConfig cfg;
  cfg.max_batch = 16;
  cfg.max_delay_us = 500;
  InferenceServer server(snap, encoder, cfg);
  const std::size_t n = std::min<std::size_t>(24, raw_b.size());
  std::vector<std::future<ServeResult>> fut_a;
  std::vector<std::future<ServeResult>> fut_b;
  for (std::size_t i = 0; i < n; ++i) {  // interleave the two shapes
    fut_a.push_back(server.submit(raw_a[i]));
    fut_b.push_back(server.submit(raw_b[i]));
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(fut_a[i].get().label, ref_a[i]) << "shape-A window " << i;
    EXPECT_EQ(fut_b[i].get().label, ref_b[i]) << "shape-B window " << i;
  }
}

TEST_F(ServeTest, SubmitWindowWithoutEncoderThrows) {
  InferenceServer server(snapshot(), nullptr, {});
  EXPECT_THROW(server.submit(Window(2, 8)), std::logic_error);
}

TEST_F(ServeTest, SubmitRejectsDimensionMismatch) {
  InferenceServer server(snapshot(), nullptr, {});
  EXPECT_THROW(server.submit(std::vector<float>(kDim + 1, 0.0f)),
               std::invalid_argument);
}

TEST_F(ServeTest, ShutdownFulfillsEveryInflightRequest) {
  const auto snap = snapshot();
  const SmoreBatchResult ref = snap->model->predict_batch_full(queries_.view());
  ServerConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 2000;  // slow batch formation: requests pile up
  cfg.queue_capacity = 512;
  InferenceServer server(snap, nullptr, cfg);
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(queries_.rows());
  for (std::size_t i = 0; i < queries_.rows(); ++i) {
    const auto row = queries_.row(i);
    futures.push_back(server.submit({row.begin(), row.end()}));
  }
  server.shutdown();  // must drain, not drop
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult r = futures[i].get();  // throws if a request was lost
    EXPECT_EQ(r.label, ref.labels[i]);
  }
  EXPECT_EQ(server.stats().completed, queries_.rows());
  // New submissions are refused after shutdown — on the result plane, not
  // via exceptions or blocking: a late blocking submit resolves immediately
  // with kShuttingDown, and try_submit reports the same shed reason.
  const auto row = queries_.row(0);
  std::future<ServeResult> late = server.submit({row.begin(), row.end()});
  EXPECT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.get().status, ServeStatus::kShuttingDown);
  ServeStatus reason = ServeStatus::kOk;
  EXPECT_EQ(server.try_submit({row.begin(), row.end()}, &reason),
            std::nullopt);
  EXPECT_EQ(reason, ServeStatus::kShuttingDown);
}

TEST_F(ServeTest, SnapshotSwapDuringLoadDropsAndCorruptsNothing) {
  // Clones predict identically, so every response must match the reference
  // no matter which generation served it — publication during load must be
  // invisible except for the version stamp.
  const auto snap = snapshot(false, 1);
  const SmoreBatchResult ref = snap->model->predict_batch_full(queries_.view());
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.num_workers = 2;
  InferenceServer server(snap, nullptr, cfg);

  constexpr int kRounds = 6;
  std::atomic<bool> done{false};
  std::uint64_t last_version = 1;
  std::thread publisher([&] {
    std::uint64_t version = 2;
    while (!done.load()) {
      server.publish(ModelSnapshot::make(model_->clone(), false, version));
      last_version = version;
      ++version;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const std::size_t n = queries_.rows();
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<ServeResult>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = queries_.row(i);
      futures.push_back(server.submit({row.begin(), row.end()}));
    }
    for (std::size_t i = 0; i < n; ++i) {
      const ServeResult r = futures[i].get();
      EXPECT_EQ(r.label, ref.labels[i]);
      EXPECT_EQ(r.is_ood, ref.ood[i] != 0);
      EXPECT_GE(r.snapshot_version, 1u);
    }
  }
  done = true;
  publisher.join();
  server.shutdown();
  EXPECT_EQ(server.stats().completed,
            static_cast<std::uint64_t>(kRounds) * n);
  EXPECT_GE(server.stats().snapshot_version, 1u);
  EXPECT_LE(server.stats().snapshot_version, last_version);
}

TEST_F(ServeTest, StalePublishLosesToTheNewerGeneration) {
  // Two publishers race in deployment: an adaptation round built off an old
  // generation must not overwrite an operator's newer model.
  InferenceServer server(snapshot(false, 5), nullptr, {});
  EXPECT_FALSE(server.publish(ModelSnapshot::make(model_->clone(), false, 5)));
  EXPECT_FALSE(server.publish(ModelSnapshot::make(model_->clone(), false, 3)));
  EXPECT_EQ(server.snapshot()->version, 5u);
  EXPECT_TRUE(server.publish(ModelSnapshot::make(model_->clone(), false, 6)));
  EXPECT_EQ(server.snapshot()->version, 6u);
}

TEST_F(ServeTest, PublishRejectsMismatchedSnapshot) {
  InferenceServer server(snapshot(), nullptr, {});
  EXPECT_THROW(server.publish(nullptr), std::invalid_argument);
  SmoreModel other(kClasses, kDim / 2);
  other.fit(separable_hv_dataset(kClasses, kDomains, 4, kDim / 2));
  EXPECT_THROW(server.publish(ModelSnapshot::make(std::move(other), false, 9)),
               std::invalid_argument);
}

TEST_F(ServeTest, ServerBootsFromAPipeline) {
  // One call from deployable artifact to serving: the snapshot takes the
  // pipeline's cloned model, its packed backend (δ* calibration preserved),
  // and shares its encoder for raw-window submission.
  const WindowDataset raw = generate_dataset(tiny_spec());
  EncoderConfig ec;
  ec.dim = kDim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    raw.num_classes());
  pipeline.fit(raw);
  pipeline.quantize();
  const std::vector<int> ref =
      pipeline.predict_batch(raw, ServeBackend::kPacked);

  InferenceServer server(pipeline, {});
  ASSERT_NE(server.snapshot()->backend, nullptr);
  EXPECT_EQ(server.snapshot()->backend->kind(), ServeBackend::kPacked);
  EXPECT_NE(server.snapshot()->encoder, nullptr);
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    futures.push_back(server.submit(raw[i]));
  }
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(futures[i].get().label, ref[i]) << "window " << i;
  }
}

TEST_F(ServeTest, SnapshotRefusesAStalePackedCalibration) {
  // calibrate-then-quantize leaves the packed δ* on the cosine scale;
  // serving it would over-flag OOD and poison every adapted generation.
  const WindowDataset raw = generate_dataset(tiny_spec());
  EncoderConfig ec;
  ec.dim = kDim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    raw.num_classes());
  pipeline.fit(raw);
  pipeline.calibrate(raw, 0.05);
  pipeline.quantize();
  EXPECT_THROW((void)ModelSnapshot::make(pipeline, 1), std::logic_error);
  // The float backend of the same pipeline is fine…
  EXPECT_NE(ModelSnapshot::make(pipeline, 1, /*prefer_packed=*/false),
            nullptr);
  // …and recalibrating repairs the packed one.
  pipeline.calibrate(raw, 0.05);
  EXPECT_EQ(ModelSnapshot::make(pipeline, 1)->backend->kind(),
            ServeBackend::kPacked);
}

TEST_F(ServeTest, SnapshotBootsFromAnArtifactStream) {
  // Disk → serving: a .smore artifact stream yields a complete snapshot
  // (packed backend + encoder) with predictions identical to the writer's.
  const WindowDataset raw = generate_dataset(tiny_spec());
  EncoderConfig ec;
  ec.dim = kDim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    raw.num_classes());
  pipeline.fit(raw);
  pipeline.quantize();
  std::stringstream artifact;
  pipeline.save(artifact);

  const auto snap = ModelSnapshot::from_artifact(artifact, /*version=*/7);
  EXPECT_EQ(snap->version, 7u);
  ASSERT_NE(snap->backend, nullptr);
  EXPECT_EQ(snap->backend->kind(), ServeBackend::kPacked);
  ASSERT_NE(snap->encoder, nullptr);
  EXPECT_EQ(snap->encoder->dim(), kDim);

  InferenceServer server(snap, nullptr, {});  // encoder comes from the snap
  const std::vector<int> ref =
      pipeline.predict_batch(raw, ServeBackend::kPacked);
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    futures.push_back(server.submit(raw[i]));
  }
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(futures[i].get().label, ref[i]) << "window " << i;
  }
}

TEST_F(ServeTest, AdaptationKeepsTheSnapshotShapeAcrossGenerations) {
  // After an adaptation round the published generation must keep the old
  // one's backend kind (re-quantized) and shared encoder — the serving
  // contract does not change under the operator's feet.
  const WindowDataset raw = generate_dataset(tiny_spec());
  EncoderConfig ec;
  ec.dim = kDim;
  Pipeline pipeline(std::make_shared<const MultiSensorEncoder>(ec),
                    raw.num_classes());
  pipeline.fit(raw);
  pipeline.quantize();
  pipeline.calibrate(raw, 0.05);  // packed δ* calibrated on its own scale

  ServerConfig cfg;
  cfg.adaptation = true;
  cfg.adapt_min_batch = 16;
  cfg.adapt_poll_ms = 1;
  InferenceServer server(pipeline, cfg);
  const auto boot = server.snapshot();

  // Far-out-of-distribution cluster (mutually similar, unlike training).
  Rng rng(0x5eed5);
  std::vector<float> proto(kDim);
  for (auto& x : proto) x = static_cast<float>(rng.normal() * 2.0);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    std::vector<float> hv(kDim);
    for (std::size_t j = 0; j < kDim; ++j) {
      hv[j] = proto[j] + static_cast<float>(rng.normal(0.0, 0.2));
    }
    futures.push_back(server.submit(std::move(hv)));
  }
  std::size_t flagged = 0;
  for (auto& f : futures) flagged += f.get().is_ood ? 1 : 0;
  if (flagged >= cfg.adapt_min_batch) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.stats().adaptation_rounds == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  server.shutdown();
  const auto live = server.snapshot();
  if (server.stats().adaptation_rounds > 0) {
    EXPECT_GT(live->version, boot->version);
    ASSERT_NE(live->packed, nullptr);  // re-quantized
    EXPECT_EQ(live->backend->kind(), ServeBackend::kPacked);
    EXPECT_EQ(live->encoder, boot->encoder);  // same shared encoder
    // The Hamming-scale δ* calibration survives re-quantization (a fresh
    // BinarySmoreModel would have reset it to the cosine-scale float δ*).
    EXPECT_DOUBLE_EQ(live->packed->delta_star(), boot->packed->delta_star());
    EXPECT_NE(live->packed->delta_star(),
              live->model->config().delta_star);
  }
}

TEST_F(ServeTest, AdaptationWorkerEnrollsAnUnseenDomainUnderLoad) {
  // Feed a cluster of far-out-of-distribution queries with adaptation on:
  // the worker must clone, enroll them as a new domain, and publish a new
  // generation while serving continues.
  const auto snap = snapshot(false, 1);
  ASSERT_EQ(snap->model->num_domains(), static_cast<std::size_t>(kDomains));
  ServerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_us = 100;
  cfg.adaptation = true;
  cfg.adapt_min_batch = 16;
  cfg.adapt_poll_ms = 1;
  InferenceServer server(snap, nullptr, cfg);

  // An outsider cluster: one shifted prototype + small noise, so the
  // samples are mutually similar (enrollable) but dissimilar to training.
  Rng rng(0x07d001);
  std::vector<float> proto(kDim);
  for (auto& x : proto) x = static_cast<float>(rng.normal() * 2.0);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    std::vector<float> hv(kDim);
    for (std::size_t j = 0; j < kDim; ++j) {
      hv[j] = proto[j] + static_cast<float>(rng.normal(0.0, 0.2));
    }
    futures.push_back(server.submit(std::move(hv)));
  }
  std::size_t flagged = 0;
  for (auto& f : futures) flagged += f.get().is_ood ? 1 : 0;
  ASSERT_GE(flagged, cfg.adapt_min_batch) << "test premise: queries are OOD";

  // The adaptation worker runs asynchronously; give it bounded time.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (server.stats().adaptation_rounds == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  ASSERT_GE(stats.adaptation_rounds, 1u);
  EXPECT_GE(stats.adaptation_absorbed, cfg.adapt_min_batch);
  const auto live = server.snapshot();
  EXPECT_GT(live->version, 1u);
  EXPECT_GT(live->model->num_domains(), static_cast<std::size_t>(kDomains));
}

}  // namespace
}  // namespace smore
