// Unit tests for the synthetic dataset generators: Table 1 fidelity,
// determinism, class separability, and the subject-level distribution shift.

#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

TEST(SyntheticSpecs, DsadsMatchesTable1) {
  const SyntheticSpec spec = dsads_spec(1.0);
  EXPECT_EQ(spec.activities, 19);
  EXPECT_EQ(spec.subjects, 8);
  EXPECT_EQ(spec.num_domains(), 4);
  EXPECT_EQ(spec.channels, 45u);
  EXPECT_EQ(spec.window_steps, 125u);  // 5 s @ 25 Hz
  EXPECT_DOUBLE_EQ(spec.overlap, 0.0);
  ASSERT_EQ(spec.domain_counts.size(), 4u);
  for (const auto n : spec.domain_counts) EXPECT_EQ(n, 2280u);
}

TEST(SyntheticSpecs, UschadMatchesTable1) {
  const SyntheticSpec spec = uschad_spec(1.0);
  EXPECT_EQ(spec.activities, 12);
  EXPECT_EQ(spec.subjects, 14);
  EXPECT_EQ(spec.num_domains(), 5);
  EXPECT_EQ(spec.channels, 6u);
  EXPECT_EQ(spec.window_steps, 126u);
  EXPECT_DOUBLE_EQ(spec.overlap, 0.5);
  const std::vector<std::size_t> expected{8945, 8754, 8534, 8867, 8274};
  EXPECT_EQ(spec.domain_counts, expected);
}

TEST(SyntheticSpecs, Pamap2MatchesTable1) {
  const SyntheticSpec spec = pamap2_spec(1.0);
  EXPECT_EQ(spec.activities, 18);
  EXPECT_EQ(spec.subjects, 8);  // subject nine excluded
  EXPECT_EQ(spec.num_domains(), 4);
  EXPECT_EQ(spec.channels, 27u);
  const std::vector<std::size_t> expected{5636, 5591, 5806, 5660};
  EXPECT_EQ(spec.domain_counts, expected);
}

TEST(SyntheticSpecs, ScaleShrinksCounts) {
  const SyntheticSpec spec = uschad_spec(0.1);
  EXPECT_NEAR(static_cast<double>(spec.domain_counts[0]), 894.5, 1.0);
  EXPECT_THROW(uschad_spec(0.0), std::invalid_argument);
  EXPECT_THROW(uschad_spec(1.5), std::invalid_argument);
}

TEST(Synthetic, GenerateMatchesDomainCountsExactly) {
  const SyntheticSpec spec = tiny_spec(3, 3, 2, 16, 25);
  const WindowDataset ds = generate_dataset(spec);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ(ds.domain_size(d), 25u) << "domain " << d;
  }
  EXPECT_EQ(ds.size(), 75u);
  EXPECT_EQ(ds.num_classes(), 3);
}

TEST(Synthetic, GenerateDeterministic) {
  const SyntheticSpec spec = tiny_spec();
  const WindowDataset a = generate_dataset(spec);
  const WindowDataset b = generate_dataset(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values(), b[i].values());
    EXPECT_EQ(a[i].label(), b[i].label());
  }
}

TEST(Synthetic, SeedChangesData) {
  SyntheticSpec s1 = tiny_spec();
  SyntheticSpec s2 = tiny_spec();
  s2.seed = s1.seed + 1;
  const WindowDataset a = generate_dataset(s1);
  const WindowDataset b = generate_dataset(s2);
  EXPECT_NE(a[0].values(), b[0].values());
}

TEST(Synthetic, ValidatesSpecConsistency) {
  SyntheticSpec spec = tiny_spec(2, 2);
  spec.subject_to_domain = {0};  // wrong arity
  EXPECT_THROW(generate_dataset(spec), std::invalid_argument);
  spec = tiny_spec(2, 2);
  spec.domain_counts = {10};  // wrong arity
  EXPECT_THROW(generate_dataset(spec), std::invalid_argument);
}

TEST(Synthetic, StreamValidatesIds) {
  const SyntheticSpec spec = tiny_spec();
  EXPECT_THROW(generate_stream(spec, -1, 0, 32), std::invalid_argument);
  EXPECT_THROW(generate_stream(spec, 0, 99, 32), std::invalid_argument);
}

TEST(Synthetic, SignalsAreFiniteAndNonConstant) {
  const SyntheticSpec spec = tiny_spec();
  const auto stream = generate_stream(spec, 0, 0, 128);
  for (std::size_t c = 0; c < spec.channels; ++c) {
    const auto ch = stream.channel(c);
    float mn = ch[0];
    float mx = ch[0];
    for (const float v : ch) {
      ASSERT_TRUE(std::isfinite(v));
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    EXPECT_GT(mx - mn, 1e-3f) << "channel " << c << " is flat";
  }
}

TEST(Synthetic, ActivitiesAreDistinguishable) {
  // Same subject, two activities: windows must differ far more across
  // activities than the noise floor within one activity.
  const SyntheticSpec spec = tiny_spec(3, 1, 2, 64, 10);
  const auto s0 = generate_stream(spec, 0, 0, 64);
  const auto s1 = generate_stream(spec, 0, 1, 64);
  double diff = 0.0;
  for (std::size_t c = 0; c < spec.channels; ++c) {
    for (std::size_t t = 0; t < 64; ++t) {
      diff += std::abs(s0.channel(c)[t] - s1.channel(c)[t]);
    }
  }
  EXPECT_GT(diff / (spec.channels * 64), 0.2);
}

TEST(Synthetic, SubjectShiftChangesStatistics) {
  // Same activity, two subjects: per-channel means/amplitudes must shift.
  SyntheticSpec spec = tiny_spec(2, 2, 3, 64, 10);
  spec.domain_shift = 1.5;
  const auto a = generate_stream(spec, 0, 0, 512);
  const auto b = generate_stream(spec, 1, 0, 512);
  double total_mean_shift = 0.0;
  for (std::size_t c = 0; c < spec.channels; ++c) {
    double ma = 0.0;
    double mb = 0.0;
    for (const float v : a.channel(c)) ma += v;
    for (const float v : b.channel(c)) mb += v;
    total_mean_shift += std::abs(ma - mb) / 512.0;
  }
  EXPECT_GT(total_mean_shift / spec.channels, 0.05);
}

TEST(Synthetic, DomainShiftKnobMonotone) {
  // Stronger shift setting widens the gap between subjects.
  auto gap_at = [](double beta) {
    SyntheticSpec spec = tiny_spec(1, 2, 2, 64, 10, 0x777);
    spec.domain_shift = beta;
    const auto a = generate_stream(spec, 0, 0, 256);
    const auto b = generate_stream(spec, 1, 0, 256);
    double gap = 0.0;
    for (std::size_t c = 0; c < spec.channels; ++c) {
      for (std::size_t t = 0; t < 256; ++t) {
        gap += std::abs(a.channel(c)[t] - b.channel(c)[t]);
      }
    }
    return gap;
  };
  EXPECT_LT(gap_at(0.2), gap_at(3.0));
}

TEST(Synthetic, MetadataPropagates) {
  const SyntheticSpec spec = tiny_spec(2, 3, 1, 16, 9);
  const WindowDataset ds = generate_dataset(spec);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_GE(ds[i].label(), 0);
    EXPECT_LT(ds[i].label(), 2);
    EXPECT_GE(ds[i].domain(), 0);
    EXPECT_LT(ds[i].domain(), 3);
    EXPECT_EQ(ds[i].subject(), ds[i].domain());  // tiny spec: 1 subject/domain
  }
}

TEST(Synthetic, OverlapProducesMoreWindowsFromSameStream) {
  SyntheticSpec spec = tiny_spec(1, 1, 1, 32, 20);
  spec.overlap = 0.5;
  const WindowDataset half = generate_dataset(spec);
  EXPECT_EQ(half.size(), 20u);  // generator still hits the target exactly
}

}  // namespace
}  // namespace smore
