// Unit tests for the serving-runtime utilities that do not need a model:
// the latency histogram and the bounded MPMC request queue.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/latency.hpp"
#include "util/mpmc_queue.hpp"

namespace smore {
namespace {

using namespace std::chrono_literals;

TEST(LatencyHistogram, EmptyReportsZeros) {
  const LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
  EXPECT_EQ(h.mean_seconds(), 0.0);
}

TEST(LatencyHistogram, ExactStatsSurviveBucketing) {
  LatencyHistogram h;
  h.record(1e-3);
  h.record(5e-3);
  h.record(20e-3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 20e-3);
  EXPECT_NEAR(h.mean_seconds(), (1e-3 + 5e-3 + 20e-3) / 3.0, 1e-12);
}

TEST(LatencyHistogram, PercentilesWithinBucketResolution) {
  // 99 observations at ~1 ms and one at ~100 ms: p50 must sit at 1 ms and
  // p99 still at 1 ms (rank 99 of 100), while the max reports 100 ms.
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(1e-3);
  h.record(100e-3);
  // Buckets are ~9% wide; allow 10% relative slack.
  EXPECT_NEAR(h.p50(), 1e-3, 1e-4);
  EXPECT_NEAR(h.p99(), 1e-3, 1e-4);
  EXPECT_NEAR(h.quantile(1.0), 100e-3, 1e-12);  // exact max
  EXPECT_NEAR(h.quantile(0.0), 1e-3, 1e-12);    // exact min
}

TEST(LatencyHistogram, TailPercentileFindsTheSlowRequests) {
  LatencyHistogram h;
  for (int i = 0; i < 90; ++i) h.record(2e-3);
  for (int i = 0; i < 10; ++i) h.record(50e-3);
  EXPECT_NEAR(h.p50(), 2e-3, 2e-4);
  EXPECT_NEAR(h.p95(), 50e-3, 5e-3);
  EXPECT_NEAR(h.p99(), 50e-3, 5e-3);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording) {
  LatencyHistogram a;
  LatencyHistogram b;
  LatencyHistogram combined;
  for (int i = 0; i < 50; ++i) {
    const double fast = 1e-4 * (1 + i % 7);
    const double slow = 1e-2 * (1 + i % 3);
    a.record(fast);
    b.record(slow);
    combined.record(fast);
    combined.record(slow);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.min_seconds(), combined.min_seconds());
  EXPECT_DOUBLE_EQ(a.max_seconds(), combined.max_seconds());
  EXPECT_DOUBLE_EQ(a.mean_seconds(), combined.mean_seconds());
  EXPECT_DOUBLE_EQ(a.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(a.p99(), combined.p99());
}

TEST(LatencyHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.record(-1.0);    // floor bucket
  h.record(1e-9);    // below 1 µs → floor bucket
  h.record(1e6);     // above range → ceiling bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_of(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1e6),
            LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, BucketMidpointsAreMonotonic) {
  for (std::size_t b = 1; b < LatencyHistogram::kBuckets; ++b) {
    EXPECT_LT(LatencyHistogram::bucket_mid(b - 1),
              LatencyHistogram::bucket_mid(b));
  }
}

// ---------------------------------------------------------------- MpmcQueue

TEST(MpmcQueue, ZeroCapacityThrows) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, PopBatchReturnsUpToMaxBatchInFifoOrder) {
  MpmcQueue<int> q(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4, 0us), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.pop_batch(out, 100, 0us), 6u);
  EXPECT_EQ(out.size(), 10u);
  EXPECT_EQ(out.back(), 9);
}

TEST(MpmcQueue, TryPushRefusesWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), QueuePush::kAccepted);
  EXPECT_EQ(q.try_push(2), QueuePush::kAccepted);
  // The refusal names its reason — the queue's own atomic decision, which
  // shed-reason reporting relies on (no racy closed() re-read).
  EXPECT_EQ(q.try_push(3), QueuePush::kFull);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 1, 0us), 1u);
  EXPECT_EQ(q.try_push(3), QueuePush::kAccepted);  // capacity freed
}

TEST(MpmcQueue, CloseDrainsThenReportsExhaustion) {
  MpmcQueue<int> q(8);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));      // refused after close
  EXPECT_EQ(q.try_push(9), QueuePush::kClosed);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4, 1000us), 1u);  // drains the remainder
  EXPECT_EQ(out, std::vector<int>{7});
  EXPECT_EQ(q.pop_batch(out, 4, 1000us), 0u);  // exhausted
}

TEST(MpmcQueue, PopBatchWaitsForDelayedProducers) {
  MpmcQueue<int> q(8);
  std::thread producer([&q] {
    std::this_thread::sleep_for(5ms);
    q.push(1);
    q.push(2);
  });
  std::vector<int> out;
  // max_delay long enough to catch both pushes after the first arrives.
  const std::size_t n = q.pop_batch(out, 2, 500000us);
  producer.join();
  EXPECT_EQ(n, 2u);
}

TEST(MpmcQueue, BlockedPushWakesWhenCapacityFrees) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);  // blocks until the consumer pops
    pushed = true;
  });
  std::this_thread::sleep_for(2ms);
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  EXPECT_GE(q.pop_batch(out, 1, 0us), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(MpmcQueue, BatchGrowsPastRingCapacityDuringDelayWindow) {
  // Regression: capacity freed by take() must be signaled to blocked
  // producers DURING the straggler wait, or a ring smaller than max_batch
  // could never fill a batch past the ring size per delay window.
  MpmcQueue<int> q(4);
  std::thread producer([&q] {
    for (int i = 0; i < 16; ++i) ASSERT_TRUE(q.push(i));  // blocks at 4
  });
  std::vector<int> out;
  const std::size_t n = q.pop_batch(out, 16, 2000000us);
  producer.join();
  EXPECT_EQ(n, 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(MpmcQueue, ManyProducersOneConsumerLosesNothing) {
  MpmcQueue<int> q(32);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> out;
  while (out.size() < kProducers * kPerProducer) {
    q.pop_batch(out, 16, 1000us);
  }
  for (auto& t : producers) t.join();
  std::vector<bool> seen(kProducers * kPerProducer, false);
  for (const int v : out) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

}  // namespace
}  // namespace smore
