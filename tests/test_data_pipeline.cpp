// Unit tests for normalization and cross-validation splits.

#include "data/dataset.hpp"
#include "data/normalize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "test_util.hpp"

namespace smore {
namespace {

using testing::tiny_spec;

WindowDataset shifted_dataset() {
  // Channel 0 centered at 10 with spread, channel 1 centered at -5.
  WindowDataset ds("n", 2, 8);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    Window w(2, 8);
    for (std::size_t t = 0; t < 8; ++t) {
      w.set(0, t, static_cast<float>(10.0 + 2.0 * rng.normal()));
      w.set(1, t, static_cast<float>(-5.0 + 0.5 * rng.normal()));
    }
    w.set_label(i % 2);
    w.set_domain(i % 4);
    ds.add(w);
  }
  return ds;
}

TEST(Normalizer, FitApplyZeroMeanUnitVar) {
  const WindowDataset ds = shifted_dataset();
  ChannelNormalizer norm;
  norm.fit(ds);
  const WindowDataset out = norm.transform(ds);

  // Aggregate statistics of the transformed data must be ~N(0,1) per channel.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      for (const float v : out[i].channel(c)) {
        sum += v;
        sum_sq += static_cast<double>(v) * v;
        ++n;
      }
    }
    const double mean = sum / static_cast<double>(n);
    const double var = sum_sq / static_cast<double>(n) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(Normalizer, UsesOnlyTrainingIndices) {
  const WindowDataset ds = shifted_dataset();
  ChannelNormalizer all;
  all.fit(ds);
  ChannelNormalizer subset;
  subset.fit(ds, {0, 1, 2});
  // Different statistics bases -> different parameters (no silent leakage of
  // the full set).
  EXPECT_NE(all.mean()[0], subset.mean()[0]);
}

TEST(Normalizer, ConstantChannelGetsUnitStd) {
  WindowDataset ds("c", 1, 4);
  Window w(1, 4);
  for (std::size_t t = 0; t < 4; ++t) w.set(0, t, 2.0f);
  ds.add(w);
  ChannelNormalizer norm;
  norm.fit(ds);
  EXPECT_FLOAT_EQ(norm.stddev()[0], 1.0f);
  const WindowDataset out = norm.transform(ds);
  EXPECT_FLOAT_EQ(out[0].at(0, 0), 0.0f);  // (2-2)/1
}

TEST(Normalizer, ApplyBeforeFitThrows) {
  ChannelNormalizer norm;
  Window w(1, 4);
  EXPECT_THROW(norm.apply(w), std::logic_error);
}

TEST(Normalizer, EmptyFitThrows) {
  const WindowDataset ds = shifted_dataset();
  ChannelNormalizer norm;
  EXPECT_THROW(norm.fit(ds, {}), std::invalid_argument);
}

TEST(Normalizer, ChannelMismatchThrows) {
  const WindowDataset ds = shifted_dataset();
  ChannelNormalizer norm;
  norm.fit(ds);
  Window w(3, 8);
  EXPECT_THROW(norm.apply(w), std::invalid_argument);
}

// ----- splits -----

TEST(Splits, LodoPartitionsByDomain) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 3, 1, 16, 12));
  const Split split = lodo_split(ds, 1);
  EXPECT_EQ(split.test.size(), ds.domain_size(1));
  EXPECT_EQ(split.train.size() + split.test.size(), ds.size());
  for (const std::size_t i : split.test) EXPECT_EQ(ds[i].domain(), 1);
  for (const std::size_t i : split.train) EXPECT_NE(ds[i].domain(), 1);
}

TEST(Splits, LodoMissingDomainThrows) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 3, 1, 16, 12));
  EXPECT_THROW(lodo_split(ds, 17), std::invalid_argument);
}

TEST(Splits, LodoFoldsCoverEveryDomainOnce) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 4, 1, 16, 10));
  const auto folds = lodo_folds(ds);
  ASSERT_EQ(folds.size(), 4u);
  std::size_t total_test = 0;
  for (const auto& f : folds) total_test += f.test.size();
  EXPECT_EQ(total_test, ds.size());  // each window held out exactly once
}

TEST(Splits, KfoldPartitionsAreDisjointAndComplete) {
  const auto folds = kfold_splits(100, 5, 7);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all_test;
  for (const auto& f : folds) {
    EXPECT_EQ(f.train.size() + f.test.size(), 100u);
    for (const std::size_t i : f.test) {
      EXPECT_TRUE(all_test.insert(i).second) << "index tested twice";
    }
    // train ∩ test = ∅
    std::set<std::size_t> train_set(f.train.begin(), f.train.end());
    for (const std::size_t i : f.test) {
      EXPECT_EQ(train_set.count(i), 0u);
    }
  }
  EXPECT_EQ(all_test.size(), 100u);
}

TEST(Splits, KfoldValidatesArguments) {
  EXPECT_THROW(kfold_splits(10, 1, 0), std::invalid_argument);
  EXPECT_THROW(kfold_splits(3, 5, 0), std::invalid_argument);
}

TEST(Splits, KfoldDeterministicBySeed) {
  const auto a = kfold_splits(50, 5, 9);
  const auto b = kfold_splits(50, 5, 9);
  const auto c = kfold_splits(50, 5, 10);
  EXPECT_EQ(a[0].test, b[0].test);
  EXPECT_NE(a[0].test, c[0].test);
}

TEST(Splits, StratifiedSubsampleKeepsCellBalance) {
  const WindowDataset ds = generate_dataset(tiny_spec(3, 3, 1, 16, 30));
  const auto keep = stratified_subsample(ds, 0.5, 3);
  // Every (domain,label) cell is halved (±1 rounding).
  std::map<std::pair<int, int>, int> full;
  std::map<std::pair<int, int>, int> kept;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    ++full[{ds[i].domain(), ds[i].label()}];
  }
  for (const std::size_t i : keep) {
    ++kept[{ds[i].domain(), ds[i].label()}];
  }
  for (const auto& [cell, n] : full) {
    EXPECT_NEAR(kept[cell], n * 0.5, 1.0);
  }
}

TEST(Splits, StratifiedSubsampleFullFractionIdentity) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 2, 1, 16, 10));
  const auto keep = stratified_subsample(ds, 1.0, 3);
  EXPECT_EQ(keep.size(), ds.size());
}

TEST(Splits, StratifiedSubsampleValidatesFraction) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 2, 1, 16, 10));
  EXPECT_THROW(stratified_subsample(ds, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(stratified_subsample(ds, 1.5, 1), std::invalid_argument);
}

TEST(Splits, TakeMaterializesSelection) {
  const WindowDataset ds = generate_dataset(tiny_spec(2, 2, 1, 16, 10));
  const WindowDataset sub = take(ds, {0, 3, 5});
  ASSERT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub[1].label(), ds[3].label());
  EXPECT_THROW(take(ds, {ds.size()}), std::out_of_range);
}

}  // namespace
}  // namespace smore
