// Equivalence tests for the batched encoding engine: encode_batch must agree
// with the per-window scalar paths BIT FOR BIT for both encoders, for any
// thread count, in every encoder mode (banked fast path, paper-literal
// per-window random basis, continuous interpolation, multi-scale dilations),
// plus the empty-dataset / single-window edges and the Encoder interface
// plumbing (encode_one, encode_dataset metadata, HvDataset::adopt). Mirrors
// tests/test_batch_similarity.cpp on the encode side.

#include "hdc/encoder.hpp"
#include "hdc/encoder_base.hpp"
#include "hdc/hv_matrix.hpp"
#include "hdc/ops.hpp"
#include "hdc/projection_encoder.hpp"
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace smore {
namespace {

WindowDataset random_windows(std::size_t n, std::size_t channels,
                             std::size_t steps, std::uint64_t seed = 0xda7a) {
  Rng rng(seed);
  WindowDataset ds("batch-encode", channels, steps);
  for (std::size_t i = 0; i < n; ++i) {
    Window w(channels, steps);
    for (float& v : w.values()) v = rng.uniform_f(-2.0f, 2.0f);
    w.set_label(static_cast<int>(i % 3));
    w.set_domain(static_cast<int>(i % 2));
    ds.add(w);
  }
  return ds;
}

/// Batch rows must equal the scalar reference encode(window, scratch, i)
/// exactly (no tolerance), with and without the thread pool.
void expect_batch_matches_scalar(const MultiSensorEncoder& enc,
                                 const WindowDataset& ds) {
  HvMatrix serial;
  HvMatrix pooled;
  enc.encode_batch(ds, serial, /*parallel=*/false);
  enc.encode_batch(ds, pooled, /*parallel=*/true);
  ASSERT_EQ(serial.rows(), ds.size());
  ASSERT_EQ(serial.dim(), enc.dim());
  EncodeScratch scratch;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Hypervector ref = enc.encode(ds[i], scratch, i);
    EXPECT_EQ(std::memcmp(ref.data(), serial.row(i).data(),
                          enc.dim() * sizeof(float)),
              0)
        << "serial row " << i;
    EXPECT_EQ(std::memcmp(ref.data(), pooled.row(i).data(),
                          enc.dim() * sizeof(float)),
              0)
        << "pooled row " << i;
  }
}

TEST(BatchEncode, BankedPathMatchesScalarBitwise) {
  EncoderConfig cfg;
  cfg.dim = 1024;
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(67, 3, 32));
}

TEST(BatchEncode, MultiScaleDilationsMatchScalarBitwise) {
  EncoderConfig cfg;
  cfg.dim = 512;
  cfg.ngram_dilations = {2, 4, 8};
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(33, 2, 48));
}

TEST(BatchEncode, PerWindowRandomBaseMatchesScalarBitwise) {
  // Ablation mode: no bank (fresh bases per window); the batch path must
  // still match, including the salt = row index convention.
  EncoderConfig cfg;
  cfg.dim = 512;
  cfg.per_window_random_base = true;
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(20, 2, 24));
}

TEST(BatchEncode, ContinuousInterpolationMatchesScalarBitwise) {
  // Q = 0 (paper-literal lerp levels): not bankable, reference fallback.
  EncoderConfig cfg;
  cfg.dim = 512;
  cfg.quantization_levels = 0;
  cfg.antipodal_base = false;
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(20, 2, 24));
}

TEST(BatchEncode, LongGramFallsBackAndMatches) {
  // ngram beyond the fused kernel's factor cap: reference fallback.
  EncoderConfig cfg;
  cfg.dim = 256;
  cfg.ngram = ops::kNgramFusedMaxFactors + 2;
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(8, 1, 40));
}

TEST(BatchEncode, ConstantAndShortWindows) {
  // Flat signal (inv_range = 0) and steps < ngram span: the banked kernel
  // must clamp exactly like the scalar path.
  EncoderConfig cfg;
  cfg.dim = 512;
  cfg.ngram = 8;
  const MultiSensorEncoder enc(cfg);
  WindowDataset ds("edge", 2, 4);
  Window flat(2, 4);
  for (float& v : flat.values()) v = 3.5f;
  ds.add(flat);
  Window ramp(2, 4);
  for (std::size_t t = 0; t < 4; ++t) {
    ramp.set(0, t, static_cast<float>(t));
    ramp.set(1, t, -static_cast<float>(t));
  }
  ds.add(ramp);
  expect_batch_matches_scalar(enc, ds);
}

TEST(BatchEncode, SingleWindowBatch) {
  EncoderConfig cfg;
  cfg.dim = 512;
  const MultiSensorEncoder enc(cfg);
  expect_batch_matches_scalar(enc, random_windows(1, 2, 32));
}

TEST(BatchEncode, EmptyDataset) {
  EncoderConfig cfg;
  cfg.dim = 512;
  const MultiSensorEncoder enc(cfg);
  HvMatrix out(3, 7);  // stale shape: must be reset
  enc.encode_batch(random_windows(0, 2, 32), out);
  EXPECT_EQ(out.rows(), 0u);
  EXPECT_EQ(out.dim(), 512u);
  const HvDataset encoded = enc.encode_dataset(random_windows(0, 2, 32));
  EXPECT_TRUE(encoded.empty());
  EXPECT_EQ(encoded.dim(), 512u);
}

TEST(BatchEncode, EncodeOneMatchesSaltZeroScalar) {
  EncoderConfig cfg;
  cfg.dim = 512;
  const MultiSensorEncoder enc(cfg);
  const WindowDataset ds = random_windows(1, 2, 32);
  const Hypervector via_iface = enc.encode_one(ds[0]);
  const Hypervector via_scalar = enc.encode(ds[0], /*salt=*/0);
  EXPECT_EQ(via_iface, via_scalar);
  const Encoder& base = enc;
  EXPECT_THROW((void)base.encode_one(Window{}), std::invalid_argument);
}

TEST(BatchEncode, EncodeDatasetCarriesMetadataAndRows) {
  EncoderConfig cfg;
  cfg.dim = 512;
  const MultiSensorEncoder enc(cfg);
  const WindowDataset ds = random_windows(9, 2, 24);
  const HvDataset encoded = enc.encode_dataset(ds);
  HvMatrix block;
  enc.encode_batch(ds, block);
  ASSERT_EQ(encoded.size(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(encoded.label(i), ds[i].label());
    EXPECT_EQ(encoded.domain(i), ds[i].domain());
    EXPECT_EQ(std::memcmp(encoded.row(i).data(), block.row(i).data(),
                          cfg.dim * sizeof(float)),
              0)
        << "row " << i;
  }
}

TEST(BatchEncode, AdoptRejectsMisalignedMetadata) {
  HvMatrix block(3, 8);
  EXPECT_THROW(HvDataset::adopt(std::move(block), std::vector<int>(2, 0),
                                std::vector<int>(3, 0)),
               std::invalid_argument);
}

// ---------------------------------------------------------- projection side

TEST(BatchEncodeProjection, CosFastMatchesLibm) {
  // The epilogue cosine: Cody-Waite + Taylor must track libm far below the
  // float output resolution over the whole plausible projection range.
  double max_err = 0.0;
  for (double x = -50.0; x <= 50.0; x += 1e-3) {
    const double err =
        std::fabs(static_cast<double>(ops::cos_fast(x)) - std::cos(x));
    if (err > max_err) max_err = err;
  }
  EXPECT_LT(max_err, 1e-7);  // float cast dominates; double error ~2e-14
}

TEST(BatchEncodeProjection, BatchMatchesScalarBitwise) {
  ProjectionEncoderConfig cfg;
  cfg.dim = 1024;
  const ProjectionEncoder enc(cfg);
  const WindowDataset ds = random_windows(67, 2, 16);
  HvMatrix serial;
  HvMatrix pooled;
  enc.encode_batch(ds, serial, /*parallel=*/false);
  enc.encode_batch(ds, pooled, /*parallel=*/true);
  ASSERT_EQ(serial.rows(), ds.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Hypervector ref = enc.encode(ds[i]);
    EXPECT_EQ(std::memcmp(ref.data(), serial.row(i).data(),
                          cfg.dim * sizeof(float)),
              0)
        << "serial row " << i;
    EXPECT_EQ(std::memcmp(ref.data(), pooled.row(i).data(),
                          cfg.dim * sizeof(float)),
              0)
        << "pooled row " << i;
  }
}

TEST(BatchEncodeProjection, MatchesLegacyRowDotsWithinTolerance) {
  // Independent numerical reference: the pre-refactor loop (bias + one
  // ops::dot per output dimension). The batch kernel accumulates in a
  // different order, so equality is to rounding, not bitwise.
  ProjectionEncoderConfig cfg;
  cfg.dim = 256;
  const ProjectionEncoder enc(cfg);
  const WindowDataset ds = random_windows(5, 2, 12);
  const std::size_t features = 2 * 12;
  Rng rng(cfg.seed);
  std::vector<float> w(cfg.dim * features);
  std::vector<float> b(cfg.dim);
  const double scale = 1.0 / std::sqrt(static_cast<double>(features));
  for (auto& x : w) x = static_cast<float>(rng.normal(0.0, scale));
  for (auto& x : b) {
    x = static_cast<float>(rng.uniform(0.0, 2.0 * 3.14159265358979323846));
  }
  HvMatrix batch;
  enc.encode_batch(ds, batch);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const float* x = ds[i].values().data();
    for (std::size_t j = 0; j < cfg.dim; ++j) {
      const double ref =
          std::cos(b[j] + ops::dot(w.data() + j * features, x, features));
      EXPECT_NEAR(batch.row(i)[j], ref, 1e-6) << i << "," << j;
    }
  }
}

TEST(BatchEncodeProjection, EmptyAndShapeMismatch) {
  ProjectionEncoderConfig cfg;
  cfg.dim = 128;
  const ProjectionEncoder enc(cfg);
  const HvDataset empty = enc.encode_dataset(WindowDataset("e", 2, 8));
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.dim(), 128u);
  (void)enc.encode_one(random_windows(1, 2, 8)[0]);
  HvMatrix out;
  EXPECT_THROW(enc.encode_batch(random_windows(2, 3, 8), out),
               std::invalid_argument);
}

TEST(BatchEncodeProjection, ConcurrentFirstEncodeIsSafe) {
  // Regression for the lazy-init data race: the very first encodes arrive
  // from worker threads simultaneously; std::call_once must serialize the
  // materialization and every thread must see the same projection.
  ProjectionEncoderConfig cfg;
  cfg.dim = 256;
  const ProjectionEncoder enc(cfg);
  const WindowDataset ds = random_windows(32, 2, 16);
  std::vector<Hypervector> results(ds.size(), Hypervector(cfg.dim));
  parallel_for(ds.size(), [&](std::size_t i) { results[i] = enc.encode(ds[i]); });
  const Hypervector ref = enc.encode(ds[0]);
  EXPECT_EQ(results[0], ref);
  HvMatrix batch;
  enc.encode_batch(ds, batch);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(std::memcmp(results[i].data(), batch.row(i).data(),
                          cfg.dim * sizeof(float)),
              0)
        << "row " << i;
  }
}

// Interface-level check: consumers can hold any encoder behind Encoder&.
TEST(EncoderInterface, PolymorphicEncodeDataset) {
  EncoderConfig mc;
  mc.dim = 256;
  const MultiSensorEncoder multi(mc);
  ProjectionEncoderConfig pc;
  pc.dim = 256;
  const ProjectionEncoder proj(pc);
  const WindowDataset ds = random_windows(6, 2, 16);
  for (const Encoder* enc : {static_cast<const Encoder*>(&multi),
                             static_cast<const Encoder*>(&proj)}) {
    const HvDataset encoded = enc->encode_dataset(ds);
    ASSERT_EQ(encoded.size(), ds.size());
    EXPECT_EQ(encoded.dim(), 256u);
    for (std::size_t i = 0; i < ds.size(); ++i) {
      EXPECT_EQ(encoded.label(i), ds[i].label());
    }
  }
}

}  // namespace
}  // namespace smore
