// Unit tests for the evaluation layer: metrics, edge-device model, reporting.

#include "eval/edge_model.hpp"
#include "eval/metrics.hpp"
#include "eval/reporting.hpp"
#include "eval/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace smore {
namespace {

TEST(ConfusionMatrixTest, RejectsBadConstruction) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
}

TEST(ConfusionMatrixTest, RecordsAndCounts) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  cm.record(0, 1);
  cm.record(1, 1);
  cm.record(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.at(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, RejectsOutOfRangeLabels) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.record(2, 0), std::invalid_argument);
  EXPECT_THROW(cm.record(0, -1), std::invalid_argument);
  EXPECT_THROW((void)cm.at(5, 0), std::invalid_argument);
}

TEST(ConfusionMatrixTest, PrecisionRecallF1) {
  ConfusionMatrix cm(2);
  // class 1: TP=2, FP=1, FN=1
  cm.record(1, 1);
  cm.record(1, 1);
  cm.record(1, 0);  // FN for class 1
  cm.record(0, 1);  // FP for class 1
  cm.record(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 2.0 / 3.0);
  EXPECT_NEAR(cm.f1(1), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, DegenerateClassesScoreZero) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(2), 0.0);  // never predicted
  EXPECT_DOUBLE_EQ(cm.recall(2), 0.0);     // never occurred
  EXPECT_DOUBLE_EQ(cm.f1(2), 0.0);
}

TEST(ConfusionMatrixTest, MacroF1IgnoresAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.record(0, 0);
  cm.record(1, 1);
  // class 2 never occurs: macro over classes 0 and 1 -> F1 = 1.
  EXPECT_DOUBLE_EQ(cm.macro_f1(), 1.0);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.record(0, 1);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("2 classes"), std::string::npos);
}

TEST(AccuracyScore, BasicAndValidation) {
  EXPECT_DOUBLE_EQ(accuracy_score({1, 2, 3}, {1, 0, 3}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(accuracy_score({}, {}), 0.0);
  EXPECT_THROW((void)accuracy_score({1}, {1, 2}), std::invalid_argument);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, ScopedTimerAccumulates) {
  double acc = 0.0;
  {
    ScopedTimer s(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  {
    ScopedTimer s(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(acc, 0.015);
}

TEST(EdgeModel, PlatformsMatchPaperSetup) {
  const auto platforms = paper_edge_platforms();
  ASSERT_EQ(platforms.size(), 2u);
  EXPECT_EQ(platforms[0].name, "Raspberry Pi 3B+");
  EXPECT_DOUBLE_EQ(platforms[0].power_watts, 5.0);
  EXPECT_EQ(platforms[1].name, "Jetson Nano");
  EXPECT_DOUBLE_EQ(platforms[1].power_watts, 10.0);
}

TEST(EdgeModel, CnnPenaltyExceedsHdcPenalty) {
  // The property Fig. 6b rests on: CNN inference degrades more on edge
  // devices than HDC inference.
  for (const auto& p : paper_edge_platforms()) {
    EXPECT_GT(p.cnn_slowdown, p.hdc_slowdown) << p.name;
    EXPECT_GT(p.hdc_slowdown, 1.0) << p.name;
  }
}

TEST(EdgeModel, ProjectionArithmetic) {
  const EdgePlatform rpi = raspberry_pi3();
  const double latency = rpi.project_latency(2.0, WorkloadKind::kHdcInference);
  EXPECT_DOUBLE_EQ(latency, 2.0 * rpi.hdc_slowdown);
  EXPECT_DOUBLE_EQ(rpi.project_energy(2.0, WorkloadKind::kHdcInference),
                   latency * rpi.power_watts);
}

TEST(EdgeModel, JetsonCnnFasterThanPi) {
  // The GPU should make Jetson's CNN projection faster than the Pi's.
  EXPECT_LT(jetson_nano().cnn_slowdown, raspberry_pi3().cnn_slowdown);
}

TEST(Reporting, TableAlignsAndValidates) {
  TablePrinter table({"name", "value"});
  table.row({"alpha", "1"});
  table.row_numeric("beta", {2.5}, 1);
  const std::string s = table.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_THROW(table.row({"too", "many", "fields"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

TEST(Reporting, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_speedup(18.814, 2), "18.81x");
}

}  // namespace
}  // namespace smore
