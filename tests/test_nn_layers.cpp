// Unit tests for every layer: shape contracts plus numerical gradient checks
// (central differences against the analytic backward pass).

#include "nn/layers.hpp"
#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "util/rng.hpp"

namespace smore::nn {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng,
                     float scale = 1.0f) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform_f(-scale, scale);
  }
  return t;
}

/// Scalar objective: 0.5 * Σ y² of the layer output for a fixed input.
/// Numerically differentiates w.r.t. one input element or one parameter
/// element and compares against the analytic backward result.
void check_gradients(Layer& layer, const Tensor& x, bool training = true,
                     double tol = 2e-2) {
  auto objective = [&](const Tensor& input) {
    Tensor mutable_input = input;  // forward may cache; keep x intact
    const Tensor y = layer.forward(mutable_input, training);
    double s = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
      s += 0.5 * static_cast<double>(y[i]) * y[i];
    }
    return s;
  };

  // Analytic gradients: dL/dy = y.
  Tensor x_copy = x;
  const Tensor y = layer.forward(x_copy, training);
  for (Param* p : layer.params()) p->zero_grad();
  const Tensor grad_in = layer.backward(y);

  Rng pick(0x9c);
  const float eps = 1e-2f;

  // Input gradient at a handful of sampled coordinates.
  Tensor probe = x;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t i = pick.index(probe.size());
    const float saved = probe[i];
    probe[i] = saved + eps;
    const double hi = objective(probe);
    probe[i] = saved - eps;
    const double lo = objective(probe);
    probe[i] = saved;
    const double numeric = (hi - lo) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients.
  for (Param* p : layer.params()) {
    for (int trial = 0; trial < 4; ++trial) {
      const std::size_t i = pick.index(p->value.size());
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double hi = objective(x);
      p->value[i] = saved - eps;
      const double lo = objective(x);
      p->value[i] = saved;
      const double numeric = (hi - lo) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * std::max(1.0, std::abs(numeric)))
          << "param grad mismatch at " << i;
    }
  }
}

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(1);
  Dense layer(3, 2, rng);
  // Zero input -> output equals bias (initialized to 0).
  Tensor x = Tensor::matrix(4, 3);
  const Tensor y = layer.forward(x, true);
  EXPECT_EQ(y.dim(0), 4u);
  EXPECT_EQ(y.dim(1), 2u);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 0.0f);
}

TEST(Dense, RejectsWrongInput) {
  Rng rng(1);
  Dense layer(3, 2, rng);
  Tensor bad = Tensor::matrix(4, 5);
  EXPECT_THROW(layer.forward(bad, true), std::invalid_argument);
  EXPECT_THROW(Dense(0, 2, rng), std::invalid_argument);
}

TEST(Dense, GradientCheck) {
  Rng rng(2);
  Dense layer(5, 4, rng);
  check_gradients(layer, random_tensor({3, 5}, rng));
}

TEST(Conv1D, SamePaddingKeepsLength) {
  Rng rng(3);
  Conv1D layer(2, 4, 5, 1, rng);
  const Tensor y = layer.forward(random_tensor({2, 2, 16}, rng), true);
  EXPECT_EQ(y.dim(0), 2u);
  EXPECT_EQ(y.dim(1), 4u);
  EXPECT_EQ(y.dim(2), 16u);
}

TEST(Conv1D, StrideDownsamples) {
  Rng rng(3);
  Conv1D layer(2, 4, 3, 2, rng);
  const Tensor y = layer.forward(random_tensor({1, 2, 15}, rng), true);
  EXPECT_EQ(y.dim(2), 8u);  // ceil(15/2)
}

TEST(Conv1D, KnownTinyConvolution) {
  // 1 channel, kernel 3 (pad 1), identity-like weight [0, 1, 0] => output
  // equals input.
  Rng rng(4);
  Conv1D layer(1, 1, 3, 1, rng);
  for (Param* p : layer.params()) p->value.fill(0.0f);
  layer.params()[0]->value[1] = 1.0f;  // center tap
  Tensor x = Tensor::cube(1, 1, 5);
  for (std::size_t t = 0; t < 5; ++t) x.at(0, 0, t) = static_cast<float>(t + 1);
  const Tensor y = layer.forward(x, true);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_FLOAT_EQ(y.at(0, 0, t), static_cast<float>(t + 1));
  }
}

TEST(Conv1D, GradientCheck) {
  Rng rng(5);
  Conv1D layer(2, 3, 3, 1, rng);
  check_gradients(layer, random_tensor({2, 2, 8}, rng));
}

TEST(Conv1D, GradientCheckStrided) {
  Rng rng(6);
  Conv1D layer(2, 2, 5, 2, rng);
  check_gradients(layer, random_tensor({2, 2, 9}, rng));
}

TEST(BatchNorm, NormalizesBatch) {
  BatchNorm bn(3);
  Rng rng(7);
  const Tensor x = random_tensor({16, 3}, rng, 5.0f);
  const Tensor y = bn.forward(x, true);
  // Per-feature batch mean ≈ 0, var ≈ 1 (γ=1, β=0 initially).
  for (std::size_t f = 0; f < 3; ++f) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t b = 0; b < 16; ++b) mean += y.at(b, f);
    mean /= 16.0;
    for (std::size_t b = 0; b < 16; ++b) {
      var += (y.at(b, f) - mean) * (y.at(b, f) - mean);
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm bn(2);
  Rng rng(8);
  // Train on shifted data so running stats move away from (0, 1).
  for (int i = 0; i < 50; ++i) {
    Tensor x = random_tensor({8, 2}, rng);
    for (std::size_t j = 0; j < x.size(); ++j) x[j] += 10.0f;
    (void)bn.forward(x, true);
  }
  // Eval: an input equal to the running mean must map to ≈ β = 0.
  Tensor probe = Tensor::matrix(1, 2);
  probe.at(0, 0) = bn.running_mean()[0];
  probe.at(0, 1) = bn.running_mean()[1];
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y.at(0, 0), 0.0f, 0.05f);
}

TEST(BatchNorm, TentModeUsesBatchStatsInEval) {
  BatchNorm bn(1);
  bn.set_use_batch_stats_in_eval(true);
  Rng rng(9);
  Tensor x = random_tensor({32, 1}, rng);
  for (std::size_t j = 0; j < x.size(); ++j) x[j] += 100.0f;  // far from (0,1)
  const Tensor y = bn.forward(x, /*training=*/false);
  double mean = 0.0;
  for (std::size_t b = 0; b < 32; ++b) mean += y.at(b, 0);
  EXPECT_NEAR(mean / 32.0, 0.0, 1e-4);  // batch stats despite eval mode
}

TEST(BatchNorm, ChannelModeOn3D) {
  BatchNorm bn(2);
  Rng rng(10);
  const Tensor x = random_tensor({4, 2, 6}, rng, 3.0f);
  const Tensor y = bn.forward(x, true);
  EXPECT_EQ(y.dim(2), 6u);
  double mean = 0.0;
  for (std::size_t b = 0; b < 4; ++b) {
    for (std::size_t t = 0; t < 6; ++t) mean += y.at(b, 0, t);
  }
  EXPECT_NEAR(mean / 24.0, 0.0, 1e-5);
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm bn(3);
  Rng rng(11);
  check_gradients(bn, random_tensor({6, 3}, rng));
}

TEST(BatchNorm, GradientCheck3D) {
  BatchNorm bn(2);
  Rng rng(12);
  check_gradients(bn, random_tensor({3, 2, 5}, rng));
}

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::matrix(1, 4);
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = -0.5f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU relu;
  Tensor x = Tensor::matrix(1, 2);
  x[0] = -1.0f;
  x[1] = 3.0f;
  (void)relu.forward(x, true);
  Tensor g = Tensor::matrix(1, 2);
  g.fill(1.0f);
  const Tensor gi = relu.backward(g);
  EXPECT_FLOAT_EQ(gi[0], 0.0f);
  EXPECT_FLOAT_EQ(gi[1], 1.0f);
}

TEST(GlobalAvgPool, AveragesOverTime) {
  GlobalAvgPool1D pool;
  Tensor x = Tensor::cube(1, 2, 4);
  for (std::size_t t = 0; t < 4; ++t) {
    x.at(0, 0, t) = static_cast<float>(t);       // mean 1.5
    x.at(0, 1, t) = 2.0f;                        // mean 2.0
  }
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
}

TEST(GlobalAvgPool, GradientCheck) {
  GlobalAvgPool1D pool;
  Rng rng(13);
  check_gradients(pool, random_tensor({2, 3, 5}, rng));
}

TEST(MaxPool, PicksMaxAndRoutesGrad) {
  MaxPool1D pool(2);
  Tensor x = Tensor::cube(1, 1, 4);
  x.at(0, 0, 0) = 1.0f;
  x.at(0, 0, 1) = 5.0f;
  x.at(0, 0, 2) = 3.0f;
  x.at(0, 0, 3) = 2.0f;
  const Tensor y = pool.forward(x, true);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1), 3.0f);
  Tensor g = Tensor::cube(1, 1, 2);
  g.fill(1.0f);
  const Tensor gi = pool.backward(g);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(gi.at(0, 0, 2), 1.0f);
}

TEST(Flatten, RoundTrips) {
  Flatten flat;
  Rng rng(14);
  const Tensor x = random_tensor({2, 3, 4}, rng);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.dim(1), 12u);
  const Tensor back = flat.backward(y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(back[i], x[i]);
}

TEST(GradReversal, IdentityForwardNegatedBackward) {
  GradReversal grl(0.5f);
  Rng rng(15);
  const Tensor x = random_tensor({2, 3}, rng);
  const Tensor y = grl.forward(x, true);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
  Tensor g = Tensor::matrix(2, 3);
  g.fill(2.0f);
  const Tensor gi = grl.backward(g);
  for (std::size_t i = 0; i < gi.size(); ++i) EXPECT_FLOAT_EQ(gi[i], -1.0f);
}

}  // namespace
}  // namespace smore::nn
